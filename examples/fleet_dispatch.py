#!/usr/bin/env python
"""Fleet dispatch: a disk array serving one heavy request stream.

The cluster-scale question the single-device experiments cannot ask:
given N replicas of a power-managed disk behind a dispatcher, how much
energy does the *routing policy* decide?  Round-robin spreads requests
evenly and chops every device's idle periods to confetti; uniform-random
is barely better; join-shortest-queue optimizes latency only; the
power-aware router consolidates load onto awake devices so the rest can
sleep through long idle periods.  Same devices, same DPM policy, same
arrivals — the router alone moves fleet power by double digits, at a
measurable tail-latency price visible in the merged p99.

Every row here runs fully vectorized: the stateless routers partition
the trace with closed-form NumPy (`route_batch`), the queue-aware pair
(`jsq`, `power_aware`) rides the epoch-advance `route_step_batch` path
— dense backlog arrays plus a shared completion heap, bit-identical to
the scalar reference loop — and the N sub-traces evaluate as one
flattened kernel call (`engine="auto"`).

Run:  python examples/fleet_dispatch.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import FixedTimeout
from repro.device import mobile_hard_disk
from repro.fleet import make_router, run_fleet
from repro.workload import Exponential, renewal_trace

N_DEVICES = 16
RATE = 2.0            # fleet-wide requests/sec (0.125/s per device)
DURATION = 10_000.0
SERVICE_TIME = 0.4


def main() -> None:
    disk = mobile_hard_disk()
    trace = renewal_trace(Exponential(RATE), DURATION, np.random.default_rng(23))
    print(f"fleet: {N_DEVICES} x {disk.name}, shared stream of "
          f"{len(trace)} requests over {DURATION:.0f}s "
          f"({RATE}/s fleet-wide)\n")

    rows = []
    for name in ("round_robin", "random", "jsq", "power_aware"):
        # every device runs the classic break-even timeout; only the
        # dispatcher's routing policy changes between rows
        report = run_fleet(
            disk, FixedTimeout(), trace, make_router(name), N_DEVICES,
            service_time=SERVICE_TIME, route_seed=42,
        )
        rows.append([
            name,
            round(report.mean_power, 2),
            round(report.energy_saving_ratio, 3),
            round(report.p50_latency, 2),
            round(report.p99_latency, 2),
            report.n_shutdowns,
            round(report.load_imbalance, 2),
        ])
    print(format_table(
        ["router", "fleet power (W)", "saving", "p50 lat (s)",
         "p99 lat (s)", "shutdowns", "imbalance"],
        rows,
        title=f"--- routing policy shootout (timeout policy on all "
              f"{N_DEVICES} devices) ---",
    ))
    print()
    print("reading: spreading (round_robin) keeps every disk half-awake; "
          "consolidating (power_aware) parks most of the fleet in deep "
          "sleep and pays for it in the p99 of the merged completion "
          "stream — the energy/latency trade the dispatcher owns.")


if __name__ == "__main__":
    main()
