#!/usr/bin/env python
"""QoS-guaranteed Q-DPM (the paper's future-work item, implemented).

Energy saving is pointless if requests rot in the queue.  The
Lagrangian-constrained controller holds the time-average backlog at a
target while minimizing energy: the dual multiplier rises when the
constraint is violated and decays when it is slack.  Sweeping the target
traces the energy/QoS frontier.

Run:  python examples/qos_constrained.py
"""

from repro.analysis import ascii_chart, format_table
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.extensions import QoSQDPM
from repro.workload import ConstantRate

TARGETS = (0.3, 0.8, 2.0)
N_SLOTS = 120_000


def run_target(target: float, seed: int = 11):
    env = SlottedDPMEnv(
        abstract_three_state(),
        ConstantRate(0.15),
        queue_capacity=6,
        p_serve=0.9,
        perf_weight=0.0,     # the controller owns the latency shaping
        loss_penalty=0.0,
        seed=seed,
    )
    controller = QoSQDPM(
        env, target_queue=target, kappa=0.02, dual_every=400,
        learning_rate=0.15, epsilon=0.05, seed=seed + 1,
    )
    history = controller.run(N_SLOTS, record_every=5_000)
    return history


def main() -> None:
    rows = []
    example_history = None
    for target in TARGETS:
        history = run_target(target)
        if target == TARGETS[0]:
            example_history = history
        tail = slice(-5, None)
        rows.append([
            target,
            round(float(history.queue[tail].mean()), 3),
            round(float(history.saving_ratio[tail].mean()), 3),
            round(float(history.lambda_[-1]), 3),
        ])

    print(format_table(
        ["queue target", "achieved queue", "energy saving", "final lambda"],
        rows,
        title="energy/QoS frontier: tighter targets cost energy",
    ))

    print("\ndual dynamics for the tightest target "
          f"(queue target {TARGETS[0]}):")
    print(ascii_chart(
        example_history.slots,
        {"mean queue": example_history.queue,
         "lambda": example_history.lambda_},
        hlines={"target": TARGETS[0]},
        y_label="value",
        height=14,
    ))
    print("\nreading: lambda climbs until the backlog constraint binds, "
          "then hovers; looser targets settle at smaller multipliers and "
          "buy more sleep.")


if __name__ == "__main__":
    main()
