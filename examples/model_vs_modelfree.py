#!/usr/bin/env python
"""The efficiency argument, measured: what one adaptation costs.

A model-based stochastic power manager adapts by re-running an offline
policy optimization (classically a linear program) over the full
state-action space and needs the explicit transition model in memory.
Q-DPM adapts by touching two rows of a lookup table.  This example prints
both ledgers for growing state spaces — the quantitative form of the
paper's "feasible to implement on almost any low end systems".

Run:  python examples/model_vs_modelfree.py
"""

import time

import numpy as np

from repro.analysis import format_table
from repro.core import QTable
from repro.device import abstract_three_state
from repro.env import build_dpm_model

QUEUE_CAPACITIES = (4, 8, 16, 32)
DISCOUNT = 0.95


def time_q_step(n_states: int, n_actions: int, reps: int = 20_000) -> float:
    """Microseconds per Q-DPM control step (select + Eqn.-3 update)."""
    table = QTable(n_states, n_actions)
    allowed = list(range(n_actions))
    rng = np.random.default_rng(0)
    obs = rng.integers(0, n_states, size=reps)
    start = time.perf_counter()
    for i in range(reps):
        s = int(obs[i])
        action = table.best_action(s, allowed)
        target = -1.0 + DISCOUNT * table.max_value(s, allowed)
        table.update_toward(s, action, target, 0.1)
    return (time.perf_counter() - start) / reps * 1e6


def main() -> None:
    device = abstract_three_state()
    rows = []
    for qcap in QUEUE_CAPACITIES:
        model = build_dpm_model(
            device, arrival_rate=0.15, queue_capacity=qcap, p_serve=0.9
        )
        n_states = model.mdp.n_states
        n_actions = model.mdp.n_actions

        q_us = time_q_step(n_states, n_actions)

        start = time.perf_counter()
        model.solve(DISCOUNT, "linear_programming")
        lp_ms = (time.perf_counter() - start) * 1e3

        memory = model.mdp.memory_bytes()
        rows.append([
            n_states,
            round(q_us, 1),
            round(lp_ms, 1),
            f"{lp_ms * 1e3 / q_us:,.0f}x",
            f"{memory['q_table_bytes'] / 1024:.1f} KB",
            f"{memory['model_bytes'] / 1024:.1f} KB",
        ])

    print(format_table(
        ["|S|", "Q step (us)", "LP re-opt (ms)", "LP / Q step",
         "Q table", "explicit model"],
        rows,
        title="one adaptation: model-free vs model-based "
              "(slotted DPM model, 3 actions)",
    ))
    print("\nreading: every workload change costs the model-based manager "
          "one LP column; Q-DPM pays the left column every slot and "
          "nothing else. On the Pentium III-class embedded CPUs the paper "
          "targets, the gap is what makes online re-optimization "
          "impractical.")


if __name__ == "__main__":
    main()
