#!/usr/bin/env python
"""Classic disk power management: policy shootout on the event simulator.

The scenario every DPM survey opens with: a mobile hard disk serving a
bursty request stream.  Compares the whole classical policy roster —
always-on, greedy spin-down, break-even timeout, adaptive timeout,
predictive shutdown, and the clairvoyant oracle — on the same traces,
reporting power, saving, latency, and shutdown quality.

Run:  python examples/disk_power_management.py
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import mobile_hard_disk
from repro.runtime import simulate_trace
from repro.workload import Exponential, Pareto, renewal_trace

DURATION = 30_000.0   # seconds of simulated disk traffic
SERVICE_TIME = 0.4    # seconds per request


def main() -> None:
    disk = mobile_hard_disk()
    break_even = disk.break_even_time("standby", "busy")
    print(f"device: {disk.name}")
    for state in disk.states:
        print(f"  {state.name:8s} {state.power:5.2f} W"
              f"{'  (serves requests)' if state.can_service else ''}")
    print(f"  spin-down/up break-even time: {break_even:.2f} s\n")

    rng = np.random.default_rng(7)
    traces = {
        "memoryless (exp, rate 0.05/s)": renewal_trace(
            Exponential(0.05), DURATION, rng
        ),
        "heavy-tailed (Pareto a=1.6)": renewal_trace(
            Pareto(1.6, 6.0), DURATION, rng
        ),
    }

    roster = [
        (AlwaysOn(), False),
        (GreedySleep(), False),
        (FixedTimeout(), False),                 # timeout = break-even
        (FixedTimeout(3 * break_even), False),
        (AdaptiveTimeout(initial_timeout=break_even), False),
        (PredictiveShutdown(smoothing=0.5), False),
        (OracleShutdown(), True),
    ]

    for trace_name, trace in traces.items():
        # simulate_trace rides the vectorized busy-period kernel for the
        # stateless policies and falls back to the scalar event loop for
        # the adaptive/predictive arms
        base = simulate_trace(disk, AlwaysOn(), trace, service_time=SERVICE_TIME)
        rows = []
        for policy, oracle in roster:
            report = simulate_trace(
                disk, policy, trace, service_time=SERVICE_TIME, oracle=oracle
            )
            label = policy.name
            if isinstance(policy, FixedTimeout):
                timeout = policy._timeout if policy._timeout else break_even
                label = f"timeout {timeout:.1f}s"
            rows.append([
                label,
                round(report.mean_power, 3),
                round(1 - report.mean_power / base.mean_power, 3),
                round(report.mean_latency, 2),
                report.n_shutdowns,
                report.n_wrong_shutdowns,
            ])
        print(format_table(
            ["policy", "power (W)", "saving", "latency (s)",
             "shutdowns", "wrong"],
            rows,
            title=f"--- {trace_name}: {len(trace)} requests ---",
        ))
        print()

    print("reading: the oracle bounds what any policy can do; the "
          "break-even timeout is the classic 2-competitive compromise; "
          "greedy shutdown mis-fires on heavy-tailed idle traffic, which "
          "is exactly the gap adaptive/predictive policies close.")


if __name__ == "__main__":
    main()
