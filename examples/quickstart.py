#!/usr/bin/env python
"""Quickstart: learn a power-management policy with Q-DPM.

Builds the canonical three-state device, drives it with stationary
synthetic traffic, lets the model-free Q-DPM controller learn online, and
compares the result against the exact optimal policy a model-based
approach would compute with full knowledge — the paper's Fig. 1 protocol
in ~40 lines.

Run:  python examples/quickstart.py
"""

from repro import (
    QDPM,
    ConstantRate,
    SlottedDPMEnv,
    abstract_three_state,
    build_dpm_model,
)

ARRIVAL_RATE = 0.15   # requests per slot (Bernoulli)
N_SLOTS = 100_000


def main() -> None:
    device = abstract_three_state()
    print(f"device: {device.name}, states: {device.state_names}")
    print(f"break-even time of deep sleep: "
          f"{device.break_even_time('sleep', 'active'):.2f} slots\n")

    # --- the environment the power manager controls -------------------
    env = SlottedDPMEnv(
        device,
        ConstantRate(ARRIVAL_RATE),
        queue_capacity=8,
        p_serve=0.9,
        seed=0,
    )

    # --- model-free learning (the paper's technique) ------------------
    manager = QDPM(env, discount=0.95, learning_rate=0.1, epsilon=0.08, seed=1)
    history = manager.run(N_SLOTS, record_every=10_000)

    print("windowed payoff while learning (higher is better):")
    for slot, reward, saving in zip(
        history.slots, history.reward, history.saving_ratio
    ):
        bar = "#" * max(0, int(40 + 40 * reward))
        print(f"  slot {slot:>6}: payoff {reward:+.3f}  saving {saving:.3f}  {bar}")

    # --- the analytical reference (needs the full model) --------------
    model = build_dpm_model(
        device, arrival_rate=ARRIVAL_RATE, queue_capacity=8, p_serve=0.9
    )
    optimal = model.solve(discount=0.95, method="policy_iteration")
    opt_perf = model.evaluate_policy(optimal.policy)
    # the fair reference for an online learner: the optimal policy forced
    # to explore with the same epsilon Q-DPM uses (exploration is
    # permanent in Q-DPM — it is what buys the tracking behaviour)
    opt_soft = model.evaluate_policy(optimal.policy, epsilon=0.08)
    online_tail = float(history.reward[-3:].mean())

    print(f"\noptimal policy          : payoff {opt_perf.average_reward:+.4f}, "
          f"saving {opt_perf.energy_saving_ratio:.3f}, "
          f"latency {opt_perf.mean_latency:.2f} slots")
    print(f"optimal w/ exploration  : payoff {opt_soft.average_reward:+.4f}")
    print(f"Q-DPM online (tail)     : payoff {online_tail:+.4f}")
    print(f"policy agreement        : "
          f"{manager.greedy_policy().agreement(optimal.policy):.1%} of states "
          f"(disagreements sit at rarely-visited states)")
    print(f"\nepisode totals   : {env.totals.completions} requests served, "
          f"{env.totals.losses} lost, "
          f"energy saving vs always-on {env.energy_saving_ratio():.3f}")


if __name__ == "__main__":
    main()
