#!/usr/bin/env python
"""The paper's motivating platform: a deeply embedded sensor node whose
traffic regime keeps changing.

A biosensor radio alternates between activity bursts (high sampling rate)
and quiet monitoring.  A model-based power manager would re-estimate and
re-optimize at every regime change; Q-DPM just keeps learning.  This
example runs both controllers on the same piecewise-stationary workload
and draws the paper's Fig. 2 picture in the terminal, plus the overhead
ledger of the model-based pipeline (what the paper argues a low-end node
cannot afford).

Run:  python examples/sensor_node_tracking.py
"""

from repro.adaptive import BernoulliCUSUM, ModelBasedAdaptiveDPM, SlidingWindowEstimator
from repro.analysis import ascii_chart
from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.workload import PiecewiseConstantRate

SEGMENTS = [(30_000, 0.35), (30_000, 0.04), (30_000, 0.20), (30_000, 0.02)]
RECORD = 1_500


def make_env(seed: int) -> SlottedDPMEnv:
    return SlottedDPMEnv(
        abstract_three_state(),
        PiecewiseConstantRate(SEGMENTS),
        queue_capacity=8,
        p_serve=0.9,
        seed=seed,
    )


def main() -> None:
    n_slots = sum(duration for duration, _ in SEGMENTS)
    switch_points = PiecewiseConstantRate(SEGMENTS).switch_points(n_slots)
    print(f"workload: {len(SEGMENTS)} regimes, rates "
          f"{[rate for _, rate in SEGMENTS]}, switches at {switch_points}\n")

    # --- Q-DPM: high constant learning rate = permanent plasticity ----
    qdpm = QDPM(make_env(3), learning_rate=0.5, epsilon=0.05, seed=4)
    hist_q = qdpm.run(n_slots, record_every=RECORD)

    # --- model-based pipeline: estimate, detect, re-optimize ----------
    mb = ModelBasedAdaptiveDPM(
        make_env(3),
        solver="linear_programming",
        estimator=SlidingWindowEstimator(2_000),
        detector=BernoulliCUSUM(SEGMENTS[0][1]),
        min_samples=2_000,
        freeze_slots=3_000,       # the optimizer is not free on a sensor node
        initial_rate=SEGMENTS[0][1],
    )
    hist_m = mb.run(n_slots, record_every=RECORD)

    print(ascii_chart(
        hist_q.slots,
        {"Q-DPM": hist_q.reward, "model-based": hist_m.reward},
        vlines=switch_points,
        title="windowed payoff over time (bars mark regime switches)",
        y_label="payoff",
        height=16,
    ))

    print("\nmodel-based pipeline overhead ledger:")
    print(f"  re-optimizations          : {mb.log.n_reoptimizations}")
    print(f"  optimizer wall-clock      : {mb.log.optimize_seconds * 1e3:.1f} ms")
    print(f"  estimator wall-clock      : {mb.log.estimator_seconds * 1e3:.1f} ms")
    print(f"  detector wall-clock       : {mb.log.detector_seconds * 1e3:.1f} ms")
    for event in mb.log.events:
        print(f"    slot {event.slot:>7}: re-optimized for rate "
              f"{event.detected_rate:.3f} "
              f"({event.optimize_seconds * 1e3:.1f} ms)")
    print("\nQ-DPM overhead: two Q-table operations per slot, "
          f"{qdpm.agent.table.memory_bytes()} bytes of state. "
          "That asymmetry is the paper's point.")


if __name__ == "__main__":
    main()
