"""Runtime verification layer: invariants, shadow execution, diagnostics.

The invariant checkers must (a) accept every report a correct engine
produces — fuzzed here over random devices, rates, policies, and seeds —
and (b) reject any single-field corruption of such a report with
field-level evidence.  The randomized mutation fuzz drives (b): take a
known-good report, break one field at random, and assert the checker
names it.
"""

from __future__ import annotations

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.analysis.metrics import latency_percentiles
from repro.baselines import AdaptiveTimeout, AlwaysOn, FixedTimeout
from repro.device import PRESETS
from repro.fleet import make_router, run_fleet
from repro.runtime import (
    InvariantViolation,
    RolloutSpec,
    TraceSpec,
    check_fleet_report,
    check_seed_run,
    check_sim_report,
    compare_reports,
    merge_verification_blocks,
    run_chunk,
    shadow_indices,
    shadow_verify_chunks,
    simulate_trace,
)
from repro.sim import DPMSimulator
from repro.sim.stats import compile_report
from repro.workload import ConstantRate, Exponential

DEVICES = ("mobile_hdd", "wlan", "sa1100", "sensor_radio")


def _sim_report(device_name: str, rate: float, seed: int, policy=None):
    device = PRESETS[device_name]()
    trace = TraceSpec("exp", Exponential(rate), 400.0).realize(seed)
    policy = policy if policy is not None else FixedTimeout()
    return DPMSimulator(device, policy, service_time=0.3).run(trace), device


# --------------------------------------------------------------------- #
# sim-report invariants
# --------------------------------------------------------------------- #


class TestCheckSimReport:
    @pytest.mark.parametrize("device_name", DEVICES)
    def test_correct_reports_pass(self, device_name):
        rng = np.random.default_rng(hash(device_name) % 2**32)
        for _ in range(5):
            rate = float(rng.uniform(0.02, 0.3))
            seed = int(rng.integers(0, 10_000))
            policy = [AlwaysOn(), FixedTimeout(),
                      AdaptiveTimeout(initial_timeout=1.0)][
                          int(rng.integers(0, 3))]
            report, device = _sim_report(device_name, rate, seed, policy)
            check_sim_report(report, device=device, seed=seed)

    @pytest.mark.parametrize("field,value,invariant_hint", [
        ("total_energy", float("nan"), "total_energy"),
        ("total_energy", -5.0, "total_energy"),
        ("mean_power", float("inf"), "mean_power"),
        ("n_requests", -3, "n_requests"),
        ("n_requests", 2**63, "n_requests"),
        ("p95_latency", -1.0, "latency"),
        ("max_latency", float("nan"), "latency"),
        ("n_wrong_shutdowns", 10**9, "n_wrong_shutdowns"),
    ])
    def test_single_field_corruption_rejected(self, field, value,
                                              invariant_hint):
        report, device = _sim_report("mobile_hdd", 0.1, 7)
        bad = dataclasses.replace(report, **{field: value})
        with pytest.raises(InvariantViolation) as err:
            check_sim_report(bad, device=device)
        assert any(invariant_hint in str(d["field"]) for d in err.value.details)

    def test_percentile_ladder_must_be_monotone(self):
        report, device = _sim_report("mobile_hdd", 0.1, 7)
        if report.p50_latency == 0.0:
            pytest.skip("degenerate trace: no latencies recorded")
        bad = dataclasses.replace(report, p50_latency=report.p99_latency * 2,
                                  latencies=())
        with pytest.raises(InvariantViolation):
            check_sim_report(bad, device=device)

    def test_residency_must_partition_horizon(self):
        report, device = _sim_report("mobile_hdd", 0.1, 7)
        residency = dict(report.state_residency)
        label = next(iter(residency))
        residency[label] += 17.0
        bad = dataclasses.replace(report, state_residency=residency)
        with pytest.raises(InvariantViolation) as err:
            check_sim_report(bad, device=device)
        assert any("residency" in str(d["field"]) for d in err.value.details)

    def test_energy_conservation_against_device_model(self):
        report, device = _sim_report("mobile_hdd", 0.1, 7)
        bad = dataclasses.replace(
            report, total_energy=report.total_energy * 2.0,
            mean_power=report.mean_power * 2.0,
        )
        with pytest.raises(InvariantViolation):
            check_sim_report(bad, device=device)

    def test_randomized_mutation_fuzz(self):
        # any single numeric corruption of a valid report must be caught
        rng = np.random.default_rng(1234)
        numeric_fields = ("duration", "total_energy", "mean_power",
                          "mean_latency", "p50_latency", "p95_latency",
                          "p99_latency", "max_latency", "mean_idle_length")
        poisons = (float("nan"), float("inf"), -float("inf"), -1e9)
        for trial in range(20):
            seed = int(rng.integers(0, 10_000))
            report, device = _sim_report("wlan", 0.08, seed)
            field = numeric_fields[int(rng.integers(0, len(numeric_fields)))]
            poison = poisons[int(rng.integers(0, len(poisons)))]
            bad = dataclasses.replace(report, **{field: poison})
            with pytest.raises(InvariantViolation):
                check_sim_report(bad, device=device)

    def test_violation_carries_structured_evidence(self):
        report, device = _sim_report("mobile_hdd", 0.1, 3)
        bad = dataclasses.replace(report, total_energy=float("nan"))
        with pytest.raises(InvariantViolation) as err:
            check_sim_report(bad, device=device, spec_key="abc123", seed=3)
        exc = err.value
        assert exc.spec_key == "abc123"
        assert exc.seed == 3
        assert all({"field", "expected", "got"} <= set(d) for d in exc.details)


# --------------------------------------------------------------------- #
# fleet-report invariants
# --------------------------------------------------------------------- #


def _fleet_report(seed: int = 5, n_devices: int = 3):
    device = PRESETS["mobile_hdd"]()
    trace = TraceSpec("exp", Exponential(0.4), 300.0).realize(seed)
    report = run_fleet(
        device, FixedTimeout(), trace, make_router("round_robin"),
        n_devices, service_time=0.3, route_seed=seed,
    )
    return report, len(trace.arrival_times)


class TestCheckFleetReport:
    def test_correct_reports_pass(self):
        for seed in (1, 2, 9):
            report, n_arrivals = _fleet_report(seed)
            check_fleet_report(report, expected_requests=n_arrivals)

    def test_request_accounting_must_balance(self):
        report, _ = _fleet_report()
        bad = dataclasses.replace(report, n_requests=report.n_requests + 1)
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(bad)
        assert any("requests_per_device" in str(d["field"])
                   for d in err.value.details)

    def test_dispatched_plus_dropped_must_cover_trace(self):
        report, n_arrivals = _fleet_report()
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(report, expected_requests=n_arrivals + 5)
        assert any("n_dropped" in str(d["field"]) for d in err.value.details)

    def test_availability_bounded(self):
        report, _ = _fleet_report()
        bad = dataclasses.replace(report, availability=1.5)
        with pytest.raises(InvariantViolation):
            check_fleet_report(bad)

    def test_load_imbalance_at_least_one(self):
        # load_imbalance is derived; guard against a buggy derivation by
        # overriding the property on a throwaway subclass
        report, _ = _fleet_report()

        class Skewed(type(report)):
            @property
            def load_imbalance(self):
                return 0.3

        bad = Skewed(**{f.name: getattr(report, f.name)
                        for f in dataclasses.fields(report)})
        with pytest.raises(InvariantViolation):
            check_fleet_report(bad)

    def test_device_report_folds_must_match(self):
        report, _ = _fleet_report()
        if not report.device_reports:
            pytest.skip("fleet path dropped device reports")
        bad = dataclasses.replace(report, total_energy=report.total_energy * 3)
        with pytest.raises(InvariantViolation):
            check_fleet_report(bad)

    def test_shed_conservation_must_balance(self):
        """dispatched + dropped + shed == offered, enforced from the
        report's own n_offered even without expected_requests."""
        report, n_arrivals = _fleet_report()
        assert report.n_offered == n_arrivals
        check_fleet_report(report)
        bad = dataclasses.replace(report, n_shed=3)
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(bad)
        assert any("n_shed" in str(d["field"]) for d in err.value.details)

    def test_shed_requests_count_toward_expected(self):
        """A report that sheds is conserved against expected_requests:
        shifting landed requests into n_shed keeps the balance only if
        n_requests shrinks to match."""
        report, n_arrivals = _fleet_report()
        shifted = dataclasses.replace(
            report, n_shed=4, n_requests=report.n_requests - 4)
        # conservation holds, but now requests_per_device disagrees
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(shifted, expected_requests=n_arrivals)
        assert all("n_shed" not in str(d["field"])
                   for d in err.value.details)

    def test_goodput_cannot_exceed_throughput(self):
        report, n_arrivals = _fleet_report()
        bad = dataclasses.replace(
            report, n_requests=report.n_requests, goodput=1.5)
        with pytest.raises(InvariantViolation):
            check_fleet_report(bad)
        # goodput above the dispatched fraction is a violation even in [0, 1]
        dropped = dataclasses.replace(
            report, n_requests=report.n_requests - 10, n_dropped=10,
            goodput=1.0,
            requests_per_device=report.requests_per_device,
        )
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(dropped)
        assert any("goodput" in str(d["field"]) for d in err.value.details)

    def test_budget_shed_bounded_by_total_shed(self):
        report, _ = _fleet_report()
        bad = dataclasses.replace(
            report, n_shed=1, n_budget_shed=2,
            n_requests=report.n_requests - 1)
        with pytest.raises(InvariantViolation) as err:
            check_fleet_report(bad)
        assert any("n_budget_shed" in str(d["field"])
                   for d in err.value.details)

    def test_slo_attainment_bounded(self):
        report, _ = _fleet_report()
        for poison in (-0.1, 1.5, float("nan")):
            bad = dataclasses.replace(report, slo_attainment=poison)
            with pytest.raises(InvariantViolation):
                check_fleet_report(bad)

    def test_negative_overload_counters_rejected(self):
        report, _ = _fleet_report()
        for field in ("n_shed", "n_budget_shed", "n_breaker_trips"):
            bad = dataclasses.replace(report, **{field: -1})
            with pytest.raises(InvariantViolation):
                check_fleet_report(bad)

    def test_legacy_report_without_offered_is_unchecked(self):
        """n_offered == 0 (a hand-built legacy report) disables the
        conservation check unless expected_requests pins it."""
        report, _ = _fleet_report()
        legacy = dataclasses.replace(report, n_offered=0, n_shed=2)
        check_fleet_report(legacy)  # no conservation to enforce
        with pytest.raises(InvariantViolation):
            check_fleet_report(legacy, expected_requests=report.n_offered)


# --------------------------------------------------------------------- #
# slotted seed-run invariants
# --------------------------------------------------------------------- #


class TestCheckSeedRun:
    def _runs(self):
        spec = RolloutSpec(schedule=ConstantRate(0.15), n_slots=400,
                           record_every=100)
        return spec, run_chunk(spec, [0, 1])

    def test_correct_runs_pass(self):
        spec, runs = self._runs()
        for run in runs:
            check_seed_run(run, spec=spec)

    def test_saving_ratio_cannot_exceed_one(self):
        spec, runs = self._runs()
        bad = dataclasses.replace(runs[0], saving_ratio=1.2)
        with pytest.raises(InvariantViolation):
            check_seed_run(bad, spec=spec)

    def test_request_conservation(self):
        spec, runs = self._runs()
        totals = dataclasses.replace(
            runs[0].totals, completions=runs[0].totals.arrivals + 10,
        )
        bad = dataclasses.replace(runs[0], totals=totals)
        with pytest.raises(InvariantViolation) as err:
            check_seed_run(bad, spec=spec)
        assert any("arrivals" in str(d["field"]) for d in err.value.details)

    def test_horizon_must_match_spec(self):
        spec, runs = self._runs()
        totals = dataclasses.replace(runs[0].totals, slots=999)
        bad = dataclasses.replace(runs[0], totals=totals)
        with pytest.raises(InvariantViolation):
            check_seed_run(bad, spec=spec)


# --------------------------------------------------------------------- #
# shadow sampling + comparison
# --------------------------------------------------------------------- #


class TestShadowIndices:
    def test_deterministic_for_key(self):
        a = shadow_indices(40, 0.25, "deadbeefdeadbeef")
        b = shadow_indices(40, 0.25, "deadbeefdeadbeef")
        assert a == b
        assert len(a) == 10
        assert all(0 <= i < 40 for i in a)

    def test_positive_fraction_verifies_at_least_one(self):
        assert len(shadow_indices(3, 0.01, "ab")) == 1

    def test_full_fraction_verifies_all(self):
        assert shadow_indices(5, 1.0, "ab") == [0, 1, 2, 3, 4]

    def test_zero_fraction_verifies_none(self):
        assert shadow_indices(5, 0.0, "ab") == []

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            shadow_indices(5, 1.5, "ab")


def _block(n_chunks, verified, reference, divergences=()):
    return {
        "fraction": 0.5, "n_chunks": n_chunks,
        "verified_chunks": list(verified), "n_verified": len(verified),
        "reference": reference, "n_divergences": len(divergences),
        "divergences": list(divergences),
    }


class TestMergeVerificationBlocks:
    def test_sums_counts_and_joins_references(self):
        merged = merge_verification_blocks([
            {"verification": _block(4, [0, 2], "scalar A")},
            {"verification": _block(2, [1], "scalar B",
                                    [{"chunk": 1, "field": "x"}])},
        ])
        assert merged["n_chunks"] == 6
        assert merged["n_verified"] == 3
        assert merged["verified_chunks"] == [0, 2, 1]
        assert merged["reference"] == "scalar A + scalar B"
        assert merged["n_divergences"] == 1

    def test_duplicate_references_collapse(self):
        merged = merge_verification_blocks([
            {"verification": _block(1, [0], "scalar A")},
            {"verification": _block(1, [0], "scalar A")},
        ])
        assert merged["reference"] == "scalar A"

    def test_skip_blocks_survive_only_when_all_skipped(self):
        skip = {"verification": {"fraction": 0.5, "skipped": "shared RNG"}}
        assert "skipped" in merge_verification_blocks([skip, skip])
        merged = merge_verification_blocks(
            [skip, {"verification": _block(2, [0], "scalar A")}]
        )
        assert "skipped" not in merged
        assert merged["n_chunks"] == 2

    def test_empty_or_missing_blocks_merge_to_none(self):
        assert merge_verification_blocks([]) is None
        assert merge_verification_blocks([None, {}, {"other": 1}]) is None


class TestCompareReports:
    def test_identical_reports_have_no_divergence(self):
        report, _ = _sim_report("mobile_hdd", 0.1, 7)
        assert compare_reports(report, report) == []

    def test_perturbed_field_is_named(self):
        report, _ = _sim_report("mobile_hdd", 0.1, 7)
        other = dataclasses.replace(report,
                                    total_energy=report.total_energy + 1.0)
        divergences = compare_reports(other, report)
        assert [d["field"] for d in divergences] == ["total_energy"]

    def test_bit_exact_mode_catches_one_ulp(self):
        report, _ = _sim_report("mobile_hdd", 0.1, 7)
        nudged = dataclasses.replace(
            report, total_energy=np.nextafter(report.total_energy, np.inf),
        )
        assert compare_reports(nudged, report) == []  # within shadow rtol
        assert compare_reports(nudged, report, rtol=0.0, atol=0.0)

    def test_ignore_skips_fields(self):
        report, _ = _sim_report("mobile_hdd", 0.1, 7)
        other = dataclasses.replace(report, latencies=())
        assert compare_reports(other, report, ignore=("latencies",)) == []

    def test_type_mismatch_reported(self):
        report, _ = _sim_report("mobile_hdd", 0.1, 7)
        divergences = compare_reports(object(), report)
        assert divergences[0]["field"] == "__class__"


@dataclasses.dataclass(frozen=True)
class _Toy:
    value: float


class TestShadowVerifyChunks:
    def _tasks(self):
        tasks = [("cell-a", [0, 1]), ("cell-b", [2, 3])]
        results = [[_Toy(1.0), _Toy(2.0)], [_Toy(3.0), _Toy(4.0)]]
        return tasks, results

    def test_matching_reference_returns_block(self):
        tasks, results = self._tasks()
        block = shadow_verify_chunks(
            tasks, results, 1.0, "ff00", lambda name, seeds: results[
                0 if name == "cell-a" else 1],
            "identity", seeds_of=lambda t: t[1],
        )
        assert block["n_verified"] == 2
        assert block["n_divergences"] == 0

    def test_divergence_raises_with_seed_evidence(self, tmp_path):
        tasks, results = self._tasks()
        with pytest.raises(InvariantViolation) as err:
            shadow_verify_chunks(
                tasks, results, 1.0, "ff00",
                lambda name, seeds: [_Toy(99.0), _Toy(99.0)],
                "identity", seeds_of=lambda t: t[1],
                diagnostics_dir=tmp_path,
            )
        assert err.value.invariant == "shadow_divergence"
        assert err.value.details[0]["seed"] in (0, 1)
        bundles = list(tmp_path.glob("repro_diag_*.json"))
        assert len(bundles) == 1
        payload = json.loads(bundles[0].read_text())
        assert payload["kind"] == "shadow_divergence"
        assert payload["details"]


# --------------------------------------------------------------------- #
# eventsim opt-in hook + empty-latency guards
# --------------------------------------------------------------------- #


class TestEventsimVerifyHook:
    def test_simulate_trace_verify_passes_on_correct_run(self):
        device = PRESETS["mobile_hdd"]()
        trace = TraceSpec("exp", Exponential(0.1), 300.0).realize(5)
        report = simulate_trace(device, FixedTimeout(), trace,
                                service_time=0.3, verify=True)
        assert report.n_requests >= 0


class TestEmptyLatencyGuards:
    def test_empty_stream_yields_zero_sentinels(self):
        assert latency_percentiles([]) == (0.0, 0.0, 0.0)

    def test_non_finite_stream_rejected(self):
        with pytest.raises(ValueError, match="non-finite"):
            latency_percentiles([0.1, float("nan"), 0.3])

    def test_compile_report_empty_trace_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = compile_report(
                home_power=2.0, end_time=100.0, total_energy=120.0,
                latencies=[], idle_lengths=[], n_shutdowns=0,
                n_wrong_shutdowns=0, state_residency={"active": 100.0},
            )
        assert report.n_requests == 0
        assert report.mean_latency == 0.0
        assert report.p99_latency == 0.0
        assert np.isfinite(report.max_latency)

    def test_empty_report_satisfies_invariants(self):
        report = compile_report(
            home_power=2.0, end_time=100.0, total_energy=200.0,
            latencies=[], idle_lengths=[], n_shutdowns=0,
            n_wrong_shutdowns=0, state_residency={"active": 100.0},
        )
        check_sim_report(report)
