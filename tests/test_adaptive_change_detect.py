"""Change detector tests: detect true shifts, hold on stationary input."""

import numpy as np
import pytest

from repro.adaptive import BernoulliCUSUM, PageHinkley


def feed(detector, rng, rate, n):
    """Feed n Bernoulli(rate) samples; return the first alarm index or None."""
    for i in range(n):
        if detector.update(rng.random() < rate):
            return i
    return None


class TestCUSUM:
    def test_detects_upward_shift(self, rng):
        det = BernoulliCUSUM(target_rate=0.1)
        delay = feed(det, rng, 0.5, 3000)
        assert delay is not None
        assert delay < 400

    def test_detects_downward_shift(self, rng):
        det = BernoulliCUSUM(target_rate=0.4)
        delay = feed(det, rng, 0.05, 3000)
        assert delay is not None
        assert delay < 400

    def test_bigger_shift_detected_faster(self):
        delays_small = []
        delays_big = []
        for seed in range(10):
            r = np.random.default_rng(seed)
            small = BernoulliCUSUM(0.1)
            delays_small.append(feed(small, r, 0.25, 5000) or 5000)
            r = np.random.default_rng(seed)
            big = BernoulliCUSUM(0.1)
            delays_big.append(feed(big, r, 0.8, 5000) or 5000)
        assert np.mean(delays_big) < np.mean(delays_small)

    def test_quiet_on_stationary_stream(self):
        rng = np.random.default_rng(7)
        det = BernoulliCUSUM(target_rate=0.3)
        alarms = sum(det.update(rng.random() < 0.3) for _ in range(20_000))
        assert alarms == 0

    def test_reset_rearms(self, rng):
        det = BernoulliCUSUM(0.1, drift=0.02, threshold=5.0)
        feed(det, rng, 0.9, 100)
        det.reset(0.9)
        assert det.slots_since_reset == 0
        assert det.target_rate == 0.9
        # now 0.9 is normal: no alarm
        assert feed(det, rng, 0.9, 500) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliCUSUM(1.5)
        with pytest.raises(ValueError):
            BernoulliCUSUM(0.5, drift=-0.1)
        with pytest.raises(ValueError):
            BernoulliCUSUM(0.5, threshold=0.0)
        with pytest.raises(ValueError):
            BernoulliCUSUM(0.5).reset(target_rate=2.0)


class TestPageHinkley:
    def test_detects_downward_shift(self, rng):
        det = PageHinkley()
        for _ in range(3000):
            det.update(rng.random() < 0.4)
        delay = feed(det, rng, 0.02, 5000)
        assert delay is not None
        assert delay < 1000

    def test_detects_upward_shift(self, rng):
        det = PageHinkley()
        for _ in range(3000):
            det.update(rng.random() < 0.05)
        delay = feed(det, rng, 0.5, 5000)
        assert delay is not None
        assert delay < 600

    def test_quiet_on_stationary(self):
        rng = np.random.default_rng(3)
        det = PageHinkley()
        alarms = sum(det.update(rng.random() < 0.3) for _ in range(20_000))
        assert alarms == 0

    def test_running_mean(self, rng):
        det = PageHinkley()
        for _ in range(2000):
            det.update(rng.random() < 0.25)
        assert det.running_mean == pytest.approx(0.25, abs=0.04)

    def test_reset_with_seed_rate(self):
        det = PageHinkley()
        det.update(True)
        det.reset(target_rate=0.7)
        assert det.running_mean == 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkley(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkley(lambda_=0.0)
