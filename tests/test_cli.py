"""CLI entry point tests."""

import pytest

import repro.cli as cli


class TestArgs:
    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["warp-drive"])

    def test_no_args_exits(self):
        with pytest.raises(SystemExit):
            cli.main([])


class TestDispatch:
    def test_single_experiment(self, monkeypatch, capsys):
        monkeypatch.setitem(cli._COMMANDS, "fig1", lambda quick: "FAKE-FIG1")
        assert cli.main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "=== fig1 ===" in out
        assert "FAKE-FIG1" in out

    def test_all_runs_everything(self, monkeypatch, capsys):
        calls = []
        for name in list(cli._COMMANDS):
            monkeypatch.setitem(
                cli._COMMANDS, name,
                lambda quick, name=name: calls.append(name) or f"ran-{name}",
            )
        assert cli.main(["all"]) == 0
        assert sorted(calls) == sorted(cli._COMMANDS)

    def test_quick_flag_forwarded(self, monkeypatch):
        seen = {}
        monkeypatch.setitem(
            cli._COMMANDS, "fig1", lambda quick: seen.setdefault("q", quick) or ""
        )
        cli.main(["fig1", "--quick"])
        assert seen["q"] is True

    def test_grid_dispatches_like_any_command(self, monkeypatch, capsys):
        monkeypatch.setitem(cli._COMMANDS, "grid", lambda quick: "FAKE-GRID")
        assert cli.main(["grid"]) == 0
        out = capsys.readouterr().out
        assert "=== grid ===" in out
        assert "FAKE-GRID" in out

    def test_jobs_flag_forwarded(self, monkeypatch):
        seen = {}

        def fake(quick, n_seeds=None, batch=None, jobs=None):
            seen.update(n_seeds=n_seeds, batch=batch, jobs=jobs)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "grid", fake)
        cli.main(["grid", "--seeds", "4", "--jobs", "2"])
        assert seen == {"n_seeds": 4, "batch": None, "jobs": 2}

    def test_jobs_flag_rejected_for_unsharded_experiment(self):
        with pytest.raises(SystemExit):
            cli.main(["overhead", "--jobs", "2"])

    def test_sim_sweep_takes_seeds_and_jobs_but_not_batch(self, monkeypatch):
        seen = {}

        def fake(quick, n_seeds=None, batch=None, jobs=None):
            seen.update(n_seeds=n_seeds, batch=batch, jobs=jobs)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "sim-sweep", fake)
        cli.main(["sim-sweep", "--seeds", "6", "--jobs", "2"])
        assert seen == {"n_seeds": 6, "batch": None, "jobs": 2}
        with pytest.raises(SystemExit):
            cli.main(["sim-sweep", "--batch", "4"])

    def test_bad_jobs_value_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--jobs", "0"])

    def test_fleet_sweep_dispatches_like_any_command(self, monkeypatch, capsys):
        monkeypatch.setitem(cli._COMMANDS, "fleet-sweep", lambda quick: "FAKE-FLEET")
        assert cli.main(["fleet-sweep"]) == 0
        out = capsys.readouterr().out
        assert "=== fleet-sweep ===" in out
        assert "FAKE-FLEET" in out

    def test_fleet_sweep_takes_all_its_flags(self, monkeypatch):
        seen = {}

        def fake(quick, n_seeds=None, batch=None, jobs=None,
                 devices=None, router=None):
            seen.update(n_seeds=n_seeds, batch=batch, jobs=jobs,
                        devices=devices, router=router)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "fleet-sweep", fake)
        cli.main(["fleet-sweep", "--seeds", "6", "--jobs", "2",
                  "--devices", "16", "--router", "power_aware"])
        assert seen == {"n_seeds": 6, "batch": None, "jobs": 2,
                        "devices": 16, "router": "power_aware"}
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--batch", "4"])

    def test_fleet_flags_rejected_elsewhere(self):
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--devices", "4"])
        with pytest.raises(SystemExit):
            cli.main(["sim-sweep", "--router", "jsq"])
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--devices", "0"])
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--router", "warp"])

    def test_fault_and_checkpoint_flags_forwarded(self, monkeypatch, tmp_path):
        seen = {}

        def fake(quick, n_seeds=None, batch=None, jobs=None, devices=None,
                 router=None, mtbf=None, mttr=None, max_retries=None,
                 checkpoint=None):
            seen.update(mtbf=mtbf, mttr=mttr, max_retries=max_retries,
                        checkpoint=checkpoint)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "fleet-sweep", fake)
        ck = tmp_path / "journal.ck"
        cli.main(["fleet-sweep", "--mtbf", "200", "--mttr", "20",
                  "--max-retries", "5", "--checkpoint", str(ck)])
        assert seen == {"mtbf": 200.0, "mttr": 20.0, "max_retries": 5,
                        "checkpoint": str(ck)}

    def test_fault_flag_validation(self):
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--mtbf", "0"])
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--mttr", "10"])  # requires --mtbf
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--max-retries", "2"])  # requires --mtbf
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--resume"])  # requires --checkpoint
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--mtbf", "100"])
        with pytest.raises(SystemExit):
            cli.main(["grid", "--checkpoint", "ck"])

    def test_overload_flags_forwarded(self, monkeypatch):
        seen = {}

        def fake(quick, n_seeds=None, batch=None, jobs=None, devices=None,
                 router=None, mtbf=None, mttr=None, max_retries=None,
                 brownout_severity=None, slo=None, breaker=None,
                 retry_budget=None, checkpoint=None):
            seen.update(mtbf=mtbf, brownout_severity=brownout_severity,
                        slo=slo, breaker=breaker, retry_budget=retry_budget)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "fleet-sweep", fake)
        cli.main(["fleet-sweep", "--mtbf", "120", "--brownout-severity",
                  "2.5", "--slo", "30", "--breaker", "3",
                  "--retry-budget", "16"])
        assert seen == {"mtbf": 120.0, "brownout_severity": 2.5,
                        "slo": 30.0, "breaker": 3, "retry_budget": 16.0}

    def test_overload_flags_forwarded_independently(self, monkeypatch):
        """--slo / --breaker / --retry-budget do not require --mtbf;
        only flags the user passed reach the command."""
        seen = {}

        def fake(quick, **kwargs):
            seen.update(kwargs)
            return ""

        monkeypatch.setitem(cli._COMMANDS, "fleet-sweep", fake)
        cli.main(["fleet-sweep", "--slo", "10"])
        assert seen == {"slo": 10.0}

    def test_overload_flag_validation(self):
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--brownout-severity", "2"])  # needs --mtbf
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--mtbf", "100",
                      "--brownout-severity", "0.5"])  # < 1
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--slo", "0"])
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--breaker", "0"])
        with pytest.raises(SystemExit):
            cli.main(["fleet-sweep", "--retry-budget", "-1"])
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--slo", "5"])
        with pytest.raises(SystemExit):
            cli.main(["sim-sweep", "--breaker", "3"])
        with pytest.raises(SystemExit):
            cli.main(["grid", "--retry-budget", "8"])

    def test_fresh_run_truncates_stale_journal(self, monkeypatch, tmp_path):
        monkeypatch.setitem(
            cli._COMMANDS, "fleet-sweep", lambda quick, **kw: ""
        )
        ck = tmp_path / "journal.ck"
        ck.write_bytes(b"stale")
        cli.main(["fleet-sweep", "--checkpoint", str(ck)])
        assert not ck.exists()
        ck.write_bytes(b"keep")
        cli.main(["fleet-sweep", "--checkpoint", str(ck), "--resume"])
        assert ck.read_bytes() == b"keep"


class TestRealQuickRun:
    def test_overhead_quick_end_to_end(self, capsys):
        assert cli.main(["overhead", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "CLAIM-EFF" in out
        assert "LP/Qstep" in out
