"""Curve metric tests."""

import numpy as np
import pytest

from repro.analysis import (
    convergence_point,
    regret_vs_reference,
    steady_state_mean,
    switch_responses,
)


class TestConvergencePoint:
    def test_simple_convergence(self):
        slots = np.array([0, 10, 20, 30, 40])
        series = np.array([0.0, 0.5, 0.9, 0.95, 0.93])
        assert convergence_point(slots, series, 0.95, 0.06, sustain=2) == 20

    def test_requires_sustained_entry(self):
        slots = np.array([0, 10, 20, 30, 40])
        series = np.array([0.95, 0.0, 0.0, 0.95, 0.95])
        assert convergence_point(slots, series, 0.95, 0.01, sustain=2) == 30

    def test_never_converges(self):
        slots = np.array([0, 10])
        series = np.array([0.0, 0.1])
        assert convergence_point(slots, series, 1.0, 0.05) is None

    def test_sustain_past_end_allowed(self):
        slots = np.array([0, 10])
        series = np.array([0.0, 1.0])
        assert convergence_point(slots, series, 1.0, 0.05, sustain=5) == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            convergence_point(np.array([1]), np.array([1, 2]), 0.0, 0.1)
        with pytest.raises(ValueError):
            convergence_point(np.array([1]), np.array([1.0]), 0.0, 0.1, sustain=0)


class TestSwitchResponses:
    def test_recovery_measured_per_switch(self):
        slots = np.arange(0, 100, 10)
        series = np.array([1.0, 1.0, 1.0, 0.2, 0.5, 1.0, 1.0, 1.0, 1.0, 1.0])
        responses = switch_responses(
            slots, series, switch_points=[30], targets=[1.0],
            tolerance=0.05, sustain=2,
        )
        assert len(responses) == 1
        resp = responses[0]
        assert resp.switch_slot == 30
        assert resp.dip == pytest.approx(0.2)
        assert resp.recovery_slot == 50
        assert resp.response_slots == 20

    def test_never_recovers(self):
        slots = np.arange(0, 50, 10)
        series = np.array([1.0, 1.0, 0.2, 0.3, 0.2])
        responses = switch_responses(
            slots, series, [20], [1.0], tolerance=0.05
        )
        assert responses[0].response_slots is None

    def test_multiple_switches_segmented(self):
        slots = np.arange(0, 120, 10)
        series = np.concatenate([
            np.full(4, 1.0),    # slots 0-30
            [0.0, 1.0, 1.0, 1.0],  # switch at 40, recovers at 50
            [0.2, 0.8, 0.8, 0.8],  # switch at 80, recovers at 90
        ])
        responses = switch_responses(
            slots, series, [40, 80], [1.0, 0.8], tolerance=0.05, sustain=2
        )
        assert responses[0].response_slots == 10
        assert responses[1].response_slots == 10

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            switch_responses(np.array([0]), np.array([1.0]), [1], [], 0.1)


class TestSteadyStateMean:
    def test_tail_mean(self):
        series = np.array([0.0, 0.0, 0.0, 1.0])
        assert steady_state_mean(series, tail_fraction=0.25) == 1.0

    def test_full_mean(self):
        assert steady_state_mean(np.array([1.0, 3.0]), 1.0) == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_mean(np.array([]))
        with pytest.raises(ValueError):
            steady_state_mean(np.array([1.0]), 0.0)


class TestRegret:
    def test_mean_shortfall(self):
        assert regret_vs_reference(np.array([0.8, 0.6]), 1.0) == pytest.approx(0.3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            regret_vs_reference(np.array([]), 1.0)


class TestLatencyPercentiles:
    def test_default_tail_quantiles(self):
        from repro.analysis import TAIL_QUANTILES, latency_percentiles

        delays = np.arange(1, 101, dtype=float)  # 1..100
        p50, p95, p99 = latency_percentiles(delays)
        assert TAIL_QUANTILES == (50.0, 95.0, 99.0)
        assert p50 == pytest.approx(np.percentile(delays, 50))
        assert p95 == pytest.approx(np.percentile(delays, 95))
        assert p99 == pytest.approx(np.percentile(delays, 99))
        assert p50 <= p95 <= p99

    def test_empty_stream_yields_zeros(self):
        from repro.analysis import latency_percentiles

        assert latency_percentiles([]) == (0.0, 0.0, 0.0)

    def test_custom_quantiles_and_validation(self):
        from repro.analysis import latency_percentiles

        assert latency_percentiles([5.0, 5.0], qs=(0, 100)) == (5.0, 5.0)
        with pytest.raises(ValueError):
            latency_percentiles([1.0], qs=())
        with pytest.raises(ValueError):
            latency_percentiles([1.0], qs=(101.0,))
        with pytest.raises(ValueError):
            latency_percentiles([1.0], qs=(-1.0,))
