"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import abstract_three_state, two_state
from repro.env import SlottedDPMEnv
from repro.workload import ConstantRate


@pytest.fixture
def rng():
    """Deterministic generator for stochastic tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def device3():
    """The canonical three-state device."""
    return abstract_three_state()


@pytest.fixture
def device2():
    """Minimal on/off device."""
    return two_state()


@pytest.fixture
def small_env(device3):
    """Small slotted environment with stationary arrivals."""
    return SlottedDPMEnv(
        device3,
        ConstantRate(0.15),
        queue_capacity=4,
        p_serve=0.9,
        perf_weight=0.5,
        loss_penalty=2.0,
        seed=42,
    )
