"""Unit tests for PowerStateMachine."""

import pytest

from repro.device import PowerState, PowerStateMachine, Transition


def make_machine():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("idle", 0.4),
        PowerState("off", 0.0),
    ]
    transitions = [
        Transition("on", "idle", 0.0, 0.0),
        Transition("idle", "on", 0.0, 0.0),
        Transition("on", "off", 0.2, 0.5),
        Transition("off", "on", 0.8, 1.5),
    ]
    return PowerStateMachine("m", states, transitions, initial_state="on")


class TestConstruction:
    def test_basic(self):
        m = make_machine()
        assert m.state_names == ["on", "idle", "off"]
        assert m.initial_state == "on"
        assert len(m.transitions) == 4

    def test_no_states_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PowerStateMachine("m", [], [])

    def test_duplicate_state_rejected(self):
        with pytest.raises(ValueError, match="duplicate state"):
            PowerStateMachine(
                "m",
                [PowerState("a", 1.0, can_service=True), PowerState("a", 2.0)],
                [],
            )

    def test_unknown_transition_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown state"):
            PowerStateMachine(
                "m",
                [PowerState("a", 1.0, can_service=True)],
                [Transition("a", "b", 0, 0)],
            )

    def test_duplicate_transition_rejected(self):
        states = [PowerState("a", 1.0, can_service=True), PowerState("b", 0.0)]
        trs = [Transition("a", "b", 0, 0), Transition("a", "b", 1, 1)]
        with pytest.raises(ValueError, match="duplicate transition"):
            PowerStateMachine("m", states, trs)

    def test_no_service_state_rejected(self):
        with pytest.raises(ValueError, match="service"):
            PowerStateMachine("m", [PowerState("a", 1.0)], [])

    def test_bad_initial_state_rejected(self):
        with pytest.raises(ValueError, match="initial"):
            PowerStateMachine(
                "m", [PowerState("a", 1.0, can_service=True)], [], initial_state="zz"
            )

    def test_default_initial_is_servicing(self):
        states = [PowerState("low", 0.0), PowerState("hi", 1.0, can_service=True)]
        m = PowerStateMachine("m", states, [Transition("hi", "low", 0, 0),
                                            Transition("low", "hi", 0, 0)])
        assert m.initial_state == "hi"


class TestLookups:
    def test_state_lookup(self):
        m = make_machine()
        assert m.state("idle").power == 0.4

    def test_unknown_state_raises(self):
        with pytest.raises(KeyError, match="unknown power state"):
            make_machine().state("nope")

    def test_has_state(self):
        m = make_machine()
        assert m.has_state("off")
        assert not m.has_state("nope")

    def test_transition_lookup(self):
        m = make_machine()
        assert m.transition("on", "off").energy == 0.2

    def test_missing_transition_raises(self):
        with pytest.raises(KeyError, match="no transition"):
            make_machine().transition("idle", "off")

    def test_can_transition(self):
        m = make_machine()
        assert m.can_transition("on", "off")
        assert not m.can_transition("idle", "off")

    def test_targets_from(self):
        assert make_machine().targets_from("on") == ["idle", "off"]

    def test_targets_from_unknown_raises(self):
        with pytest.raises(KeyError):
            make_machine().targets_from("zz")

    def test_service_states(self):
        assert make_machine().service_states() == ["on"]

    def test_deepest_and_highest(self):
        m = make_machine()
        assert m.deepest_state() == "off"
        assert m.highest_power_state() == "on"

    def test_sleep_states_by_depth(self):
        assert make_machine().sleep_states_by_depth("on") == ["idle", "off"]


class TestAnalytics:
    def test_round_trip(self):
        energy, latency = make_machine().round_trip("on", "off")
        assert energy == pytest.approx(1.0)
        assert latency == pytest.approx(2.0)

    def test_break_even_formula(self):
        m = make_machine()
        # (E_rt - P_off * L_rt) / (P_on - P_off) = (1.0 - 0) / 1.0 = 1.0,
        # clamped at L_rt = 2.0
        assert m.break_even_time("off", "on") == pytest.approx(2.0)

    def test_break_even_zero_for_home(self):
        assert make_machine().break_even_time("on", "on") == 0.0

    def test_break_even_rejects_non_saving_state(self):
        states = [PowerState("a", 1.0, can_service=True), PowerState("b", 2.0)]
        trs = [Transition("a", "b", 0, 0), Transition("b", "a", 0, 0)]
        m = PowerStateMachine("m", states, trs)
        with pytest.raises(ValueError, match="does not save"):
            m.break_even_time("b", "a")

    def test_idle_energy_home(self):
        m = make_machine()
        assert m.idle_energy("on", 5.0, "on") == pytest.approx(5.0)

    def test_idle_energy_long_idle(self):
        m = make_machine()
        # round trip 1.0 J over 2.0 s, remainder 8.0 s at 0 W
        assert m.idle_energy("off", 10.0, "on") == pytest.approx(1.0)

    def test_idle_energy_short_idle_charges_round_trip(self):
        m = make_machine()
        assert m.idle_energy("off", 0.5, "on") == pytest.approx(1.0)

    def test_idle_energy_negative_rejected(self):
        with pytest.raises(ValueError):
            make_machine().idle_energy("off", -1.0, "on")

    def test_break_even_indifference(self):
        """At exactly the break-even idle length, both options cost the same
        (when the break-even exceeds the round-trip latency)."""
        states = [PowerState("on", 1.0, can_service=True), PowerState("off", 0.1)]
        trs = [Transition("on", "off", 1.0, 0.2), Transition("off", "on", 1.0, 0.2)]
        m = PowerStateMachine("m", states, trs)
        t_be = m.break_even_time("off", "on")
        stay = m.idle_energy("on", t_be, "on")
        go = m.idle_energy("off", t_be, "on")
        assert stay == pytest.approx(go, rel=1e-9)


class TestSerialization:
    def test_roundtrip_dict(self):
        m = make_machine()
        clone = PowerStateMachine.from_dict(m.to_dict())
        assert clone.state_names == m.state_names
        assert clone.initial_state == m.initial_state
        assert clone.transition("off", "on").energy == 0.8

    def test_roundtrip_json(self):
        m = make_machine()
        clone = PowerStateMachine.from_json(m.to_json())
        assert clone.to_dict() == m.to_dict()

    def test_repr(self):
        assert "PowerStateMachine" in repr(make_machine())
