"""Preset device models: validity and physical sanity."""

import pytest

from repro.device import PRESETS, get_preset, validate_machine
from repro.device.validate import ERROR


@pytest.mark.parametrize("name", sorted(PRESETS))
class TestAllPresets:
    def test_constructs(self, name):
        machine = get_preset(name)
        assert machine.state_names

    def test_no_error_issues(self, name):
        issues = validate_machine(get_preset(name))
        assert not [i for i in issues if i.severity == ERROR]

    def test_has_servicing_state(self, name):
        assert get_preset(name).service_states()

    def test_deepest_state_saves_power(self, name):
        machine = get_preset(name)
        home = machine.initial_state
        deepest = machine.deepest_state()
        assert machine.state(deepest).power < machine.state(home).power

    def test_break_even_positive(self, name):
        machine = get_preset(name)
        deepest = machine.deepest_state()
        t_be = machine.break_even_time(deepest, machine.initial_state)
        assert t_be > 0

    def test_serialization_roundtrip(self, name):
        machine = get_preset(name)
        clone = type(machine).from_json(machine.to_json())
        assert clone.to_dict() == machine.to_dict()


def test_unknown_preset_raises_with_candidates():
    with pytest.raises(KeyError, match="abstract3"):
        get_preset("not_a_device")


def test_presets_have_distinct_names():
    names = [get_preset(n).name for n in PRESETS]
    assert len(set(names)) == len(names)


def test_abstract3_break_even_nontrivial():
    """The canonical testbench device must make the sleep decision
    non-trivial: break-even strictly between one slot and the horizon."""
    machine = get_preset("abstract3")
    t_be = machine.break_even_time("sleep", "active")
    assert 1.0 < t_be < 100.0


def test_two_state_has_exactly_two_states():
    assert len(get_preset("two_state").state_names) == 2


def test_hdd_standby_much_cheaper_than_busy():
    hdd = get_preset("mobile_hdd")
    assert hdd.state("standby").power < 0.1 * hdd.state("busy").power
