"""Exact model builder tests: the model must match the environment."""

import numpy as np
import pytest

from repro.baselines import always_on_policy, greedy_sleep_policy
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.mdp import DeterministicPolicy
from repro.workload import ConstantRate

PARAMS = dict(
    arrival_rate=0.2, queue_capacity=4, p_serve=0.9,
    perf_weight=0.5, loss_penalty=2.0,
)


@pytest.fixture(scope="module")
def model():
    return build_dpm_model(abstract_three_state(), **PARAMS)


@pytest.fixture()
def env():
    return SlottedDPMEnv(
        abstract_three_state(),
        ConstantRate(PARAMS["arrival_rate"]),
        queue_capacity=PARAMS["queue_capacity"],
        p_serve=PARAMS["p_serve"],
        perf_weight=PARAMS["perf_weight"],
        loss_penalty=PARAMS["loss_penalty"],
        seed=123,
    )


class TestStructure:
    def test_state_space_matches_env(self, model, env):
        assert model.mdp.n_states == env.n_states
        assert model.mdp.n_actions == env.n_actions

    def test_probability_rows(self, model):
        sums = model.mdp.transition.sum(axis=2)
        assert np.allclose(sums[model.mdp.allowed], 1.0)
        assert np.allclose(sums[~model.mdp.allowed], 0.0)

    def test_allowed_matches_env(self, model, env):
        for state in range(env.n_states):
            from_env = sorted(env.allowed_actions(state))
            from_model = sorted(model.mdp.allowed_actions(state).tolist())
            assert from_env == from_model

    def test_reward_consistent_with_tables(self, model):
        expected = (
            -model.energy
            - PARAMS["perf_weight"] * model.queue
            - PARAMS["loss_penalty"] * model.loss
        )
        mask = model.mdp.allowed
        assert np.allclose(model.mdp.reward[mask], expected[mask])

    def test_state_labels(self, model):
        labels = model.state_labels()
        assert len(labels) == model.mdp.n_states
        assert "active|q=0" in labels

    def test_initial_state(self, model, env):
        assert model.initial_state() == env.reset()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            build_dpm_model(abstract_three_state(), arrival_rate=1.5)
        with pytest.raises(ValueError):
            build_dpm_model(abstract_three_state(), arrival_rate=0.2, p_serve=0.0)
        with pytest.raises(ValueError):
            build_dpm_model(
                abstract_three_state(), arrival_rate=0.2, queue_capacity=0
            )


class TestModelMatchesEnvironment:
    """Monte-Carlo check: empirical env statistics equal model expectations."""

    def run_policy(self, env, policy, n_slots=40_000):
        rewards = []
        energies = []
        for _ in range(n_slots):
            state = env.state
            action = policy(state)
            if action not in env.allowed_actions(state):
                action = env.allowed_actions(state)[0]
            _, r, info = env.step(action)
            rewards.append(r)
            energies.append(info.energy)
        return np.mean(rewards), np.mean(energies)

    def test_always_on_policy(self, model, env):
        policy = always_on_policy(env)
        emp_reward, emp_energy = self.run_policy(env, policy)
        perf = model.evaluate_policy(policy)
        assert emp_reward == pytest.approx(perf.average_reward, abs=0.03)
        assert emp_energy == pytest.approx(perf.mean_power, abs=0.03)

    def test_greedy_sleep_policy(self, model, env):
        policy = greedy_sleep_policy(env)
        emp_reward, emp_energy = self.run_policy(env, policy)
        perf = model.evaluate_policy(policy)
        assert emp_reward == pytest.approx(perf.average_reward, abs=0.05)
        assert emp_energy == pytest.approx(perf.mean_power, abs=0.05)

    def test_optimal_policy_beats_heuristics(self, model, env):
        result = model.solve(0.95, "policy_iteration")
        opt = model.evaluate_policy(result.policy).average_reward
        on = model.evaluate_policy(always_on_policy(env)).average_reward
        greedy = model.evaluate_policy(greedy_sleep_policy(env)).average_reward
        assert opt >= on - 1e-9
        assert opt >= greedy - 1e-9


class TestEvaluatePolicy:
    def test_always_on_saving_zero(self, model, env):
        perf = model.evaluate_policy(always_on_policy(env))
        assert perf.energy_saving_ratio == pytest.approx(0.0, abs=1e-9)
        # a loss needs a full queue, possible but vanishingly rare always-on
        assert perf.loss_rate == pytest.approx(0.0, abs=1e-5)

    def test_epsilon_zero_matches_plain(self, model, env):
        policy = greedy_sleep_policy(env)
        plain = model.evaluate_policy(policy)
        soft = model.evaluate_policy(policy, epsilon=0.0)
        assert plain.average_reward == pytest.approx(soft.average_reward)

    def test_epsilon_soft_degrades_optimal(self, model):
        result = model.solve(0.95, "policy_iteration")
        pure = model.evaluate_policy(result.policy).average_reward
        soft = model.evaluate_policy(result.policy, epsilon=0.2).average_reward
        assert soft <= pure + 1e-9

    def test_epsilon_validation(self, model, env):
        with pytest.raises(ValueError):
            model.evaluate_policy(always_on_policy(env), epsilon=1.5)

    def test_epsilon_soft_monte_carlo(self, model, env):
        """Exact eps-soft evaluation matches an eps-soft rollout."""
        rng = np.random.default_rng(0)
        policy = greedy_sleep_policy(env)
        eps = 0.3
        rewards = []
        for _ in range(60_000):
            state = env.state
            allowed = env.allowed_actions(state)
            if rng.random() < eps:
                action = int(rng.choice(allowed))
            else:
                action = policy(state)
                if action not in allowed:
                    action = allowed[0]
            _, r, _ = env.step(action)
            rewards.append(r)
        exact = model.evaluate_policy(policy, epsilon=eps).average_reward
        assert np.mean(rewards) == pytest.approx(exact, abs=0.06)


class TestSolverDispatch:
    def test_unknown_method(self, model):
        with pytest.raises(KeyError, match="unknown solver"):
            model.solve(0.95, "quantum_annealing")

    def test_all_methods_agree(self, model):
        results = [
            model.solve(0.95, m)
            for m in ("value_iteration", "policy_iteration", "linear_programming")
        ]
        for other in results[1:]:
            assert np.allclose(results[0].values, other.values, atol=1e-4)
