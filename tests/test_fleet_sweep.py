"""Fleet evaluation and sweeps: engine equivalence, determinism, CIs.

The contract mirrors the event-sim kernel's: the vectorized fleet path
(NumPy trace partition + busy-period kernel per device) must be
indistinguishable from the scalar reference dispatcher (scalar routing
loop + scalar event loop per device) on every :class:`FleetReport`
field (rel tol <= 1e-9), and sweep results must be bit-identical for
every ``(chunk_size, n_jobs)`` combination.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import get_preset
from repro.experiments import (
    FleetConfig,
    build_fleet_sweep_spec,
    run_fleet_sweep,
)
from repro.fleet import (
    ROUTERS,
    FailoverConfig,
    FleetSweepRunner,
    FleetSweepSpec,
    Router,
    build_fleet_report,
    make_router,
    run_fleet,
    run_fleet_batch,
    run_fleet_chunk,
)
from repro.fleet.sweep import (
    SCALAR_ROUTE_SECONDS_PER_REQUEST,
    STEP_ROUTE_SECONDS_PER_REQUEST,
    route_seconds_per_request,
)
from repro.runtime import PolicySpec, TraceSpec
from repro.runtime.simsweep import estimate_request_seconds
from repro.workload import Exponential, renewal_trace

FLEET_FIELDS = (
    "n_devices", "duration", "total_energy", "mean_power",
    "energy_saving_ratio", "n_requests", "mean_latency", "p50_latency",
    "p95_latency", "p99_latency", "max_latency", "n_shutdowns",
    "n_wrong_shutdowns", "requests_per_device",
)


def assert_fleet_reports_match(ref, fast, rel=1e-9):
    """Field-for-field FleetReport comparison (ints exact, floats tight)."""
    for name in FLEET_FIELDS:
        a, b = getattr(ref, name), getattr(fast, name)
        if isinstance(a, (int, tuple)):
            assert a == b, f"{name}: {a} != {b}"
        else:
            assert b == pytest.approx(a, rel=rel, abs=1e-12), name
    assert set(ref.state_residency) == set(fast.state_residency)
    for key, a in ref.state_residency.items():
        assert fast.state_residency[key] == pytest.approx(
            a, rel=rel, abs=1e-12
        ), key


POLICIES = [
    ("always_on", AlwaysOn, False),
    ("greedy", GreedySleep, False),
    ("timeout_break_even", FixedTimeout, False),
    ("oracle", OracleShutdown, True),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize("engine", ("auto", "flat"))
    @pytest.mark.parametrize("router_name", sorted(ROUTERS))
    @pytest.mark.parametrize(
        "policy_factory,oracle", [(f, o) for _, f, o in POLICIES],
        ids=[name for name, _, _ in POLICIES],
    )
    def test_vectorized_matches_scalar_reference(
        self, engine, router_name, policy_factory, oracle, rng
    ):
        trace = renewal_trace(Exponential(0.8), 800.0, rng)
        device = get_preset("mobile_hdd")
        kwargs = dict(service_time=0.4, oracle=oracle, route_seed=21)
        ref = run_fleet(device, policy_factory(), trace,
                        make_router(router_name), 5, engine="scalar", **kwargs)
        fast = run_fleet(device, policy_factory(), trace,
                         make_router(router_name), 5, engine=engine, **kwargs)
        assert_fleet_reports_match(ref, fast)

    def test_stateful_policy_rides_the_fleet_too(self, rng):
        """Stateful per-device policies ride the lock-step engine across
        the device axis inside the auto engine — same aggregate as the
        scalar reference dispatcher either way."""
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        device = get_preset("mobile_hdd")
        ref = run_fleet(device, AdaptiveTimeout(initial_timeout=1.0), trace,
                        make_router("round_robin"), 3, engine="scalar",
                        service_time=0.4)
        fast = run_fleet(device, AdaptiveTimeout(initial_timeout=1.0), trace,
                         make_router("round_robin"), 3, engine="auto",
                         service_time=0.4)
        assert_fleet_reports_match(ref, fast)

    @pytest.mark.parametrize("router_name", ("round_robin", "power_aware"))
    def test_stateful_policies_match_at_larger_fleets(self, router_name, rng):
        """The per-device sub-traces a router produces (including the
        skewed ones of a consolidating router) run through the lock-step
        engine as one batch — pinned against the scalar dispatcher."""
        trace = renewal_trace(Exponential(1.5), 500.0, rng)
        device = get_preset("mobile_hdd")
        for policy_factory in (
            lambda: AdaptiveTimeout(initial_timeout=1.0),
            lambda: PredictiveShutdown(smoothing=0.5),
        ):
            kwargs = dict(service_time=0.4, route_seed=9)
            ref = run_fleet(device, policy_factory(), trace,
                            make_router(router_name), 8, engine="scalar",
                            **kwargs)
            fast = run_fleet(device, policy_factory(), trace,
                             make_router(router_name), 8, engine="auto",
                             **kwargs)
            assert_fleet_reports_match(ref, fast)

    def test_unknown_engine_rejected(self, rng):
        trace = renewal_trace(Exponential(0.8), 100.0, rng)
        with pytest.raises(ValueError, match="engine"):
            run_fleet(get_preset("mobile_hdd"), AlwaysOn(), trace,
                      make_router("round_robin"), 2, engine="warp")

    @pytest.mark.parametrize("device_name", ("mobile_hdd", "wlan", "sa1100"))
    @pytest.mark.parametrize("router_name", ("jsq", "power_aware"))
    def test_flat_engine_across_presets(self, device_name, router_name, rng):
        """The acceptance pin for the flattened cell: queue-aware routing
        plus the one-kernel-call fleet run tracks the scalar dispatcher
        on every preset (rel <= 1e-9) — assignments themselves are
        asserted bit-identical down in test_fleet_dispatch."""
        trace = renewal_trace(Exponential(1.2), 400.0, rng)
        device = get_preset(device_name)
        kwargs = dict(service_time=0.4, route_seed=3)
        ref = run_fleet(device, FixedTimeout(), trace,
                        make_router(router_name), 6, engine="scalar", **kwargs)
        flat = run_fleet(device, FixedTimeout(), trace,
                         make_router(router_name), 6, engine="flat", **kwargs)
        assert_fleet_reports_match(ref, flat)

    def test_flat_engine_stateful_policy(self, rng):
        """Step-mode policies ride the flattened call on their own hooks."""
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        device = get_preset("mobile_hdd")
        ref = run_fleet(device, AdaptiveTimeout(initial_timeout=1.0), trace,
                        make_router("jsq"), 4, engine="scalar",
                        service_time=0.4)
        flat = run_fleet(device, AdaptiveTimeout(initial_timeout=1.0), trace,
                         make_router("jsq"), 4, engine="flat",
                         service_time=0.4)
        assert_fleet_reports_match(ref, flat)


class TestRunFleetBatch:
    """The whole-cell flattening entry the sweep workers call."""

    def test_batch_composition_never_matters(self, rng):
        """Per-seed reports are exact dataclass equals whether the seeds
        share one flattened kernel call or run one by one — the property
        that keeps sweep results invariant to (chunk_size, n_jobs)."""
        device = get_preset("mobile_hdd")
        traces = [renewal_trace(Exponential(0.9), 300.0, rng)
                  for _ in range(4)]
        seeds = [11, 12, 13, 14]
        batched = run_fleet_batch(
            device, FixedTimeout(), traces, make_router("power_aware"), 3,
            service_time=0.4, route_seeds=seeds,
        )
        singles = [
            run_fleet_batch(
                device, FixedTimeout(), [trace], make_router("power_aware"),
                3, service_time=0.4, route_seeds=[seed],
            )[0]
            for trace, seed in zip(traces, seeds)
        ]
        assert batched == singles

    def test_matches_per_seed_auto_runs(self, rng):
        device = get_preset("mobile_hdd")
        traces = [renewal_trace(Exponential(0.9), 300.0, rng)
                  for _ in range(3)]
        seeds = [5, 6, 7]
        batched = run_fleet_batch(
            device, FixedTimeout(), traces, make_router("jsq"), 4,
            service_time=0.4, route_seeds=seeds,
        )
        for fast, (trace, seed) in zip(batched, zip(traces, seeds)):
            ref = run_fleet(device, FixedTimeout(), trace,
                            make_router("jsq"), 4, service_time=0.4,
                            route_seed=seed, engine="auto")
            assert_fleet_reports_match(ref, fast)

    def test_scalar_only_policy_falls_back(self, rng):
        """Policies with neither batch hook cannot flatten; the batch
        entry must return the same reports the auto engine produces."""
        from test_runtime_eventsim_batch import _StatefulScalarOnly

        device = get_preset("mobile_hdd")
        traces = [renewal_trace(Exponential(0.5), 200.0, rng)
                  for _ in range(2)]
        batched = run_fleet_batch(
            device, _StatefulScalarOnly(), traces, make_router("jsq"), 2,
            service_time=0.4, route_seeds=[1, 2],
        )
        for fast, (trace, seed) in zip(batched, zip(traces, [1, 2])):
            ref = run_fleet(device, _StatefulScalarOnly(), trace,
                            make_router("jsq"), 2, service_time=0.4,
                            route_seed=seed, engine="auto")
            assert_fleet_reports_match(ref, fast)

    def test_validation_and_empty(self, rng):
        device = get_preset("mobile_hdd")
        assert run_fleet_batch(
            device, FixedTimeout(), [], make_router("jsq"), 2
        ) == []
        trace = renewal_trace(Exponential(0.5), 50.0, rng)
        with pytest.raises(ValueError, match="route_seeds"):
            run_fleet_batch(
                device, FixedTimeout(), [trace], make_router("jsq"), 2,
                route_seeds=[1, 2],
            )


class _ScalarOnlyRouter(Router):
    """Registry-free router with neither vectorized path (cost model)."""

    name = "scalar_only"

    def route(self, ctx):  # pragma: no cover - never simulated
        return np.zeros(ctx.arrivals.size, dtype=np.int64)


class TestRoutingCostModel:
    def test_rates_follow_the_assignment_cascade(self):
        assert route_seconds_per_request(ROUTERS["round_robin"]) == 0.0
        assert route_seconds_per_request(ROUTERS["random"]) == 0.0
        assert route_seconds_per_request(ROUTERS["jsq"]) == \
            STEP_ROUTE_SECONDS_PER_REQUEST
        assert route_seconds_per_request(ROUTERS["power_aware"]) == \
            STEP_ROUTE_SECONDS_PER_REQUEST
        assert route_seconds_per_request(_ScalarOnlyRouter) == \
            SCALAR_ROUTE_SECONDS_PER_REQUEST
        assert STEP_ROUTE_SECONDS_PER_REQUEST < \
            SCALAR_ROUTE_SECONDS_PER_REQUEST

    def test_estimate_uses_vectorized_router_rate(self):
        """A queue-aware cell must no longer be costed at the scalar
        routing rate (which would wrongly trip the serial-degrade
        heuristic into forcing in-process execution on fast cells)."""
        spec = small_spec(routers=("jsq",),
                          policies=(PolicySpec("always_on", AlwaysOn()),))
        est = FleetSweepRunner(chunk_size=2).estimate_chunk_seconds(spec)
        requests = spec.trace.dist.rate() * spec.trace.duration
        expected = 2 * requests * STEP_ROUTE_SECONDS_PER_REQUEST + \
            estimate_request_seconds(AlwaysOn(), 2 * requests)
        assert est == pytest.approx(expected)
        assert est < 2 * requests * SCALAR_ROUTE_SECONDS_PER_REQUEST + \
            estimate_request_seconds(AlwaysOn(), 2 * requests)


class TestFleetReport:
    def test_aggregates_fold_per_device_reports(self, rng):
        trace = renewal_trace(Exponential(1.0), 500.0, rng)
        device = get_preset("mobile_hdd")
        report = run_fleet(device, FixedTimeout(), trace,
                           make_router("round_robin"), 4, service_time=0.4)
        assert len(report.device_reports) == 4
        assert report.n_requests == len(trace)
        assert sum(report.requests_per_device) == len(trace)
        assert report.total_energy == pytest.approx(
            sum(r.total_energy for r in report.device_reports)
        )
        assert report.n_shutdowns == sum(
            r.n_shutdowns for r in report.device_reports
        )
        merged = np.sort(np.concatenate(
            [r.latencies for r in report.device_reports]
        ))
        assert report.p99_latency == pytest.approx(
            float(np.percentile(merged, 99))
        )
        assert report.max_latency == pytest.approx(float(merged.max()))
        # residency folds per key
        for key, span in report.state_residency.items():
            assert span == pytest.approx(sum(
                r.state_residency.get(key, 0.0)
                for r in report.device_reports
            ))

    def test_saving_is_vs_all_always_on_fleet(self, rng):
        trace = renewal_trace(Exponential(1.0), 500.0, rng)
        device = get_preset("mobile_hdd")
        report = run_fleet(device, FixedTimeout(), trace,
                           make_router("round_robin"), 4, service_time=0.4)
        home_power = device.state(device.initial_state).power
        expected = 1.0 - report.total_energy / (
            4 * home_power * report.duration
        )
        assert report.energy_saving_ratio == pytest.approx(expected)

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            build_fleet_report("round_robin", "always_on", 2.0, [])

    def test_load_imbalance(self, rng):
        trace = renewal_trace(Exponential(1.0), 400.0, rng)
        device = get_preset("mobile_hdd")
        rr = run_fleet(device, AlwaysOn(), trace,
                       make_router("round_robin"), 4, service_time=0.4)
        assert rr.load_imbalance == pytest.approx(1.0, abs=0.05)
        pa = run_fleet(device, AlwaysOn(), trace,
                       make_router("power_aware"), 4, service_time=0.4)
        assert pa.load_imbalance > rr.load_imbalance


def small_spec(**overrides) -> FleetSweepSpec:
    base = dict(
        device="mobile_hdd",
        fleet_sizes=(2, 4),
        routers=("round_robin", "random", "jsq", "power_aware"),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("timeout", FixedTimeout()),
            PolicySpec("oracle", OracleShutdown(), oracle=True),
        ),
        trace=TraceSpec("exp", Exponential(0.6), 300.0),
        n_traces=4,
        seed=5,
        seed_stride=11,
        service_time=0.4,
    )
    base.update(overrides)
    return FleetSweepSpec(**base)


class TestSpecValidation:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            small_spec(fleet_sizes=())
        with pytest.raises(ValueError):
            small_spec(routers=())
        with pytest.raises(ValueError):
            small_spec(policies=())

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            small_spec(fleet_sizes=(0,))
        with pytest.raises(ValueError):
            small_spec(routers=("warp",))
        with pytest.raises(ValueError):
            small_spec(n_traces=0)
        with pytest.raises(ValueError):
            small_spec(seed_stride=0)
        with pytest.raises(ValueError):
            small_spec(service_time=0.0)
        with pytest.raises(ValueError):
            FleetSweepRunner(chunk_size=0)

    def test_seeds_are_strided(self):
        assert small_spec().seeds() == [5, 16, 27, 38]


class TestSweepExecution:
    def test_full_grid_shape_and_order(self):
        spec = small_spec()
        result = FleetSweepRunner(chunk_size=2).run(spec)
        assert len(result.cells) == 2 * 4 * 3
        assert [c.n_devices for c in result.cells[:12]] == [2] * 12
        for cell in result.cells:
            assert len(cell.reports) == spec.n_traces

    def test_results_identical_across_chunking_and_jobs(self):
        """The acceptance pin: bit-identical FleetReports for every
        (chunk_size, n_jobs) combination, stateless and queue-aware
        routers alike."""
        spec = small_spec()
        reference = FleetSweepRunner(chunk_size=spec.n_traces).run(spec)
        for chunk_size, n_jobs in ((1, 1), (3, 1), (2, 2)):
            other = FleetSweepRunner(chunk_size=chunk_size,
                                     n_jobs=n_jobs).run(spec)
            for a, b in zip(reference.cells, other.cells):
                assert (a.n_devices, a.router, a.policy) == \
                    (b.n_devices, b.router, b.policy)
                assert a.reports == b.reports  # dataclass equality, exact

    def test_chunk_worker_is_pure(self):
        spec = small_spec()
        args = ("mobile_hdd", 2, "random", spec.policies[1], spec.trace,
                spec.service_time, [5, 16])
        assert run_fleet_chunk(*args) == run_fleet_chunk(*args)

    def test_chunk_reports_strip_device_latency_arrays(self):
        """The merged-stream quantiles are folded inside the worker, so
        the per-device raw arrays never ride the result pickle — while a
        direct run_fleet call still keeps them for downstream merging."""
        spec = small_spec()
        chunk = run_fleet_chunk(
            "mobile_hdd", 2, "round_robin", spec.policies[1], spec.trace,
            spec.service_time, [5],
        )
        for fleet_report in chunk:
            assert fleet_report.p99_latency >= 0.0
            for device_report in fleet_report.device_reports:
                assert device_report.latencies == ()
        direct = run_fleet(
            get_preset("mobile_hdd"), FixedTimeout(), spec.trace.realize(5),
            make_router("round_robin"), 2, service_time=spec.service_time,
        )
        assert any(len(r.latencies) for r in direct.device_reports)

    def test_execution_metadata_recorded(self):
        spec = small_spec(fleet_sizes=(2,), routers=("round_robin",))
        result = FleetSweepRunner(chunk_size=2, n_jobs=2).run(spec)
        meta = result.execution
        assert meta["n_jobs_requested"] == 2
        assert meta["n_jobs_effective"] in (1, 2)
        assert meta["decision"] in (
            "serial_requested", "single_core_host", "small_chunks", "parallel"
        )
        assert meta["estimated_chunk_seconds"] >= 0.0
        serial = FleetSweepRunner(chunk_size=2, n_jobs=1).run(spec)
        assert serial.execution["decision"] == "serial_requested"

    def test_cell_lookup_and_aggregates(self):
        result = FleetSweepRunner(chunk_size=2).run(small_spec())
        cell = result.cell(2, "round_robin", "timeout")
        ci = cell.power_ci()
        assert ci.low <= ci.estimate <= ci.high
        always_on = result.cell(2, "round_robin", "always_on")
        assert always_on.mean_shutdowns == 0
        # paired traces: the clairvoyant lower bound beats the timeout
        oracle = result.cell(2, "round_robin", "oracle")
        assert oracle.power_ci().estimate <= cell.power_ci().estimate
        # power-aware consolidation beats round-robin spreading on energy
        pa = result.cell(2, "power_aware", "timeout")
        assert pa.power_ci().estimate < cell.power_ci().estimate
        assert pa.mean_imbalance > cell.mean_imbalance
        with pytest.raises(KeyError):
            result.cell(2, "round_robin", "nope")

    def test_render_lists_every_cell(self):
        result = FleetSweepRunner(chunk_size=4).run(
            small_spec(fleet_sizes=(2,))
        )
        table = result.render()
        assert "FLEET-SWEEP" in table
        for cell in result.cells:
            assert cell.router in table
            assert cell.policy in table


class TestExperimentHarness:
    def test_config_roundtrip_and_determinism(self):
        config = dataclasses.replace(
            FleetConfig(), fleet_sizes=(2,), routers=("round_robin",),
            duration=300.0, n_traces=3,
        )
        spec = build_fleet_sweep_spec(config)
        assert spec.device == config.device
        assert spec.fleet_sizes == (2,)
        a = run_fleet_sweep(config)
        b = run_fleet_sweep(dataclasses.replace(config, n_jobs=2))
        for ca, cb in zip(a.cells, b.cells):
            assert ca.reports == cb.reports

    def test_unknown_device_fails_fast(self):
        with pytest.raises(KeyError):
            build_fleet_sweep_spec(
                dataclasses.replace(FleetConfig(), device="warp_core")
            )

    def test_fault_config_realizes_fault_injection(self):
        config = dataclasses.replace(
            FleetConfig(), fleet_sizes=(2,), routers=("round_robin",),
            duration=300.0, n_traces=3, mtbf=60.0, mttr=10.0,
            failover_policy="resubmit", max_retries=5,
        )
        spec = build_fleet_sweep_spec(config)
        assert spec.faults is not None
        assert spec.faults.mtbf == 60.0 and spec.faults.mttr == 10.0
        assert spec.failover.policy == "resubmit"
        assert spec.failover.max_retries == 5
        result = run_fleet_sweep(config)
        assert all(
            r.availability < 1.0
            for c in result.cells for r in c.reports
        )
        table = result.render()
        assert "avail" in table and "dropped" in table

    def test_faultless_config_keeps_faultless_spec(self):
        spec = build_fleet_sweep_spec(FleetConfig())
        assert spec.faults is None
        assert spec.failover == FailoverConfig()
        assert spec.overload is None

    def test_overload_config_realizes_overload_spec(self):
        config = dataclasses.replace(
            FleetConfig(), fleet_sizes=(2,), routers=("round_robin",),
            duration=300.0, n_traces=2, mtbf=60.0, mttr=10.0,
            max_retries=5, brownout_severity=2.5, slo=30.0, breaker=4,
            retry_budget=16.0,
        )
        spec = build_fleet_sweep_spec(config)
        assert spec.uses_overload
        assert spec.faults.severity == 2.5
        assert spec.overload.failover == spec.failover
        assert spec.overload.failover.max_retries == 5
        assert spec.overload.breaker.failure_threshold == 4
        assert spec.overload.retry_budget.capacity == 16.0
        assert spec.overload.slo == 30.0

    def test_overload_knobs_independent_of_faults(self):
        spec = build_fleet_sweep_spec(
            dataclasses.replace(FleetConfig(), slo=20.0)
        )
        assert spec.faults is None
        assert spec.overload is not None
        assert spec.overload.slo == 20.0
        assert spec.overload.breaker is None
        assert spec.overload.retry_budget is None

    def test_brownout_without_mtbf_fails_fast(self):
        with pytest.raises(ValueError, match="requires mtbf"):
            build_fleet_sweep_spec(
                dataclasses.replace(FleetConfig(), brownout_severity=2.0)
            )

    def test_checkpoint_config_resumes_without_recompute(self, tmp_path):
        ck = tmp_path / "fleet.ck"
        config = dataclasses.replace(
            FleetConfig(), fleet_sizes=(2,), routers=("round_robin",),
            duration=300.0, n_traces=4, chunk_size=2, checkpoint=str(ck),
        )
        first = run_fleet_sweep(config)
        assert first.execution["computed_chunks"] > 0
        second = run_fleet_sweep(config)
        assert second.execution["computed_chunks"] == 0
        assert second.execution["resumed_chunks"] == (
            first.execution["computed_chunks"]
        )
        for ca, cb in zip(first.cells, second.cells):
            assert ca.reports == cb.reports
