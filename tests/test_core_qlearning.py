"""TD agent tests: convergence to known optimal Q-values."""

import numpy as np
import pytest

from repro.core import (
    Boltzmann,
    EpsilonGreedy,
    ExpectedSarsaAgent,
    HarmonicDecay,
    QLearningAgent,
    SarsaAgent,
)


class TwoStateWorld:
    """Deterministic 2-state world with known Q*.

    State 0: action 0 -> stay, reward 0; action 1 -> state 1, reward 0.
    State 1: action 0 -> stay, reward 1; action 1 -> state 0, reward 0.
    With discount b: Q*(1, 0) = 1/(1-b); Q*(0, 1) = b/(1-b).
    """

    def __init__(self):
        self.state = 0

    def step(self, action):
        if self.state == 0:
            if action == 0:
                return 0, 0.0
            self.state = 1
            return 1, 0.0
        if action == 0:
            return 1, 1.0
        self.state = 0
        return 0, 0.0


def drive(agent, n_steps=20_000):
    world = TwoStateWorld()
    allowed = [0, 1]
    obs = world.state
    for _ in range(n_steps):
        action = agent.select_action(obs, allowed)
        next_obs, reward = world.step(action)
        agent.update(obs, action, reward, next_obs, allowed)
        obs = next_obs
    return agent


class TestQLearning:
    def test_converges_to_optimal_q(self):
        agent = QLearningAgent(2, 2, discount=0.5, learning_rate=0.2,
                               exploration=EpsilonGreedy(0.3), seed=0)
        drive(agent)
        assert agent.table.get(1, 0) == pytest.approx(2.0, abs=0.05)
        assert agent.table.get(0, 1) == pytest.approx(1.0, abs=0.05)
        assert agent.greedy_action(0, [0, 1]) == 1
        assert agent.greedy_action(1, [0, 1]) == 0

    def test_off_policy_with_full_exploration(self):
        """Q-learning learns the greedy values even acting uniformly."""
        agent = QLearningAgent(2, 2, discount=0.5, learning_rate=0.2,
                               exploration=EpsilonGreedy(1.0), seed=1)
        drive(agent)
        assert agent.table.get(1, 0) == pytest.approx(2.0, abs=0.05)

    def test_harmonic_lr_converges(self):
        agent = QLearningAgent(
            2, 2, discount=0.5, learning_rate=HarmonicDecay(0.5, tau=100),
            exploration=EpsilonGreedy(0.5), seed=2,
        )
        drive(agent, 40_000)
        assert agent.table.get(1, 0) == pytest.approx(2.0, abs=0.02)

    def test_terminal_update_skips_bootstrap(self):
        agent = QLearningAgent(2, 2, discount=0.9, learning_rate=1.0, seed=0)
        agent.table.set(1, 0, 100.0)
        agent.update(0, 0, 5.0, 1, [0, 1], terminal=True)
        assert agent.table.get(0, 0) == pytest.approx(5.0)

    def test_steps_counter(self):
        agent = QLearningAgent(2, 2, seed=0)
        drive(agent, 100)
        assert agent.steps == 100

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            QLearningAgent(2, 2, discount=1.0)

    def test_learning_rate_uses_visit_count(self):
        agent = QLearningAgent(
            2, 2, learning_rate=HarmonicDecay(1.0, tau=1.0), seed=0
        )
        assert agent.learning_rate_for(0, 0) == 1.0
        agent.update(0, 0, 1.0, 0, [0, 1])
        assert agent.learning_rate_for(0, 0) == pytest.approx(0.5)
        # other pairs unaffected
        assert agent.learning_rate_for(1, 0) == 1.0


class TestSarsa:
    def test_learns_good_policy(self):
        agent = SarsaAgent(2, 2, discount=0.5, learning_rate=0.2,
                           exploration=EpsilonGreedy(0.2), seed=3)
        drive(agent, 30_000)
        assert agent.greedy_action(0, [0, 1]) == 1
        assert agent.greedy_action(1, [0, 1]) == 0

    def test_on_policy_values_lower_with_heavy_exploration(self):
        """SARSA evaluates the exploring policy, so with heavy exploration
        its value for the risky path is lower than Q-learning's greedy
        estimate."""
        q_agent = QLearningAgent(2, 2, discount=0.9, learning_rate=0.1,
                                 exploration=EpsilonGreedy(0.5), seed=4)
        s_agent = SarsaAgent(2, 2, discount=0.9, learning_rate=0.1,
                             exploration=EpsilonGreedy(0.5), seed=4)
        drive(q_agent, 30_000)
        drive(s_agent, 30_000)
        assert s_agent.table.get(1, 0) < q_agent.table.get(1, 0) + 0.1


class TestExpectedSarsa:
    def test_converges(self):
        agent = ExpectedSarsaAgent(2, 2, discount=0.5, learning_rate=0.2,
                                   exploration=EpsilonGreedy(0.2), seed=5)
        drive(agent, 30_000)
        assert agent.greedy_action(0, [0, 1]) == 1

    def test_requires_epsilon_greedy(self):
        with pytest.raises(TypeError, match="EpsilonGreedy"):
            ExpectedSarsaAgent(2, 2, exploration=Boltzmann(1.0))

    def test_expectation_formula(self):
        agent = ExpectedSarsaAgent(1, 2, discount=1.0 - 1e-9,
                                   exploration=EpsilonGreedy(0.5), seed=0)
        agent.table.set(0, 0, 0.0)
        agent.table.set(0, 1, 4.0)
        # E = 0.5 * max + 0.5 * mean = 0.5*4 + 0.5*2 = 3
        assert agent._bootstrap(0, [0, 1]) == pytest.approx(3.0)
