"""Observation map tests."""

import pytest

from repro.env import FullObservation, QueueBucketObservation


class TestFullObservation:
    def test_identity(self, small_env):
        obs = FullObservation(small_env)
        assert obs.n_observations == small_env.n_states
        for state in range(small_env.n_states):
            assert obs.observe(state) == state

    def test_label_passthrough(self, small_env):
        obs = FullObservation(small_env)
        assert obs.label(0) == small_env.state_label(0)

    def test_out_of_range(self, small_env):
        with pytest.raises(ValueError):
            FullObservation(small_env).observe(small_env.n_states)


class TestQueueBucketObservation:
    def test_smaller_space(self, small_env):
        obs = QueueBucketObservation(small_env, boundaries=(1, 3))
        assert obs.n_observations < small_env.n_states
        # 4 mode groups (3 steady + 1 collapsed transition) x 3 buckets
        assert obs.n_observations == 4 * 3

    def test_bucket_assignment(self, small_env):
        obs = QueueBucketObservation(small_env, boundaries=(1, 3))
        active = small_env.mode_space.steady_mode_index("active")
        zero = obs.observe(small_env.encode(active, 0))
        one = obs.observe(small_env.encode(active, 1))
        two = obs.observe(small_env.encode(active, 2))
        four = obs.observe(small_env.encode(active, 4))
        assert zero != one
        assert one == two        # both in bucket [1, 3)
        assert two != four       # bucket [3, cap]

    def test_countdown_modes_collapse(self, small_env):
        obs = QueueBucketObservation(small_env, boundaries=(1,))
        trans = [
            i for i, m in enumerate(small_env.mode_space.modes)
            if m.kind == "trans"
        ]
        assert len(trans) == 2
        a = obs.observe(small_env.encode(trans[0], 0))
        b = obs.observe(small_env.encode(trans[1], 0))
        assert a == b

    def test_labels_describe_ranges(self, small_env):
        obs = QueueBucketObservation(small_env, boundaries=(1, 3))
        labels = [obs.label(i) for i in range(obs.n_observations)]
        assert any("q=0..0" in lab for lab in labels)
        assert any("q=3..4" in lab for lab in labels)

    def test_validation(self, small_env):
        with pytest.raises(ValueError, match="strictly increasing"):
            QueueBucketObservation(small_env, boundaries=(3, 1))
        with pytest.raises(ValueError, match="strictly increasing"):
            QueueBucketObservation(small_env, boundaries=(2, 2))
        with pytest.raises(ValueError):
            QueueBucketObservation(small_env, boundaries=(0,))
        with pytest.raises(ValueError):
            QueueBucketObservation(small_env, boundaries=(99,))

    def test_every_state_maps_inside_range(self, small_env):
        obs = QueueBucketObservation(small_env, boundaries=(2,))
        seen = {obs.observe(s) for s in range(small_env.n_states)}
        assert max(seen) < obs.n_observations
        assert min(seen) >= 0
