"""Exploration strategy tests."""

import numpy as np
import pytest

from repro.core import (
    Boltzmann,
    Constant,
    EpsilonGreedy,
    FixedDrawEpsilonGreedy,
    Greedy,
    LinearDecay,
    QTable,
)


@pytest.fixture
def table():
    t = QTable(1, 4)
    t.set(0, 2, 10.0)  # clear greedy winner
    return t


class TestGreedy:
    def test_picks_best(self, table, rng):
        assert Greedy().select(table, 0, [0, 1, 2, 3], 0, rng) == 2

    def test_respects_mask(self, table, rng):
        # action 2 (the global best) is masked; ties break among the rest
        picks = {Greedy().select(table, 0, [0, 1, 3], 0, rng) for _ in range(30)}
        assert picks <= {0, 1, 3}


class TestEpsilonGreedy:
    def test_zero_epsilon_is_greedy(self, table, rng):
        strat = EpsilonGreedy(0.0)
        assert all(
            strat.select(table, 0, [0, 1, 2, 3], i, rng) == 2 for i in range(50)
        )

    def test_one_epsilon_is_uniform(self, table, rng):
        strat = EpsilonGreedy(1.0)
        picks = [strat.select(table, 0, [0, 1, 2, 3], i, rng) for i in range(2000)]
        counts = np.bincount(picks, minlength=4)
        assert (counts > 400).all()  # near 500 each

    def test_intermediate_epsilon_rate(self, table, rng):
        strat = EpsilonGreedy(0.4)
        picks = [strat.select(table, 0, [0, 1, 2, 3], i, rng) for i in range(4000)]
        greedy_frac = np.mean([p == 2 for p in picks])
        assert greedy_frac == pytest.approx(1 - 0.4 + 0.4 / 4, abs=0.04)

    def test_only_allowed_actions(self, table, rng):
        strat = EpsilonGreedy(1.0)
        picks = {strat.select(table, 0, [1, 3], i, rng) for i in range(100)}
        assert picks <= {1, 3}

    def test_empty_allowed_raises(self, table, rng):
        with pytest.raises(ValueError):
            EpsilonGreedy(0.5).select(table, 0, [], 0, rng)

    def test_scheduled_epsilon(self, table, rng):
        strat = EpsilonGreedy(LinearDecay(1.0, 0.0, steps=10))
        assert strat.epsilon_at(0) == 1.0
        assert strat.epsilon_at(10) == 0.0
        # at step >= 10, pure greedy
        assert all(
            strat.select(table, 0, [0, 1, 2, 3], 20, rng) == 2 for _ in range(20)
        )


class TestFixedDrawEpsilonGreedy:
    def test_consumes_exactly_three_uniforms_per_call(self, table):
        strat = FixedDrawEpsilonGreedy(0.3)
        rng = np.random.default_rng(0)
        twin = np.random.default_rng(0)
        for step in range(50):
            strat.select(table, 0, [0, 1, 2, 3], step, rng)
            twin.random(3)
            assert rng.bit_generator.state == twin.bit_generator.state

    def test_zero_epsilon_is_greedy_and_still_draws(self, table):
        strat = FixedDrawEpsilonGreedy(0.0)
        rng = np.random.default_rng(1)
        twin = np.random.default_rng(1)
        assert all(
            strat.select(table, 0, [0, 1, 2, 3], i, rng) == 2 for i in range(50)
        )
        twin.random(3 * 50)
        assert rng.bit_generator.state == twin.bit_generator.state

    def test_matches_epsilon_greedy_distribution(self, table):
        strat = FixedDrawEpsilonGreedy(0.4)
        rng = np.random.default_rng(2)
        picks = [strat.select(table, 0, [0, 1, 2, 3], i, rng) for i in range(4000)]
        greedy_frac = np.mean([p == 2 for p in picks])
        assert greedy_frac == pytest.approx(1 - 0.4 + 0.4 / 4, abs=0.04)

    def test_uniform_tie_breaking(self):
        ties = QTable(1, 3)  # all zeros: every action ties
        strat = FixedDrawEpsilonGreedy(0.0)
        rng = np.random.default_rng(3)
        picks = [strat.select(ties, 0, [0, 1, 2], i, rng) for i in range(3000)]
        counts = np.bincount(picks, minlength=3)
        assert (counts > 800).all()  # near 1000 each

    def test_only_allowed_actions(self, table):
        strat = FixedDrawEpsilonGreedy(1.0)
        rng = np.random.default_rng(4)
        picks = {strat.select(table, 0, [1, 3], i, rng) for i in range(100)}
        assert picks <= {1, 3}

    def test_empty_allowed_raises(self, table, rng):
        with pytest.raises(ValueError):
            FixedDrawEpsilonGreedy(0.5).select(table, 0, [], 0, rng)


class TestBoltzmann:
    def test_low_temperature_is_greedy(self, table, rng):
        strat = Boltzmann(0.01)
        picks = [strat.select(table, 0, [0, 1, 2, 3], i, rng) for i in range(100)]
        assert all(p == 2 for p in picks)

    def test_high_temperature_is_nearly_uniform(self, table, rng):
        strat = Boltzmann(1e6)
        picks = [strat.select(table, 0, [0, 1, 2, 3], i, rng) for i in range(2000)]
        counts = np.bincount(picks, minlength=4)
        assert (counts > 350).all()

    def test_zero_temperature_greedy_fallback(self, table, rng):
        assert Boltzmann(Constant(0.0)).select(table, 0, [0, 1, 2, 3], 0, rng) == 2

    def test_preference_ordering(self, rng):
        t = QTable(1, 3)
        t.set(0, 0, 0.0)
        t.set(0, 1, 1.0)
        t.set(0, 2, 2.0)
        strat = Boltzmann(1.0)
        picks = [strat.select(t, 0, [0, 1, 2], i, rng) for i in range(3000)]
        counts = np.bincount(picks, minlength=3)
        assert counts[0] < counts[1] < counts[2]

    def test_empty_allowed_raises(self, table, rng):
        with pytest.raises(ValueError):
            Boltzmann(1.0).select(table, 0, [], 0, rng)
