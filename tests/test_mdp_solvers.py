"""Exact MDP solver tests: closed forms, cross-solver agreement, masks."""

import numpy as np
import pytest

from repro.mdp import (
    DeterministicPolicy,
    FiniteMDP,
    linear_programming,
    policy_iteration,
    q_from_values,
    random_mdp,
    value_iteration,
)

SOLVERS = [value_iteration, policy_iteration, linear_programming]


def two_arm_bandit_chain():
    """One state, two actions with rewards 1 and 2: V* = 2 / (1 - b)."""
    transition = np.ones((1, 2, 1))
    reward = np.array([[1.0, 2.0]])
    allowed = np.ones((1, 2), dtype=bool)
    return FiniteMDP(transition, reward, allowed)


@pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
class TestClosedForms:
    def test_single_state_geometric_sum(self, solver):
        mdp = two_arm_bandit_chain()
        result = solver(mdp, discount=0.9)
        assert result.values[0] == pytest.approx(2.0 / 0.1, rel=1e-5)
        assert result.policy(0) == 1

    def test_two_state_deterministic(self, solver):
        # state 0: action 0 stays (r=0), action 1 goes to 1 (r=0);
        # state 1: absorbing with r=1. Optimal: go then stay.
        transition = np.zeros((2, 2, 2))
        transition[0, 0, 0] = 1.0
        transition[0, 1, 1] = 1.0
        transition[1, 0, 1] = 1.0
        transition[1, 1, 1] = 1.0
        reward = np.array([[0.0, 0.0], [1.0, 1.0]])
        mdp = FiniteMDP(transition, reward, np.ones((2, 2), bool))
        result = solver(mdp, discount=0.5)
        # V(1) = 1/(1-0.5) = 2 ; V(0) = 0 + 0.5 * 2 = 1
        assert result.values == pytest.approx([1.0, 2.0], rel=1e-5)
        assert result.policy(0) == 1

    def test_discount_validation(self, solver):
        with pytest.raises(ValueError, match="discount"):
            solver(two_arm_bandit_chain(), discount=1.0)

    def test_respects_action_mask(self, solver):
        transition = np.zeros((1, 2, 1))
        transition[0, 0, 0] = 1.0
        reward = np.array([[1.0, 100.0]])
        allowed = np.array([[True, False]])  # the juicy action is illegal
        mdp = FiniteMDP(transition, reward, allowed)
        result = solver(mdp, discount=0.5)
        assert result.policy(0) == 0
        assert result.values[0] == pytest.approx(2.0, rel=1e-5)


class TestCrossSolverAgreement:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_random_mdps(self, seed):
        rng = np.random.default_rng(seed)
        mdp = random_mdp(12, 4, rng, sparsity=0.3)
        results = [solver(mdp, discount=0.9) for solver in SOLVERS]
        for other in results[1:]:
            assert np.allclose(results[0].values, other.values, atol=1e-4)
        # all optimal policies achieve the optimal value (ties allowed)
        for res in results:
            q = q_from_values(mdp, results[0].values, 0.9)
            chosen = q[np.arange(mdp.n_states), res.policy.actions]
            assert np.allclose(chosen, results[0].values, atol=1e-4)

    def test_larger_instance(self):
        rng = np.random.default_rng(99)
        mdp = random_mdp(60, 5, rng)
        vi = value_iteration(mdp, 0.95)
        pi = policy_iteration(mdp, 0.95)
        assert np.allclose(vi.values, pi.values, atol=1e-4)


class TestValueIterationDetails:
    def test_residual_below_tolerance(self):
        mdp = two_arm_bandit_chain()
        result = value_iteration(mdp, 0.9, tol=1e-10)
        assert result.residual < 1e-10

    def test_nonconvergence_raises(self):
        mdp = two_arm_bandit_chain()
        with pytest.raises(RuntimeError, match="did not converge"):
            value_iteration(mdp, 0.99, tol=1e-12, max_iter=3)

    def test_q_from_values_masks_disallowed(self):
        transition = np.zeros((1, 2, 1))
        transition[0, 0, 0] = 1.0
        mdp = FiniteMDP(
            transition, np.zeros((1, 2)), np.array([[True, False]])
        )
        q = q_from_values(mdp, np.zeros(1), 0.9)
        assert q[0, 1] == -np.inf

    def test_q_from_values_shape_check(self):
        with pytest.raises(ValueError):
            q_from_values(two_arm_bandit_chain(), np.zeros(3), 0.9)


class TestPolicyContainer:
    def test_validates_against_mdp(self):
        mdp = two_arm_bandit_chain()
        with pytest.raises(ValueError, match="covers"):
            DeterministicPolicy(np.array([0, 1]), mdp=mdp)

    def test_rejects_disallowed_action(self):
        transition = np.zeros((1, 2, 1))
        transition[0, 0, 0] = 1.0
        mdp = FiniteMDP(transition, np.zeros((1, 2)), np.array([[True, False]]))
        with pytest.raises(ValueError, match="disallowed"):
            DeterministicPolicy(np.array([1]), mdp=mdp)

    def test_agreement(self):
        a = DeterministicPolicy(np.array([0, 1, 0]))
        b = DeterministicPolicy(np.array([0, 1, 1]))
        assert a.agreement(b) == pytest.approx(2 / 3)

    def test_agreement_length_mismatch(self):
        with pytest.raises(ValueError):
            DeterministicPolicy(np.array([0])).agreement(
                DeterministicPolicy(np.array([0, 1]))
            )

    def test_equality_and_hash(self):
        a = DeterministicPolicy(np.array([0, 1]))
        b = DeterministicPolicy(np.array([0, 1]))
        assert a == b
        assert hash(a) == hash(b)

    def test_callable(self):
        assert DeterministicPolicy(np.array([3]))(0) == 3
