"""Fuzzy Q-DPM and noisy observation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.extensions import (
    FuzzyQLearningAgent,
    NoisyQueueObservation,
    triangular_membership,
)
from repro.workload import ConstantRate


def make_env(seed=0):
    return SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=4, p_serve=0.9, seed=seed,
    )


class TestMembership:
    def test_interior_point(self):
        members = dict(triangular_membership(2, capacity=4, spread=0.5))
        assert set(members) == {1, 2, 3}
        assert members[2] == pytest.approx(0.5)
        assert members[1] == members[3] == pytest.approx(0.25)

    def test_boundaries_clip(self):
        low = dict(triangular_membership(0, capacity=4, spread=0.5))
        high = dict(triangular_membership(4, capacity=4, spread=0.5))
        assert set(low) == {0, 1}
        assert set(high) == {3, 4}

    def test_zero_spread_is_crisp(self):
        assert triangular_membership(2, 4, spread=0.0) == [(2, 1.0)]

    def test_invalid_spread(self):
        with pytest.raises(ValueError):
            triangular_membership(2, 4, spread=1.5)

    @given(
        queue=st.integers(min_value=0, max_value=8),
        spread=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=60, deadline=None)
    def test_weights_normalized(self, queue, spread):
        members = triangular_membership(queue, capacity=8, spread=spread)
        assert sum(w for _, w in members) == pytest.approx(1.0)
        assert all(0 <= q <= 8 for q, _ in members)


class TestNoisyObservation:
    def test_noise_zero_is_identity(self):
        env = make_env()
        obs = NoisyQueueObservation(env, noise=0.0, seed=1)
        assert all(obs.observe(s) == s for s in range(env.n_states))

    def test_noise_perturbs_queue_only(self):
        env = make_env()
        obs = NoisyQueueObservation(env, noise=1.0, seed=2)
        state = env.encode(env.mode_space.steady_mode_index("active"), 2)
        seen_modes = set()
        seen_queues = set()
        for _ in range(50):
            mode, queue = env.decode(obs.observe(state))
            seen_modes.add(mode.label)
            seen_queues.add(queue)
        assert seen_modes == {"active"}
        assert seen_queues == {1, 3}

    def test_queue_stays_in_range(self):
        env = make_env()
        obs = NoisyQueueObservation(env, noise=1.0, seed=3)
        edge = env.encode(env.mode_space.steady_mode_index("active"), 0)
        for _ in range(30):
            _, queue = env.decode(obs.observe(edge))
            assert 0 <= queue <= env.queue_capacity

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            NoisyQueueObservation(make_env(), noise=1.5)


class TestFuzzyAgent:
    def test_runs_inside_controller(self):
        env = make_env(seed=4)
        agent = FuzzyQLearningAgent(env, spread=0.5, discount=0.95,
                                    learning_rate=0.2, seed=5)
        ctrl = QDPM(env, agent=agent,
                    observation=NoisyQueueObservation(env, 0.3, seed=6))
        hist = ctrl.run(10_000, record_every=2_000)
        assert len(hist) == 5

    def test_update_spreads_over_members(self):
        env = make_env()
        agent = FuzzyQLearningAgent(env, spread=0.5, learning_rate=0.5, seed=0)
        state = env.encode(env.mode_space.steady_mode_index("active"), 2)
        neighbor = env.encode(env.mode_space.steady_mode_index("active"), 1)
        agent.update(state, 0, reward=-1.0, next_observation=state,
                     next_allowed=[0])
        assert agent.table.get(state, 0) != 0.0
        assert agent.table.get(neighbor, 0) != 0.0

    def test_crisp_spread_touches_single_cell(self):
        env = make_env()
        agent = FuzzyQLearningAgent(env, spread=0.0, learning_rate=0.5, seed=0)
        state = env.encode(env.mode_space.steady_mode_index("active"), 2)
        neighbor = env.encode(env.mode_space.steady_mode_index("active"), 1)
        agent.update(state, 0, -1.0, state, [0])
        assert agent.table.get(state, 0) != 0.0
        assert agent.table.get(neighbor, 0) == 0.0

    def test_fuzzy_learns_a_working_policy_under_noise(self):
        """Integration: under heavy observation noise the fuzzy agent still
        learns a policy far better than chance (close to the crisp agent).

        Note: the EXT-FUZZY benchmark records the full crisp-vs-fuzzy
        comparison; in this environment fuzzy spreading does NOT beat crisp
        Q-learning (a negative finding on the paper's future-work
        hypothesis — sampling already averages the noise), so this test
        asserts competence, not superiority.
        """
        def run(spread, seed):
            env = make_env(seed=seed)
            agent = FuzzyQLearningAgent(
                env, spread=spread, discount=0.95, learning_rate=0.15, seed=seed,
            )
            ctrl = QDPM(env, agent=agent,
                        observation=NoisyQueueObservation(env, 0.5, seed=seed))
            hist = ctrl.run(60_000, record_every=10_000)
            return float(hist.reward[-3:].mean())

        crisp = np.mean([run(0.0, s) for s in (10, 11)])
        fuzzy = np.mean([run(0.5, s) for s in (10, 11)])
        # within 40% of the crisp payoff (both negative), far from the
        # sleep-forever floor of about -2.5
        assert fuzzy >= crisp * 1.4
        assert fuzzy > -1.6
