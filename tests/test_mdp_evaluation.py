"""Policy evaluation: discounted values and long-run averages."""

import numpy as np
import pytest

from repro.mdp import (
    DeterministicPolicy,
    FiniteMDP,
    average_reward,
    induced_chain,
    induced_reward,
    long_run_state_average,
    policy_evaluation,
    policy_occupancy,
    random_mdp,
)


def cycle_mdp():
    """Two states, one action, deterministic cycle with rewards 1 and 3."""
    transition = np.zeros((2, 1, 2))
    transition[0, 0, 1] = 1.0
    transition[1, 0, 0] = 1.0
    reward = np.array([[1.0], [3.0]])
    return FiniteMDP(transition, reward, np.ones((2, 1), bool))


class TestPolicyEvaluation:
    def test_cycle_closed_form(self):
        mdp = cycle_mdp()
        policy = DeterministicPolicy(np.array([0, 0]), mdp=mdp)
        values = policy_evaluation(mdp, policy, discount=0.5)
        # V0 = 1 + 0.5 V1 ; V1 = 3 + 0.5 V0  =>  V0 = 10/3, V1 = 14/3
        assert values == pytest.approx([10 / 3, 14 / 3])

    def test_satisfies_bellman_on_random_mdp(self, rng):
        mdp = random_mdp(8, 3, rng)
        policy = DeterministicPolicy(np.argmax(mdp.allowed, axis=1), mdp=mdp)
        values = policy_evaluation(mdp, policy, 0.9)
        expected = induced_reward(mdp, policy) + 0.9 * (
            induced_chain(mdp, policy) @ values
        )
        assert np.allclose(values, expected)

    def test_discount_validation(self):
        mdp = cycle_mdp()
        policy = DeterministicPolicy(np.array([0, 0]), mdp=mdp)
        with pytest.raises(ValueError):
            policy_evaluation(mdp, policy, 1.0)


class TestAverages:
    def test_cycle_average_reward(self):
        mdp = cycle_mdp()
        policy = DeterministicPolicy(np.array([0, 0]), mdp=mdp)
        assert average_reward(mdp, policy) == pytest.approx(2.0)

    def test_occupancy_sums_to_one(self, rng):
        mdp = random_mdp(10, 3, rng)
        policy = DeterministicPolicy(np.argmax(mdp.allowed, axis=1), mdp=mdp)
        occ = policy_occupancy(mdp, policy)
        assert occ.sum() == pytest.approx(1.0)
        assert np.all(occ >= -1e-12)

    def test_long_run_state_average(self):
        mdp = cycle_mdp()
        policy = DeterministicPolicy(np.array([0, 0]), mdp=mdp)
        per_pair = np.array([[10.0], [20.0]])
        assert long_run_state_average(mdp, policy, per_pair) == pytest.approx(15.0)

    def test_long_run_shape_check(self):
        mdp = cycle_mdp()
        policy = DeterministicPolicy(np.array([0, 0]), mdp=mdp)
        with pytest.raises(ValueError):
            long_run_state_average(mdp, policy, np.zeros((3, 1)))

    def test_average_reward_matches_discounted_limit(self, rng):
        """(1 - b) * V_b -> average reward as b -> 1 (unichain)."""
        mdp = random_mdp(6, 2, rng)
        policy = DeterministicPolicy(np.argmax(mdp.allowed, axis=1), mdp=mdp)
        avg = average_reward(mdp, policy)
        values = policy_evaluation(mdp, policy, 0.99999)
        assert (1 - 0.99999) * values.mean() == pytest.approx(avg, abs=1e-3)
