"""Trace container tests, including property-based CSV round trips."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import Trace


class TestConstruction:
    def test_basic(self):
        trace = Trace([1.0, 2.0, 5.0])
        assert len(trace) == 3
        assert trace.duration == 5.0

    def test_explicit_duration(self):
        assert Trace([1.0], duration=10.0).duration == 10.0

    def test_empty_trace(self):
        trace = Trace([], duration=4.0)
        assert len(trace) == 0
        assert trace.duration == 4.0

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            Trace([2.0, 1.0])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Trace([-1.0, 2.0])

    def test_duration_before_last_arrival_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Trace([5.0], duration=3.0)

    def test_demand_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="service_demands"):
            Trace([1.0, 2.0], service_demands=[0.5])

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            Trace([1.0], service_demands=[-0.5])

    def test_iteration(self):
        assert list(Trace([1.0, 2.0])) == [1.0, 2.0]


class TestDerived:
    def test_interarrivals_from_zero(self):
        gaps = Trace([1.0, 3.0, 6.0]).interarrivals()
        assert gaps.tolist() == [1.0, 2.0, 3.0]

    def test_interarrivals_empty(self):
        assert Trace([], duration=1.0).interarrivals().size == 0

    def test_idle_periods_zero_service(self):
        idle = Trace([1.0, 3.0], duration=5.0).idle_periods(0.0)
        assert idle.tolist() == [1.0, 2.0, 2.0]

    def test_idle_periods_with_service(self):
        idle = Trace([1.0, 3.0], duration=5.0).idle_periods(0.5)
        assert idle.tolist() == pytest.approx([1.0, 1.5, 1.5])

    def test_idle_periods_back_to_back_clipped(self):
        # second request arrives before first finishes -> zero idle
        idle = Trace([1.0, 1.2], duration=5.0).idle_periods(0.5)
        assert idle[1] == 0.0

    def test_idle_periods_empty_trace(self):
        assert Trace([], duration=3.0).idle_periods().tolist() == [3.0]

    def test_idle_periods_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Trace([1.0]).idle_periods(-0.1)

    def test_stats_poisson_cv_near_one(self, rng):
        times = np.cumsum(rng.exponential(1.0, size=20_000))
        stats = Trace(times).stats()
        assert stats.cv_interarrival == pytest.approx(1.0, abs=0.05)
        assert stats.arrival_rate == pytest.approx(1.0, rel=0.05)

    def test_stats_empty(self):
        stats = Trace([], duration=2.0).stats()
        assert stats.n_requests == 0
        assert stats.arrival_rate == 0.0


class TestManipulation:
    def test_slice_rebased(self):
        sub = Trace([1.0, 3.0, 6.0], duration=8.0).slice(2.0, 7.0)
        assert sub.arrival_times.tolist() == [1.0, 4.0]
        assert sub.duration == 5.0

    def test_slice_bad_range(self):
        with pytest.raises(ValueError):
            Trace([1.0], duration=2.0).slice(1.5, 0.5)

    def test_concat_shifts(self):
        a = Trace([1.0], duration=2.0)
        b = Trace([0.5], duration=1.0)
        joined = a.concat(b)
        assert joined.arrival_times.tolist() == [1.0, 2.5]
        assert joined.duration == 3.0

    def test_concat_preserves_demands(self):
        a = Trace([1.0], duration=2.0, service_demands=[0.3])
        b = Trace([0.5], duration=1.0)
        joined = a.concat(b)
        assert joined.service_demands.tolist() == [0.3, 0.0]

    def test_merge_sorts(self):
        merged = Trace.merge(
            [Trace([1.0, 4.0], duration=5.0), Trace([2.0], duration=3.0)]
        )
        assert merged.arrival_times.tolist() == [1.0, 2.0, 4.0]
        assert merged.duration == 5.0


class TestSerialization:
    def test_roundtrip_with_demands(self):
        trace = Trace([0.5, 1.5], duration=3.0, service_demands=[0.1, 0.2])
        clone = Trace.from_csv(trace.to_csv())
        assert clone.arrival_times.tolist() == [0.5, 1.5]
        assert clone.service_demands.tolist() == [0.1, 0.2]
        assert clone.duration == 3.0

    def test_roundtrip_without_demands(self):
        trace = Trace([0.5, 1.5], duration=3.0)
        clone = Trace.from_csv(trace.to_csv())
        assert clone.service_demands is None

    def test_save_load(self, tmp_path):
        path = tmp_path / "trace.csv"
        trace = Trace([1.0, 2.0], duration=4.0)
        trace.save(str(path))
        assert Trace.load(str(path)).arrival_times.tolist() == [1.0, 2.0]

    @given(
        times=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_csv_roundtrip_property(self, times):
        trace = Trace(sorted(times))
        clone = Trace.from_csv(trace.to_csv())
        assert np.allclose(clone.arrival_times, trace.arrival_times)
        assert clone.duration == pytest.approx(trace.duration)
