"""Inter-arrival distribution tests: correctness of means, bounds, errors."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    DISTRIBUTIONS,
    Deterministic,
    Exponential,
    HyperExponential,
    Pareto,
    Uniform,
    Weibull,
    from_dict,
)

ALL_DISTS = [
    Exponential(0.5),
    Deterministic(2.0),
    Uniform(0.5, 1.5),
    Pareto(2.5, 1.0),
    HyperExponential([5.0, 0.2], [0.7, 0.3]),
    Weibull(0.7, 1.0),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: d.kind)
class TestCommonBehaviour:
    def test_samples_positive(self, dist, rng):
        samples = dist.sample(rng, 1000)
        assert samples.shape == (1000,)
        assert np.all(samples >= 0)

    def test_empirical_mean_matches(self, dist, rng):
        if math.isinf(dist.mean()):
            pytest.skip("infinite mean")
        samples = dist.sample(rng, 60_000)
        # Pareto/Weibull tails need loose tolerance
        assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.12)

    def test_rate_is_inverse_mean(self, dist):
        if math.isinf(dist.mean()):
            assert dist.rate() == 0.0
        else:
            assert dist.rate() == pytest.approx(1.0 / dist.mean())

    def test_dict_roundtrip(self, dist):
        clone = from_dict(dist.to_dict())
        assert type(clone) is type(dist)
        assert clone.params() == dist.params()

    def test_repr_contains_params(self, dist):
        text = repr(dist)
        assert type(dist).__name__ in text


class TestExponential:
    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    @given(rate=st.floats(min_value=0.01, max_value=100))
    @settings(max_examples=25, deadline=None)
    def test_mean_formula(self, rate):
        assert Exponential(rate).mean() == pytest.approx(1.0 / rate)


class TestDeterministic:
    def test_exact_samples(self, rng):
        assert np.all(Deterministic(3.0).sample(rng, 10) == 3.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestUniform:
    def test_bounds_respected(self, rng):
        samples = Uniform(1.0, 2.0).sample(rng, 1000)
        assert samples.min() >= 1.0
        assert samples.max() <= 2.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Uniform(2.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(-1.0, 1.0)
        with pytest.raises(ValueError):
            Uniform(0.0, 0.0)


class TestPareto:
    def test_infinite_mean_below_alpha_one(self):
        assert math.isinf(Pareto(0.9, 1.0).mean())
        assert Pareto(0.9, 1.0).rate() == 0.0

    def test_finite_mean_formula(self):
        assert Pareto(3.0, 2.0).mean() == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Pareto(0.0, 1.0)
        with pytest.raises(ValueError):
            Pareto(1.0, 0.0)

    def test_heavy_tail_has_large_quantiles(self, rng):
        samples = Pareto(1.2, 1.0).sample(rng, 50_000)
        assert np.percentile(samples, 99.5) > 20 * np.median(samples)


class TestHyperExponential:
    def test_mean_is_mixture(self):
        he = HyperExponential([2.0, 0.5], [0.5, 0.5])
        assert he.mean() == pytest.approx(0.5 / 2.0 + 0.5 / 0.5)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HyperExponential([1.0], [0.5, 0.5])

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            HyperExponential([1.0, 2.0], [0.5, 0.6])

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            HyperExponential([-1.0, 2.0], [0.5, 0.5])


class TestWeibull:
    def test_shape_one_equals_exponential_mean(self):
        assert Weibull(1.0, 2.0).mean() == pytest.approx(2.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


def test_registry_covers_all_kinds():
    assert set(DISTRIBUTIONS) == {
        "exponential", "deterministic", "uniform", "pareto",
        "hyperexponential", "weibull",
    }


def test_from_dict_unknown_kind():
    with pytest.raises(KeyError, match="unknown inter-arrival"):
        from_dict({"kind": "cauchy"})
