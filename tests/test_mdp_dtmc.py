"""Markov chain utilities, including reducible-chain occupancy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mdp import (
    is_stochastic,
    long_run_occupancy,
    occupancy_weighted,
    start_occupancy,
    stationary_distribution,
)


def two_state_chain(p, q):
    """Chain flipping 0->1 with prob p and 1->0 with prob q."""
    return np.array([[1 - p, p], [q, 1 - q]])


class TestIsStochastic:
    def test_accepts_valid(self):
        assert is_stochastic(two_state_chain(0.3, 0.7))

    def test_rejects_bad_row_sum(self):
        assert not is_stochastic(np.array([[0.5, 0.1], [0.5, 0.5]]))

    def test_rejects_negative(self):
        assert not is_stochastic(np.array([[1.2, -0.2], [0.5, 0.5]]))

    def test_rejects_non_square(self):
        assert not is_stochastic(np.ones((2, 3)) / 3)


class TestStationary:
    def test_two_state_closed_form(self):
        pi = stationary_distribution(two_state_chain(0.2, 0.6))
        assert pi == pytest.approx([0.6 / 0.8, 0.2 / 0.8])

    def test_identity_needs_unichain_but_returns_valid(self):
        # identity chain: every dist is stationary; lstsq returns one of them
        pi = stationary_distribution(np.eye(3))
        assert pi.sum() == pytest.approx(1.0)
        assert np.allclose(pi @ np.eye(3), pi)

    def test_periodic_chain(self):
        cycle = np.array([[0.0, 1.0], [1.0, 0.0]])
        pi = stationary_distribution(cycle)
        assert pi == pytest.approx([0.5, 0.5])

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            stationary_distribution(np.array([[0.5, 0.1], [0.5, 0.5]]))

    @given(
        p=st.floats(min_value=0.01, max_value=0.99),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariance_property(self, p, q):
        chain = two_state_chain(p, q)
        pi = stationary_distribution(chain)
        assert np.allclose(pi @ chain, pi, atol=1e-8)
        assert pi.sum() == pytest.approx(1.0)


class TestLongRunOccupancy:
    def test_matches_stationary_for_ergodic(self):
        chain = two_state_chain(0.3, 0.5)
        start = np.array([1.0, 0.0])
        occ = long_run_occupancy(chain, start)
        # Cesaro averaging converges O(1/k); modest tolerance
        assert occ == pytest.approx(stationary_distribution(chain), abs=1e-4)

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            long_run_occupancy(np.eye(2), np.array([0.5, 0.6]))


class TestStartOccupancy:
    def test_ergodic_matches_stationary(self):
        chain = two_state_chain(0.25, 0.4)
        occ = start_occupancy(chain, 0)
        assert occ == pytest.approx(stationary_distribution(chain), abs=1e-9)

    def test_absorbing_trap_from_good_start(self):
        """State 2 is absorbing but unreachable from state 0."""
        chain = np.array(
            [
                [0.5, 0.5, 0.0],
                [0.5, 0.5, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        occ = start_occupancy(chain, 0)
        assert occ == pytest.approx([0.5, 0.5, 0.0])

    def test_absorbing_trap_from_inside(self):
        chain = np.array(
            [
                [0.5, 0.5, 0.0],
                [0.5, 0.5, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        occ = start_occupancy(chain, 2)
        assert occ == pytest.approx([0.0, 0.0, 1.0])

    def test_transient_start_splits_between_classes(self):
        """From the transient state, 50/50 absorption into two traps."""
        chain = np.array(
            [
                [0.0, 0.5, 0.5],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        occ = start_occupancy(chain, 0)
        assert occ == pytest.approx([0.0, 0.5, 0.5])

    def test_weighted_absorption(self):
        chain = np.array(
            [
                [0.2, 0.6, 0.2],
                [0.0, 1.0, 0.0],
                [0.0, 0.0, 1.0],
            ]
        )
        occ = start_occupancy(chain, 0)
        # absorption odds 0.6 : 0.2 -> 0.75 / 0.25
        assert occ == pytest.approx([0.0, 0.75, 0.25])

    def test_two_state_recurrent_class(self):
        """The closed class itself can have several states."""
        chain = np.array(
            [
                [0.0, 1.0, 0.0],
                [0.0, 0.3, 0.7],
                [0.0, 0.6, 0.4],
            ]
        )
        occ = start_occupancy(chain, 0)
        expected = stationary_distribution(chain[1:, 1:])
        assert occ[0] == 0.0
        assert occ[1:] == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            start_occupancy(np.array([[0.5, 0.1], [0.5, 0.5]]), 0)
        with pytest.raises(ValueError):
            start_occupancy(np.eye(2), 5)


class TestOccupancyWeighted:
    def test_weighted_average(self):
        assert occupancy_weighted(
            np.array([0.25, 0.75]), np.array([4.0, 8.0])
        ) == pytest.approx(7.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            occupancy_weighted(np.array([1.0]), np.array([1.0, 2.0]))
