"""Event queue tests."""

import pytest

from repro.sim import ARRIVAL, SERVICE_DONE, TIMEOUT, TRANSITION_DONE, Event, EventQueue


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(Event(3.0, ARRIVAL))
        q.push(Event(1.0, ARRIVAL))
        q.push(Event(2.0, ARRIVAL))
        assert [q.pop().time for _ in range(3)] == [1.0, 2.0, 3.0]

    def test_kind_priority_at_equal_time(self):
        q = EventQueue()
        q.push(Event(1.0, TIMEOUT))
        q.push(Event(1.0, ARRIVAL))
        q.push(Event(1.0, TRANSITION_DONE))
        q.push(Event(1.0, SERVICE_DONE))
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == [ARRIVAL, SERVICE_DONE, TRANSITION_DONE, TIMEOUT]

    def test_fifo_among_identical(self):
        q = EventQueue()
        q.push(Event(1.0, ARRIVAL, "first"))
        q.push(Event(1.0, ARRIVAL, "second"))
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_empty_pop_returns_none(self):
        assert EventQueue().pop() is None


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        ticket = q.push(Event(1.0, TIMEOUT))
        q.push(Event(2.0, ARRIVAL))
        q.cancel(ticket)
        assert q.pop().kind == ARRIVAL

    def test_len_accounts_for_cancellations(self):
        q = EventQueue()
        ticket = q.push(Event(1.0, ARRIVAL))
        q.push(Event(2.0, ARRIVAL))
        assert len(q) == 2
        q.cancel(ticket)
        assert len(q) == 1

    def test_bool_after_all_cancelled(self):
        q = EventQueue()
        ticket = q.push(Event(1.0, ARRIVAL))
        q.cancel(ticket)
        assert not q


class TestPeek:
    def test_peek_time(self):
        q = EventQueue()
        q.push(Event(5.0, ARRIVAL))
        q.push(Event(2.0, TIMEOUT))
        assert q.peek_time() == 2.0
        assert len(q) == 2  # peek does not consume

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ticket = q.push(Event(1.0, ARRIVAL))
        q.push(Event(3.0, ARRIVAL))
        q.cancel(ticket)
        assert q.peek_time() == 3.0

    def test_peek_empty(self):
        assert EventQueue().peek_time() is None


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        EventQueue().push(Event(-1.0, ARRIVAL))
