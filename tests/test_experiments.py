"""Experiment harness tests (small configurations)."""

import dataclasses

import numpy as np
import pytest

from repro.experiments import (
    Fig1Config,
    Fig2Config,
    OverheadConfig,
    PolicyTableConfig,
    VariationConfig,
    run_fig1,
    run_fig2,
    run_overhead,
    run_policy_table,
    run_variation,
)


@pytest.fixture(scope="module")
def fig1_result():
    config = dataclasses.replace(
        Fig1Config(), n_slots=40_000, record_every=2_000
    )
    return run_fig1(config)


@pytest.fixture(scope="module")
def fig2_result():
    config = dataclasses.replace(
        Fig2Config(), segment_slots=10_000, record_every=500,
        mb_min_samples=500, mb_freeze_slots=800,
    )
    return run_fig2(config)


class TestFig1:
    def test_shapes_aligned(self, fig1_result):
        res = fig1_result
        n = len(res.slots)
        assert res.online_reward.shape == (n,)
        assert res.snapshot_reward.shape == (n,)
        assert res.snapshot_saving.shape == (n,)

    def test_optimal_is_upper_reference(self, fig1_result):
        res = fig1_result
        assert res.optimal_soft_reward <= res.optimal_reward + 1e-12
        # online payoff can never systematically beat the optimum
        assert res.online_reward.mean() <= res.optimal_reward + 0.02

    def test_learning_improves(self, fig1_result):
        res = fig1_result
        first = res.online_reward[:3].mean()
        last = res.online_reward[-3:].mean()
        assert last > first

    def test_converges_near_soft_optimum(self, fig1_result):
        res = fig1_result
        gap = res.optimal_soft_reward - res.online_reward[-5:].mean()
        assert gap < 0.15

    def test_render_mentions_key_facts(self, fig1_result):
        text = fig1_result.render()
        assert "Fig.1" in text
        assert "optimal payoff/slot" in text
        assert "convergence slot" in text


class TestFig2:
    def test_switch_points(self, fig2_result):
        assert fig2_result.switch_points == [10_000, 20_000, 30_000]

    def test_segment_optima_counts(self, fig2_result):
        assert len(fig2_result.segment_optimal_reward) == 4
        assert len(fig2_result.qdpm_responses) == 3
        assert len(fig2_result.mb_responses) == 3

    def test_curves_aligned(self, fig2_result):
        res = fig2_result
        assert res.qdpm_reward.shape == res.mb_reward.shape == res.slots.shape

    def test_mb_reoptimized_at_least_once_per_large_switch(self, fig2_result):
        assert fig2_result.mb_log.n_reoptimizations >= 2

    def test_render_contains_analysis(self, fig2_result):
        text = fig2_result.render()
        assert "Rapid Response" in text
        assert "per-switch response time" in text
        assert "re-optimizations" in text


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        config = dataclasses.replace(
            OverheadConfig(), queue_capacities=(4, 8), n_q_ops=2_000
        )
        return run_overhead(config)

    def test_rows_per_capacity(self, result):
        assert [r.queue_capacity for r in result.rows] == [4, 8]

    def test_lp_much_slower_than_q_step(self, result):
        for row in result.rows:
            assert row.lp_over_q > 50  # conservative floor; typically >500

    def test_model_memory_dominates_table(self, result):
        for row in result.rows:
            assert row.model_over_table > row.n_states / 2

    def test_states_grow_with_capacity(self, result):
        assert result.rows[1].n_states > result.rows[0].n_states

    def test_render_table(self, result):
        text = result.render()
        assert "CLAIM-EFF" in text
        assert "LP (ms)" in text


class TestVariation:
    @pytest.fixture(scope="class")
    def result(self):
        config = dataclasses.replace(
            VariationConfig(), amplitudes=(0.0, 0.10), n_slots=30_000,
            warmup_slots=30_000,
        )
        return run_variation(config)

    def test_rows(self, result):
        assert [r.amplitude for r in result.rows] == [0.0, 0.10]

    def test_frozen_near_qdpm_when_stationary(self, result):
        row0 = result.rows[0]
        # at zero drift the frozen policy is optimal; Q-DPM pays only the
        # exploration tax
        assert row0.frozen_reward >= row0.qdpm_reward - 0.15

    def test_qdpm_degrades_gracefully(self, result):
        """The tolerance claim, as it actually holds: Q-DPM's payoff drop
        under drift is small, and its gap to the frozen optimal stays a
        bounded tax instead of compounding."""
        stationary, drifting = result.rows
        qdpm_drop = stationary.qdpm_reward - drifting.qdpm_reward
        assert qdpm_drop < 0.15
        assert abs(drifting.reward_gap) < 0.2

    def test_render(self, result):
        assert "CLAIM-VAR" in result.render()


class TestPolicyTable:
    @pytest.fixture(scope="class")
    def result(self):
        config = dataclasses.replace(PolicyTableConfig(), duration=4_000.0)
        return run_policy_table(config)

    def test_grid_complete(self, result):
        assert len(result.rows) == 7 * 2  # 7 policies x 2 traces

    def test_always_on_is_saving_baseline(self, result):
        for row in result.rows:
            if row.policy == "always_on":
                assert row.saving_vs_always_on == pytest.approx(0.0, abs=1e-9)

    def test_oracle_never_wrong_and_best_saving(self, result):
        by_trace = {}
        for row in result.rows:
            by_trace.setdefault(row.trace, {})[row.policy] = row
        for rows in by_trace.values():
            oracle = rows["oracle"]
            assert oracle.n_wrong_shutdowns == 0
            for name, row in rows.items():
                assert oracle.saving_vs_always_on >= row.saving_vs_always_on - 1e-9

    def test_latency_energy_tradeoff_direction(self, result):
        for trace_rows in {r.trace for r in result.rows}:
            rows = {r.policy: r for r in result.rows if r.trace == trace_rows}
            assert rows["greedy"].mean_latency >= rows["always_on"].mean_latency

    def test_render(self, result):
        text = result.render()
        assert "EXT-POLICY" in text
        assert "oracle" in text
