"""Executor failure paths and sweep checkpoint/resume.

The resilience contract of :meth:`Executor.submit_all`: a chunk whose
worker raises is retried on the pool with capped-exponential backoff up
to ``max_retries`` times, then degrades to an in-process serial rerun;
a chunk that exceeds the per-chunk ``timeout`` (hung worker, or one
that died without reporting — ``os._exit``) reruns in-process
immediately; a chunk that fails even in-process surfaces
:class:`ChunkExecutionError` carrying the failing chunk's index/spec
and every completed result.  On top of that,
:func:`run_chunks_checkpointed` journals completed chunk results so an
interrupted sweep resumes without recomputation — bit-identically, for
every ``(chunk_size, n_jobs)``.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro.baselines import AlwaysOn, FixedTimeout
from repro.runtime import (
    RolloutSpec,
    SweepRunner,
    CheckpointJournal,
    CheckpointMismatchError,
    ChunkExecutionError,
    MultiprocessExecutor,
    PolicySpec,
    SerialExecutor,
    SimSweepRunner,
    SimSweepSpec,
    TraceSpec,
    run_chunks_checkpointed,
    run_sim_chunk,
    spec_hash,
)
from repro.runtime.executor import RETRY_BACKOFF_CAP, retry_backoff_seconds
from repro.workload import ConstantRate, Exponential

# --------------------------------------------------------------------- #
# module-level work functions (picklable by reference)
# --------------------------------------------------------------------- #


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"chunk for {x} always fails")


def _boom_if_negative(x):
    if x < 0:
        raise ValueError(f"bad input {x}")
    return x * x


def _fail_until(x, marker_path, n_failures):
    """Fails its first ``n_failures`` invocations (counted via a marker
    file shared across processes), then succeeds."""
    with open(marker_path, "ab") as fh:
        fh.write(b"x")
        fh.flush()
        os.fsync(fh.fileno())
    if os.path.getsize(marker_path) <= n_failures:
        raise RuntimeError(f"transient failure for {x}")
    return x * x


def _worker_only_failure(x, parent_pid):
    """Raises in pool workers, succeeds in the parent process — the
    shape that exercises the serial-degrade rung specifically."""
    if os.getpid() != parent_pid:
        raise RuntimeError("worker environment broken")
    return x * x


def _die_in_worker(x, parent_pid):
    """Kills the worker process without reporting back (the pool never
    sets the task's result); harmless in the parent."""
    if os.getpid() != parent_pid:
        os._exit(13)
    return x * x


def _hang_in_worker(x, parent_pid):
    if os.getpid() != parent_pid:
        import time

        time.sleep(60.0)
    return x * x


# --------------------------------------------------------------------- #
# backoff schedule
# --------------------------------------------------------------------- #


class TestRetryBackoff:
    def test_capped_exponential(self):
        delays = [retry_backoff_seconds(k, 0.5) for k in range(1, 7)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 8.0, 8.0]
        assert max(delays) == RETRY_BACKOFF_CAP

    def test_custom_cap(self):
        assert retry_backoff_seconds(10, 1.0, cap=2.5) == 2.5


# --------------------------------------------------------------------- #
# serial executor: retry then ChunkExecutionError
# --------------------------------------------------------------------- #


class TestSerialFailurePaths:
    def test_transient_failure_retried(self, tmp_path):
        marker = tmp_path / "attempts"
        pending = SerialExecutor().submit_all(
            _fail_until, [(3, str(marker), 1)],
            max_retries=2, retry_backoff=0.001,
        )
        assert pending.get() == [9]
        retries = [e for e in pending.events if e["action"] == "retry"]
        assert len(retries) == 1
        assert retries[0]["chunk"] == 0

    def test_exhausted_retries_raise_with_completed_results(self):
        with pytest.raises(ChunkExecutionError) as err:
            SerialExecutor().submit_all(
                _boom_if_negative, [(2,), (-1,), (4,)], max_retries=1,
                retry_backoff=0.001,
            )
        exc = err.value
        assert exc.chunk_index == 1
        assert exc.task == (-1,)
        assert exc.completed == {0: 4}
        assert isinstance(exc.__cause__, ValueError)
        assert [e["action"] for e in exc.events] == ["retry"]

    def test_zero_retries_fail_immediately(self):
        with pytest.raises(ChunkExecutionError) as err:
            SerialExecutor().submit_all(_boom, [(1,)])
        assert err.value.events == []


# --------------------------------------------------------------------- #
# pool executor: retry ladder, serial degrade, timeout rescue
# --------------------------------------------------------------------- #


class TestPoolFailurePaths:
    def test_transient_worker_failure_retried_on_pool(self, tmp_path):
        tasks = [
            (x, str(tmp_path / f"marker{x}"), 1) for x in (2, 3, 4)
        ]
        pending = MultiprocessExecutor(2).submit_all(
            _fail_until, tasks, max_retries=3, retry_backoff=0.001,
        )
        assert pending.get() == [4, 9, 16]
        assert all(e["action"] == "retry" for e in pending.events)
        assert {e["chunk"] for e in pending.events} == {0, 1, 2}

    def test_persistent_worker_failure_degrades_to_in_process(self):
        tasks = [(x, os.getpid()) for x in (2, 3, 4)]
        pending = MultiprocessExecutor(2).submit_all(
            _worker_only_failure, tasks, max_retries=1, retry_backoff=0.001,
        )
        assert pending.get() == [4, 9, 16]
        degrades = [e for e in pending.events if e["action"] == "serial_degrade"]
        retries = [e for e in pending.events if e["action"] == "retry"]
        assert {e["chunk"] for e in degrades} == {0, 1, 2}
        assert all(r["attempt"] == 1 for r in retries)

    def test_unrecoverable_chunk_raises_with_completed_results(self):
        pending = MultiprocessExecutor(2).submit_all(
            _boom_if_negative, [(2,), (-5,), (4,)], max_retries=0,
        )
        with pytest.raises(ChunkExecutionError) as err:
            pending.get()
        exc = err.value
        assert exc.chunk_index == 1
        assert exc.task == (-5,)
        assert exc.completed == {0: 4}
        assert "chunk 1 failed" in str(exc)

    def test_dead_worker_rescued_by_timeout(self):
        tasks = [(x, os.getpid()) for x in (2, 3, 4)]
        pending = MultiprocessExecutor(2).submit_all(
            _die_in_worker, tasks, timeout=1.0,
        )
        assert pending.get() == [4, 9, 16]
        assert {e["action"] for e in pending.events} == {"timeout"}

    def test_hung_worker_rescued_by_timeout(self):
        tasks = [(x, os.getpid()) for x in (2, 3)]
        pending = MultiprocessExecutor(2).submit_all(
            _hang_in_worker, tasks, timeout=1.0,
        )
        assert pending.get() == [4, 9]
        timeouts = [e for e in pending.events if e["action"] == "timeout"]
        assert timeouts and timeouts[0]["timeout_seconds"] == 1.0

    def test_healthy_tasks_record_no_events(self):
        pending = MultiprocessExecutor(2).submit_all(
            _square, [(x,) for x in range(4)], timeout=30.0, max_retries=2,
        )
        assert pending.get() == [0, 1, 4, 9]
        assert pending.events == []


# --------------------------------------------------------------------- #
# checkpoint journal + run_chunks_checkpointed
# --------------------------------------------------------------------- #


class TestCheckpointJournal:
    def test_round_trip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "ck.pkl", "spec-a")
        journal.append(0, [1, 2])
        journal.append(2, [3])
        assert journal.load() == {0: [1, 2], 2: [3]}

    def test_foreign_spec_records_skipped(self, tmp_path):
        path = tmp_path / "ck.pkl"
        CheckpointJournal(path, "spec-a").append(0, "a0")
        CheckpointJournal(path, "spec-b").append(0, "b0")
        assert CheckpointJournal(path, "spec-a").load() == {0: "a0"}
        assert CheckpointJournal(path, "spec-b").load() == {0: "b0"}

    def test_torn_tail_ignored(self, tmp_path):
        path = tmp_path / "ck.pkl"
        journal = CheckpointJournal(path, "spec-a")
        journal.append(0, "first")
        journal.append(1, "second")
        whole = path.read_bytes()
        path.write_bytes(whole[:-3])  # writer died mid-record
        assert journal.load() == {0: "first"}

    def test_missing_file_is_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "absent.pkl", "k").load() == {}

    def test_corrupt_record_body_skipped_with_warning(self, tmp_path):
        # bit rot inside a record's payload fails its CRC but leaves the
        # outer framing intact: the scan warns, skips it, and keeps the
        # records on both sides (a torn tail can only lose the last one)
        path = tmp_path / "ck.pkl"
        journal = CheckpointJournal(path, "spec-a")
        journal.append(0, "first")
        offset_before = path.stat().st_size
        journal.append(1, "second-" * 40)
        offset_after = path.stat().st_size
        journal.append(2, "third")
        raw = bytearray(path.read_bytes())
        mid = (offset_before + offset_after) // 2
        raw[mid] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            results, seen, n_corrupt = CheckpointJournal(path, "spec-a").scan()
        assert n_corrupt == 1
        assert results == {0: "first", 2: "third"}
        assert seen == {"spec-a"}

    def test_legacy_unframed_records_still_load(self, tmp_path):
        # journals written before the CRC framing hold the record dict
        # directly; they must keep loading unchanged
        path = tmp_path / "ck.pkl"
        with open(path, "ab") as fh:
            pickle.dump({"spec": "spec-a", "chunk": 0, "result": "old"},
                        fh, protocol=4)
        CheckpointJournal(path, "spec-a").append(1, "new")
        assert CheckpointJournal(path, "spec-a").load() == {0: "old", 1: "new"}

    def test_spec_hash_is_deterministic_and_sensitive(self):
        spec = SimSweepSpec(
            devices=("mobile_hdd",),
            traces=(TraceSpec("exp", Exponential(0.1), 100.0),),
            policies=(PolicySpec("on", AlwaysOn()),),
        )
        assert spec_hash(spec, 4) == spec_hash(spec, 4)
        assert spec_hash(spec, 4) != spec_hash(spec, 2)


class TestRunChunksCheckpointed:
    def test_failure_preserves_journal_then_resumes(self, tmp_path):
        ck = tmp_path / "ck.pkl"
        tasks = [(2,), (-1,), (4,)]
        with pytest.raises(ChunkExecutionError) as err:
            run_chunks_checkpointed(
                SerialExecutor(), _boom_if_negative, tasks, "k",
                checkpoint=ck,
            )
        # the error names the chunk in global task order, and the chunk
        # that completed before the failure is already journaled
        assert err.value.chunk_index == 1
        assert CheckpointJournal(ck, "k").load() == {0: 4}
        results, execution = run_chunks_checkpointed(
            SerialExecutor(), _square, [(2,), (1,), (4,)], "k",
            checkpoint=ck,
        )
        assert results == [4, 1, 16]
        assert execution["resumed_chunks"] == 1
        assert execution["computed_chunks"] == 2

    def test_error_index_remapped_to_task_order(self, tmp_path):
        ck = tmp_path / "ck.pkl"
        CheckpointJournal(ck, "k").append(0, 99)  # chunk 0 pre-done
        with pytest.raises(ChunkExecutionError) as err:
            run_chunks_checkpointed(
                SerialExecutor(), _boom_if_negative,
                [(2,), (3,), (-7,)], "k", checkpoint=ck,
            )
        assert err.value.chunk_index == 2
        assert err.value.task == (-7,)
        assert err.value.completed == {1: 9}

    def test_full_journal_skips_all_work(self, tmp_path):
        ck = tmp_path / "ck.pkl"
        results, _ = run_chunks_checkpointed(
            SerialExecutor(), _square, [(2,), (3,)], "k", checkpoint=ck,
        )
        rerun, execution = run_chunks_checkpointed(
            SerialExecutor(), _boom, [(2,), (3,)], "k", checkpoint=ck,
        )
        assert rerun == results
        assert execution["computed_chunks"] == 0

    def test_no_checkpoint_passthrough(self):
        results, execution = run_chunks_checkpointed(
            SerialExecutor(), _square, [(3,)], "k",
        )
        assert results == [9]
        assert "checkpoint" not in execution

    def test_pool_execution_journals_in_submission_order(self, tmp_path):
        ck = tmp_path / "ck.pkl"
        results, execution = run_chunks_checkpointed(
            MultiprocessExecutor(2), _square, [(x,) for x in range(5)],
            "k", checkpoint=ck,
        )
        assert results == [0, 1, 4, 9, 16]
        assert CheckpointJournal(ck, "k").load() == dict(
            enumerate([0, 1, 4, 9, 16])
        )
        assert execution["computed_chunks"] == 5


# --------------------------------------------------------------------- #
# sweep runners: checkpoint/resume bit-identity
# --------------------------------------------------------------------- #


def _sim_spec() -> SimSweepSpec:
    return SimSweepSpec(
        devices=("mobile_hdd",),
        traces=(TraceSpec("exp", Exponential(0.1), 300.0),),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("timeout", FixedTimeout()),
        ),
        n_traces=4,
        seed=7,
        seed_stride=13,
        service_time=0.3,
    )


class TestSimSweepCheckpointResume:
    @pytest.mark.parametrize("chunk_size,n_jobs", [(1, 1), (2, 1), (2, 2)])
    def test_interrupted_run_resumes_bit_identically(
        self, tmp_path, chunk_size, n_jobs
    ):
        spec = _sim_spec()
        reference = SimSweepRunner(chunk_size=chunk_size).run(spec)

        # simulate a run killed mid-sweep: journal only a prefix of the
        # chunk results (computed through the real worker fn), exactly
        # what an interrupted checkpointed run leaves behind
        seeds = spec.seeds()
        chunks = [
            seeds[i:i + chunk_size] for i in range(0, len(seeds), chunk_size)
        ]
        tasks = []
        for device in spec.devices:
            for trace_spec in spec.traces:
                for policy_spec in spec.policies:
                    for chunk in chunks:
                        tasks.append((device, policy_spec, trace_spec,
                                      spec.service_time, chunk))
        ck = tmp_path / "sweep.ck"
        journal = CheckpointJournal(ck, spec_hash(spec, chunk_size))
        n_prefix = len(tasks) // 2
        for i in range(n_prefix):
            journal.append(i, run_sim_chunk(*tasks[i]))

        runner = SimSweepRunner(
            chunk_size=chunk_size, n_jobs=n_jobs, checkpoint=str(ck)
        )
        resumed = runner.run(spec)
        assert resumed.execution["resumed_chunks"] == n_prefix
        assert resumed.execution["computed_chunks"] == len(tasks) - n_prefix
        for a, b in zip(reference.cells, resumed.cells):
            assert (a.device, a.trace, a.policy) == (b.device, b.trace, b.policy)
            assert a.reports == b.reports  # dataclass equality, exact

    def test_different_chunk_size_rejects_journal(self, tmp_path):
        # a journal whose records all belong to a different sweep spec
        # (here: another chunk size) is a configuration error, not a
        # license to silently recompute — the mismatch names both keys
        # and the recovery (delete the file, or drop --resume)
        spec = _sim_spec()
        ck = tmp_path / "sweep.ck"
        first = SimSweepRunner(chunk_size=2, checkpoint=str(ck)).run(spec)
        with pytest.raises(CheckpointMismatchError) as err:
            SimSweepRunner(chunk_size=1, checkpoint=str(ck)).run(spec)
        assert err.value.spec_key == spec_hash(spec, 1)
        assert spec_hash(spec, 2) in err.value.found_keys
        # deleting the stale journal recovers, bit-identically
        ck.unlink()
        again = SimSweepRunner(chunk_size=1, checkpoint=str(ck)).run(spec)
        assert again.execution["resumed_chunks"] == 0
        for a, b in zip(first.cells, again.cells):
            assert a.reports == b.reports

    def test_completed_journal_skips_recomputation(self, tmp_path):
        spec = _sim_spec()
        ck = tmp_path / "sweep.ck"
        first = SimSweepRunner(chunk_size=2, checkpoint=str(ck)).run(spec)
        second = SimSweepRunner(chunk_size=2, checkpoint=str(ck)).run(spec)
        assert second.execution["computed_chunks"] == 0
        for a, b in zip(first.cells, second.cells):
            assert a.reports == b.reports

    def test_runner_validates_max_retries(self):
        with pytest.raises(ValueError):
            SimSweepRunner(max_retries=-1)


class TestSweepRunnerCheckpointResume:
    def _spec(self) -> RolloutSpec:
        return RolloutSpec(
            schedule=ConstantRate(0.15), n_slots=600, record_every=200
        )

    def test_resume_is_bit_identical(self, tmp_path):
        spec = self._spec()
        seeds = list(range(6))
        reference = SweepRunner(batch_size=2).run_many(spec, seeds)
        ck = tmp_path / "rollout.ck"
        first = SweepRunner(batch_size=2, checkpoint=str(ck)).run_many(
            spec, seeds
        )
        # wipe one record to mimic an interrupted run, then resume
        records = []
        with open(ck, "rb") as fh:
            while True:
                try:
                    records.append(pickle.load(fh))
                except EOFError:
                    break
        with open(ck, "wb") as fh:
            for record in records[:-1]:
                pickle.dump(record, fh, protocol=4)
        resumed = SweepRunner(batch_size=2, checkpoint=str(ck)).run_many(
            spec, seeds
        )
        assert resumed.execution["resumed_chunks"] == 2
        assert resumed.execution["computed_chunks"] == 1
        for other in (first, resumed):
            for a, b in zip(reference.runs, other.runs):
                assert a.seed == b.seed
                assert a.mean_reward == b.mean_reward
                assert a.saving_ratio == b.saving_ratio
                assert np.array_equal(a.history.reward, b.history.reward)
                assert a.totals == b.totals

    def test_checkpoint_rejects_snapshot_hooks(self, tmp_path):
        runner = SweepRunner(batch_size=2, checkpoint=str(tmp_path / "ck"))
        with pytest.raises(ValueError, match="snapshot hooks"):
            runner.run_many(
                self._spec(), [0, 1], on_record=lambda *a: None
            )
