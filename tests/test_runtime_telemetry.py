"""Telemetry layer: spans across processes, metrics, exports, progress.

The load-bearing contracts:

- tracing is **non-interfering** — a traced sweep produces bit-identical
  results to an untraced one (telemetry touches clocks, never RNG);
- spans recorded inside pool workers ship back with chunk results and
  merge into the parent's buffer, so a multi-process sweep exports one
  coherent trace with one track per worker;
- counting metrics (chunks completed, invariant checks) are
  chunking/jobs-invariant; timing metrics are recorded but never
  asserted on;
- the executor's resilience events flow through telemetry (counters +
  instant trace events) while the legacy ``resilience_events`` /
  ``ChunkExecutionError.events`` views keep their old shape;
- progress/summary output goes to stderr, plain off-TTY, no ANSI under
  ``NO_COLOR``.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.runtime import (
    TELEMETRY,
    MetricsRegistry,
    ProgressReporter,
    RolloutSpec,
    SweepRunner,
    export_chrome_trace,
    export_jsonl,
    export_trace,
)
from repro.runtime.executor import MultiprocessExecutor
from repro.runtime.telemetry import TelemetryEnvelope, TracedCall
from repro.workload import ConstantRate


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test starts and ends with pristine global telemetry."""
    TELEMETRY.reset()
    yield
    TELEMETRY.reset()


@pytest.fixture(scope="module")
def spec():
    return RolloutSpec(
        schedule=ConstantRate(0.15),
        n_slots=2_000,
        record_every=500,
        queue_capacity=6,
    )


def _run_signature(result):
    return [
        (r.seed, r.mean_reward, r.saving_ratio, tuple(r.history.reward))
        for r in result.runs
    ]


class TestSpans:
    def test_disabled_by_default_and_recording_off_is_free_of_records(self):
        assert not TELEMETRY.tracing
        with TELEMETRY.span("nothing"):
            pass
        TELEMETRY.instant("also-nothing")
        assert TELEMETRY.tracer.records() == []

    def test_span_nesting_depth_and_monotone_timestamps(self):
        TELEMETRY.enable_tracing()
        with TELEMETRY.span("outer"):
            with TELEMETRY.span("inner"):
                pass
        records = {r.name: r for r in TELEMETRY.tracer.records()}
        outer, inner = records["outer"], records["inner"]
        assert outer.depth == 0 and inner.depth == 1
        # containment: inner starts after outer and ends before it
        assert inner.ts_us >= outer.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us

    def test_attributes_are_json_safe(self):
        TELEMETRY.enable_tracing()
        with TELEMETRY.span("s", seeds=[np.int64(3)], ratio=0.5, tag="x"):
            pass
        (record,) = TELEMETRY.tracer.records()
        json.dumps(record.args)  # must not raise

    def test_spans_cross_process_boundaries(self, spec):
        """A 3-job sweep merges worker-side spans into the parent buffer:
        distinct worker pids appear, and every worker chunk span is
        contained in time by the parent's sweep span."""
        TELEMETRY.enable_tracing()
        SweepRunner(batch_size=2, n_jobs=3).run_many(spec, list(range(6)))
        records = TELEMETRY.tracer.records()
        sweep = [r for r in records if r.name == "sweep"][0]
        chunks = [r for r in records if r.name == "chunk"]
        assert len(chunks) == 3
        worker_pids = {r.pid for r in chunks} - {os.getpid()}
        assert len(worker_pids) >= 1  # at least one chunk ran in a worker
        assert all(r.name for r in records)
        for r in chunks:
            # coarse cross-process containment: the clock anchors of
            # parent and workers agree to well under the slack below
            assert r.ts_us >= sweep.ts_us - 50_000
            assert r.ts_us + r.dur_us <= sweep.ts_us + sweep.dur_us + 50_000
        worker_runs = [r for r in records if r.name == "worker-run"]
        assert {r.pid for r in worker_runs} == worker_pids

    def test_traced_call_returns_envelope_with_worker_spans(self):
        call = TracedCall(_square, 7)
        envelope = call(6)
        assert isinstance(envelope, TelemetryEnvelope)
        assert envelope.result == 36
        names = [s.name for s in envelope.spans]
        assert "worker-run" in names and "square" in names
        # in-process invocation must not leak the captured spans into
        # the (disabled) global buffer
        assert TELEMETRY.tracer.records() == []


def _square(x):
    with TELEMETRY.span("square"):
        return x * x


class TestBitIdentity:
    def test_traced_sweep_is_bit_identical(self, spec):
        seeds = [3, 5, 8, 13, 21, 34]
        runner = SweepRunner(batch_size=2, n_jobs=3)
        plain = _run_signature(runner.run_many(spec, seeds))
        TELEMETRY.enable_tracing()
        traced = _run_signature(runner.run_many(spec, seeds))
        assert traced == plain

    def test_progress_and_metrics_do_not_change_results(self, spec):
        seeds = [1, 2, 3, 4]
        runner = SweepRunner(batch_size=2)
        plain = _run_signature(runner.run_many(spec, seeds))
        TELEMETRY.enable_progress(stream=io.StringIO())
        TELEMETRY.enable_tracing()
        noisy = _run_signature(runner.run_many(spec, seeds))
        assert noisy == plain


class TestMetrics:
    def test_registry_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 2)
        reg.gauge("g", 4.5)
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 4.5
        h = snap["histograms"]["h"]
        assert (h["count"], h["sum"], h["min"], h["max"]) == (3, 6.0, 1.0, 3.0)
        assert h["mean"] == 2.0
        assert "c" in reg.render() and "h" in reg.render()

    def test_merge_snapshot(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.observe("h", 5.0)
        a.merge_snapshot(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_scoped_metrics_also_feed_root(self):
        with TELEMETRY.metrics_scope() as scoped:
            TELEMETRY.inc("x")
        assert scoped.snapshot()["counters"]["x"] == 1
        assert TELEMETRY.root_metrics.snapshot()["counters"]["x"] == 1

    def test_counting_metrics_are_chunking_and_jobs_invariant(self, spec):
        """chunks completed depends only on the chunking, and invariant
        checks only on the seed count — not on n_jobs."""
        seeds = list(range(6))

        def counters(batch_size, n_jobs):
            result = SweepRunner(
                batch_size=batch_size, n_jobs=n_jobs
            ).run_many(spec, seeds)
            return result.execution["metrics"]["counters"]

        serial = counters(2, 1)
        parallel = counters(2, 3)
        assert serial["executor.chunks_completed"] == 3
        assert parallel["executor.chunks_completed"] == 3
        assert (serial["verify.invariant_checks"]
                == parallel["verify.invariant_checks"] == len(seeds))

    def test_sweep_result_carries_metrics_snapshot(self, spec):
        result = SweepRunner(batch_size=2).run_many(spec, [1, 2, 3])
        counters = result.execution["metrics"]["counters"]
        assert counters["executor.chunks_completed"] == 2


class TestResilienceEvents:
    def test_event_routes_to_counter_and_legacy_view(self):
        TELEMETRY.enable_tracing()
        with TELEMETRY.metrics_scope() as scoped:
            payload = TELEMETRY.resilience_event(
                {"chunk": 4, "action": "retry", "attempt": 1}
            )
        assert payload == {"chunk": 4, "action": "retry", "attempt": 1}
        assert scoped.snapshot()["counters"]["executor.retries"] == 1
        (record,) = TELEMETRY.tracer.records()
        assert record.name == "executor.retry" and record.dur_us is None

    def test_executor_retry_counted_and_legacy_events_intact(self):
        """The one-event-system satellite: a pool retry lands in both
        the metrics registry and the old events list, same dict."""
        with TELEMETRY.metrics_scope() as scoped:
            pending = MultiprocessExecutor(2).submit_all(
                _fail_once, [(0,), (1,), (2,)], max_retries=2,
                retry_backoff=0.01,
            )
            results = pending.get()
        assert sorted(results) == [0, 2, 11]
        retry_events = [e for e in pending.events if e["action"] == "retry"]
        assert len(retry_events) >= 1
        assert retry_events[0]["chunk"] == 1
        counters = scoped.snapshot()["counters"]
        assert counters["executor.retries"] == len(retry_events)
        assert counters["executor.chunks_completed"] == 3


def _fail_once(i):
    # refuses chunk 1 on its first attempt only: a marker file persists
    # the attempt count across pool retries of the same task
    import tempfile
    marker = os.path.join(tempfile.gettempdir(),
                          f"repro_telemetry_fail_once_{os.getppid()}_{i}")
    if i == 1 and not os.path.exists(marker):
        open(marker, "w").close()
        raise RuntimeError("first attempt fails")
    if i == 1:
        os.remove(marker)
        return 11
    return i


class TestExporters:
    def test_chrome_trace_shape(self, spec, tmp_path):
        TELEMETRY.enable_tracing()
        SweepRunner(batch_size=2, n_jobs=3).run_many(spec, list(range(6)))
        path = export_chrome_trace(tmp_path / "out.json")
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        tracks = {e["args"]["name"] for e in events
                  if e.get("name") == "thread_name"}
        assert "main" in tracks
        assert any(t.startswith("worker-") for t in tracks)
        spans = [e for e in events if e["ph"] == "X"]
        assert {"sweep", "chunk", "pool-submit"} <= {e["name"] for e in spans}
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0
        # every recording pid has a named track
        assert {e["tid"] for e in spans} <= {
            e["tid"] for e in events if e.get("name") == "thread_name"
        }

    def test_jsonl_export_one_object_per_line(self, tmp_path):
        TELEMETRY.enable_tracing()
        with TELEMETRY.span("a"):
            TELEMETRY.instant("b")
        TELEMETRY.inc("k", 2)
        path = export_jsonl(tmp_path / "out.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["type"] for l in lines] == ["instant", "span", "metrics"]
        assert lines[1]["name"] == "a"
        assert lines[2]["counters"]["k"] == 2

    def test_export_trace_dispatches_on_extension(self, tmp_path):
        TELEMETRY.enable_tracing()
        with TELEMETRY.span("a"):
            pass
        chrome = export_trace(tmp_path / "t.json")
        jsonl = export_trace(tmp_path / "t.jsonl")
        assert "traceEvents" in json.loads(chrome.read_text())
        assert all(json.loads(l) for l in jsonl.read_text().splitlines())


class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


class TestProgress:
    def test_non_tty_plain_periodic_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=3, workers=2, label="sweep",
                                    stream=stream)
        for _ in range(3):
            reporter.update()
        reporter.finish()
        out = stream.getvalue()
        assert "\r" not in out and "\x1b" not in out
        assert out.splitlines()[-1].startswith("sweep: 3/3 chunks")

    def test_tty_repaints_with_carriage_return(self, monkeypatch):
        monkeypatch.delenv("NO_COLOR", raising=False)
        stream = _FakeTTY()
        reporter = ProgressReporter(total=2, stream=stream)
        reporter.update()
        reporter.update()
        reporter.finish()
        out = stream.getvalue()
        assert "\r" in out
        assert out.endswith("\n")

    def test_no_color_strips_ansi_on_tty(self, monkeypatch):
        monkeypatch.setenv("NO_COLOR", "1")
        stream = _FakeTTY()
        reporter = ProgressReporter(total=1, stream=stream)
        reporter.update()
        reporter.finish()
        assert "\x1b[36m" not in stream.getvalue()

    def test_progress_reporter_gated_by_global_flag(self):
        assert TELEMETRY.progress_reporter(total=4) is None
        TELEMETRY.enable_progress(stream=io.StringIO())
        assert TELEMETRY.progress_reporter(total=4) is not None


class TestCLI:
    def test_trace_metrics_progress_flags(self, tmp_path, capsys):
        from repro import cli

        trace = tmp_path / "cli_trace.json"
        assert cli.main([
            "sim-sweep", "--quick", "--trace", str(trace),
            "--metrics", "--progress",
        ]) == 0
        captured = capsys.readouterr()
        # machine-parseable stdout: the table only, telemetry on stderr
        assert "TELEMETRY" not in captured.out
        assert "trace written" not in captured.out
        assert "TELEMETRY: end-of-run metrics" in captured.err
        assert "chunks" in captured.err  # progress lines
        data = json.loads(trace.read_text())
        assert data["traceEvents"]
        # the CLI resets global state afterwards
        assert not TELEMETRY.tracing
        assert TELEMETRY.tracer.records() == []

    def test_stdout_identical_with_and_without_trace(self, tmp_path, capsys):
        from repro import cli

        assert cli.main(["sim-sweep", "--quick"]) == 0
        plain = capsys.readouterr().out
        assert cli.main([
            "sim-sweep", "--quick", "--trace", str(tmp_path / "t.jsonl"),
        ]) == 0
        traced = capsys.readouterr().out
        assert traced == plain
