"""Event-driven baseline policy logic tests (decision level)."""

import math

import pytest

from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    MultiLevelTimeout,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import mobile_hard_disk
from repro.sim import NEVER, IdleContext


def ctx(next_arrival=None, device=None):
    device = device or mobile_hard_disk()
    return IdleContext(
        now=100.0, device=device, wait_state="idle", next_arrival=next_arrival
    )


class TestAlwaysOn:
    def test_never_sleeps(self):
        decision = AlwaysOn().on_idle(ctx())
        assert decision.target_state is None
        assert math.isinf(decision.timeout)


class TestGreedySleep:
    def test_immediate_deepest(self):
        decision = GreedySleep().on_idle(ctx())
        assert decision.target_state == "standby"
        assert decision.timeout == 0.0

    def test_explicit_target(self):
        decision = GreedySleep("idle").on_idle(ctx())
        assert decision.target_state == "idle"


class TestFixedTimeout:
    def test_break_even_default(self):
        device = mobile_hard_disk()
        decision = FixedTimeout().on_idle(ctx(device=device))
        expected = device.break_even_time("standby", "busy")
        assert decision.timeout == pytest.approx(expected)

    def test_explicit_timeout(self):
        assert FixedTimeout(5.0).on_idle(ctx()).timeout == 5.0

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            FixedTimeout(-1.0)


class TestAdaptiveTimeout:
    def test_shrinks_after_long_idle(self):
        policy = AdaptiveTimeout(initial_timeout=10.0)
        policy.on_idle(ctx())          # sets break-even internally
        policy.on_idle_end(1000.0)     # way past break-even + timeout
        assert policy.current_timeout < 10.0

    def test_grows_after_short_idle(self):
        policy = AdaptiveTimeout(initial_timeout=10.0)
        policy.on_idle(ctx())
        policy.on_idle_end(0.1)        # shorter than break-even
        assert policy.current_timeout > 10.0

    def test_neutral_zone_keeps_timeout(self):
        policy = AdaptiveTimeout(initial_timeout=10.0)
        policy.on_idle(ctx())
        be = mobile_hard_disk().break_even_time("standby", "busy")
        policy.on_idle_end(be + 5.0)   # between be and be + timeout
        assert policy.current_timeout == 10.0

    def test_clipping(self):
        policy = AdaptiveTimeout(
            initial_timeout=1.0, min_timeout=0.5, max_timeout=2.0,
            grow=10.0, shrink=0.01,
        )
        policy.on_idle(ctx())
        policy.on_idle_end(0.0)
        assert policy.current_timeout == 2.0
        policy.on_idle_end(1e9)
        assert policy.current_timeout == 0.5

    def test_reset_restores_initial(self):
        policy = AdaptiveTimeout(initial_timeout=7.5)
        policy.on_idle(ctx())
        policy.on_idle_end(0.0)
        policy.reset()
        assert policy.current_timeout == 7.5

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTimeout(-1.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(1.0, grow=0.5)
        with pytest.raises(ValueError):
            AdaptiveTimeout(1.0, shrink=1.5)
        with pytest.raises(ValueError):
            AdaptiveTimeout(1.0, min_timeout=5.0, max_timeout=1.0)


class TestPredictive:
    def test_low_prediction_stays_on(self):
        policy = PredictiveShutdown(initial_prediction=0.0)
        decision = policy.on_idle(ctx())
        assert decision.target_state is None

    def test_high_prediction_sleeps_immediately(self):
        policy = PredictiveShutdown(initial_prediction=1000.0)
        decision = policy.on_idle(ctx())
        assert decision.target_state == "standby"
        assert decision.timeout == 0.0

    def test_exponential_average_update(self):
        policy = PredictiveShutdown(smoothing=0.5, initial_prediction=0.0)
        policy.on_idle_end(10.0)
        assert policy.prediction == pytest.approx(5.0)
        policy.on_idle_end(10.0)
        assert policy.prediction == pytest.approx(7.5)

    def test_reset(self):
        policy = PredictiveShutdown(initial_prediction=2.0)
        policy.on_idle_end(100.0)
        policy.reset()
        assert policy.prediction == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PredictiveShutdown(smoothing=0.0)


class TestMultiLevel:
    def test_first_level_used(self):
        policy = MultiLevelTimeout([(2.0, "idle"), (10.0, "standby")])
        decision = policy.on_idle(ctx())
        assert decision.target_state == "idle"
        assert decision.timeout == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiLevelTimeout([])
        with pytest.raises(ValueError):
            MultiLevelTimeout([(5.0, "a"), (1.0, "b")])
        with pytest.raises(ValueError):
            MultiLevelTimeout([(-1.0, "a")])


class TestOracle:
    def test_long_idle_sleeps(self):
        device = mobile_hard_disk()
        be = device.break_even_time("standby", "busy")
        decision = OracleShutdown().on_idle(
            ctx(next_arrival=100.0 + 10 * be, device=device)
        )
        assert decision.target_state == "standby"
        assert decision.timeout == 0.0

    def test_short_idle_stays(self):
        decision = OracleShutdown().on_idle(ctx(next_arrival=100.01))
        assert decision.target_state is None

    def test_no_future_arrivals_sleeps_deepest(self):
        decision = OracleShutdown().on_idle(ctx(next_arrival=None))
        assert decision.target_state == "standby"
