"""Semantic device-model checks."""

import pytest

from repro.device import (
    PowerState,
    PowerStateMachine,
    Transition,
    assert_valid,
    validate_machine,
)
from repro.device.validate import ERROR, INFO, WARNING


def codes(machine):
    return {i.code for i in validate_machine(machine)}


def test_clean_model_has_no_issues(device3):
    assert validate_machine(device3) == []


def test_unreachable_state_flagged():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("island", 0.5),
    ]
    machine = PowerStateMachine("m", states, [], initial_state="on")
    assert "unreachable-state" in codes(machine)


def test_no_return_path_flagged():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("pit", 0.1),
    ]
    trs = [Transition("on", "pit", 0, 0)]
    machine = PowerStateMachine("m", states, trs, initial_state="on")
    assert "no-return-path" in codes(machine)


def test_useless_sleep_flagged():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("hot_rest", 1.5),
    ]
    trs = [Transition("on", "hot_rest", 0, 0), Transition("hot_rest", "on", 0, 0)]
    machine = PowerStateMachine("m", states, trs, initial_state="on")
    assert "useless-sleep" in codes(machine)


def test_zero_cost_deep_sleep_flagged():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("free_sleep", 0.0),
    ]
    trs = [Transition("on", "free_sleep", 0, 0), Transition("free_sleep", "on", 0, 0)]
    machine = PowerStateMachine("m", states, trs, initial_state="on")
    assert "zero-cost-deep-sleep" in codes(machine)


def test_dominated_state_flagged():
    states = [
        PowerState("on", 1.0, can_service=True),
        PowerState("bad", 0.5),   # higher power AND higher cost than "good"
        PowerState("good", 0.1),
    ]
    trs = [
        Transition("on", "bad", 2.0, 2.0),
        Transition("bad", "on", 2.0, 2.0),
        Transition("on", "good", 0.5, 0.5),
        Transition("good", "on", 0.5, 0.5),
    ]
    machine = PowerStateMachine("m", states, trs, initial_state="on")
    assert "dominated-state" in codes(machine)


def test_assert_valid_raises_on_errors():
    states = [PowerState("on", 1.0, can_service=True), PowerState("island", 0.5)]
    machine = PowerStateMachine("m", states, [], initial_state="on")
    with pytest.raises(ValueError, match="unreachable"):
        assert_valid(machine)


def test_assert_valid_passes_clean_model(device3):
    assert_valid(device3)  # must not raise


def test_issue_str_format():
    states = [PowerState("on", 1.0, can_service=True), PowerState("island", 0.5)]
    machine = PowerStateMachine("m", states, [], initial_state="on")
    issue = validate_machine(machine)[0]
    assert issue.code in str(issue)
    assert issue.severity in (INFO, WARNING, ERROR)
