"""Slotted reference policy tests."""

import pytest

from repro.baselines import always_on_policy, greedy_sleep_policy, threshold_policy
from repro.device import abstract_three_state
from repro.env import build_dpm_model


class TestAlwaysOn:
    def test_commands_home_where_possible(self, small_env):
        policy = always_on_policy(small_env)
        home = small_env.mode_space.action_index("active")
        for state in range(small_env.n_states):
            if home in small_env.allowed_actions(state):
                assert policy(state) == home

    def test_zero_saving_exactly(self, small_env):
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        perf = model.evaluate_policy(always_on_policy(small_env))
        assert perf.energy_saving_ratio == pytest.approx(0.0, abs=1e-9)


class TestGreedySleep:
    def test_sleeps_on_empty_wakes_on_work(self, small_env):
        policy = greedy_sleep_policy(small_env)
        sleep = small_env.mode_space.action_index("sleep")
        home = small_env.mode_space.action_index("active")
        for state in range(small_env.n_states):
            mode, queue = small_env.decode(state)
            if mode.kind != "steady":
                continue
            allowed = small_env.allowed_actions(state)
            if queue == 0 and sleep in allowed:
                assert policy(state) == sleep
            if queue > 0 and home in allowed:
                assert policy(state) == home

    def test_custom_sleep_state(self, small_env):
        policy = greedy_sleep_policy(small_env, sleep_state="idle")
        idle = small_env.mode_space.action_index("idle")
        active0 = small_env.encode(
            small_env.mode_space.steady_mode_index("active"), 0
        )
        assert policy(active0) == idle

    def test_saves_more_than_always_on_but_worse_latency(self, small_env):
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        on = model.evaluate_policy(always_on_policy(small_env))
        greedy = model.evaluate_policy(greedy_sleep_policy(small_env))
        assert greedy.energy_saving_ratio > on.energy_saving_ratio
        assert greedy.mean_latency > on.mean_latency


class TestThreshold:
    def test_equals_greedy_at_threshold_one(self, small_env):
        assert threshold_policy(small_env, 1) == greedy_sleep_policy(small_env)

    def test_holds_mode_between_empty_and_threshold(self, small_env):
        policy = threshold_policy(small_env, wake_threshold=3)
        sleep_mode = small_env.mode_space.steady_mode_index("sleep")
        sleep_action = small_env.mode_space.action_index("sleep")
        # at queue 1-2 the device stays asleep
        assert policy(small_env.encode(sleep_mode, 1)) == sleep_action
        assert policy(small_env.encode(sleep_mode, 2)) == sleep_action
        # at the threshold it wakes
        home = small_env.mode_space.action_index("active")
        assert policy(small_env.encode(sleep_mode, 3)) == home

    def test_higher_threshold_saves_more(self, small_env):
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        t1 = model.evaluate_policy(threshold_policy(small_env, 1))
        t3 = model.evaluate_policy(threshold_policy(small_env, 3))
        assert t3.energy_saving_ratio >= t1.energy_saving_ratio
        assert t3.mean_latency >= t1.mean_latency

    def test_validation(self, small_env):
        with pytest.raises(ValueError):
            threshold_policy(small_env, 0)
