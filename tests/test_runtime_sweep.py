"""SweepRunner: chunking, CI aggregation, policy mode, scalar fallback."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.runtime import RolloutSpec, SweepRunner
from repro.workload import ConstantRate, SinusoidalRate


@pytest.fixture(scope="module")
def device():
    return abstract_three_state()


@pytest.fixture(scope="module")
def spec():
    return RolloutSpec(
        schedule=ConstantRate(0.15),
        n_slots=4_000,
        record_every=1_000,
        queue_capacity=6,
        epsilon=0.08,
    )


class TestRunMany:
    def test_one_run_per_seed(self, spec):
        result = SweepRunner(batch_size=2).run_many(spec, seeds=[1, 2, 3, 4, 5])
        assert result.n_seeds == 5
        assert result.seeds == [1, 2, 3, 4, 5]
        for run in result.runs:
            assert run.history.reward.shape == (4,)
            assert run.totals.slots == 4_000

    def test_deterministic_given_seeds(self, spec):
        seeds = [10, 20, 30]
        first = SweepRunner(batch_size=2).run_many(spec, seeds)
        second = SweepRunner(batch_size=2).run_many(spec, seeds)
        for a, b in zip(first.runs, second.runs):
            assert a.mean_reward == b.mean_reward
            assert a.saving_ratio == b.saving_ratio
            assert np.array_equal(a.history.reward, b.history.reward)

    def test_learning_chunking_invariant(self, spec):
        """A seed's trained outcome is independent of batch composition:
        env streams AND exploration streams are per-replica, so
        re-chunking the same seed list is bit-identical per seed."""
        seeds = [10, 20, 30]
        whole = SweepRunner(batch_size=8).run_many(spec, seeds)
        split = SweepRunner(batch_size=1).run_many(spec, seeds)
        for a, b in zip(whole.runs, split.runs):
            assert a.seed == b.seed
            assert a.mean_reward == b.mean_reward
            assert np.array_equal(a.history.reward, b.history.reward)
            assert a.totals == b.totals

    def test_policy_mode_chunking_invariant(self, device):
        """Fixed-policy sweeps are bit-identical however seeds are
        chunked (trajectories depend only on per-replica env streams)."""
        model = build_dpm_model(
            device, arrival_rate=0.15, queue_capacity=6, p_serve=0.9
        )
        policy = model.solve(0.95, "policy_iteration").policy
        pspec = RolloutSpec(
            schedule=ConstantRate(0.15), n_slots=1_000, record_every=1_000,
            queue_capacity=6, policy=policy,
        )
        seeds = [10, 20, 30]
        whole = SweepRunner(batch_size=8).run_many(pspec, seeds)
        split = SweepRunner(batch_size=1).run_many(pspec, seeds)
        for a, b in zip(whole.runs, split.runs):
            assert a.seed == b.seed
            assert a.mean_reward == b.mean_reward
            assert a.totals == b.totals

    def test_ci_aggregation(self, spec):
        result = SweepRunner().run_many(spec, seeds=range(6))
        ci = result.reward_ci()
        rewards = result.rewards()
        assert rewards.shape == (6,)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.estimate == pytest.approx(rewards.mean())
        sci = result.saving_ci()
        assert sci.low <= sci.estimate <= sci.high

    def test_mean_history_and_matrix(self, spec):
        result = SweepRunner().run_many(spec, seeds=[0, 1, 2])
        matrix = result.history_matrix("reward")
        assert matrix.shape == (4, 3)
        mean = result.mean_history()
        assert np.allclose(mean.reward, matrix.mean(axis=1))

    def test_empty_seeds_raises(self, spec):
        with pytest.raises(ValueError):
            SweepRunner().run_many(spec, seeds=[])

    def test_bad_batch_size_raises(self):
        with pytest.raises(ValueError):
            SweepRunner(batch_size=0)


class TestPolicyMode:
    def test_fixed_policy_matches_scalar_rollout(self, device):
        """Policy-mode sweep == the scalar fixed-policy loop, bit for bit
        (matched env streams, deterministic actions)."""
        model = build_dpm_model(
            device, arrival_rate=0.2, queue_capacity=6, p_serve=0.9
        )
        policy = model.solve(0.95, "policy_iteration").policy
        n_slots = 2_000
        spec = RolloutSpec(
            schedule=SinusoidalRate(0.2, 0.1, 500),
            n_slots=n_slots,
            record_every=n_slots,
            queue_capacity=6,
            policy=policy,
            env_seed_offset=100,
        )
        result = SweepRunner().run_many(spec, seeds=[23, 24])

        for run in result.runs:
            env = SlottedDPMEnv(
                device, SinusoidalRate(0.2, 0.1, 500), queue_capacity=6,
                p_serve=0.9, seed=run.seed + 100,
            )
            total = 0.0
            for _ in range(n_slots):
                state = env.state
                action = policy(state)
                if action not in env.allowed_actions(state):
                    action = env.allowed_actions(state)[0]
                _, reward, _ = env.step(action)
                total += reward
            assert run.mean_reward == pytest.approx(total / n_slots, rel=1e-12)
            assert run.saving_ratio == pytest.approx(
                env.energy_saving_ratio(), rel=1e-12
            )
            assert run.totals == env.totals


class TestWarmup:
    def test_warmup_then_main_phase(self, device):
        spec = RolloutSpec(
            schedule=SinusoidalRate(0.2, 0.1, 1_000),
            n_slots=3_000,
            record_every=3_000,
            queue_capacity=6,
            warmup_schedule=ConstantRate(0.2),
            warmup_slots=3_000,
            env_seed_offset=100,
        )
        result = SweepRunner().run_many(spec, seeds=[23])
        run = result.runs[0]
        # totals cover only the main phase
        assert run.totals.slots == 3_000
        # warmed-up controller should beat a cold one on the same workload
        cold = SweepRunner().run_many(
            RolloutSpec(
                schedule=SinusoidalRate(0.2, 0.1, 1_000),
                n_slots=3_000,
                record_every=3_000,
                queue_capacity=6,
                env_seed_offset=100,
            ),
            seeds=[23],
        )
        assert run.mean_reward > cold.runs[0].mean_reward


class TestScalarFallback:
    def test_controller_factory_routes_per_seed(self, device, spec):
        built = []

        def factory(seed):
            env = SlottedDPMEnv(
                device, ConstantRate(0.15), queue_capacity=6, p_serve=0.9,
                seed=seed,
            )
            controller = QDPM(env, epsilon=0.08, seed=seed + 1)
            built.append(seed)
            return controller

        result = SweepRunner().run_many(
            spec, seeds=[5, 6], controller_factory=factory
        )
        assert built == [5, 6]
        assert result.n_seeds == 2
        for run in result.runs:
            assert run.totals.slots == 4_000
            assert np.isfinite(run.mean_reward)


class TestRolloutSpecHelpers:
    def test_from_env_config_duck_typing(self):
        class Cfg:
            device = "abstract3"
            slot_length = 1.0
            queue_capacity = 5
            p_serve = 0.8
            perf_weight = 0.4
            loss_penalty = 1.5
            discount = 0.9

        spec = RolloutSpec.from_env_config(
            Cfg(), ConstantRate(0.1), 1_000, epsilon=0.2
        )
        assert spec.queue_capacity == 5
        assert spec.p_serve == 0.8
        assert spec.discount == 0.9
        assert spec.epsilon == 0.2
        env = spec.build_env([0, 1])
        assert env.n_replicas == 2
        assert env.queue_capacity == 5
