"""FiniteMDP container validation and fixtures."""

import numpy as np
import pytest

from repro.mdp import FiniteMDP, random_mdp


def tiny_mdp():
    """Deterministic 2-state, 2-action MDP with known structure."""
    transition = np.zeros((2, 2, 2))
    transition[0, 0, 0] = 1.0  # stay
    transition[0, 1, 1] = 1.0  # move
    transition[1, 0, 1] = 1.0
    transition[1, 1, 0] = 1.0
    reward = np.array([[1.0, 0.0], [2.0, 0.0]])
    allowed = np.ones((2, 2), dtype=bool)
    return FiniteMDP(transition, reward, allowed)


class TestValidation:
    def test_valid_construction(self):
        mdp = tiny_mdp()
        assert mdp.n_states == 2
        assert mdp.n_actions == 2

    def test_wrong_transition_shape(self):
        with pytest.raises(ValueError, match="transition"):
            FiniteMDP(np.zeros((2, 2)), np.zeros((2, 2)), np.ones((2, 2), bool))

    def test_reward_shape_mismatch(self):
        with pytest.raises(ValueError, match="reward"):
            FiniteMDP(
                np.ones((2, 2, 2)) / 2, np.zeros((3, 2)), np.ones((2, 2), bool)
            )

    def test_rows_must_sum_to_one(self):
        transition = np.ones((2, 2, 2)) * 0.3
        with pytest.raises(ValueError, match="sum to 1"):
            FiniteMDP(transition, np.zeros((2, 2)), np.ones((2, 2), bool))

    def test_negative_probability_rejected(self):
        transition = np.zeros((1, 1, 1))
        transition[0, 0, 0] = -1.0
        with pytest.raises(ValueError, match=">= 0"):
            FiniteMDP(transition, np.zeros((1, 1)), np.ones((1, 1), bool))

    def test_disallowed_rows_must_be_zero(self):
        transition = np.zeros((1, 2, 1))
        transition[0, :, 0] = 1.0  # disallowed action 1 still has mass
        allowed = np.array([[True, False]])
        with pytest.raises(ValueError, match="all-zero"):
            FiniteMDP(transition, np.zeros((1, 2)), allowed)

    def test_state_without_action_rejected(self):
        transition = np.zeros((2, 1, 2))
        transition[0, 0, 0] = 1.0
        allowed = np.array([[True], [False]])
        with pytest.raises(ValueError, match="no allowed action"):
            FiniteMDP(transition, np.zeros((2, 1)), allowed)

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="state_labels"):
            FiniteMDP(
                np.ones((2, 1, 2)) / 2,
                np.zeros((2, 1)),
                np.ones((2, 1), bool),
                state_labels=["only-one"],
            )


class TestHelpers:
    def test_allowed_actions(self):
        transition = np.zeros((1, 3, 1))
        transition[0, 0, 0] = 1.0
        transition[0, 2, 0] = 1.0
        allowed = np.array([[True, False, True]])
        mdp = FiniteMDP(transition, np.zeros((1, 3)), allowed)
        assert mdp.allowed_actions(0).tolist() == [0, 2]

    def test_masked_reward(self):
        transition = np.zeros((1, 2, 1))
        transition[0, 0, 0] = 1.0
        allowed = np.array([[True, False]])
        mdp = FiniteMDP(transition, np.array([[5.0, 9.0]]), allowed)
        masked = mdp.masked_reward()
        assert masked[0, 0] == 5.0
        assert masked[0, 1] == -np.inf

    def test_memory_bytes(self):
        mdp = tiny_mdp()
        mem = mdp.memory_bytes()
        assert mem["model_bytes"] == mdp.transition.nbytes + mdp.reward.nbytes
        assert mem["q_table_bytes"] == mdp.reward.nbytes
        assert mem["model_bytes"] > mem["q_table_bytes"]


class TestRandomMDP:
    def test_shapes_and_validity(self, rng):
        mdp = random_mdp(10, 4, rng)
        assert mdp.n_states == 10
        assert mdp.n_actions == 4

    def test_sparsity_leaves_actions(self, rng):
        mdp = random_mdp(20, 3, rng, sparsity=0.8)
        assert mdp.allowed.any(axis=1).all()

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            random_mdp(0, 2, rng)
        with pytest.raises(ValueError):
            random_mdp(2, 2, rng, sparsity=1.0)

    def test_reproducible(self):
        a = random_mdp(5, 2, np.random.default_rng(9))
        b = random_mdp(5, 2, np.random.default_rng(9))
        assert np.allclose(a.transition, b.transition)
        assert np.allclose(a.reward, b.reward)
