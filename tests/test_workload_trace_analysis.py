"""Trace characterization tests."""

import numpy as np
import pytest

from repro.workload import (
    Exponential,
    Pareto,
    Trace,
    burstiness,
    characterize,
    hill_tail_index,
    idle_histogram,
    interarrival_autocorrelation,
    renewal_trace,
)


class TestIdleHistogram:
    def test_counts_and_survival(self):
        trace = Trace([1.0, 2.0, 4.0, 8.0], duration=16.0)
        hist = idle_histogram(trace, n_bins=4)
        assert hist.counts.sum() == 5  # 4 gaps + tail
        # survival is evaluated at bin edges: strictly-greater at the
        # smallest period (1.0) leaves 3 of 5
        assert hist.survival[0] == pytest.approx(0.6)
        assert hist.survival[-1] == 0.0

    def test_fraction_longer_than(self):
        trace = Trace([1.0, 2.0, 4.0, 8.0], duration=16.0)
        hist = idle_histogram(trace, n_bins=8)
        assert hist.fraction_longer_than(0.0) == pytest.approx(1.0)
        # gaps are 1,1,2,4,8: 2 of 5 strictly longer than 2.5
        assert hist.fraction_longer_than(2.5) == pytest.approx(0.4, abs=0.1)

    def test_empty_idle_rejected(self):
        with pytest.raises(ValueError):
            idle_histogram(Trace([], duration=0.0))

    def test_bad_bins(self):
        with pytest.raises(ValueError):
            idle_histogram(Trace([1.0], duration=2.0), n_bins=0)


class TestHillEstimator:
    def test_recovers_pareto_alpha(self, rng):
        for alpha in (1.2, 2.0, 3.0):
            samples = Pareto(alpha, 1.0).sample(rng, 100_000)
            # small tail fraction limits the Lomax second-order bias
            est = hill_tail_index(samples, tail_fraction=0.01)
            assert est == pytest.approx(alpha, rel=0.3)

    def test_exponential_reads_as_light_tail(self, rng):
        samples = rng.exponential(1.0, size=50_000)
        est = hill_tail_index(samples, tail_fraction=0.05)
        assert est > 3.0  # much lighter than any interesting power law

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            hill_tail_index(np.ones(5))

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            hill_tail_index(np.ones(100), tail_fraction=0.0)


class TestBurstiness:
    def test_periodic_is_minus_one(self):
        trace = Trace(np.arange(1.0, 101.0), duration=101.0)
        assert burstiness(trace) == pytest.approx(-1.0, abs=0.01)

    def test_poisson_is_near_zero(self, rng):
        trace = renewal_trace(Exponential(1.0), 20_000.0, rng)
        assert burstiness(trace) == pytest.approx(0.0, abs=0.05)

    def test_heavy_tail_is_positive(self, rng):
        trace = renewal_trace(Pareto(1.3, 1.0), 50_000.0, rng)
        assert burstiness(trace) > 0.2

    def test_too_short(self):
        with pytest.raises(ValueError):
            burstiness(Trace([1.0], duration=2.0))


class TestAutocorrelation:
    def test_renewal_input_near_zero(self, rng):
        trace = renewal_trace(Exponential(1.0), 20_000.0, rng)
        assert interarrival_autocorrelation(trace) == pytest.approx(0.0, abs=0.05)

    def test_alternating_gaps_negative(self):
        gaps = [1.0, 5.0] * 200
        trace = Trace(np.cumsum(gaps))
        assert interarrival_autocorrelation(trace) < -0.8

    def test_validation(self):
        trace = Trace([1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            interarrival_autocorrelation(trace, lag=0)
        with pytest.raises(ValueError):
            interarrival_autocorrelation(trace, lag=5)


class TestCharacterize:
    def test_poisson_character(self, rng):
        trace = renewal_trace(Exponential(0.5), 50_000.0, rng)
        char = characterize(trace, break_even=2.0)
        assert char.arrival_rate == pytest.approx(0.5, rel=0.05)
        assert char.cv_interarrival == pytest.approx(1.0, abs=0.05)
        assert abs(char.burstiness) < 0.05
        # P(exp(0.5) > 2) = e^-1
        assert char.idle_longer_than_breakeven == pytest.approx(
            np.exp(-1.0), abs=0.03
        )

    def test_degenerate_trace_graceful(self):
        char = characterize(Trace([1.0], duration=2.0))
        assert char.tail_index is None
        assert char.idle_longer_than_breakeven is None
