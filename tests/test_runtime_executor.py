"""Executor layer: serial/multiprocess parity, determinism, validation.

The contract under test is the tentpole guarantee: per-seed sweep
results are bit-identical for every ``(batch_size, n_jobs)``
combination — chunks are pure functions of their seeds, the pool
preserves task order, and the scalar fallback shards only when its
factory can ship.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.runtime import (
    MultiprocessExecutor,
    RolloutSpec,
    SerialExecutor,
    SweepRunner,
    get_executor,
    is_picklable,
)
from repro.workload import ConstantRate


@pytest.fixture(scope="module")
def spec():
    return RolloutSpec(
        schedule=ConstantRate(0.15),
        n_slots=2_000,
        record_every=500,
        queue_capacity=6,
        epsilon=0.08,
    )


def _square(x):
    return x * x


def _pid_square(x):
    return os.getpid(), x * x


def _scalar_factory(seed):
    """Module-level controller factory — picklable, so it shards."""
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15), queue_capacity=6,
        p_serve=0.9, seed=seed,
    )
    return QDPM(env, epsilon=0.08, seed=seed + 1)


def _assert_identical(a, b):
    assert [r.seed for r in a.runs] == [r.seed for r in b.runs]
    for x, y in zip(a.runs, b.runs):
        assert x.mean_reward == y.mean_reward
        assert x.saving_ratio == y.saving_ratio
        assert np.array_equal(x.history.reward, y.history.reward)
        assert np.array_equal(x.history.energy, y.history.energy)
        assert x.totals == y.totals


class TestExecutorPrimitives:
    def test_get_executor_kinds(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(4), MultiprocessExecutor)

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "two", None])
    def test_invalid_n_jobs_raises(self, bad):
        with pytest.raises(ValueError):
            get_executor(bad)

    def test_serial_map_preserves_order(self):
        tasks = [(i,) for i in range(7)]
        assert SerialExecutor().map(_square, tasks) == [i * i for i in range(7)]

    def test_multiprocess_map_preserves_order(self):
        tasks = [(i,) for i in range(9)]
        assert MultiprocessExecutor(3).map(_square, tasks) == [
            i * i for i in range(9)
        ]

    def test_submit_all_overlaps_then_gets(self):
        pending = MultiprocessExecutor(2).submit_all(_square, [(i,) for i in range(5)])
        # parent-side work happens here, then collection
        assert pending.get() == [0, 1, 4, 9, 16]

    def test_submit_all_single_task_short_circuits_in_process(self):
        """A lone task runs eagerly in the parent: pool spin-up costs
        more than the overlap one task could buy (the BENCH_engine
        quick snapshot showed 2-job sweeps slower than serial)."""
        pending = MultiprocessExecutor(2).submit_all(_pid_square, [(3,)])
        ((pid, value),) = pending.get()
        assert value == 9
        assert pid == os.getpid()

    def test_submit_all_single_worker_short_circuits_in_process(self):
        """One worker cannot overlap anything with itself."""
        pending = MultiprocessExecutor(1).submit_all(
            _pid_square, [(2,), (3,)]
        )
        results = pending.get()
        assert [v for _, v in results] == [4, 9]
        assert all(pid == os.getpid() for pid, _ in results)

    def test_submit_all_cancel_releases_pool(self):
        pending = MultiprocessExecutor(2).submit_all(_square, [(i,) for i in range(4)])
        pending.cancel()  # no leaked workers; safe without get()
        with pytest.raises(RuntimeError, match="cancelled"):
            pending.get()  # loud, not a hang
        empty = MultiprocessExecutor(2).submit_all(_square, [])
        assert empty.get() == []
        empty.cancel()  # no-op on the eager branch
        assert empty.get() == []  # eager results survive cancel

    def test_is_picklable(self):
        assert is_picklable(_square)
        assert not is_picklable(lambda x: x)


class TestShardedDeterminism:
    def test_learning_bit_identical_across_n_jobs(self, spec):
        seeds = [1, 2, 3, 4, 5, 6]
        serial = SweepRunner(batch_size=2, n_jobs=1).run_many(spec, seeds)
        for n_jobs in (2, 4):
            sharded = SweepRunner(batch_size=2, n_jobs=n_jobs).run_many(spec, seeds)
            _assert_identical(serial, sharded)

    def test_bit_identical_across_batch_sizes_while_sharded(self, spec):
        seeds = [10, 20, 30, 40, 50]
        a = SweepRunner(batch_size=1, n_jobs=3).run_many(spec, seeds)
        b = SweepRunner(batch_size=3, n_jobs=2).run_many(spec, seeds)
        c = SweepRunner(batch_size=8, n_jobs=4).run_many(spec, seeds)
        _assert_identical(a, b)
        _assert_identical(a, c)

    def test_fixed_policy_bit_identical_across_n_jobs(self):
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15, queue_capacity=6,
            p_serve=0.9,
        )
        policy = model.solve(0.95, "policy_iteration").policy
        pspec = RolloutSpec(
            schedule=ConstantRate(0.15), n_slots=1_000, record_every=1_000,
            queue_capacity=6, policy=policy,
        )
        seeds = [7, 8, 9, 10]
        serial = SweepRunner(batch_size=1, n_jobs=1).run_many(pspec, seeds)
        sharded = SweepRunner(batch_size=1, n_jobs=4).run_many(pspec, seeds)
        _assert_identical(serial, sharded)

    def test_scalar_fallback_shards_picklable_factory(self, spec):
        seeds = [5, 6, 7]
        serial = SweepRunner(n_jobs=1).run_many(
            spec, seeds, controller_factory=_scalar_factory
        )
        sharded = SweepRunner(n_jobs=2).run_many(
            spec, seeds, controller_factory=_scalar_factory
        )
        _assert_identical(serial, sharded)

    def test_scalar_fallback_closure_degrades_to_serial(self, spec):
        built = []

        def factory(seed):  # closure: unpicklable, must run in-process
            built.append(seed)
            return _scalar_factory(seed)

        result = SweepRunner(n_jobs=4).run_many(
            spec, seeds=[5, 6], controller_factory=factory
        )
        assert built == [5, 6]
        serial = SweepRunner(n_jobs=1).run_many(
            spec, seeds=[5, 6], controller_factory=_scalar_factory
        )
        _assert_identical(serial, result)

    def test_run_many_n_jobs_override(self, spec):
        seeds = [1, 2, 3, 4]
        base = SweepRunner(batch_size=2, n_jobs=1)
        a = base.run_many(spec, seeds)
        b = base.run_many(spec, seeds, n_jobs=4)
        _assert_identical(a, b)


class TestCallbackSemantics:
    def test_hooks_fire_for_lead_chunk_only_when_sharded(self, spec):
        seeds = [1, 2, 3, 4, 5, 6]
        recorded, done = [], []
        result = SweepRunner(batch_size=2, n_jobs=3).run_many(
            spec, seeds,
            on_record=lambda slot, driver, chunk: recorded.append((slot, tuple(chunk))),
            on_chunk_done=lambda driver, chunk: done.append(tuple(chunk)),
        )
        # the lead chunk ran in the parent with hooks; workers ran dark
        assert done == [(1, 2)]
        assert {c for _, c in recorded} == {(1, 2)}
        assert len(recorded) == spec.n_slots // spec.record_every
        # hooks never change results
        _assert_identical(
            SweepRunner(batch_size=2, n_jobs=1).run_many(spec, seeds), result
        )

    def test_failing_hook_does_not_leak_workers(self, spec):
        import multiprocessing

        before = len(multiprocessing.active_children())
        with pytest.raises(RuntimeError, match="hook boom"):
            SweepRunner(batch_size=2, n_jobs=2).run_many(
                spec, [1, 2, 3, 4],
                on_record=lambda *a: (_ for _ in ()).throw(RuntimeError("hook boom")),
            )
        # pool terminated on the failure path, nothing left running
        for child in multiprocessing.active_children():
            child.join(timeout=10)
        assert len(multiprocessing.active_children()) <= before

    def test_hooks_fire_for_every_chunk_when_serial(self, spec):
        seeds = [1, 2, 3, 4]
        done = []
        SweepRunner(batch_size=2, n_jobs=1).run_many(
            spec, seeds, on_chunk_done=lambda driver, chunk: done.append(tuple(chunk)),
        )
        assert done == [(1, 2), (3, 4)]


class TestValidation:
    def test_bad_runner_args_raise(self):
        with pytest.raises(ValueError):
            SweepRunner(batch_size=0)
        with pytest.raises(ValueError):
            SweepRunner(n_jobs=0)

    def test_bad_call_args_raise(self, spec):
        runner = SweepRunner()
        with pytest.raises(ValueError):
            runner.run_many(spec, seeds=[])
        with pytest.raises(ValueError):
            runner.run_many(spec, seeds=[1], batch_size=0)
        with pytest.raises(ValueError):
            runner.run_many(spec, seeds=[1], n_jobs=0)
