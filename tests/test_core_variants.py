"""Double Q-learning and Watkins Q(lambda) agent tests."""

import numpy as np
import pytest

from repro.core import (
    QDPM,
    DoubleQLearningAgent,
    EpsilonGreedy,
    QLearningAgent,
    WatkinsQLambdaAgent,
)
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.workload import ConstantRate


class TwoStateWorld:
    """Same world as test_core_qlearning: Q*(1,0) = 1/(1-b), Q*(0,1) = b/(1-b)."""

    def __init__(self):
        self.state = 0

    def step(self, action):
        if self.state == 0:
            if action == 0:
                return 0, 0.0
            self.state = 1
            return 1, 0.0
        if action == 0:
            return 1, 1.0
        self.state = 0
        return 0, 0.0


def drive(agent, n_steps=25_000):
    world = TwoStateWorld()
    allowed = [0, 1]
    obs = world.state
    for _ in range(n_steps):
        action = agent.select_action(obs, allowed)
        next_obs, reward = world.step(action)
        agent.update(obs, action, reward, next_obs, allowed)
        obs = next_obs
    return agent


class TestDoubleQ:
    def test_converges_to_optimal_policy(self):
        agent = DoubleQLearningAgent(2, 2, discount=0.5, learning_rate=0.2,
                                     exploration=EpsilonGreedy(0.3), seed=0)
        drive(agent)
        assert agent.greedy_action(0, [0, 1]) == 1
        assert agent.greedy_action(1, [0, 1]) == 0

    def test_sum_table_is_sum_of_halves(self):
        agent = DoubleQLearningAgent(2, 2, discount=0.5, learning_rate=0.2,
                                     seed=1)
        drive(agent, 2_000)
        for s in range(2):
            for a in range(2):
                assert agent.table.get(s, a) == pytest.approx(
                    agent.table_a.get(s, a) + agent.table_b.get(s, a)
                )

    def test_both_tables_receive_updates(self):
        agent = DoubleQLearningAgent(2, 2, seed=2)
        drive(agent, 2_000)
        assert agent.table_a.visit_counts.sum() > 100
        assert agent.table_b.visit_counts.sum() > 100

    def test_sum_table_counts_visits(self):
        agent = DoubleQLearningAgent(2, 2, seed=3)
        drive(agent, 500)
        assert agent.table.visit_counts.sum() == 500

    def test_less_overestimation_on_noisy_bandit(self):
        """Classic double-Q test: one state, many actions whose rewards are
        all mean-zero noise.  Plain Q-learning's max-bootstrap drives its
        value estimate positive; double-Q stays near zero."""
        rng = np.random.default_rng(0)
        n_actions = 8

        def run(agent):
            allowed = list(range(n_actions))
            for _ in range(20_000):
                action = agent.select_action(0, allowed)
                reward = rng.normal(0.0, 1.0)
                agent.update(0, action, reward, 0, allowed)
            return max(agent.table.get(0, a) for a in allowed) / (
                2.0 if isinstance(agent, DoubleQLearningAgent) else 1.0
            )

        plain = run(QLearningAgent(1, n_actions, discount=0.9,
                                   learning_rate=0.1,
                                   exploration=EpsilonGreedy(1.0), seed=4))
        double = run(DoubleQLearningAgent(1, n_actions, discount=0.9,
                                          learning_rate=0.1,
                                          exploration=EpsilonGreedy(1.0),
                                          seed=4))
        assert double < plain

    def test_runs_inside_qdpm_controller(self):
        env = SlottedDPMEnv(abstract_three_state(), ConstantRate(0.15),
                            queue_capacity=4, p_serve=0.9, seed=5)
        agent = DoubleQLearningAgent(env.n_states, env.n_actions,
                                     discount=0.95, learning_rate=0.15, seed=6)
        controller = QDPM(env, agent=agent)
        hist = controller.run(30_000, record_every=5_000)
        assert hist.reward[-1] > hist.reward[0]


class TestQLambda:
    def test_converges_to_optimal_q(self):
        agent = WatkinsQLambdaAgent(2, 2, discount=0.5, learning_rate=0.1,
                                    lambda_=0.6,
                                    exploration=EpsilonGreedy(0.3), seed=7)
        drive(agent, 30_000)
        assert agent.table.get(1, 0) == pytest.approx(2.0, abs=0.15)
        assert agent.greedy_action(0, [0, 1]) == 1

    def test_lambda_zero_matches_plain_qlearning(self):
        """With lambda = 0 the update reduces exactly to one-step Q-learning
        (same seed, same trajectory, same table)."""
        a = WatkinsQLambdaAgent(2, 2, discount=0.5, learning_rate=0.1,
                                lambda_=0.0, exploration=EpsilonGreedy(0.3),
                                seed=8)
        b = QLearningAgent(2, 2, discount=0.5, learning_rate=0.1,
                           exploration=EpsilonGreedy(0.3), seed=8)
        drive(a, 3_000)
        drive(b, 3_000)
        assert np.allclose(a.table.values, b.table.values, atol=1e-10)

    def test_traces_pruned(self):
        agent = WatkinsQLambdaAgent(2, 2, lambda_=0.5, trace_floor=1e-2, seed=9)
        drive(agent, 3_000)
        assert agent.n_active_traces <= 4  # tiny world: traces stay bounded

    def test_reset_traces(self):
        agent = WatkinsQLambdaAgent(2, 2, lambda_=0.9, seed=10)
        drive(agent, 100)
        agent.reset_traces()
        assert agent.n_active_traces == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            WatkinsQLambdaAgent(2, 2, lambda_=1.0)
        with pytest.raises(ValueError):
            WatkinsQLambdaAgent(2, 2, trace_floor=0.0)

    def test_runs_inside_qdpm_controller(self):
        env = SlottedDPMEnv(abstract_three_state(), ConstantRate(0.15),
                            queue_capacity=4, p_serve=0.9, seed=11)
        agent = WatkinsQLambdaAgent(env.n_states, env.n_actions,
                                    discount=0.95, learning_rate=0.1,
                                    lambda_=0.7, seed=12)
        controller = QDPM(env, agent=agent)
        hist = controller.run(30_000, record_every=5_000)
        assert hist.reward[-1] > hist.reward[0]
