"""Lock-step cross-replication engine: field-for-field equivalence with
the scalar :class:`~repro.sim.DPMSimulator` event loop for *stateful*
policies.

The contract mirrors the stateless busy-period kernel's: per replica,
:func:`~repro.runtime.eventsim.run_step_batched` must be
indistinguishable (rel tol <= 1e-9 on every
:class:`~repro.sim.SimReport` field, identical residency key sets) from
running the scalar event loop on that replica's trace alone — and
results must be invariant to how replications are chunked into batches
(the ``BatchedQDPM`` guarantee, carried over to the event simulator).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import get_preset
from repro.sim import NEVER, DPMSimulator, EventPolicy, IdleContext, IdleDecision
from repro.runtime import (
    policy_batch_mode,
    run_step_batched,
    run_vectorized,
    simulate_trace,
    simulate_traces_batch,
)
from repro.workload import Exponential, Pareto, Trace, renewal_trace

from test_runtime_eventsim import PRESETS, assert_reports_match

STATEFUL = [
    ("adaptive", lambda: AdaptiveTimeout(initial_timeout=2.0)),
    ("adaptive_tight", lambda: AdaptiveTimeout(
        initial_timeout=0.5, grow=2.0, shrink=0.5, max_timeout=20.0)),
    ("predictive", lambda: PredictiveShutdown(smoothing=0.5)),
    ("predictive_eager", lambda: PredictiveShutdown(
        smoothing=0.9, initial_prediction=100.0)),
]


def replication_traces(rng, n=6, duration=1_500.0, rate=0.05):
    return [renewal_trace(Exponential(rate), duration, rng) for _ in range(n)]


def run_both_batched(device_name, policy_factory, traces, service_time=0.4):
    """Scalar per-trace reports and the lock-step batch for one cell."""
    refs = [
        DPMSimulator(
            get_preset(device_name), policy_factory(),
            service_time=service_time,
        ).run(trace)
        for trace in traces
    ]
    batch = run_step_batched(
        get_preset(device_name), policy_factory(), traces,
        service_time=service_time,
    )
    return refs, batch


class TestStatefulEquivalence:
    @pytest.mark.parametrize("device_name", PRESETS)
    @pytest.mark.parametrize(
        "policy_factory", [f for _, f in STATEFUL],
        ids=[name for name, _ in STATEFUL],
    )
    def test_exponential_replications(self, device_name, policy_factory, rng):
        traces = replication_traces(rng)
        refs, batch = run_both_batched(device_name, policy_factory, traces)
        assert batch is not None, "stateful cell unexpectedly declined"
        assert len(batch) == len(traces)
        for ref, fast in zip(refs, batch):
            assert_reports_match(ref, fast)

    @pytest.mark.parametrize("device_name", ("mobile_hdd", "wlan"))
    @pytest.mark.parametrize(
        "policy_factory", [f for _, f in STATEFUL],
        ids=[name for name, _ in STATEFUL],
    )
    def test_heavy_tailed_replications(self, device_name, policy_factory, rng):
        traces = [
            renewal_trace(Pareto(1.6, 6.0), 1_500.0, rng) for _ in range(4)
        ]
        refs, batch = run_both_batched(device_name, policy_factory, traces)
        assert batch is not None
        for ref, fast in zip(refs, batch):
            assert_reports_match(ref, fast)

    def test_per_request_demands(self, rng):
        traces = []
        for _ in range(4):
            base = renewal_trace(Exponential(0.1), 900.0, rng)
            demands = rng.uniform(0.0, 1.2, size=len(base))  # zeros fall back
            traces.append(Trace(base.arrival_times, duration=900.0,
                                service_demands=demands))
        for _, factory in STATEFUL:
            refs, batch = run_both_batched("mobile_hdd", factory, traces)
            assert batch is not None
            for ref, fast in zip(refs, batch):
                assert_reports_match(ref, fast)

    def test_latencies_match_scalar_loop(self, rng):
        traces = replication_traces(rng, n=3, duration=800.0)
        refs, batch = run_both_batched(
            "mobile_hdd", lambda: AdaptiveTimeout(initial_timeout=1.0), traces
        )
        for ref, fast in zip(refs, batch):
            np.testing.assert_allclose(
                np.asarray(fast.latencies), np.asarray(ref.latencies),
                rtol=1e-9, atol=1e-12,
            )

    def test_wake_delay_merges_gaps(self):
        """Shutdown wake delays long enough to swallow following pure
        gaps: the merge path must still track the scalar loop (two_state
        round trips take 0.5 + 1.5 s against ~1-2 s gaps)."""
        traces = [
            Trace([10.0, 20.0, 21.5, 30.0, 31.0, 40.0, 50.0], duration=60.0),
            Trace([5.0, 14.0, 15.2, 24.0], duration=40.0),
        ]
        for factory in (
            lambda: AdaptiveTimeout(initial_timeout=8.0),
            lambda: PredictiveShutdown(0.9, initial_prediction=100.0),
        ):
            refs, batch = run_both_batched(
                "two_state", factory, traces, service_time=1.0
            )
            assert batch is not None
            for ref, fast in zip(refs, batch):
                assert_reports_match(ref, fast)
        # the crafted arrivals really do exercise merging: the realized
        # run has fewer idle periods than the zero-wake gap structure
        report = run_step_batched(
            get_preset("two_state"),
            PredictiveShutdown(0.9, initial_prediction=100.0),
            [traces[0]], service_time=1.0,
        )[0]
        assert report.n_idle_periods < 7


class TestDegenerateInputs:
    DEGENERATES = (
        Trace([], duration=50.0),            # empty trace, whole window idle
        Trace([100.0], duration=2_000.0),    # single gap each side of one job
        Trace([0.0, 0.0, 8.0], duration=30.0),  # t=0 arrivals, zero first gap
    )

    @pytest.mark.parametrize("device_name", PRESETS)
    def test_degenerate_traces(self, device_name):
        for _, factory in STATEFUL:
            refs, batch = run_both_batched(
                device_name, factory, list(self.DEGENERATES)
            )
            assert batch is not None
            for ref, fast in zip(refs, batch):
                assert_reports_match(ref, fast)

    def test_single_replication(self, rng):
        """R=1: the lock-step engine degenerates to one run, still exact."""
        trace = renewal_trace(Exponential(0.05), 2_000.0, rng)
        for _, factory in STATEFUL:
            refs, batch = run_both_batched("mobile_hdd", factory, [trace])
            assert batch is not None and len(batch) == 1
            assert_reports_match(refs[0], batch[0])

    def test_empty_batch(self):
        assert run_step_batched(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=1.0), []
        ) == []
        assert simulate_traces_batch(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=1.0), []
        ) == []

    def test_saturated_replications(self, rng):
        """Queueing regime: arrivals outrun service, gaps never open."""
        traces = [renewal_trace(Exponential(5.0), 120.0, rng) for _ in range(3)]
        refs, batch = run_both_batched(
            "mobile_hdd", lambda: AdaptiveTimeout(initial_timeout=1.0), traces
        )
        assert batch is not None
        for ref, fast in zip(refs, batch):
            assert fast.n_idle_periods == ref.n_idle_periods
            assert_reports_match(ref, fast)


class TestChunkingInvariance:
    def test_batch_composition_never_matters(self, rng):
        """One batch, two half-batches, and R single-trace batches all
        produce the exact same per-replica reports (dataclass equality,
        not just tolerance) — the property that makes sweep results
        independent of (chunk_size, n_jobs)."""
        traces = replication_traces(rng, n=8, duration=900.0)
        for _, factory in STATEFUL:
            def batch(ts):
                return simulate_traces_batch(
                    get_preset("mobile_hdd"), factory(), ts, service_time=0.4
                )
            full = batch(traces)
            halves = batch(traces[:4]) + batch(traces[4:])
            singles = [batch([t])[0] for t in traces]
            assert full == halves == singles

    def test_mixed_length_batch(self, rng):
        """Replications of wildly different sizes (padding exercised)."""
        traces = [
            Trace([], duration=300.0),
            renewal_trace(Exponential(0.5), 300.0, rng),
            renewal_trace(Exponential(0.02), 300.0, rng),
            Trace([150.0], duration=300.0),
        ]
        refs, batch = run_both_batched(
            "mobile_hdd", lambda: PredictiveShutdown(0.5), traces
        )
        assert batch is not None
        for ref, fast in zip(refs, batch):
            assert_reports_match(ref, fast)


STATELESS = [
    ("always_on", lambda: AlwaysOn(), False),
    ("greedy", lambda: GreedySleep(), False),
    ("timeout", lambda: FixedTimeout(2.0), False),
    ("oracle", lambda: OracleShutdown(), True),
]


class TestStatelessBridge:
    """``allow_stateless=True`` lets gap-mode policies ride the lock-step
    rounds (the fleet layer's whole-cell flattening depends on it): a
    pure per-gap ``decide_batch`` answers one-gap-per-replica rounds just
    as well as all-gaps-per-trace columns, so per replica the bridge must
    be indistinguishable from the per-trace busy-period kernel."""

    @pytest.mark.parametrize("device_name", PRESETS)
    @pytest.mark.parametrize(
        "policy_factory,oracle", [(f, o) for _, f, o in STATELESS],
        ids=[name for name, _, _ in STATELESS],
    )
    def test_bridge_matches_per_trace_kernel(
        self, device_name, policy_factory, oracle, rng
    ):
        traces = replication_traces(rng)
        batch = run_step_batched(
            get_preset(device_name), policy_factory(), traces,
            service_time=0.4, oracle=oracle, allow_stateless=True,
        )
        assert batch is not None, "stateless bridge unexpectedly declined"
        refs = [
            simulate_trace(
                get_preset(device_name), policy_factory(), trace,
                service_time=0.4, oracle=oracle,
            )
            for trace in traces
        ]
        for ref, fast in zip(refs, batch):
            assert_reports_match(ref, fast)

    @pytest.mark.parametrize("device_name", PRESETS)
    def test_degenerate_traces_via_bridge(self, device_name):
        traces = list(TestDegenerateInputs.DEGENERATES)
        for _, factory, oracle in STATELESS:
            batch = run_step_batched(
                get_preset(device_name), factory(), traces,
                service_time=0.4, oracle=oracle, allow_stateless=True,
            )
            assert batch is not None
            refs = [
                simulate_trace(
                    get_preset(device_name), factory(), trace,
                    service_time=0.4, oracle=oracle,
                )
                for trace in traces
            ]
            for ref, fast in zip(refs, batch):
                assert_reports_match(ref, fast)

    def test_bridge_is_opt_in(self, rng):
        """Without the flag, stateless policies keep declining — the
        per-trace all-gaps kernel stays their default engine."""
        traces = replication_traces(rng, n=2, duration=400.0)
        assert run_step_batched(
            get_preset("mobile_hdd"), FixedTimeout(2.0), traces,
            service_time=0.4,
        ) is None

    def test_stateful_policies_unaffected_by_flag(self, rng):
        """The flag only widens admission; step-mode policies take the
        exact same path with or without it."""
        traces = replication_traces(rng, n=3, duration=600.0)
        with_flag = run_step_batched(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=2.0),
            traces, service_time=0.4, allow_stateless=True,
        )
        without = run_step_batched(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=2.0),
            traces, service_time=0.4,
        )
        assert with_flag == without

    def test_scalar_only_policy_still_declines(self, rng):
        """A policy with neither batch hook has nothing to bridge."""
        traces = replication_traces(rng, n=2, duration=400.0)
        assert run_step_batched(
            get_preset("mobile_hdd"), _StatefulScalarOnly(), traces,
            service_time=0.4, allow_stateless=True,
        ) is None


class _StatefulScalarOnly(EventPolicy):
    """Stateful policy with neither batch hook (scalar loop only)."""

    name = "scalar_only"

    def __init__(self) -> None:
        self._last = 0.0

    def reset(self) -> None:
        self._last = 0.0

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        if self._last > 5.0:
            return IdleDecision(target_state="standby", timeout=1.0)
        return IdleDecision(target_state=None, timeout=NEVER)

    def on_idle_end(self, idle_length: float) -> None:
        self._last = idle_length


class TestDispatchAndFallback:
    def test_policy_batch_mode_classification(self):
        assert policy_batch_mode(FixedTimeout()) == "gap"
        assert policy_batch_mode(AdaptiveTimeout(initial_timeout=1.0)) == "step"
        assert policy_batch_mode(PredictiveShutdown()) == "step"
        assert policy_batch_mode(_StatefulScalarOnly()) == "scalar"

    def test_stateful_policies_still_decline_gap_batch(self, rng):
        """The all-gaps kernel must keep refusing stateful policies; the
        lock-step engine is the only batched path for them."""
        trace = renewal_trace(Exponential(0.05), 800.0, rng)
        for _, factory in STATEFUL:
            assert run_vectorized(
                get_preset("mobile_hdd"), factory(), trace, service_time=0.4
            ) is None

    def test_no_hook_policy_falls_back_scalar(self, rng):
        """simulate_traces_batch on a hook-less policy IS the scalar
        loop, trace by trace (exact dataclass equality)."""
        traces = replication_traces(rng, n=3, duration=600.0)
        batch = simulate_traces_batch(
            get_preset("mobile_hdd"), _StatefulScalarOnly(), traces,
            service_time=0.4,
        )
        refs = [
            DPMSimulator(
                get_preset("mobile_hdd"), _StatefulScalarOnly(),
                service_time=0.4,
            ).run(trace)
            for trace in traces
        ]
        assert batch == refs

    def test_stateless_policies_ride_per_trace_kernel(self, rng):
        """Gap-batchable policies take the per-trace kernel inside
        simulate_traces_batch (identical to calling it per trace)."""
        traces = replication_traces(rng, n=3, duration=600.0)
        batch = simulate_traces_batch(
            get_preset("mobile_hdd"), FixedTimeout(), traces, service_time=0.4
        )
        singles = [
            run_vectorized(
                get_preset("mobile_hdd"), FixedTimeout(), trace,
                service_time=0.4,
            )
            for trace in traces
        ]
        assert batch == singles

    def test_costly_wait_state_declines(self, rng):
        """A wait state without a free instant round trip keeps the
        scalar loop — the lock-step engine cannot fold the park into
        plain residency (wlan's on<->doze trip costs energy)."""
        traces = replication_traces(rng, n=2, duration=400.0)
        assert run_step_batched(
            get_preset("wlan"), AdaptiveTimeout(initial_timeout=1.0), traces,
            service_time=0.4, wait_state="doze",
        ) is None
        batch = simulate_traces_batch(
            get_preset("wlan"), AdaptiveTimeout(initial_timeout=1.0), traces,
            service_time=0.4, wait_state="doze",
        )
        refs = [
            DPMSimulator(
                get_preset("wlan"), AdaptiveTimeout(initial_timeout=1.0),
                service_time=0.4, wait_state="doze",
            ).run(trace)
            for trace in traces
        ]
        assert batch == refs

    def test_batched_run_never_touches_the_instance(self, rng):
        """Batch state is external: a lock-step run must leave the
        policy instance exactly as constructed (so a later scalar
        fallback or reuse cannot be contaminated)."""
        traces = replication_traces(rng, n=4, duration=900.0)
        adaptive = AdaptiveTimeout(initial_timeout=2.0)
        run_step_batched(get_preset("mobile_hdd"), adaptive, traces,
                         service_time=0.4)
        assert adaptive.current_timeout == 2.0
        predictive = PredictiveShutdown(smoothing=0.5)
        run_step_batched(get_preset("mobile_hdd"), predictive, traces,
                         service_time=0.4)
        assert predictive.prediction == 0.0

    def test_invalid_service_time_raises_like_simulator(self):
        with pytest.raises(ValueError):
            run_step_batched(
                get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=1.0),
                [Trace([1.0], duration=5.0)], service_time=0.0,
            )

    def test_keep_latencies_false_drops_only_the_array(self, rng):
        traces = replication_traces(rng, n=3, duration=600.0)
        kept = simulate_traces_batch(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=1.0),
            traces, service_time=0.4,
        )
        dropped = simulate_traces_batch(
            get_preset("mobile_hdd"), AdaptiveTimeout(initial_timeout=1.0),
            traces, service_time=0.4, keep_latencies=False,
        )
        for a, b in zip(kept, dropped):
            assert len(a.latencies) == a.n_requests > 0
            assert b.latencies == ()
            assert b.p99_latency == a.p99_latency
            assert b.mean_latency == a.mean_latency
