"""GridRunner: cell realization, sharded execution, CI aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime import GridRunner, GridSpec, RolloutSpec
from repro.workload import ConstantRate, SinusoidalRate


@pytest.fixture(scope="module")
def base():
    return RolloutSpec(
        schedule=ConstantRate(0.15),
        n_slots=1_500,
        record_every=500,
        queue_capacity=6,
        epsilon=0.08,
    )


class TestGridSpec:
    def test_cells_cartesian_product(self, base):
        grid = GridSpec(
            base=base,
            rates=(0.05, 0.3),
            devices=("abstract3", "two_state"),
            horizons=(1_000, 2_000),
            controllers=("qdpm", "frozen"),
        )
        cells = grid.cells()
        assert grid.n_cells == len(cells) == 16
        coords = {(c.rate, c.device, c.n_slots, c.controller) for c in cells}
        assert len(coords) == 16
        for cell in cells:
            assert cell.spec.n_slots == cell.n_slots
            assert cell.spec.device == cell.device
            if cell.controller == "frozen":
                assert cell.spec.policy is not None
                assert cell.spec.warmup_slots == 0
            else:
                assert cell.spec.policy is None

    def test_horizons_default_to_base(self, base):
        grid = GridSpec(base=base, rates=(0.1,))
        assert grid.horizons == (base.n_slots,)

    def test_schedule_axis_entries_pass_through(self, base):
        drift = SinusoidalRate(0.2, 0.1, 500)
        grid = GridSpec(base=base, rates=(drift,), controllers=("qdpm", "frozen"))
        cells = grid.cells()
        assert all(c.spec.schedule is drift for c in cells)
        assert "SinusoidalRate" in cells[0].rate_label

    def test_validation(self, base):
        with pytest.raises(ValueError):
            GridSpec(base=base, rates=())
        with pytest.raises(ValueError):
            GridSpec(base=base, rates=(0.1,), devices=())
        with pytest.raises(ValueError):
            GridSpec(base=base, rates=(0.1,), controllers=("warp",))
        with pytest.raises(ValueError):
            GridSpec(base=base, rates=(0.1,), horizons=(0,))
        with pytest.raises(ValueError):
            GridRunner(batch_size=0)
        with pytest.raises(ValueError):
            GridRunner(n_jobs=0)

    def test_empty_seeds_raise(self, base):
        grid = GridSpec(base=base, rates=(0.1,))
        with pytest.raises(ValueError):
            GridRunner().run(grid, seeds=[])


class TestGridRunner:
    def test_cells_match_plain_sweeps(self, base):
        """A grid cell is exactly a SweepRunner sweep of its spec."""
        from repro.runtime import SweepRunner

        grid = GridSpec(base=base, rates=(0.05, 0.3), controllers=("qdpm",))
        seeds = [1, 2, 3]
        result = GridRunner(batch_size=2).run(grid, seeds)
        for cr in result.cells:
            direct = SweepRunner(batch_size=2).run_many(cr.cell.spec, seeds)
            assert np.array_equal(cr.result.rewards(), direct.rewards())
            assert np.array_equal(cr.result.savings(), direct.savings())

    def test_bit_identical_across_n_jobs_and_batch(self, base):
        grid = GridSpec(
            base=base, rates=(0.05, 0.3), controllers=("qdpm", "frozen")
        )
        seeds = [1, 2, 3]
        a = GridRunner(batch_size=2, n_jobs=1).run(grid, seeds)
        b = GridRunner(batch_size=2, n_jobs=3).run(grid, seeds)
        c = GridRunner(batch_size=1, n_jobs=2).run(grid, seeds)
        for x, y in ((a, b), (a, c)):
            for cx, cy in zip(x.cells, y.cells):
                assert cx.result.seeds == cy.result.seeds == seeds
                assert np.array_equal(cx.result.rewards(), cy.result.rewards())
                assert np.array_equal(cx.result.savings(), cy.result.savings())

    def test_render_table(self, base):
        grid = GridSpec(base=base, rates=(0.05,), controllers=("qdpm", "frozen"))
        result = GridRunner(batch_size=2).run(grid, seeds=[1, 2])
        out = result.render()
        assert "GRID: 2 cells" in out
        assert "frozen" in out and "qdpm" in out
        assert "reward +-95" in out  # multi-seed: CI columns present

    def test_single_seed_renders_without_ci(self, base):
        grid = GridSpec(base=base, rates=(0.05,))
        out = GridRunner().run(grid, seeds=[1]).render()
        assert "reward +-95" not in out


class TestRunGridConfigPlumbing:
    def test_config_fields_forward_into_cells(self):
        """The experiments wrapper must thread every GridConfig knob into
        the realized cell specs (the CLI path CI smoke otherwise owns)."""
        from repro.experiments import GridConfig, SweepConfig, run_grid

        config = GridConfig(
            rates=(0.1, 0.2),
            devices=("abstract3",),
            horizons=(800,),
            controllers=("qdpm",),
            record_every=400,
            learning_rate=0.3,
            epsilon=0.2,
            sweep=SweepConfig(n_seeds=2, batch_size=2, n_jobs=2),
        )
        result = run_grid(config)
        assert result.seeds == config.seeds()
        assert [c.cell.rate for c in result.cells] == [0.1, 0.2]
        for cr in result.cells:
            spec = cr.cell.spec
            assert spec.n_slots == 800
            assert spec.record_every == 400
            assert spec.learning_rate == 0.3
            assert spec.epsilon == 0.2
            assert spec.queue_capacity == config.env.queue_capacity
            assert cr.result.n_seeds == 2
