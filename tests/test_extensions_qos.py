"""QoS-constrained Q-DPM tests."""

import numpy as np
import pytest

from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.extensions import QoSQDPM
from repro.workload import ConstantRate


def make_env(seed=0):
    # perf_weight 0: the Lagrangian controller owns the latency shaping
    return SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=4, p_serve=0.9, perf_weight=0.0, loss_penalty=0.0,
        seed=seed,
    )


class TestConstruction:
    def test_validation(self):
        env = make_env()
        with pytest.raises(ValueError):
            QoSQDPM(env, target_queue=-1.0)
        with pytest.raises(ValueError):
            QoSQDPM(env, target_queue=1.0, kappa=0.0)
        with pytest.raises(ValueError):
            QoSQDPM(env, target_queue=1.0, dual_every=0)
        with pytest.raises(ValueError):
            QoSQDPM(env, target_queue=1.0, lambda_init=100.0, lambda_max=1.0)


class TestDualDynamics:
    def test_tight_constraint_raises_multiplier(self):
        env = make_env(seed=1)
        controller = QoSQDPM(
            env, target_queue=0.05, kappa=0.05, lambda_init=0.0, seed=2,
        )
        controller.run(20_000, record_every=5_000)
        assert controller.lambda_ > 0.5

    def test_loose_constraint_keeps_multiplier_low(self):
        env = make_env(seed=3)
        controller = QoSQDPM(
            env, target_queue=3.9, kappa=0.05, lambda_init=0.2, seed=4,
        )
        controller.run(20_000, record_every=5_000)
        assert controller.lambda_ < 0.2

    def test_lambda_clipped_at_max(self):
        env = make_env(seed=5)
        controller = QoSQDPM(
            env, target_queue=0.0, kappa=10.0, lambda_max=1.5, seed=6,
        )
        controller.run(5_000, record_every=1_000)
        assert controller.lambda_ <= 1.5

    def test_constraint_roughly_met_at_equilibrium(self):
        env = make_env(seed=7)
        target = 0.8
        controller = QoSQDPM(
            env, target_queue=target, kappa=0.02, dual_every=400,
            learning_rate=0.15, seed=8,
        )
        hist = controller.run(120_000, record_every=10_000)
        tail_queue = float(hist.queue[-4:].mean())
        assert tail_queue == pytest.approx(target, abs=0.45)

    def test_history_fields(self):
        env = make_env(seed=9)
        controller = QoSQDPM(env, target_queue=1.0, seed=10)
        hist = controller.run(3_000, record_every=1_000)
        assert hist.slots.shape == (3,)
        assert hist.lambda_.shape == (3,)
        assert np.all(hist.lambda_ >= 0)

    def test_run_validation(self):
        controller = QoSQDPM(make_env(), target_queue=1.0)
        with pytest.raises(ValueError):
            controller.run(0)
