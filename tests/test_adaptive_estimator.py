"""Parameter estimator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import ExponentialEstimator, SlidingWindowEstimator


class TestSlidingWindow:
    def test_prior_before_data(self):
        est = SlidingWindowEstimator(window=100, prior_rate=0.3)
        assert est.estimate() == 0.3
        assert est.n_samples == 0

    def test_mle_is_window_mean(self):
        est = SlidingWindowEstimator(window=4)
        for x in (1, 0, 1, 1):
            est.update(x)
        assert est.estimate() == pytest.approx(0.75)

    def test_window_slides(self):
        est = SlidingWindowEstimator(window=2)
        est.update(1)
        est.update(1)
        est.update(0)
        est.update(0)
        assert est.estimate() == 0.0
        assert est.n_samples == 2

    def test_tracks_bernoulli_rate(self, rng):
        est = SlidingWindowEstimator(window=5000)
        for x in rng.random(20_000) < 0.27:
            est.update(bool(x))
        assert est.estimate() == pytest.approx(0.27, abs=0.02)

    def test_reset(self):
        est = SlidingWindowEstimator(window=10)
        est.update(1)
        est.reset(prior_rate=0.8)
        assert est.n_samples == 0
        assert est.estimate() == 0.8

    def test_confidence_interval_shrinks(self, rng):
        est = SlidingWindowEstimator(window=10_000)
        for x in rng.random(100) < 0.5:
            est.update(bool(x))
        wide = est.confidence_interval()
        for x in rng.random(9_900) < 0.5:
            est.update(bool(x))
        narrow = est.confidence_interval()
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_ci_contains_truth_usually(self, rng):
        est = SlidingWindowEstimator(window=2000)
        for x in rng.random(2000) < 0.4:
            est.update(bool(x))
        low, high = est.confidence_interval()
        assert low <= 0.4 <= high

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowEstimator(window=0)
        with pytest.raises(ValueError):
            SlidingWindowEstimator(prior_rate=1.5)
        with pytest.raises(ValueError):
            SlidingWindowEstimator().reset(prior_rate=-0.1)

    @given(bits=st.lists(st.booleans(), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_estimate_always_in_unit_interval(self, bits):
        est = SlidingWindowEstimator(window=10)
        for b in bits:
            est.update(b)
        assert 0.0 <= est.estimate() <= 1.0


class TestExponential:
    def test_prior_before_data(self):
        est = ExponentialEstimator(prior_rate=0.6)
        assert est.estimate() == 0.6

    def test_update_formula(self):
        est = ExponentialEstimator(smoothing=0.5, prior_rate=0.0)
        est.update(True)
        assert est.estimate() == pytest.approx(0.5)
        est.update(True)
        assert est.estimate() == pytest.approx(0.75)

    def test_tracks_rate(self, rng):
        est = ExponentialEstimator(smoothing=0.005)
        for x in rng.random(20_000) < 0.15:
            est.update(bool(x))
        assert est.estimate() == pytest.approx(0.15, abs=0.03)

    def test_reset(self):
        est = ExponentialEstimator(prior_rate=0.5)
        est.update(True)
        est.reset()
        assert est.estimate() == 0.5
        assert est.n_samples == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialEstimator(smoothing=0.0)
        with pytest.raises(ValueError):
            ExponentialEstimator(prior_rate=-0.5)
