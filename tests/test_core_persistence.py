"""Q-table persistence tests (warm-starting deployed controllers)."""

import numpy as np
import pytest

from repro.core import QDPM, QLearningAgent, QTable
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.workload import ConstantRate


class TestSaveLoad:
    def test_roundtrip_values_and_visits(self, tmp_path):
        table = QTable(6, 3, initial_value=-1.0)
        rng = np.random.default_rng(0)
        for _ in range(200):
            table.update_toward(
                int(rng.integers(6)), int(rng.integers(3)),
                float(rng.normal()), 0.3,
            )
        path = str(tmp_path / "table.npz")
        table.save(path)
        clone = QTable.load(path)
        assert np.array_equal(clone.values, table.values)
        assert np.array_equal(clone.visit_counts, table.visit_counts)

    def test_float32_dtype_preserved(self, tmp_path):
        table = QTable(2, 2, dtype=np.float32)
        path = str(tmp_path / "t32.npz")
        table.save(path)
        clone = QTable.load(path)
        assert clone.values.dtype == np.float32

    def test_corrupt_file_rejected(self, tmp_path):
        path = str(tmp_path / "bad.npz")
        np.savez(path, q=np.zeros((2, 2)), visits=np.zeros((3, 3)))
        with pytest.raises(ValueError, match="corrupt"):
            QTable.load(path)

    def test_warm_start_resumes_learning(self, tmp_path):
        """Train, persist, restore into a fresh controller: the restored
        controller performs immediately at trained level."""
        def make_env(seed):
            return SlottedDPMEnv(
                abstract_three_state(), ConstantRate(0.15),
                queue_capacity=4, p_serve=0.9, seed=seed,
            )

        env = make_env(1)
        controller = QDPM(env, learning_rate=0.1, epsilon=0.08, seed=2)
        controller.run(60_000, record_every=10_000)
        path = str(tmp_path / "trained.npz")
        controller.agent.table.save(path)

        env2 = make_env(3)
        agent = QLearningAgent(env2.n_states, env2.n_actions,
                               discount=0.95, learning_rate=0.1, seed=4)
        agent.table = QTable.load(path)
        warm = QDPM(env2, agent=agent)
        hist = warm.run(10_000, record_every=5_000)

        env3 = make_env(3)
        cold = QDPM(env3, learning_rate=0.1, epsilon=0.08, seed=4)
        cold_hist = cold.run(10_000, record_every=5_000)

        assert hist.reward[0] > cold_hist.reward[0] + 0.3
