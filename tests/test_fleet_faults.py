"""Failure-aware routing: scalar/vectorized pinning, failover semantics.

The contract extends the fleet's determinism discipline to injected
faults: the vectorized failure-aware engine
(:func:`~repro.fleet.route_with_failover_step`, dense backlog + an
incremental transition-replay mask) must be **bit-identical** to the
scalar reference loop (:func:`~repro.fleet.route_with_failover`,
list-walking backlog + exact per-device interval queries) on every
router, preset, failover policy, and fault schedule — including the
degenerate ones (lock-step correlated failures, cold-start cohorts,
whole-fleet outages); a no-fault schedule must reproduce plain routing
choice for choice; and the fleet engines (`auto`/`flat` vs `scalar`)
must agree on every report field under faults at rel <= 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import AlwaysOn, FixedTimeout, GreedySleep
from repro.device import get_preset
from repro.fleet import (
    ROUTERS,
    Dispatcher,
    FailoverConfig,
    FleetSweepSpec,
    make_router,
    route_with_failover,
    route_with_failover_step,
    run_fleet,
    run_fleet_batch,
)
from repro.fleet.dispatch import RouteContext
from repro.runtime.simsweep import PolicySpec, TraceSpec
from repro.workload import (
    Exponential,
    FaultProcess,
    FaultSchedule,
    Trace,
    no_faults,
    renewal_trace,
)

from test_fleet_sweep import assert_fleet_reports_match

PRESETS = ("mobile_hdd", "wlan")


def make_context(trace, n_devices, device_name="mobile_hdd", seed=0,
                 service_time=0.4):
    demands = trace.service_demands
    if demands is None:
        demands = np.full(len(trace), service_time)
    return RouteContext(
        arrivals=trace.arrival_times,
        demands=demands,
        n_devices=n_devices,
        device=get_preset(device_name),
        rng=np.random.default_rng(seed),
    )


def fault_scenarios(n_devices, horizon, seed=5):
    """The schedule battery every pinning test runs: a realistic seeded
    exponential process, the degenerate correlated lock-step process, a
    cold-start cohort, a single long outage, and a whole-fleet blackout
    window (every device down at once mid-trace)."""
    scenarios = {
        "exponential": FaultProcess(mtbf=40.0, mttr=6.0).realize(
            n_devices, horizon, seed=seed
        ),
        "lockstep": FaultProcess(
            mtbf=25.0, mttr=5.0, deterministic=True
        ).realize(n_devices, horizon, seed=seed),
        "cold_start": FaultProcess(
            mtbf=60.0, mttr=10.0, start_down=0.5
        ).realize(n_devices, horizon, seed=seed),
        "long_outage": FaultSchedule(
            [[(0.0, horizon * 0.9)]] + [[] for _ in range(n_devices - 1)],
            horizon,
        ),
    }
    if n_devices > 1:
        blackout = (horizon * 0.3, horizon * 0.5)
        scenarios["blackout"] = FaultSchedule(
            [[blackout] for _ in range(n_devices)], horizon
        )
    return scenarios


class TestFailoverConfig:
    def test_defaults_valid(self):
        cfg = FailoverConfig()
        assert cfg.policy == "next_best"

    @pytest.mark.parametrize("kwargs", [
        {"policy": "teleport"},
        {"max_retries": -1},
        {"backoff_base": 0.0},
        {"backoff_base": -1.0},
        {"backoff_cap": 0.1, "backoff_base": 0.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FailoverConfig(**kwargs)


class TestNoFaultBitIdentity:
    """With an always-up schedule the failure-aware engines must make
    exactly the choices of plain routing: the first attempt is always
    the router's natural, mask-oblivious decision."""

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    @pytest.mark.parametrize("engine",
                             (route_with_failover, route_with_failover_step))
    def test_matches_plain_route(self, name, engine, rng):
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        router = make_router(name)
        plain = router.route(make_context(trace, 4, seed=9))
        outcome = engine(router, make_context(trace, 4, seed=9),
                         no_faults(4, trace.duration))
        assert np.array_equal(outcome.assignments, plain)
        assert outcome.n_retries == 0
        assert outcome.n_dropped == 0
        assert outcome.latency_inflation == 0.0
        assert np.array_equal(outcome.dispatch_times, trace.arrival_times)


class TestScalarVectorizedPinning:
    """route_with_failover_step must be bit-identical to the scalar
    reference — assignments, dispatch instants, and retry counts —
    across routers x presets x failover policies x fault scenarios."""

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    @pytest.mark.parametrize("device_name", PRESETS)
    @pytest.mark.parametrize("policy", ("next_best", "resubmit"))
    def test_pinned_across_scenarios(self, name, device_name, policy, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        router = make_router(name)
        config = FailoverConfig(policy=policy, max_retries=3,
                                backoff_base=0.25, backoff_cap=2.0)
        for label, faults in fault_scenarios(4, trace.duration).items():
            ref = route_with_failover(
                router, make_context(trace, 4, device_name, seed=9),
                faults, config,
            )
            fast = route_with_failover_step(
                router, make_context(trace, 4, device_name, seed=9),
                faults, config,
            )
            assert np.array_equal(ref.assignments, fast.assignments), label
            assert np.array_equal(ref.retries, fast.retries), label
            # bit-identical, not approximately equal
            assert np.array_equal(ref.dispatch_times,
                                  fast.dispatch_times), label

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_pinned_single_device_fleet(self, name, rng):
        """n_devices=1: failover has nowhere to go, so outages must
        produce drops (or backoff landings) identically on both paths."""
        trace = renewal_trace(Exponential(0.5), 100.0, rng)
        faults = FaultSchedule([[(10.0, 30.0), (60.0, 61.0)]], trace.duration)
        router = make_router(name)
        config = FailoverConfig(max_retries=2, backoff_base=0.5,
                                backoff_cap=4.0)
        ref = route_with_failover(
            router, make_context(trace, 1, seed=3), faults, config)
        fast = route_with_failover_step(
            router, make_context(trace, 1, seed=3), faults, config)
        assert np.array_equal(ref.assignments, fast.assignments)
        assert np.array_equal(ref.dispatch_times, fast.dispatch_times)
        assert ref.n_dropped > 0  # the 20s outage outlives the backoff

    def test_device_count_mismatch_raises(self, rng):
        trace = renewal_trace(Exponential(0.5), 50.0, rng)
        for engine in (route_with_failover, route_with_failover_step):
            with pytest.raises(ValueError, match="covers 2 devices"):
                engine(make_router("jsq"), make_context(trace, 4),
                       no_faults(2, trace.duration))


class TestFailoverSemantics:
    def test_next_best_lands_on_survivor(self):
        """Device 0 down for the whole window: every request that would
        naturally land there fails over to a live device instead."""
        trace = Trace([1.0, 2.0, 3.0, 4.0], duration=10.0)
        faults = FaultSchedule([[(0.0, 10.0)], []], 10.0)
        outcome = route_with_failover(
            make_router("jsq"), make_context(trace, 2), faults,
            FailoverConfig(policy="next_best"),
        )
        assert outcome.n_dropped == 0
        assert (outcome.assignments == 1).all()
        assert outcome.n_retries == 4      # one backoff each before rerouting
        assert outcome.latency_inflation > 0.0

    def test_resubmit_drops_under_stale_health_view(self):
        """resubmit re-asks the fault-oblivious router; jsq keeps
        re-picking the (empty-queued) dead device, so the request
        exhausts its retries and drops — the measurable cost of
        health-blind dispatch that next_best avoids."""
        trace = Trace([1.0], duration=200.0)
        faults = FaultSchedule([[(0.0, 150.0)], []], 200.0)
        resubmit = route_with_failover(
            make_router("jsq"), make_context(trace, 2), faults,
            FailoverConfig(policy="resubmit", max_retries=3,
                           backoff_base=0.5, backoff_cap=8.0),
        )
        assert resubmit.assignments.tolist() == [-1]
        assert resubmit.retries.tolist() == [3]
        next_best = route_with_failover(
            make_router("jsq"), make_context(trace, 2), faults,
            FailoverConfig(policy="next_best", max_retries=3),
        )
        assert next_best.assignments.tolist() == [1]

    def test_backoff_delays_are_capped_exponential(self):
        """A whole-fleet blackout forces consecutive backoffs: the
        dispatch delay must be the sum of min(base * 2**(k-1), cap)."""
        trace = Trace([1.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 90.0)], [(0.0, 90.0)]], 100.0)
        config = FailoverConfig(max_retries=4, backoff_base=1.0,
                                backoff_cap=4.0)
        outcome = route_with_failover(
            make_router("round_robin"), make_context(trace, 2),
            faults, config,
        )
        # delays 1, 2, 4, 4 — still inside the blackout, so it drops
        assert outcome.assignments.tolist() == [-1]
        assert outcome.dispatch_times.tolist() == [1.0 + 1.0 + 2.0 + 4.0 + 4.0]

    def test_fleet_recovers_mid_backoff(self):
        """A blackout that ends inside the backoff window: the retry
        probe sees the repaired device and lands there."""
        trace = Trace([1.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 3.0)], [(0.0, 90.0)]], 100.0)
        outcome = route_with_failover(
            make_router("round_robin"), make_context(trace, 2), faults,
            FailoverConfig(max_retries=4, backoff_base=1.0, backoff_cap=4.0),
        )
        # natural pick 0 (down), backoff to 2.0 (still down), to 4.0:
        # device 0 repaired — lands there
        assert outcome.assignments.tolist() == [0]
        assert outcome.dispatch_times.tolist() == [4.0]
        assert outcome.retries.tolist() == [2]

    def test_max_retries_zero_drops_immediately(self):
        trace = Trace([1.0], duration=10.0)
        faults = FaultSchedule([[(0.0, 10.0)], []], 10.0)
        outcome = route_with_failover(
            make_router("round_robin"), make_context(trace, 2), faults,
            FailoverConfig(max_retries=0),
        )
        assert outcome.assignments.tolist() == [-1]
        assert outcome.dispatch_times.tolist() == [1.0]


class TestDispatchWithFaults:
    def test_subtraces_carry_delayed_dispatches(self):
        """A failed-over request enters its device's sub-trace at the
        delayed dispatch instant, stable-sorted against other landings
        — request 0's retry lands on device 1 *after* request 2's
        natural dispatch there, so the sub-trace order flips."""
        trace = Trace([1.0, 1.2, 1.3], duration=10.0,
                      service_demands=[0.3, 0.2, 0.7])
        faults = FaultSchedule([[(0.95, 1.05)], []], 10.0)
        subs, outcome = Dispatcher(
            "round_robin", 2, get_preset("mobile_hdd"),
        ).dispatch_with_faults(
            trace, faults, FailoverConfig(backoff_base=0.5),
        )
        # request 0: natural pick 0 (down at 1.0), retried at 1.5 onto
        # device 1; request 1: cursor pick 0 (repaired by 1.2); request
        # 2: cursor pick 1, dispatching at 1.3 < 1.5
        assert subs[0].arrival_times.tolist() == [1.2]
        assert subs[0].service_demands.tolist() == [0.2]
        assert subs[1].arrival_times.tolist() == [1.3, 1.5]
        assert subs[1].service_demands.tolist() == [0.7, 0.3]
        assert outcome.n_retries == 1

    def test_dropped_requests_reach_no_subtrace(self):
        trace = Trace([1.0, 5.0], duration=10.0)
        faults = FaultSchedule([[(0.0, 10.0)], [(0.0, 10.0)]], 10.0)
        subs, outcome = Dispatcher(
            "jsq", 2, get_preset("mobile_hdd"),
        ).dispatch_with_faults(trace, faults, FailoverConfig(max_retries=1))
        assert outcome.n_dropped == 2
        assert all(len(s) == 0 for s in subs)

    def test_window_stretches_to_latest_landing(self):
        """A retry landing past the nominal window must stretch every
        sub-trace's shared duration to cover it."""
        trace = Trace([9.5], duration=10.0)
        faults = FaultSchedule([[(9.0, 10.0)], []], 10.0)
        subs, outcome = Dispatcher(
            "round_robin", 2, get_preset("mobile_hdd"),
        ).dispatch_with_faults(
            trace, faults, FailoverConfig(backoff_base=1.0),
        )
        assert outcome.dispatch_times.tolist() == [10.5]
        assert all(s.duration == 10.5 for s in subs)

    def test_requires_schedule(self, rng):
        trace = renewal_trace(Exponential(0.5), 50.0, rng)
        with pytest.raises(ValueError, match="fault schedule"):
            Dispatcher("jsq", 2, get_preset("mobile_hdd")).\
                dispatch_with_faults(trace, None)

    def test_accepts_process_and_is_seed_deterministic(self, rng):
        trace = renewal_trace(Exponential(0.8), 200.0, rng)
        dispatcher = Dispatcher("jsq", 3, get_preset("mobile_hdd"), seed=4)
        proc = FaultProcess(mtbf=30.0, mttr=5.0)
        subs_a, out_a = dispatcher.dispatch_with_faults(trace, proc)
        subs_b, out_b = dispatcher.dispatch_with_faults(trace, proc)
        assert np.array_equal(out_a.assignments, out_b.assignments)
        assert np.array_equal(out_a.dispatch_times, out_b.dispatch_times)
        _, out_c = dispatcher.dispatch_with_faults(trace, proc, fault_seed=99)
        assert not np.array_equal(out_a.assignments, out_c.assignments)


class TestFleetEnginesUnderFaults:
    """run_fleet's auto/flat engines vs the scalar reference, with
    faults injected: every FleetReport field at rel <= 1e-9 (assignments
    and dispatch instants themselves are bit-identical upstream)."""

    POLICIES = [("always_on", AlwaysOn), ("greedy", GreedySleep),
                ("timeout", FixedTimeout)]

    @pytest.mark.parametrize("engine", ("auto", "flat"))
    @pytest.mark.parametrize("router_name", sorted(ROUTERS))
    @pytest.mark.parametrize(
        "policy_factory", [f for _, f in POLICIES],
        ids=[name for name, _ in POLICIES],
    )
    def test_engines_pinned_under_faults(self, engine, router_name,
                                         policy_factory, rng):
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        device = get_preset("mobile_hdd")
        kwargs = dict(
            service_time=0.4, route_seed=21,
            faults=FaultProcess(mtbf=50.0, mttr=8.0), fault_seed=77,
            failover=FailoverConfig(max_retries=3),
        )
        ref = run_fleet(device, policy_factory(), trace,
                        make_router(router_name), 4, engine="scalar",
                        **kwargs)
        fast = run_fleet(device, policy_factory(), trace,
                         make_router(router_name), 4, engine=engine,
                         **kwargs)
        assert_fleet_reports_match(ref, fast)
        for field in ("availability", "n_retries", "n_dropped",
                      "failover_latency_inflation"):
            assert getattr(ref, field) == getattr(fast, field), field

    @pytest.mark.parametrize("engine", ("auto", "flat"))
    def test_degenerate_blackout_pinned(self, engine, rng):
        """Whole-fleet blackout mid-trace: drops occur, some devices may
        end up with empty sub-traces — engines must still agree."""
        trace = renewal_trace(Exponential(1.0), 120.0, rng)
        device = get_preset("wlan")
        faults = FaultSchedule([[(30.0, 60.0)]] * 3, trace.duration)
        kwargs = dict(service_time=0.4, route_seed=5, faults=faults,
                      failover=FailoverConfig(max_retries=2,
                                              backoff_base=0.5,
                                              backoff_cap=2.0))
        ref = run_fleet(device, FixedTimeout(), trace, make_router("jsq"),
                        3, engine="scalar", **kwargs)
        fast = run_fleet(device, FixedTimeout(), trace, make_router("jsq"),
                         3, engine=engine, **kwargs)
        assert ref.n_dropped > 0
        assert_fleet_reports_match(ref, fast)

    @pytest.mark.parametrize("engine", ("auto", "flat"))
    def test_every_request_dropped_pinned(self, engine):
        """Whole fleet down for the whole window, zero retries: every
        request drops, every sub-trace is empty — both engines must
        still produce a coherent (all-zero traffic) report."""
        trace = Trace(np.array([1.0, 2.0, 3.0]), 100.0)
        device = get_preset("mobile_hdd")
        faults = FaultSchedule([[(0.0, 100.0)], [(0.0, 100.0)]], 100.0)
        kwargs = dict(service_time=0.4, route_seed=1, faults=faults,
                      failover=FailoverConfig(max_retries=0))
        ref = run_fleet(device, FixedTimeout(), trace,
                        make_router("round_robin"), 2, engine="scalar",
                        **kwargs)
        fast = run_fleet(device, FixedTimeout(), trace,
                         make_router("round_robin"), 2, engine=engine,
                         **kwargs)
        for report in (ref, fast):
            assert report.n_dropped == len(trace)
            assert report.n_requests == 0
            assert report.availability == 0.0
        assert_fleet_reports_match(ref, fast)

    def test_report_metrics_reflect_faults(self, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        device = get_preset("mobile_hdd")
        report = run_fleet(
            device, AlwaysOn(), trace, make_router("jsq"), 3,
            service_time=0.4,
            faults=FaultProcess(mtbf=30.0, mttr=10.0), fault_seed=2,
        )
        assert 0.0 < report.availability < 1.0
        assert report.n_retries > 0
        assert report.failover_latency_inflation > 0.0
        fault_free = run_fleet(device, AlwaysOn(), trace,
                               make_router("jsq"), 3, service_time=0.4)
        assert fault_free.availability == 1.0
        assert fault_free.n_retries == 0
        assert fault_free.n_dropped == 0

    def test_batch_matches_per_seed_runs(self, rng):
        """Chunking invariance under faults: a flattened batch of R
        seeded runs equals R independent run_fleet calls."""
        traces = [renewal_trace(Exponential(0.8), 200.0,
                                np.random.default_rng(s)) for s in (1, 2, 3)]
        device = get_preset("mobile_hdd")
        proc = FaultProcess(mtbf=40.0, mttr=6.0)
        batched = run_fleet_batch(
            device, GreedySleep(), traces, make_router("power_aware"), 3,
            service_time=0.4, route_seeds=[11, 12, 13],
            faults=proc, fault_seeds=[21, 22, 23],
        )
        for trace, rs, fs, got in zip(traces, (11, 12, 13), (21, 22, 23),
                                      batched):
            solo = run_fleet(
                device, GreedySleep(), trace, make_router("power_aware"), 3,
                service_time=0.4, route_seed=rs, faults=proc, fault_seed=fs,
                engine="flat",
            )
            assert_fleet_reports_match(solo, got)
            assert solo.n_retries == got.n_retries
            assert solo.n_dropped == got.n_dropped


class TestFleetSweepSpecFaultValidation:
    """Satellite: degenerate fault configs must fail fast at the spec."""

    def _spec(self, **overrides):
        kwargs = dict(
            device="mobile_hdd",
            fleet_sizes=(2,),
            routers=("jsq",),
            policies=(PolicySpec(label="always_on", policy=AlwaysOn()),),
            trace=TraceSpec(name="exp", dist=Exponential(1.0),
                            duration=100.0),
            service_time=0.4,
        )
        kwargs.update(overrides)
        return FleetSweepSpec(**kwargs)

    def test_valid_process_accepted(self):
        spec = self._spec(faults=FaultProcess(mtbf=30.0, mttr=5.0))
        assert spec.faults.mtbf == 30.0

    def test_mtbf_shorter_than_a_request_rejected(self):
        with pytest.raises(ValueError, match="shorter than a single"):
            self._spec(faults=FaultProcess(mtbf=0.1, mttr=5.0))

    def test_mttr_nonpositive_rejected_at_the_source(self):
        with pytest.raises(ValueError, match="mttr"):
            FaultProcess(mtbf=10.0, mttr=0.0)
        with pytest.raises(ValueError, match="mttr"):
            FaultProcess(mtbf=10.0, mttr=-1.0)

    def test_whole_fleet_start_down_rejected_at_the_source(self):
        with pytest.raises(ValueError, match="no surviving device"):
            FaultProcess(mtbf=10.0, mttr=1.0, start_down=1.0)

    def test_all_down_at_t0_schedule_rejected(self):
        dead = FaultSchedule([[(0.0, 5.0)], [(0.0, 3.0)]], 100.0)
        with pytest.raises(ValueError, match="down at t=0"):
            self._spec(faults=dead)

    def test_schedule_must_match_single_fleet_size(self):
        sched = no_faults(2, 100.0)
        assert self._spec(faults=sched).faults is sched
        with pytest.raises(ValueError, match="single-fleet-size"):
            self._spec(faults=sched, fleet_sizes=(2, 4))

    def test_wrong_type_rejected(self):
        with pytest.raises(ValueError, match="FaultProcess"):
            self._spec(faults=0.5)

    def test_failover_type_checked(self):
        with pytest.raises(ValueError, match="FailoverConfig"):
            self._spec(failover={"policy": "next_best"})
