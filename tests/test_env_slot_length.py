"""Slot-length generality: the slotted stack must work for any T_slot.

All headline experiments use T_slot = 1; these tests pin down that the
discretization (transition countdowns, per-slot energies, model/env
agreement, Little's-law latency in seconds) stays consistent at other
slot lengths.
"""

import numpy as np
import pytest

from repro.baselines import greedy_sleep_policy
from repro.device import abstract_three_state
from repro.env import ModeSpace, SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate


class TestDiscretization:
    def test_countdown_scales_inversely(self, device3):
        # sleep->active latency 3 s: 3 slots at T=1, 6 at T=0.5, 1 at T=3
        assert ModeSpace(device3, 1.0).latency_slots("sleep", "active") == 3
        assert ModeSpace(device3, 0.5).latency_slots("sleep", "active") == 6
        assert ModeSpace(device3, 3.0).latency_slots("sleep", "active") == 1

    def test_residence_energy_scales_with_slot(self, device3):
        space = ModeSpace(device3, 0.5)
        active = space.steady_mode_index("active")
        effect = space.effect(active, space.action_index("active"))
        assert effect.energy == pytest.approx(0.5)  # 1 W x 0.5 s

    def test_transition_energy_independent_of_slot(self, device3):
        """The total wake-up energy must not depend on the discretization."""
        for slot in (0.5, 1.0, 2.0, 3.0):
            space = ModeSpace(device3, slot)
            idx = space.steady_mode_index("sleep")
            wake = space.action_index("active")
            total = 0.0
            for _ in range(space.latency_slots("sleep", "active")):
                effect = space.effect(idx, wake)
                total += effect.energy
                idx = effect.next_mode
            assert idx == space.steady_mode_index("active")
            assert total == pytest.approx(1.2), f"slot={slot}"


class TestModelEnvAgreementAtHalfSlot:
    def test_greedy_policy_statistics_match(self):
        device = abstract_three_state()
        kwargs = dict(slot_length=0.5, queue_capacity=4, p_serve=0.8,
                      perf_weight=0.3, loss_penalty=1.0)
        model = build_dpm_model(device, arrival_rate=0.1, **kwargs)
        env = SlottedDPMEnv(device, ConstantRate(0.1), seed=9, **kwargs)
        policy = greedy_sleep_policy(env)
        rewards = []
        for _ in range(40_000):
            state = env.state
            action = policy(state)
            if action not in env.allowed_actions(state):
                action = env.allowed_actions(state)[0]
            _, r, _ = env.step(action)
            rewards.append(r)
        exact = model.evaluate_policy(policy)
        assert np.mean(rewards) == pytest.approx(exact.average_reward, abs=0.04)
        # latency reported in seconds, not slots
        assert env.totals.mean_latency(0.5) == pytest.approx(
            exact.mean_latency, rel=0.25
        )

    def test_optimal_policy_solvable_at_any_slot(self):
        device = abstract_three_state()
        for slot in (0.25, 2.0):
            model = build_dpm_model(
                device, arrival_rate=0.15, slot_length=slot, queue_capacity=4
            )
            result = model.solve(0.95, "policy_iteration")
            perf = model.evaluate_policy(result.policy)
            assert 0.0 <= perf.energy_saving_ratio < 1.0
