"""Q-table tests, including the Eqn.-3 update contraction property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import QTable


class TestConstruction:
    def test_shape_and_init(self):
        table = QTable(4, 3, initial_value=-1.5)
        assert table.n_observations == 4
        assert table.n_actions == 3
        assert table.get(2, 1) == -1.5

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            QTable(0, 3)
        with pytest.raises(ValueError):
            QTable(3, 0)

    def test_float32_memory(self):
        small = QTable(100, 4, dtype=np.float32)
        big = QTable(100, 4, dtype=np.float64)
        assert small.memory_bytes() == big.memory_bytes() // 2


class TestUpdate:
    def test_update_toward_formula(self):
        table = QTable(2, 2)
        table.set(0, 1, 10.0)
        delta = table.update_toward(0, 1, 20.0, learning_rate=0.25)
        assert table.get(0, 1) == pytest.approx(12.5)
        assert delta == pytest.approx(2.5)

    def test_visit_counting(self):
        table = QTable(2, 2)
        assert table.visits(0, 0) == 0
        table.update_toward(0, 0, 1.0, 0.5)
        table.update_toward(0, 0, 1.0, 0.5)
        assert table.visits(0, 0) == 2
        assert table.visits(1, 1) == 0

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            QTable(1, 1).update_toward(0, 0, 1.0, 1.5)

    def test_lr_one_jumps_to_target(self):
        table = QTable(1, 1, initial_value=5.0)
        table.update_toward(0, 0, -3.0, 1.0)
        assert table.get(0, 0) == -3.0

    def test_lr_zero_is_noop(self):
        table = QTable(1, 1, initial_value=5.0)
        assert table.update_toward(0, 0, 100.0, 0.0) == 0.0
        assert table.get(0, 0) == 5.0

    @given(
        target=st.floats(min_value=-100, max_value=100),
        lr=st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_repeated_updates_converge_to_target(self, target, lr):
        """The relaxation update is a contraction toward a fixed target."""
        table = QTable(1, 1, initial_value=0.0)
        for _ in range(2000):
            table.update_toward(0, 0, target, lr)
        assert table.get(0, 0) == pytest.approx(target, abs=1e-3 + 1e-3 * abs(target))


class TestSelection:
    def test_best_action_masked(self):
        table = QTable(1, 3)
        table.set(0, 0, 1.0)
        table.set(0, 1, 5.0)
        table.set(0, 2, 3.0)
        assert table.best_action(0, [0, 2]) == 2  # action 1 not allowed

    def test_best_action_empty_raises(self):
        with pytest.raises(ValueError):
            QTable(1, 2).best_action(0, [])

    def test_tie_break_deterministic_without_rng(self):
        table = QTable(1, 3)
        assert table.best_action(0, [2, 0, 1]) == 2  # first in allowed order

    def test_tie_break_random_with_rng(self):
        table = QTable(1, 3)
        rng = np.random.default_rng(0)
        picks = {table.best_action(0, [0, 1, 2], rng=rng) for _ in range(50)}
        assert len(picks) > 1

    def test_max_value(self):
        table = QTable(1, 3)
        table.set(0, 1, 7.0)
        assert table.max_value(0, [0, 1]) == 7.0
        assert table.max_value(0, [0, 2]) == 0.0

    def test_max_value_empty_raises(self):
        with pytest.raises(ValueError):
            QTable(1, 2).max_value(0, [])

    def test_greedy_actions_vector(self):
        table = QTable(2, 2)
        table.set(0, 1, 1.0)
        table.set(1, 0, 1.0)
        actions = table.greedy_actions([[0, 1], [0, 1]])
        assert actions.tolist() == [1, 0]


class TestCopy:
    def test_copy_is_independent(self):
        table = QTable(2, 2)
        table.update_toward(0, 0, 5.0, 1.0)
        clone = table.copy()
        clone.update_toward(0, 0, -5.0, 1.0)
        assert table.get(0, 0) == 5.0
        assert clone.get(0, 0) == -5.0
        assert clone.visits(0, 0) == 2

    def test_values_returns_copy(self):
        table = QTable(1, 1)
        values = table.values
        values[0, 0] = 99.0
        assert table.get(0, 0) == 0.0
