"""Cross-module integration tests: the headline behaviours end to end."""

import numpy as np
import pytest

from repro.baselines import always_on_policy, greedy_sleep_policy
from repro.core import QDPM
from repro.device import abstract_three_state, get_preset
from repro.env import QueueBucketObservation, SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate, PiecewiseConstantRate


class TestHeadlineClaim:
    """Fig. 1's substance: Q-DPM approaches the analytical optimum."""

    def test_qdpm_approaches_optimal_payoff(self):
        device = abstract_three_state()
        rate = 0.12
        model = build_dpm_model(device, arrival_rate=rate,
                                queue_capacity=4, p_serve=0.9)
        optimal = model.solve(0.95, "policy_iteration")
        opt_soft = model.evaluate_policy(optimal.policy, epsilon=0.08)

        env = SlottedDPMEnv(device, ConstantRate(rate), queue_capacity=4,
                            p_serve=0.9, seed=21)
        controller = QDPM(env, discount=0.95, learning_rate=0.1,
                          epsilon=0.08, seed=22)
        hist = controller.run(150_000, record_every=10_000)
        online_tail = hist.reward[-5:].mean()
        assert online_tail == pytest.approx(opt_soft.average_reward, abs=0.08)

    def test_qdpm_competitive_with_naive_extremes(self):
        """The learned policy clearly beats always-on and at least matches
        greedy-sleep (which happens to be near-optimal at this low rate)."""
        device = abstract_three_state()
        rate = 0.12
        model = build_dpm_model(device, arrival_rate=rate,
                                queue_capacity=4, p_serve=0.9)
        env = SlottedDPMEnv(device, ConstantRate(rate), queue_capacity=4,
                            p_serve=0.9, seed=31)
        controller = QDPM(env, seed=32, epsilon=0.08)
        controller.run(150_000)
        learned = model.evaluate_policy(controller.greedy_policy())
        on = model.evaluate_policy(always_on_policy(env))
        greedy = model.evaluate_policy(greedy_sleep_policy(env))
        assert learned.average_reward > on.average_reward + 0.2
        assert learned.average_reward > greedy.average_reward - 0.02


class TestNonstationaryTracking:
    """Fig. 2's substance: Q-DPM recovers after a regime switch."""

    def test_recovers_after_switch(self):
        device = abstract_three_state()
        schedule = PiecewiseConstantRate([(40_000, 0.30), (40_000, 0.03)])
        env = SlottedDPMEnv(device, schedule, queue_capacity=4,
                            p_serve=0.9, seed=41)
        controller = QDPM(env, learning_rate=0.5, epsilon=0.05, seed=42)
        hist = controller.run(80_000, record_every=2_000)

        model_after = build_dpm_model(device, arrival_rate=0.03,
                                      queue_capacity=4, p_serve=0.9)
        opt_after = model_after.solve(0.95, "policy_iteration")
        target = model_after.evaluate_policy(
            opt_after.policy, epsilon=0.05
        ).average_reward

        post = hist.reward[hist.slots >= 60_000]
        assert post.mean() == pytest.approx(target, abs=0.12)


class TestCoarseObservation:
    """The embedded-friendly small table still learns a decent policy."""

    def test_bucket_observation_learns(self):
        device = abstract_three_state()
        env = SlottedDPMEnv(device, ConstantRate(0.12), queue_capacity=8,
                            p_serve=0.9, seed=51)
        obs = QueueBucketObservation(env, boundaries=(1, 4))
        controller = QDPM(env, observation=obs, learning_rate=0.1,
                          epsilon=0.08, seed=52)
        hist = controller.run(100_000, record_every=10_000)
        env_on = SlottedDPMEnv(device, ConstantRate(0.12), queue_capacity=8,
                               p_serve=0.9, seed=51)
        on_policy = always_on_policy(env_on)
        total = 0.0
        for _ in range(20_000):
            state = env_on.state
            action = on_policy(state)
            if action not in env_on.allowed_actions(state):
                action = env_on.allowed_actions(state)[0]
            _, r, _ = env_on.step(action)
            total += r
        always_on_reward = total / 20_000
        assert hist.reward[-3:].mean() > always_on_reward

    def test_table_is_much_smaller(self):
        device = get_preset("abstract3")
        env = SlottedDPMEnv(device, ConstantRate(0.1), queue_capacity=16)
        obs = QueueBucketObservation(env, boundaries=(1, 4))
        assert obs.n_observations <= env.n_states // 4


class TestDeterminism:
    """Full-stack runs are reproducible from seeds."""

    def test_identical_runs(self):
        def run():
            env = SlottedDPMEnv(abstract_three_state(), ConstantRate(0.2),
                                queue_capacity=4, seed=61)
            controller = QDPM(env, seed=62)
            return controller.run(5_000, record_every=1_000)

        a, b = run(), run()
        assert np.array_equal(a.reward, b.reward)
        assert np.array_equal(a.energy, b.energy)
