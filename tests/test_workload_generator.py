"""Trace builder tests."""

import numpy as np
import pytest

from repro.workload import (
    ConstantRate,
    Exponential,
    PiecewiseConstantRate,
    bernoulli_arrivals,
    piecewise_renewal_trace,
    renewal_trace,
    trace_from_slots,
)


class TestRenewalTrace:
    def test_duration_and_rate(self, rng):
        trace = renewal_trace(Exponential(0.5), 10_000.0, rng)
        assert trace.duration == 10_000.0
        assert trace.stats().arrival_rate == pytest.approx(0.5, rel=0.05)

    def test_all_arrivals_inside_window(self, rng):
        trace = renewal_trace(Exponential(2.0), 100.0, rng)
        assert trace.arrival_times.max() < 100.0

    def test_max_requests_guard(self, rng):
        trace = renewal_trace(Exponential(100.0), 1e6, rng, max_requests=500)
        assert len(trace) == 500

    def test_bad_duration(self, rng):
        with pytest.raises(ValueError):
            renewal_trace(Exponential(1.0), 0.0, rng)


class TestPiecewiseRenewal:
    def test_switch_times(self, rng):
        trace, switches = piecewise_renewal_trace(
            [(Exponential(1.0), 100.0), (Exponential(0.1), 200.0)], rng
        )
        assert switches == [100.0]
        assert trace.duration == 300.0

    def test_rates_differ_across_segments(self, rng):
        trace, _ = piecewise_renewal_trace(
            [(Exponential(1.0), 5_000.0), (Exponential(0.1), 5_000.0)], rng
        )
        first = trace.slice(0.0, 5_000.0).stats().arrival_rate
        second = trace.slice(5_000.0, 10_000.0).stats().arrival_rate
        assert first == pytest.approx(1.0, rel=0.1)
        assert second == pytest.approx(0.1, rel=0.2)

    def test_empty_segments_rejected(self, rng):
        with pytest.raises(ValueError):
            piecewise_renewal_trace([], rng)


class TestBernoulliArrivals:
    def test_statistics(self, rng):
        arrivals = bernoulli_arrivals(ConstantRate(0.3), 50_000, rng)
        assert arrivals.shape == (50_000,)
        assert set(np.unique(arrivals)) <= {0, 1}
        assert arrivals.mean() == pytest.approx(0.3, abs=0.01)

    def test_piecewise_rates_respected(self, rng):
        schedule = PiecewiseConstantRate([(20_000, 0.4), (20_000, 0.05)])
        arrivals = bernoulli_arrivals(schedule, 40_000, rng)
        assert arrivals[:20_000].mean() == pytest.approx(0.4, abs=0.02)
        assert arrivals[20_000:].mean() == pytest.approx(0.05, abs=0.01)

    def test_zero_slots(self, rng):
        assert bernoulli_arrivals(ConstantRate(0.5), 0, rng).size == 0

    def test_negative_slots_rejected(self, rng):
        with pytest.raises(ValueError):
            bernoulli_arrivals(ConstantRate(0.5), -1, rng)


class TestTraceFromSlots:
    def test_conversion(self):
        trace = trace_from_slots(np.array([0, 1, 0, 1, 1]), slot_length=2.0)
        assert trace.arrival_times.tolist() == [2.0, 6.0, 8.0]
        assert trace.duration == 10.0

    def test_bad_slot_length(self):
        with pytest.raises(ValueError):
            trace_from_slots(np.array([1]), slot_length=0.0)
