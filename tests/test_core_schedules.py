"""Parameter schedule tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Constant, ExponentialDecay, HarmonicDecay, LinearDecay


class TestConstant:
    def test_value_everywhere(self):
        schedule = Constant(0.1)
        assert schedule(0) == 0.1
        assert schedule(10**9) == 0.1


class TestLinearDecay:
    def test_endpoints(self):
        schedule = LinearDecay(1.0, 0.0, steps=100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(50) == pytest.approx(0.5)
        assert schedule(100) == 0.0
        assert schedule(10_000) == 0.0

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            LinearDecay(1.0, 0.0, steps=0)

    @given(n=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_monotone_decreasing(self, n):
        schedule = LinearDecay(1.0, 0.1, steps=1000)
        assert schedule(n) >= schedule(n + 1) - 1e-12


class TestExponentialDecay:
    def test_decay_path(self):
        schedule = ExponentialDecay(1.0, 0.5)
        assert schedule(0) == 1.0
        assert schedule(1) == 0.5
        assert schedule(3) == 0.125

    def test_floor(self):
        schedule = ExponentialDecay(1.0, 0.1, minimum=0.05)
        assert schedule(100) == 0.05

    def test_invalid_decay(self):
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 1.2)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, 0.5, minimum=-1.0)


class TestHarmonicDecay:
    def test_values(self):
        schedule = HarmonicDecay(1.0, tau=10.0)
        assert schedule(0) == 1.0
        assert schedule(10) == pytest.approx(0.5)
        assert schedule(90) == pytest.approx(0.1)

    def test_robbins_monro_property(self):
        """Sum diverges, sum of squares converges (finite-horizon proxy:
        partial sums behave accordingly)."""
        schedule = HarmonicDecay(1.0, tau=1.0)
        values = [schedule(n) for n in range(1, 10_000)]
        assert sum(values) > 8.0           # ~ log growth, unbounded
        assert sum(v * v for v in values) < 2.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HarmonicDecay(1.0, tau=0.0)
        with pytest.raises(ValueError):
            HarmonicDecay(1.0, tau=1.0, minimum=-0.1)

    def test_floor(self):
        schedule = HarmonicDecay(1.0, tau=1.0, minimum=0.2)
        assert schedule(10**6) == 0.2
