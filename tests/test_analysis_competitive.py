"""Competitive analysis tests: ski-rental structure of shutdown policies."""

import numpy as np
import pytest

from repro.analysis import (
    competitive_report,
    deterministic_lower_bound_ratio,
    idle_period_energy_oracle,
    idle_period_energy_timeout,
)
from repro.device import PowerState, PowerStateMachine, Transition, two_state


def ski_device():
    """on 1 W / off 0 W, round trip costs exactly 2 J with zero latency:
    break-even = 2 s — the textbook ski-rental instance."""
    states = [PowerState("on", 1.0, can_service=True), PowerState("off", 0.0)]
    transitions = [
        Transition("on", "off", 1.0, 0.0),
        Transition("off", "on", 1.0, 0.0),
    ]
    return PowerStateMachine("ski", states, transitions, initial_state="on")


class TestPeriodEnergies:
    def test_short_idle_no_shutdown(self):
        device = ski_device()
        assert idle_period_energy_timeout(device, 1.0, timeout=2.0) == 1.0

    def test_long_idle_with_shutdown(self):
        device = ski_device()
        # wait 2 s (2 J) + round trip (2 J) + rest at 0 W
        assert idle_period_energy_timeout(device, 10.0, timeout=2.0) == 4.0

    def test_immediate_shutdown(self):
        device = ski_device()
        assert idle_period_energy_timeout(device, 10.0, timeout=0.0) == 2.0

    def test_oracle_picks_min(self):
        device = ski_device()
        assert idle_period_energy_oracle(device, 1.0) == 1.0   # stay
        assert idle_period_energy_oracle(device, 10.0) == 2.0  # sleep

    def test_oracle_indifferent_at_break_even(self):
        device = ski_device()
        assert idle_period_energy_oracle(device, 2.0) == pytest.approx(2.0)

    def test_validation(self):
        device = ski_device()
        with pytest.raises(ValueError):
            idle_period_energy_timeout(device, -1.0, 0.0)
        with pytest.raises(ValueError):
            idle_period_energy_timeout(device, 1.0, -0.5)


class TestCompetitiveRatio:
    def test_break_even_timeout_is_2_competitive(self):
        """The theorem: per period, timeout = break-even never exceeds 2x
        the oracle — and the adversarial period (just past break-even)
        attains exactly 2."""
        device = ski_device()
        lengths = np.concatenate([
            np.linspace(0.01, 10.0, 500),
            [2.0 + 1e-9],  # the adversarial input
        ])
        report = competitive_report(device, lengths)  # timeout = T_be
        bound = deterministic_lower_bound_ratio()
        assert report.worst_period_ratio <= bound + 1e-6
        assert report.worst_period_ratio == pytest.approx(bound, abs=1e-3)
        assert 1.0 <= report.ratio <= bound

    def test_greedy_is_unboundedly_bad_on_short_periods(self):
        device = ski_device()
        short = np.full(100, 0.01)
        report = competitive_report(device, short, timeout=0.0)
        assert report.worst_period_ratio > 50

    def test_never_sleep_bounded_by_long_periods(self):
        device = ski_device()
        long = np.full(10, 100.0)
        report = competitive_report(device, long, timeout=np.inf)
        # stay pays 100, oracle pays 2: ratio 50
        assert report.ratio == pytest.approx(50.0)

    def test_aggregate_consistency(self):
        device = ski_device()
        lengths = np.array([1.0, 5.0])
        report = competitive_report(device, lengths, timeout=2.0)
        assert report.policy_energy == pytest.approx(1.0 + 4.0)
        assert report.oracle_energy == pytest.approx(1.0 + 2.0)
        assert report.n_periods == 2

    def test_real_preset_device(self):
        device = two_state()
        rng = np.random.default_rng(0)
        lengths = rng.exponential(5.0, size=2_000)
        report = competitive_report(device, lengths)
        assert 1.0 <= report.ratio <= 2.0 + 1e-9
        assert report.worst_period_ratio <= 2.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            competitive_report(ski_device(), np.array([]))
        with pytest.raises(ValueError):
            competitive_report(ski_device(), np.array([-1.0]))
