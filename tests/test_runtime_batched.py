"""Batched runtime: exact scalar/batched equivalence + driver behavior.

The contract under test is the tentpole guarantee of
:mod:`repro.runtime`: with per-replica RNG streams fixed, a B-replica
lock-step run *is* B independent scalar runs, bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QTable
from repro.device import abstract_three_state, two_state
from repro.env import SlottedDPMEnv
from repro.runtime import BatchedQDPM, BatchedSlottedEnv
from repro.workload import ConstantRate, PiecewiseConstantRate, SinusoidalRate


def _drive_matched(device, schedule, seeds, n_slots, **env_kw):
    """Step B scalar envs and one batched env with identical actions and
    matched per-replica streams; assert every observable matches exactly."""
    b = len(seeds)
    scalars = [
        SlottedDPMEnv(device, schedule, seed=s, **env_kw) for s in seeds
    ]
    batched = BatchedSlottedEnv(
        device, schedule, n_replicas=b, seeds=list(seeds), **env_kw
    )
    action_rngs = [np.random.default_rng(900 + i) for i in range(b)]
    for _ in range(n_slots):
        actions = []
        for i, env in enumerate(scalars):
            allowed = env.allowed_actions(env.state)
            actions.append(int(action_rngs[i].choice(allowed)))
        scalar_out = [env.step(a) for env, a in zip(scalars, actions)]
        states, rewards, info = batched.step(np.array(actions))
        for i, (s, r, step_info) in enumerate(scalar_out):
            assert s == states[i]
            assert r == rewards[i]
            assert step_info.energy == info.energy[i]
            assert step_info.queue == info.queue[i]
            assert step_info.arrived == bool(info.arrived[i])
            assert step_info.served == bool(info.served[i])
            assert step_info.lost == bool(info.lost[i])
            assert step_info.arrival_rate == info.arrival_rate
    return scalars, batched


class TestEnvEquivalence:
    def test_stationary_bit_exact(self, device3):
        scalars, batched = _drive_matched(
            device3, ConstantRate(0.2), seeds=range(5), n_slots=300,
            queue_capacity=4, p_serve=0.9,
        )
        for i, env in enumerate(scalars):
            assert env.totals == batched.totals.replica(i)
            assert env.energy_saving_ratio() == batched.energy_saving_ratio()[i]

    def test_nonstationary_bit_exact(self, device3):
        schedule = PiecewiseConstantRate([(100, 0.35), (100, 0.02)])
        scalars, batched = _drive_matched(
            device3, schedule, seeds=(7, 17, 27), n_slots=250,
            queue_capacity=6, p_serve=0.7,
        )
        for i, env in enumerate(scalars):
            assert env.totals == batched.totals.replica(i)

    def test_sinusoidal_two_state_bit_exact(self, device2):
        schedule = SinusoidalRate(0.2, 0.15, 80)
        scalars, batched = _drive_matched(
            device2, schedule, seeds=(0, 1), n_slots=200,
            queue_capacity=3, p_serve=1.0,
        )
        for i, env in enumerate(scalars):
            assert env.totals == batched.totals.replica(i)

    def test_int_seed_expands_to_block(self, device3):
        batched = BatchedSlottedEnv(
            device3, ConstantRate(0.2), n_replicas=3, seeds=42
        )
        explicit = BatchedSlottedEnv(
            device3, ConstantRate(0.2), n_replicas=3, seeds=[42, 43, 44]
        )
        for _ in range(100):
            a = np.zeros(3, dtype=int)
            s1, r1, _ = batched.step(a)
            s2, r2, _ = explicit.step(a)
            assert np.array_equal(s1, s2)
            assert np.array_equal(r1, r2)

    def test_disallowed_action_raises(self, device3):
        env = BatchedSlottedEnv(device3, ConstantRate(0.1), n_replicas=2, seeds=0)
        bad = np.argwhere(~env.tables.allowed)
        if bad.size == 0:
            pytest.skip("device allows every action in every mode")
        mode, illegal = (int(v) for v in bad[0])
        env._modes[:] = mode  # force a restricted (e.g. in-transition) mode
        with pytest.raises(KeyError):
            env.step(np.array([illegal, illegal]))

    def test_out_of_range_action_raises(self, device3):
        env = BatchedSlottedEnv(device3, ConstantRate(0.1), n_replicas=2, seeds=0)
        with pytest.raises(KeyError):
            env.step(np.array([-1, 0]))   # must not wrap to the last action
        with pytest.raises(KeyError):
            env.step(np.array([0, env.n_actions]))

    def test_seed_count_mismatch_raises(self, device3):
        with pytest.raises(ValueError):
            BatchedSlottedEnv(
                device3, ConstantRate(0.1), n_replicas=3, seeds=[1, 2]
            )

    def test_shared_rng_mode_runs_and_differs_only_stochastically(self, device3):
        env = BatchedSlottedEnv(
            device3, ConstantRate(0.3), n_replicas=4, seeds=5,
            rng_mode="shared", queue_capacity=4,
        )
        states = env.reset()
        assert states.shape == (4,)
        for _ in range(50):
            _, rewards, _ = env.step(np.zeros(4, dtype=int))
        assert env.totals.slots == 50
        assert rewards.shape == (4,)

    def test_reset_restores_initial_state(self, device3):
        env = BatchedSlottedEnv(device3, ConstantRate(0.3), n_replicas=2, seeds=1)
        for _ in range(20):
            env.step(np.zeros(2, dtype=int))
        states = env.reset(seeds=1)
        assert env.totals.slots == 0
        assert env.current_slot == 0
        ref = BatchedSlottedEnv(device3, ConstantRate(0.3), n_replicas=2, seeds=1)
        assert np.array_equal(states, ref.states)
        s1, r1, _ = env.step(np.zeros(2, dtype=int))
        s2, r2, _ = ref.step(np.zeros(2, dtype=int))
        assert np.array_equal(s1, s2) and np.array_equal(r1, r2)


class TestQTableBatchOps:
    def test_batch_update_matches_sequential(self, rng):
        n_obs, n_act, b = 30, 4, 12
        seq = QTable(n_obs, n_act, initial_value=0.5)
        bat = seq.copy()
        # unique pairs: distinct observations per draw
        obs = rng.choice(n_obs, size=b, replace=False)
        actions = rng.integers(0, n_act, size=b)
        targets = rng.normal(size=b)
        lrs = rng.uniform(0.05, 0.9, size=b)
        deltas_seq = np.array([
            seq.update_toward(int(o), int(a), float(t), float(lr))
            for o, a, t, lr in zip(obs, actions, targets, lrs)
        ])
        deltas_bat = bat.batch_update(obs, actions, targets, lrs)
        assert np.array_equal(seq.values, bat.values)
        assert np.array_equal(seq.visit_counts, bat.visit_counts)
        assert np.array_equal(deltas_seq, deltas_bat)

    def test_batch_update_scalar_lr_and_visits_on_duplicates(self):
        table = QTable(4, 2)
        obs = np.array([1, 1, 2])
        act = np.array([0, 0, 1])
        table.batch_update(obs, act, np.array([1.0, 1.0, 2.0]), 0.5)
        # np.add.at counts every duplicate update
        assert table.visits(1, 0) == 2
        assert table.visits(2, 1) == 1

    def test_batch_update_rejects_bad_learning_rate(self):
        table = QTable(3, 2)
        with pytest.raises(ValueError):
            table.batch_update(
                np.array([0]), np.array([0]), np.array([1.0]), 1.5
            )

    def test_batch_best_action_matches_scalar(self, rng):
        n_obs, n_act = 20, 5
        table = QTable(n_obs, n_act)
        table._q[:] = rng.normal(size=(n_obs, n_act))
        obs = rng.integers(0, n_obs, size=40)
        mask = np.zeros((40, n_act), dtype=bool)
        for i in range(40):
            k = int(rng.integers(1, n_act + 1))
            mask[i, rng.choice(n_act, size=k, replace=False)] = True
        batch = table.batch_best_action(obs, mask)
        for i in range(40):
            allowed = np.nonzero(mask[i])[0]  # ascending, matches tie rule
            assert batch[i] == table.best_action(int(obs[i]), allowed)

    def test_batch_max_value_matches_scalar(self, rng):
        table = QTable(10, 4)
        table._q[:] = rng.normal(size=(10, 4))
        obs = np.arange(10)
        mask = np.ones((10, 4), dtype=bool)
        mask[:, 0] = False
        batch = table.batch_max_value(obs, mask)
        for i in range(10):
            assert batch[i] == table.max_value(i, [1, 2, 3])

    def test_batch_best_action_empty_allowed_raises(self):
        table = QTable(3, 2)
        mask = np.array([[True, False], [False, False]])
        with pytest.raises(ValueError):
            table.batch_best_action(np.array([0, 1]), mask)

    def test_copy_preserves_dtype(self):
        table = QTable(4, 3, initial_value=1.0, dtype=np.float32)
        clone = table.copy()
        assert clone.values.dtype == np.float32
        assert np.array_equal(clone.values, table.values)


class TestBatchedQDPM:
    def test_replica_blocks_match_scalar_updates(self, device3):
        """Lock-step batch updates == B sequential scalar update_toward
        calls on separate tables (replica row blocks are independent)."""
        env = BatchedSlottedEnv(
            device3, ConstantRate(0.25), n_replicas=3, seeds=[3, 4, 5],
            queue_capacity=4, p_serve=0.9,
        )
        driver = BatchedQDPM(env, epsilon=0.0, seed=0)  # pure greedy
        shadow = [QTable(env.n_states, env.n_actions) for _ in range(3)]
        qcap1 = env.queue_capacity + 1
        for _ in range(150):
            states = env.states
            obs = states + driver._offsets
            mask = env.tables.allowed[env.modes]
            actions = driver.table.batch_best_action(obs, mask)
            next_states, rewards, _ = env.step(actions)
            next_modes = env.modes
            for i in range(3):
                allowed = env.mode_space.allowed_actions(
                    int(next_states[i]) // qcap1
                )
                target = rewards[i] + driver.discount * shadow[i].max_value(
                    int(next_states[i]), allowed
                )
                shadow[i].update_toward(
                    int(states[i]), int(actions[i]), float(target), 0.1
                )
            next_mask = env.tables.allowed[next_modes]
            bootstrap = driver.table.batch_max_value(
                next_states + driver._offsets, next_mask
            )
            driver.table.batch_update(
                obs, actions, rewards + driver.discount * bootstrap, 0.1,
                unique=True,
            )
        for i in range(3):
            block = driver.replica_table(i)
            assert np.array_equal(block.values, shadow[i].values)
            assert np.array_equal(block.visit_counts, shadow[i].visit_counts)

    def test_learning_improves_reward(self, device3):
        env = BatchedSlottedEnv(
            device3, ConstantRate(0.15), n_replicas=4, seeds=11,
            queue_capacity=8, p_serve=0.9,
        )
        driver = BatchedQDPM(env, epsilon=0.08, seed=1)
        hist = driver.run(20_000, record_every=2_000)
        assert hist.reward.shape == (10, 4)
        assert hist.reward[-2:].mean() > hist.reward[:2].mean()

    def test_history_windows_and_partial_tail(self, device3):
        env = BatchedSlottedEnv(
            device3, ConstantRate(0.2), n_replicas=2, seeds=0
        )
        driver = BatchedQDPM(env, seed=0)
        hist = driver.run(2_500, record_every=1_000)
        assert len(hist) == 3  # 2 full windows + partial tail
        assert list(hist.slots) == [999, 1999, 2499]
        replica = hist.replica(1)
        assert replica.reward.shape == (3,)
        mean = hist.mean_history()
        assert np.allclose(mean.reward, hist.reward.mean(axis=1))

    def test_greedy_policy_matches_home_fallback(self, device3):
        env = BatchedSlottedEnv(
            device3, ConstantRate(0.15), n_replicas=2, seeds=0
        )
        driver = BatchedQDPM(env, seed=0)
        policy = driver.greedy_policy(0)
        home = env.mode_space.action_index(device3.initial_state)
        # untrained: every steady state with the home action allowed
        # falls back to it
        assert policy(0) == home

    def test_callback_fires_per_full_window(self, device3):
        env = BatchedSlottedEnv(device3, ConstantRate(0.2), n_replicas=2, seeds=0)
        driver = BatchedQDPM(env, seed=0)
        seen = []
        driver.run(3_000, record_every=1_000, callback=seen.append)
        assert seen == [999, 1999, 2999]

    def test_invalid_args_raise(self, device3):
        env = BatchedSlottedEnv(device3, ConstantRate(0.2), n_replicas=2, seeds=0)
        with pytest.raises(ValueError):
            BatchedQDPM(env, discount=1.0)
        with pytest.raises(ValueError):
            BatchedQDPM(env, epsilon=-0.1)
        driver = BatchedQDPM(env)
        with pytest.raises(ValueError):
            driver.run(0)
        with pytest.raises(ValueError):
            driver.replica_table(5)


class TestFixedDrawStreamParity:
    """The exploration-stream parity contract: a scalar QDPM using
    FixedDrawEpsilonGreedy consumes the batched engine's exact
    three-uniform-per-slot layout, so under matched seeds (env seed s,
    agent seed s + 1 — the sweep runner's arithmetic) scalar and batched
    runs match stream for stream, not just in distribution."""

    def test_scalar_matches_batched_replica_bit_for_bit(self, device3):
        from repro.core import QDPM, FixedDrawEpsilonGreedy

        seeds = [5, 6, 7]
        n_slots, record_every, eps = 2_500, 500, 0.08
        benv = BatchedSlottedEnv(
            device3, ConstantRate(0.15), n_replicas=len(seeds),
            queue_capacity=6, p_serve=0.9, seeds=seeds, rng_mode="replica",
        )
        driver = BatchedQDPM(benv, epsilon=eps, seed=[s + 1 for s in seeds])
        batched = driver.run(n_slots, record_every=record_every)

        for i, seed in enumerate(seeds):
            env = SlottedDPMEnv(
                device3, ConstantRate(0.15), queue_capacity=6, p_serve=0.9,
                seed=seed,
            )
            controller = QDPM(
                env, epsilon=eps, seed=seed + 1,
                exploration=FixedDrawEpsilonGreedy(eps),
            )
            scalar = controller.run(n_slots, record_every=record_every)
            replica = batched.replica(i)
            assert np.array_equal(scalar.reward, replica.reward)
            assert np.array_equal(scalar.energy, replica.energy)
            assert np.array_equal(scalar.queue, replica.queue)
            assert np.array_equal(scalar.td_error, replica.td_error)
            # trained tables agree to the last bit too
            assert np.array_equal(
                controller.agent.table.values, driver.replica_table(i).values
            )
            assert np.array_equal(
                controller.agent.table.visit_counts,
                driver.replica_table(i).visit_counts,
            )
            assert env.totals == benv.totals.replica(i)

    def test_learning_rate_schedule_also_matches(self, device3):
        from repro.core import QDPM, FixedDrawEpsilonGreedy, HarmonicDecay, QLearningAgent

        seed, eps, n_slots = 11, 0.1, 1_500
        lr = HarmonicDecay(0.5)
        benv = BatchedSlottedEnv(
            device3, ConstantRate(0.2), n_replicas=1, queue_capacity=6,
            p_serve=0.9, seeds=[seed], rng_mode="replica",
        )
        driver = BatchedQDPM(
            benv, epsilon=eps, learning_rate=lr, seed=[seed + 1]
        )
        batched = driver.run(n_slots, record_every=n_slots)

        env = SlottedDPMEnv(
            device3, ConstantRate(0.2), queue_capacity=6, p_serve=0.9,
            seed=seed,
        )
        agent = QLearningAgent(
            n_observations=env.n_states, n_actions=env.n_actions,
            learning_rate=lr, exploration=FixedDrawEpsilonGreedy(eps),
            seed=seed + 1,
        )
        controller = QDPM(env, agent=agent)
        scalar = controller.run(n_slots, record_every=n_slots)
        assert np.array_equal(scalar.reward, batched.replica(0).reward)
        assert np.array_equal(
            controller.agent.table.values, driver.replica_table(0).values
        )
