"""ModeSpace enumeration and per-slot step effects."""

import pytest

from repro.device import PowerState, PowerStateMachine, Transition, abstract_three_state
from repro.env import ModeSpace


class TestEnumeration:
    def test_abstract3_mode_count(self, device3):
        # sleep->active latency 3 => countdown modes [2], [1];
        # active->sleep latency 1 and idle->sleep latency 1 => none;
        # so 3 steady + 2 countdown = 5
        space = ModeSpace(device3, slot_length=1.0)
        assert space.n_modes == 5
        assert space.n_actions == 3

    def test_mode_labels(self, device3):
        space = ModeSpace(device3)
        labels = [m.label for m in space.modes]
        assert "active" in labels
        assert "sleep->active[2]" in labels
        assert "sleep->active[1]" in labels

    def test_slot_length_changes_countdowns(self, device3):
        # slot 3.0 => sleep->active takes ceil(3/3)=1 slot => no countdowns
        space = ModeSpace(device3, slot_length=3.0)
        assert space.n_modes == 3

    def test_invalid_slot_length(self, device3):
        with pytest.raises(ValueError):
            ModeSpace(device3, slot_length=0.0)

    def test_action_index_lookup(self, device3):
        space = ModeSpace(device3)
        assert space.action_names[space.action_index("sleep")] == "sleep"
        with pytest.raises(KeyError):
            space.action_index("warp")

    def test_steady_mode_index(self, device3):
        space = ModeSpace(device3)
        idx = space.steady_mode_index("idle")
        assert space.mode(idx).label == "idle"


class TestAllowedActions:
    def test_steady_allows_stay_plus_edges(self, device3):
        space = ModeSpace(device3)
        active = space.steady_mode_index("active")
        names = {space.action_names[a] for a in space.allowed_actions(active)}
        assert names == {"active", "idle", "sleep"}

    def test_sleep_has_no_idle_edge(self, device3):
        space = ModeSpace(device3)
        sleep = space.steady_mode_index("sleep")
        names = {space.action_names[a] for a in space.allowed_actions(sleep)}
        assert names == {"sleep", "active"}

    def test_transition_mode_commits(self, device3):
        space = ModeSpace(device3)
        trans = [i for i, m in enumerate(space.modes) if m.kind == "trans"]
        for idx in trans:
            allowed = space.allowed_actions(idx)
            assert len(allowed) == 1
            assert space.action_names[allowed[0]] == space.mode(idx).state


class TestEffects:
    def test_stay_effect(self, device3):
        space = ModeSpace(device3)
        active = space.steady_mode_index("active")
        effect = space.effect(active, space.action_index("active"))
        assert effect.next_mode == active
        assert effect.energy == pytest.approx(1.0)  # 1 W x 1 s
        assert effect.can_service

    def test_instant_transition_spends_slot_in_target(self, device3):
        space = ModeSpace(device3)
        active = space.steady_mode_index("active")
        effect = space.effect(active, space.action_index("idle"))
        assert effect.next_mode == space.steady_mode_index("idle")
        assert effect.energy == pytest.approx(0.4)  # idle power, no tr energy
        assert not effect.can_service  # idle does not serve

    def test_single_slot_transition(self, device3):
        space = ModeSpace(device3)
        active = space.steady_mode_index("active")
        effect = space.effect(active, space.action_index("sleep"))
        # active->sleep: latency 1 slot, energy 0.4 total
        assert effect.next_mode == space.steady_mode_index("sleep")
        assert effect.energy == pytest.approx(0.4)
        assert not effect.can_service

    def test_multi_slot_transition_chain(self, device3):
        space = ModeSpace(device3)
        sleep = space.steady_mode_index("sleep")
        wake = space.action_index("active")
        # sleep->active: 3 slots at 1.2/3 = 0.4 each
        e1 = space.effect(sleep, wake)
        assert space.mode(e1.next_mode).label == "sleep->active[2]"
        assert e1.energy == pytest.approx(0.4)
        e2 = space.effect(e1.next_mode, wake)
        assert space.mode(e2.next_mode).label == "sleep->active[1]"
        e3 = space.effect(e2.next_mode, wake)
        assert e3.next_mode == space.steady_mode_index("active")
        total = e1.energy + e2.energy + e3.energy
        assert total == pytest.approx(1.2)

    def test_no_service_during_transition(self, device3):
        space = ModeSpace(device3)
        for idx, mode in enumerate(space.modes):
            if mode.kind == "trans":
                action = space.allowed_actions(idx)[0]
                assert not space.effect(idx, action).can_service

    def test_disallowed_action_raises(self, device3):
        space = ModeSpace(device3)
        sleep = space.steady_mode_index("sleep")
        with pytest.raises(KeyError, match="not allowed"):
            space.effect(sleep, space.action_index("idle"))

    def test_latency_slots(self, device3):
        space = ModeSpace(device3)
        assert space.latency_slots("sleep", "active") == 3
        assert space.latency_slots("active", "idle") == 0

    def test_energy_conservation_vs_device(self):
        """Summed per-slot transition energy equals the device's edge energy
        for every multi-slot edge."""
        device = abstract_three_state(
            sleep_up_energy=2.0, sleep_up_latency=5.0
        )
        space = ModeSpace(device, slot_length=1.0)
        sleep = space.steady_mode_index("sleep")
        wake = space.action_index("active")
        total = 0.0
        idx = sleep
        for _ in range(5):
            effect = space.effect(idx, wake)
            total += effect.energy
            idx = effect.next_mode
        assert idx == space.steady_mode_index("active")
        assert total == pytest.approx(2.0)

    def test_fractional_latency_rounds_up(self):
        device = abstract_three_state(sleep_up_latency=2.5)
        space = ModeSpace(device, slot_length=1.0)
        assert space.latency_slots("sleep", "active") == 3
