"""Event-driven simulator tests against hand-computed scenarios."""

import numpy as np
import pytest

from repro.baselines import (
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import (
    PowerState,
    PowerStateMachine,
    Transition,
    mobile_hard_disk,
    two_state,
)
from repro.sim import DPMSimulator, default_wait_state
from repro.workload import Exponential, Trace, renewal_trace


def simple_device():
    """on 1 W (serves), rest 0 W; down 0.1 J / 1 s, up 0.3 J / 1 s."""
    states = [PowerState("on", 1.0, can_service=True), PowerState("rest", 0.0)]
    transitions = [
        Transition("on", "rest", 0.1, 1.0),
        Transition("rest", "on", 0.3, 1.0),
    ]
    return PowerStateMachine("simple", states, transitions, initial_state="on")


class TestDefaultWaitState:
    def test_free_idle_state_chosen(self):
        hdd = mobile_hard_disk()
        assert default_wait_state(hdd) == "idle"

    def test_home_when_no_free_state(self):
        assert default_wait_state(simple_device()) == "on"

    def test_home_when_round_trip_only_half_free(self):
        """A free descent is not enough: the return leg must also be
        free and instant, else the device must wait at home."""
        for leg_cost in (dict(energy=0.2, latency=0.0),
                         dict(energy=0.0, latency=0.5)):
            device = PowerStateMachine(
                "halffree",
                [PowerState("on", 1.0, can_service=True), PowerState("nap", 0.1)],
                [
                    Transition("on", "nap", energy=0.0, latency=0.0),
                    Transition("nap", "on", **leg_cost),
                ],
                initial_state="on",
            )
            assert default_wait_state(device) == "on"

    def test_home_when_free_state_saves_nothing(self):
        """A free round trip to an equal-power state is not an
        improvement (strict comparison) — stay home."""
        device = PowerStateMachine(
            "flat",
            [PowerState("on", 1.0, can_service=True), PowerState("mirror", 1.0)],
            [
                Transition("on", "mirror", energy=0.0, latency=0.0),
                Transition("mirror", "on", energy=0.0, latency=0.0),
            ],
            initial_state="on",
        )
        assert default_wait_state(device) == "on"

    def test_tie_breaks_to_first_declared_state(self):
        """Two equally cheap free-round-trip states: the pick is
        deterministic — declaration order wins (strict < keeps the
        incumbent), in either ordering."""
        def tied(order):
            states = [PowerState("on", 1.0, can_service=True)] + [
                PowerState(name, 0.2) for name in order
            ]
            transitions = []
            for name in order:
                transitions.append(Transition("on", name, 0.0, 0.0))
                transitions.append(Transition(name, "on", 0.0, 0.0))
            return PowerStateMachine("tied", states, transitions, initial_state="on")

        assert default_wait_state(tied(["nap_a", "nap_b"])) == "nap_a"
        assert default_wait_state(tied(["nap_b", "nap_a"])) == "nap_b"


class TestAlwaysOnScenario:
    def test_energy_is_power_times_duration(self):
        device = simple_device()
        trace = Trace([1.0, 3.0], duration=10.0)
        report = DPMSimulator(device, AlwaysOn(), service_time=0.5).run(trace)
        assert report.total_energy == pytest.approx(10.0)
        assert report.mean_power == pytest.approx(1.0)
        assert report.energy_saving_ratio == pytest.approx(0.0)
        assert report.n_requests == 2
        assert report.mean_latency == pytest.approx(0.5)
        assert report.n_shutdowns == 0


class TestGreedyScenario:
    def test_hand_computed_energy(self):
        """One request at t=5, window 10 s, service 1 s.

        Timeline: idle 0-5 -> down transition 0-1 (0.1 J), rest 1-5 (0 W);
        arrival 5: up 5-6 (0.3 J), serve 6-7 (1 J);
        idle ends: down 7-8 (0.1 J), rest 8-10.
        Total = 0.1 + 0.3 + 1.0 + 0.1 = 1.5 J.
        """
        device = simple_device()
        trace = Trace([5.0], duration=10.0)
        report = DPMSimulator(device, GreedySleep("rest"), service_time=1.0).run(trace)
        assert report.total_energy == pytest.approx(1.5)
        assert report.n_requests == 1
        # latency = up (1 s) + service (1 s)
        assert report.mean_latency == pytest.approx(2.0)
        assert report.n_shutdowns == 2

    def test_wake_during_down_transition(self):
        """Arrival mid-down-transition: finish down, then wake.

        Request at t=0.5 while down transition (0-1) is in flight:
        down completes at 1 (0.1 J), up 1-2 (0.3 J), serve 2-3 (1 J),
        down again 3-4 (0.1 J), rest 4-5.
        """
        device = simple_device()
        trace = Trace([0.5], duration=5.0)
        report = DPMSimulator(device, GreedySleep("rest"), service_time=1.0).run(trace)
        assert report.total_energy == pytest.approx(1.5)
        # latency = 0.5 (rest of down) + 1 (up) + 1 (serve) = 2.5
        assert report.mean_latency == pytest.approx(2.5)


class TestTimeoutScenario:
    def test_timeout_longer_than_gap_never_sleeps(self):
        device = simple_device()
        trace = Trace([2.0, 4.0, 6.0], duration=8.0)
        report = DPMSimulator(
            device, FixedTimeout(5.0, "rest"), service_time=0.5
        ).run(trace)
        assert report.n_shutdowns == 0
        assert report.total_energy == pytest.approx(8.0)

    def test_timeout_fires_on_long_gap(self):
        device = simple_device()
        trace = Trace([1.0], duration=20.0)
        report = DPMSimulator(
            device, FixedTimeout(2.0, "rest"), service_time=1.0
        ).run(trace)
        # initial idle 0-1 is ended by the arrival before the timeout;
        # wait 0-1 + serve 1-2 (2 J), wait 2-4 (2 J), down 4-5 (0.1 J),
        # rest 5-20 (0 J)
        assert report.n_shutdowns == 1
        assert report.total_energy == pytest.approx(4.1)
        assert report.mean_latency == pytest.approx(1.0)


class TestOracleScenario:
    def test_oracle_never_wrong(self, rng):
        device = mobile_hard_disk()
        trace = renewal_trace(Exponential(0.1), 5_000.0, rng)
        report = DPMSimulator(
            device, OracleShutdown(), service_time=0.3, oracle=True
        ).run(trace)
        assert report.n_wrong_shutdowns == 0

    def test_oracle_beats_greedy_and_always_on(self, rng):
        device = mobile_hard_disk()
        trace = renewal_trace(Exponential(0.08), 10_000.0, rng)
        reports = {}
        for name, policy, oracle in (
            ("on", AlwaysOn(), False),
            ("greedy", GreedySleep(), False),
            ("oracle", OracleShutdown(), True),
        ):
            sim = DPMSimulator(device, policy, service_time=0.3, oracle=oracle)
            reports[name] = sim.run(trace)
        assert reports["oracle"].total_energy <= reports["greedy"].total_energy
        assert reports["oracle"].total_energy <= reports["on"].total_energy


class TestTraceDemands:
    def test_per_request_demands_used(self):
        device = simple_device()
        trace = Trace([1.0, 2.0], duration=10.0, service_demands=[2.0, 1.0])
        report = DPMSimulator(device, AlwaysOn(), service_time=0.1).run(trace)
        # first served 1-3, second queued (arr 2) served 3-4
        assert report.mean_latency == pytest.approx((2.0 + 2.0) / 2)

    def test_queueing_fifo(self):
        device = simple_device()
        trace = Trace([0.0, 0.0, 0.0], duration=10.0)
        report = DPMSimulator(device, AlwaysOn(), service_time=1.0).run(trace)
        assert report.mean_latency == pytest.approx((1 + 2 + 3) / 3)


class TestReportConsistency:
    def test_residency_sums_to_duration(self, rng):
        device = mobile_hard_disk()
        trace = renewal_trace(Exponential(0.05), 2_000.0, rng)
        report = DPMSimulator(device, FixedTimeout(), service_time=0.4).run(trace)
        assert sum(report.state_residency.values()) == pytest.approx(
            report.duration, rel=1e-6
        )

    def test_all_requests_served(self, rng):
        device = mobile_hard_disk()
        trace = renewal_trace(Exponential(0.2), 1_000.0, rng)
        report = DPMSimulator(device, GreedySleep(), service_time=0.2).run(trace)
        assert report.n_requests == len(trace)

    def test_invalid_service_time(self):
        with pytest.raises(ValueError):
            DPMSimulator(simple_device(), AlwaysOn(), service_time=0.0)

    def test_two_state_preset_runs(self, rng):
        device = two_state()
        trace = renewal_trace(Exponential(0.05), 1_000.0, rng)
        report = DPMSimulator(device, FixedTimeout(), service_time=0.3).run(trace)
        assert report.duration >= 1_000.0
        assert report.total_energy > 0
