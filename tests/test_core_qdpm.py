"""QDPM controller tests."""

import numpy as np
import pytest

from repro.core import QDPM, QLearningAgent
from repro.device import abstract_three_state
from repro.env import QueueBucketObservation, SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate


def make_env(seed=0, rate=0.15, cap=4):
    return SlottedDPMEnv(
        abstract_three_state(), ConstantRate(rate),
        queue_capacity=cap, p_serve=0.9, seed=seed,
    )


class TestConstruction:
    def test_default_agent_sized_to_env(self):
        env = make_env()
        ctrl = QDPM(env, seed=1)
        assert ctrl.agent.table.n_observations == env.n_states
        assert ctrl.agent.table.n_actions == env.n_actions

    def test_mismatched_agent_rejected(self):
        env = make_env()
        bad = QLearningAgent(3, env.n_actions)
        with pytest.raises(ValueError, match="rows"):
            QDPM(env, agent=bad)
        bad2 = QLearningAgent(env.n_states, env.n_actions + 1)
        with pytest.raises(ValueError, match="actions"):
            QDPM(env, agent=bad2)

    def test_coarse_observation_accepted(self):
        env = make_env()
        obs = QueueBucketObservation(env, boundaries=(1,))
        ctrl = QDPM(env, observation=obs, seed=1)
        assert ctrl.agent.table.n_observations == obs.n_observations


class TestRun:
    def test_history_shapes(self):
        ctrl = QDPM(make_env(), seed=1)
        hist = ctrl.run(5_000, record_every=1_000)
        assert len(hist) == 5
        for arr in (hist.energy, hist.reward, hist.queue,
                    hist.saving_ratio, hist.td_error):
            assert arr.shape == (5,)
        assert hist.slots.tolist() == [999, 1999, 2999, 3999, 4999]

    def test_partial_tail_window(self):
        ctrl = QDPM(make_env(), seed=1)
        hist = ctrl.run(2_500, record_every=1_000)
        assert len(hist) == 3
        assert hist.slots[-1] == 2_499

    def test_callback_invoked_per_window(self):
        ctrl = QDPM(make_env(), seed=1)
        seen = []
        ctrl.run(3_000, record_every=1_000, callback=seen.append)
        assert seen == [999, 1999, 2999]

    def test_invalid_args(self):
        ctrl = QDPM(make_env(), seed=1)
        with pytest.raises(ValueError):
            ctrl.run(0)
        with pytest.raises(ValueError):
            ctrl.run(10, record_every=0)

    def test_no_learning_mode_freezes_table(self):
        ctrl = QDPM(make_env(), seed=1)
        ctrl.run(500)
        before = ctrl.agent.table.values
        ctrl.run(500, learn=False)
        assert np.array_equal(ctrl.agent.table.values, before)

    def test_learning_improves_over_always_on(self):
        env = make_env(seed=2, rate=0.05)
        ctrl = QDPM(env, seed=3)
        hist = ctrl.run(60_000, record_every=10_000)
        # with sparse arrivals, learned policy must save energy
        assert hist.saving_ratio[-1] > 0.2
        # and it must be serving requests (queue not saturated)
        assert hist.queue[-1] < env.queue_capacity * 0.9


class TestGreedyPolicy:
    def test_policy_actions_always_allowed(self):
        env = make_env()
        ctrl = QDPM(env, seed=1)
        ctrl.run(2_000)
        policy = ctrl.greedy_policy()
        for state in range(env.n_states):
            assert policy(state) in env.allowed_actions(state)

    def test_prefer_visited_defaults_unvisited_to_home(self):
        env = make_env()
        ctrl = QDPM(env, seed=1)  # no learning at all
        policy = ctrl.greedy_policy(prefer_visited=True)
        home = env.mode_space.action_index("active")
        # an ordinary steady state with no visits: home command
        idle_state = env.encode(env.mode_space.steady_mode_index("idle"), 2)
        assert policy(idle_state) == home

    def test_without_prefer_visited_uses_raw_argmax(self):
        env = make_env()
        ctrl = QDPM(env, seed=1)
        ctrl.agent.table.set(0, env.mode_space.action_index("sleep"), 1.0)
        policy = ctrl.greedy_policy(prefer_visited=False)
        assert policy(0) == env.mode_space.action_index("sleep")

    def test_converges_near_optimal_policy_value(self):
        """Integration: after training, the extracted policy's exact payoff
        is within 10% of the optimum."""
        env = make_env(seed=4, rate=0.15, cap=4)
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        optimal = model.solve(0.95, "policy_iteration")
        opt_reward = model.evaluate_policy(optimal.policy).average_reward
        ctrl = QDPM(env, discount=0.95, learning_rate=0.1, epsilon=0.1, seed=5)
        ctrl.run(120_000)
        learned_reward = model.evaluate_policy(ctrl.greedy_policy()).average_reward
        assert learned_reward >= opt_reward * 1.10  # rewards negative: within 10%
