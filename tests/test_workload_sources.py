"""MMPP and ON/OFF source tests."""

import numpy as np
import pytest

from repro.workload import MMPP, Exponential, Deterministic, OnOffSource, two_regime_mmpp


class TestMMPP:
    def test_construction_validation(self):
        with pytest.raises(ValueError, match="switching matrix"):
            MMPP([1.0, 2.0], [[0.0]])
        with pytest.raises(ValueError, match="regime rates"):
            MMPP([-1.0], [[0.0]])
        with pytest.raises(ValueError, match="switching rates"):
            MMPP([1.0, 1.0], [[0.0, -1.0], [1.0, 0.0]])

    def test_single_regime_is_poisson(self, rng):
        mmpp = MMPP([2.0], [[0.0]])
        trace, intervals = mmpp.generate(5_000.0, rng)
        assert intervals == [(0.0, 0)]
        assert trace.stats().arrival_rate == pytest.approx(2.0, rel=0.05)

    def test_two_regime_rate_mixture(self, rng):
        mmpp = two_regime_mmpp(
            busy_rate=2.0, quiet_rate=0.0,
            mean_busy_dwell=50.0, mean_quiet_dwell=50.0,
        )
        trace, intervals = mmpp.generate(20_000.0, rng)
        # long-run rate = 2.0 * 0.5 = 1.0
        assert trace.stats().arrival_rate == pytest.approx(1.0, rel=0.15)
        assert len(intervals) > 10

    def test_regime_intervals_ordered(self, rng):
        mmpp = two_regime_mmpp(1.0, 0.1, 10.0, 10.0)
        _, intervals = mmpp.generate(500.0, rng)
        starts = [t for t, _ in intervals]
        assert starts == sorted(starts)
        regimes = [r for _, r in intervals]
        assert all(a != b for a, b in zip(regimes, regimes[1:]))

    def test_bad_duration(self, rng):
        with pytest.raises(ValueError):
            MMPP([1.0], [[0.0]]).generate(0.0, rng)

    def test_bad_initial_regime(self, rng):
        with pytest.raises(ValueError):
            MMPP([1.0], [[0.0]]).generate(10.0, rng, initial_regime=5)

    def test_two_regime_validation(self):
        with pytest.raises(ValueError):
            two_regime_mmpp(1.0, 0.1, 0.0, 10.0)


class TestOnOff:
    def make(self):
        return OnOffSource(
            on_duration=Deterministic(10.0),
            off_duration=Deterministic(30.0),
            intra_gap=Deterministic(1.0),
        )

    def test_generates_bursts(self, rng):
        trace = self.make().generate(400.0, rng)
        gaps = trace.interarrivals()[1:]
        # gaps are either ~1 (intra-burst) or ~31 (inter-burst)
        assert set(np.round(gaps).astype(int)) <= {1, 31}

    def test_expected_rate(self):
        source = self.make()
        # 10 requests per 40-second cycle
        assert source.expected_rate() == pytest.approx(10.0 / 40.0)

    def test_empirical_rate_matches(self, rng):
        source = OnOffSource(
            on_duration=Exponential(0.1),   # mean 10
            off_duration=Exponential(0.05), # mean 20
            intra_gap=Exponential(2.0),     # mean 0.5
        )
        trace = source.generate(50_000.0, rng)
        assert trace.stats().arrival_rate == pytest.approx(
            source.expected_rate(), rel=0.15
        )

    def test_start_off(self, rng):
        trace = self.make().generate(35.0, rng, start_on=False)
        # first 30 s silent
        assert trace.arrival_times.min() >= 30.0

    def test_bad_duration(self, rng):
        with pytest.raises(ValueError):
            self.make().generate(-1.0, rng)

    def test_infinite_mean_rate_zero(self):
        from repro.workload import Pareto

        source = OnOffSource(Pareto(0.5, 1.0), Deterministic(1.0), Deterministic(1.0))
        assert source.expected_rate() == 0.0
