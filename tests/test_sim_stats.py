"""Simulator accounting tests."""

import pytest

from repro.sim import EnergyMeter, IdleTracker, LatencyTracker


class TestEnergyMeter:
    def test_piecewise_integration(self):
        meter = EnergyMeter()
        meter.set_condition(0.0, 2.0, "on")     # 2 W from t=0
        meter.set_condition(3.0, 0.5, "idle")   # 0.5 W from t=3
        meter.finish(7.0)
        assert meter.total_energy == pytest.approx(2.0 * 3 + 0.5 * 4)
        assert meter.residency["on"] == pytest.approx(3.0)
        assert meter.residency["idle"] == pytest.approx(4.0)

    def test_lump_energy(self):
        meter = EnergyMeter()
        meter.set_condition(0.0, 0.0, "off")
        meter.add_lump(5.0)
        meter.finish(10.0)
        assert meter.total_energy == pytest.approx(5.0)

    def test_negative_lump_rejected(self):
        with pytest.raises(ValueError):
            EnergyMeter().add_lump(-1.0)

    def test_time_reversal_rejected(self):
        meter = EnergyMeter()
        meter.set_condition(5.0, 1.0, "on")
        with pytest.raises(ValueError, match="backwards"):
            meter.set_condition(4.0, 1.0, "on")

    def test_zero_span_ok(self):
        meter = EnergyMeter()
        meter.set_condition(1.0, 3.0, "a")
        meter.set_condition(1.0, 2.0, "b")
        meter.finish(1.0)
        assert meter.total_energy == 0.0


class TestLatencyTracker:
    def test_statistics(self):
        tracker = LatencyTracker()
        for latency in (1.0, 2.0, 3.0, 10.0):
            tracker.record(0.0, latency)
        assert tracker.count == 4
        assert tracker.mean() == pytest.approx(4.0)
        assert tracker.maximum() == 10.0
        assert tracker.percentile(50) == pytest.approx(2.5)

    def test_empty(self):
        tracker = LatencyTracker()
        assert tracker.mean() == 0.0
        assert tracker.percentile(95) == 0.0
        assert tracker.maximum() == 0.0

    def test_completion_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            LatencyTracker().record(5.0, 4.0)


class TestIdleTracker:
    def test_wrong_shutdown_detection(self):
        tracker = IdleTracker()
        tracker.record_shutdown(idle_length=1.0, break_even=2.0)  # wrong
        tracker.record_shutdown(idle_length=5.0, break_even=2.0)  # right
        tracker.record_shutdown(idle_length=None, break_even=2.0)  # unknown
        assert tracker.n_shutdowns == 3
        assert tracker.n_wrong_shutdowns == 1

    def test_mean_idle(self):
        tracker = IdleTracker()
        tracker.record_idle(2.0)
        tracker.record_idle(4.0)
        assert tracker.mean_idle() == pytest.approx(3.0)
        assert IdleTracker().mean_idle() == 0.0
