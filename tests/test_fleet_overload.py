"""Overload-resilient routing: brownouts, breakers, budgets, deadlines.

Three contracts under test.  First, **pinning**: the vectorized
overload engine (:func:`~repro.fleet.route_with_overload_step`) must be
bit-identical to the scalar reference
(:func:`~repro.fleet.route_with_overload`) on every router, preset, and
degradation scenario — fail-stop outages, brownouts (finite severity:
the device serves, but slowly), whole-fleet blackouts, and
retry-budget exhaustion.  Second, **reduction**: with breakers, budget,
and deadlines all disabled, the overload engines must reproduce the
plain failover path choice for choice, bit for bit — graceful
degradation is strictly additive.  Third, the **semantics** of each
mechanism in isolation: breaker trip/half-open/reprobe transitions,
token-bucket exhaustion and refill, deadline-aware admission, and the
conservation law dispatched + dropped + shed == offered.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import AlwaysOn, FixedTimeout
from repro.device import get_preset
from repro.fleet import (
    ROUTERS,
    BreakerConfig,
    Dispatcher,
    FailoverConfig,
    FleetSweepRunner,
    FleetSweepSpec,
    OverloadConfig,
    RetryBudgetConfig,
    SHED_BUDGET,
    SHED_DEADLINE,
    make_router,
    route_with_failover,
    route_with_failover_step,
    route_with_overload,
    route_with_overload_step,
    run_fleet,
)
from repro.fleet.dispatch import RouteContext
from repro.runtime import PolicySpec, TraceSpec
from repro.workload import (
    Exponential,
    FaultProcess,
    FaultSchedule,
    Trace,
    no_faults,
    renewal_trace,
)

from test_fleet_sweep import assert_fleet_reports_match

PRESETS = ("mobile_hdd", "wlan")

#: the full-degradation config the pinning matrix runs under: breakers
#: trip fast, the budget is tight, and deadlines bite — every code path
#: of the engines is exercised, not just the happy one
FULL_CONFIG = OverloadConfig(
    failover=FailoverConfig(max_retries=3, backoff_base=0.25,
                            backoff_cap=2.0),
    breaker=BreakerConfig(failure_threshold=2, recovery_time=5.0,
                          latency_threshold=3.0),
    retry_budget=RetryBudgetConfig(capacity=8.0, refill_rate=0.5),
    slo=6.0,
)


def make_context(trace, n_devices, device_name="mobile_hdd", seed=0,
                 service_time=0.4):
    demands = trace.service_demands
    if demands is None:
        demands = np.full(len(trace), service_time)
    return RouteContext(
        arrivals=trace.arrival_times,
        demands=demands,
        n_devices=n_devices,
        device=get_preset(device_name),
        rng=np.random.default_rng(seed),
    )


def overload_scenarios(n_devices, horizon, seed=5):
    """The degradation battery every pinning test runs: a fail-stop
    exponential process, a brownout process (finite severity — devices
    degrade instead of stopping), a mixed schedule with brownout *and*
    outage intervals on the same device, a whole-fleet blackout, and a
    fail-stop storm dense enough to exhaust the retry budget."""
    scenarios = {
        "fail_stop": FaultProcess(mtbf=40.0, mttr=6.0).realize(
            n_devices, horizon, seed=seed
        ),
        "brownout": FaultProcess(mtbf=30.0, mttr=10.0, severity=4.0).realize(
            n_devices, horizon, seed=seed
        ),
        "mixed": FaultSchedule(
            [[(horizon * 0.1, horizon * 0.3, 3.0),
              (horizon * 0.5, horizon * 0.6)]]
            + [[] for _ in range(n_devices - 1)],
            horizon,
        ),
        "budget_storm": FaultProcess(mtbf=10.0, mttr=8.0).realize(
            n_devices, horizon, seed=seed + 1
        ),
    }
    if n_devices > 1:
        scenarios["blackout"] = FaultSchedule(
            [[(horizon * 0.3, horizon * 0.5)] for _ in range(n_devices)],
            horizon,
        )
    return scenarios


def assert_outcomes_identical(ref, fast, label=""):
    """Bit-identical OverloadOutcome comparison — every array, no
    tolerance."""
    assert np.array_equal(ref.assignments, fast.assignments), label
    assert np.array_equal(ref.dispatch_times, fast.dispatch_times), label
    assert np.array_equal(ref.retries, fast.retries), label
    assert np.array_equal(ref.shed_reasons, fast.shed_reasons), label
    assert np.array_equal(ref.deadlines, fast.deadlines), label
    assert np.array_equal(ref.completions, fast.completions,
                          equal_nan=True), label
    assert np.array_equal(ref.effective_demands, fast.effective_demands,
                          equal_nan=True), label
    assert ref.n_breaker_trips == fast.n_breaker_trips, label


# --------------------------------------------------------------------- #
# config validation
# --------------------------------------------------------------------- #


class TestConfigs:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"recovery_time": 0.0},
        {"recovery_time": -1.0},
        {"half_open_successes": 0},
        {"latency_threshold": 0.0},
        {"latency_threshold": float("nan")},
    ])
    def test_invalid_breaker_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"capacity": -1.0},
        {"capacity": float("nan")},
        {"refill_rate": -0.5},
        {"refill_rate": float("inf")},
    ])
    def test_invalid_budget_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryBudgetConfig(**kwargs)

    def test_invalid_overload_rejected(self):
        with pytest.raises(TypeError):
            OverloadConfig(failover={"policy": "next_best"})
        with pytest.raises(TypeError):
            OverloadConfig(breaker={"failure_threshold": 2})
        with pytest.raises(TypeError):
            OverloadConfig(retry_budget=8.0)
        for slo in (0.0, -1.0, float("inf")):
            with pytest.raises(ValueError):
                OverloadConfig(slo=slo)

    def test_backoff_shape_unchecked_when_retries_disabled(self):
        """Satellite: max_retries=0 means no backoff ever fires, so an
        inverted cap/base pair must be accepted there — and only there."""
        cfg = FailoverConfig(max_retries=0, backoff_base=0.5,
                             backoff_cap=0.1)
        assert cfg.max_retries == 0
        with pytest.raises(ValueError, match="backoff_cap"):
            FailoverConfig(max_retries=1, backoff_base=0.5, backoff_cap=0.1)

    def test_max_retries_zero_is_first_failure_drop(self):
        """With retries disabled the first dead pick drops the request
        at its arrival instant — no backoff delay, no budget draw."""
        trace = Trace([1.0, 2.0], duration=10.0)
        faults = FaultSchedule([[(0.0, 10.0)], []], 10.0)
        config = OverloadConfig(
            failover=FailoverConfig(max_retries=0, backoff_base=0.5,
                                    backoff_cap=0.1),
            retry_budget=RetryBudgetConfig(capacity=100.0),
        )
        for engine in (route_with_overload, route_with_overload_step):
            out = engine(make_router("round_robin"),
                         make_context(trace, 2), faults, config)
            # round_robin: request 0 picks dead device 0 and drops on
            # the spot; request 1 picks device 1 and lands
            assert out.assignments.tolist() == [-1, 1]
            assert out.dispatch_times.tolist() == [1.0, 2.0]
            assert out.n_retries == 0
            assert out.n_shed == 0


# --------------------------------------------------------------------- #
# reduction: disabled features change nothing
# --------------------------------------------------------------------- #


class TestReductionToFailover:
    """OverloadConfig with breakers, budget, and deadlines all None must
    reproduce route_with_failover bit for bit on fail-stop schedules —
    severity is exactly 1.0 on live devices and ``x * 1.0 == x``."""

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    @pytest.mark.parametrize("policy", ("next_best", "resubmit"))
    def test_bit_identical_to_failover(self, name, policy, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        router = make_router(name)
        failover = FailoverConfig(policy=policy, max_retries=3,
                                  backoff_base=0.25, backoff_cap=2.0)
        faults = FaultProcess(mtbf=40.0, mttr=6.0).realize(
            4, trace.duration, seed=5)
        ref = route_with_failover(
            router, make_context(trace, 4, seed=9), faults, failover)
        for engine in (route_with_overload, route_with_overload_step):
            out = engine(router, make_context(trace, 4, seed=9), faults,
                         OverloadConfig(failover=failover))
            assert np.array_equal(ref.assignments, out.assignments)
            assert np.array_equal(ref.dispatch_times, out.dispatch_times)
            assert np.array_equal(ref.retries, out.retries)
            assert out.n_shed == 0
            assert out.n_breaker_trips == 0
            assert np.all(out.deadlines == math.inf)

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_no_fault_schedule_reproduces_plain_routing(self, name, rng):
        trace = renewal_trace(Exponential(0.8), 200.0, rng)
        router = make_router(name)
        plain = router.route(make_context(trace, 4, seed=9))
        out = route_with_overload_step(
            router, make_context(trace, 4, seed=9),
            no_faults(4, trace.duration), FULL_CONFIG,
        )
        # breakers see no failures and generous booked waits, the budget
        # is never drawn, and the 6s SLO is never at risk at this load:
        # every choice is the router's natural one
        assert np.array_equal(out.assignments, plain)
        assert out.n_shed == 0
        assert out.n_breaker_trips == 0


# --------------------------------------------------------------------- #
# pinning: scalar reference vs vectorized engine
# --------------------------------------------------------------------- #


class TestScalarVectorizedPinning:
    """The acceptance matrix: every router x preset x scenario, full
    degradation config, bit-identical outcomes."""

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    @pytest.mark.parametrize("device_name", PRESETS)
    def test_pinned_across_scenarios(self, name, device_name, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        router = make_router(name)
        for label, faults in overload_scenarios(4, trace.duration).items():
            config = FULL_CONFIG
            if label == "budget_storm":
                config = OverloadConfig(
                    failover=FULL_CONFIG.failover,
                    breaker=FULL_CONFIG.breaker,
                    retry_budget=RetryBudgetConfig(capacity=2.0,
                                                   refill_rate=0.01),
                    slo=FULL_CONFIG.slo,
                )
            ref = route_with_overload(
                router, make_context(trace, 4, device_name, seed=9),
                faults, config,
            )
            fast = route_with_overload_step(
                router, make_context(trace, 4, device_name, seed=9),
                faults, config,
            )
            assert_outcomes_identical(ref, fast, f"{name}/{device_name}/{label}")

    def test_budget_storm_actually_sheds(self, rng):
        """The budget_storm scenario must exercise the exhaustion path,
        or the matrix above pins dead code."""
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        faults = overload_scenarios(4, trace.duration)["budget_storm"]
        config = OverloadConfig(
            failover=FULL_CONFIG.failover,
            retry_budget=RetryBudgetConfig(capacity=2.0, refill_rate=0.01),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 4, seed=9),
            faults, config,
        )
        assert out.n_budget_shed > 0

    def test_brownout_scenario_inflates_demands(self, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        faults = overload_scenarios(4, trace.duration)["brownout"]
        out = route_with_overload(
            make_router("jsq"), make_context(trace, 4, seed=9), faults,
            OverloadConfig(),
        )
        inflated = out.effective_demands > np.full(len(trace), 0.4)
        assert inflated.any()
        # a browned-out device *serves* — no drops from slowness alone
        assert out.n_dropped == 0

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_pinned_single_device_fleet(self, name, rng):
        trace = renewal_trace(Exponential(0.5), 100.0, rng)
        faults = FaultSchedule(
            [[(10.0, 30.0), (50.0, 60.0, 5.0)]], trace.duration)
        router = make_router(name)
        ref = route_with_overload(
            router, make_context(trace, 1, seed=3), faults, FULL_CONFIG)
        fast = route_with_overload_step(
            router, make_context(trace, 1, seed=3), faults, FULL_CONFIG)
        assert_outcomes_identical(ref, fast)

    def test_device_count_mismatch_raises(self, rng):
        trace = renewal_trace(Exponential(0.5), 50.0, rng)
        for engine in (route_with_overload, route_with_overload_step):
            with pytest.raises(ValueError, match="covers 2 devices"):
                engine(make_router("jsq"), make_context(trace, 4),
                       no_faults(2, trace.duration))


# --------------------------------------------------------------------- #
# mechanism semantics
# --------------------------------------------------------------------- #


class TestBrownoutSemantics:
    def test_severity_multiplies_booked_demand(self):
        trace = Trace([1.0], duration=10.0, service_demands=[0.5])
        faults = FaultSchedule([[(0.0, 10.0, 3.0)]], 10.0)
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 1), faults,
            OverloadConfig(),
        )
        assert out.assignments.tolist() == [0]
        assert out.effective_demands.tolist() == [1.5]
        assert out.completions.tolist() == [1.0 + 1.5]

    def test_deadline_sees_inflated_cost(self):
        """The same request admits under an SLO the nominal demand
        meets, and sheds when the brownout inflates it past the line."""
        trace = Trace([1.0], duration=10.0, service_demands=[0.5])
        config = OverloadConfig(slo=1.0)
        healthy = route_with_overload(
            make_router("round_robin"), make_context(trace, 1),
            no_faults(1, 10.0), config,
        )
        assert healthy.assignments.tolist() == [0]
        browned = route_with_overload(
            make_router("round_robin"), make_context(trace, 1),
            FaultSchedule([[(0.0, 10.0, 3.0)]], 10.0), config,
        )
        assert browned.assignments.tolist() == [-2]
        assert browned.shed_reasons.tolist() == [SHED_DEADLINE]


class TestBreakerSemantics:
    def test_trips_after_consecutive_failures(self):
        """Three dead picks in a row trip device 0's breaker; the next
        natural decision is masked away from it with no retry needed."""
        trace = Trace([1.0, 2.0, 3.0, 4.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 50.0)], []], 100.0)
        config = OverloadConfig(
            failover=FailoverConfig(policy="resubmit", max_retries=3,
                                    backoff_base=0.25, backoff_cap=1.0),
            breaker=BreakerConfig(failure_threshold=3, recovery_time=40.0),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        assert out.n_breaker_trips == 1
        # once open, round_robin's masked decisions land straight on
        # device 1 — the retry tail vanishes
        assert out.retries[-1] == 0
        assert out.assignments[-1] == 1

    def test_half_open_reprobe_retrips_then_closes(self):
        """Open -> half-open at the recovery window; a failed reprobe
        re-trips immediately, a successful one closes the breaker."""
        trace = Trace([1.0, 5.0, 20.0, 25.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 15.0)], []], 100.0)
        config = OverloadConfig(
            failover=FailoverConfig(policy="resubmit", max_retries=1,
                                    backoff_base=0.5, backoff_cap=0.5),
            breaker=BreakerConfig(failure_threshold=1, recovery_time=3.0,
                                  half_open_successes=1),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        # t=1: dead pick trips the breaker (trip 1); the resubmit retry
        # re-picks device 0 while open and already half-probing is not
        # due, so the request drops or lands on 1 depending on the
        # cursor — what matters is the trip ledger:
        # t=5 > 1+3: half-open; device 0 still down -> reprobe fails,
        # re-trip (trip 2).  t=20 > 5+3: half-open again; device 0 is
        # repaired -> reprobe succeeds, breaker closes.  t=25: closed,
        # natural routing, no trip.
        assert out.n_breaker_trips >= 2
        assert out.assignments[2] == 0      # successful reprobe landed
        assert out.assignments[3] >= 0      # closed breaker routes freely
        # and both engines agree on the whole episode
        fast = route_with_overload_step(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        assert_outcomes_identical(out, fast)

    def test_all_open_fleet_is_never_black_holed(self):
        """A single-device fleet whose breaker is open must still route
        (the mask is dropped) — breakers bound blast radius, they do not
        turn the fleet into a black hole."""
        trace = Trace([1.0, 2.0, 10.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 5.0)]], 100.0)
        config = OverloadConfig(
            failover=FailoverConfig(max_retries=0),
            breaker=BreakerConfig(failure_threshold=1, recovery_time=50.0),
        )
        out = route_with_overload(
            make_router("jsq"), make_context(trace, 1), faults, config,
        )
        # requests 0 and 1 drop (device down, no retries) and trip/hold
        # the breaker; request 2 arrives after repair and must land even
        # though the breaker is still open
        assert out.assignments.tolist() == [-1, -1, 0]

    def test_latency_threshold_counts_as_failure(self):
        """No faults at all: a deep backlog alone pushes booked waits
        past the latency threshold and trips the breaker."""
        trace = Trace([0.0, 0.1, 0.2, 0.3, 0.4], duration=100.0,
                      service_demands=[5.0] * 5)
        config = OverloadConfig(
            breaker=BreakerConfig(failure_threshold=2, recovery_time=10.0,
                                  latency_threshold=2.0),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 1),
            no_faults(1, 100.0), config,
        )
        assert out.n_breaker_trips > 0
        assert (out.assignments >= 0).all()  # they still land (1 device)


class TestRetryBudgetSemantics:
    def test_exhaustion_sheds_instead_of_retrying(self):
        """Capacity 2, no refill, whole-fleet blackout: the first
        request burns both tokens, every later request sheds on its
        first would-be retry."""
        trace = Trace([1.0, 2.0, 3.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 90.0)], [(0.0, 90.0)]], 100.0)
        config = OverloadConfig(
            failover=FailoverConfig(max_retries=5, backoff_base=0.5,
                                    backoff_cap=0.5),
            retry_budget=RetryBudgetConfig(capacity=2.0, refill_rate=0.0),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        assert out.assignments.tolist() == [-2, -2, -2]
        assert out.retries.tolist() == [2, 0, 0]
        assert out.shed_reasons.tolist() == [SHED_BUDGET] * 3
        assert out.n_budget_shed == 3

    def test_refill_restores_tokens(self):
        """Same blackout, but the bucket refills at 1 token/s: a request
        arriving 10 s later has tokens to retry with again."""
        trace = Trace([1.0, 20.0], duration=200.0)
        faults = FaultSchedule([[(0.0, 190.0)], [(0.0, 190.0)]], 200.0)
        config = OverloadConfig(
            failover=FailoverConfig(max_retries=2, backoff_base=0.5,
                                    backoff_cap=0.5),
            retry_budget=RetryBudgetConfig(capacity=2.0, refill_rate=1.0),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        # request 0 burns both tokens then exhausts max_retries (drop);
        # request 1 finds a refilled bucket and does the same
        assert out.assignments.tolist() == [-1, -1]
        assert out.retries.tolist() == [2, 2]
        assert out.n_budget_shed == 0

    def test_zero_capacity_sheds_first_retry(self):
        trace = Trace([1.0], duration=10.0)
        faults = FaultSchedule([[(0.0, 9.0)], [(0.0, 9.0)]], 10.0)
        config = OverloadConfig(
            retry_budget=RetryBudgetConfig(capacity=0.0, refill_rate=0.0),
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        assert out.assignments.tolist() == [-2]
        assert out.retries.tolist() == [0]


class TestDeadlineSemantics:
    def test_backlog_miss_sheds_without_any_fault(self):
        """Admission control is load-aware, not just fault-aware: a deep
        enough backlog alone sheds the request."""
        trace = Trace([0.0, 0.1, 0.2], duration=100.0,
                      service_demands=[5.0, 5.0, 5.0])
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 1),
            no_faults(1, 100.0), OverloadConfig(slo=6.0),
        )
        # request 0 books [0, 5] (fits); request 1 would finish at 10.0
        # > 5.1; request 2 at 10.2's view still 5.0+5.0 > 6.2
        assert out.assignments.tolist() == [0, -2, -2]
        assert out.shed_reasons.tolist() == [0, SHED_DEADLINE, SHED_DEADLINE]

    def test_retry_past_deadline_sheds(self):
        trace = Trace([1.0], duration=100.0)
        faults = FaultSchedule([[(0.0, 50.0)], [(0.0, 50.0)]], 100.0)
        config = OverloadConfig(
            failover=FailoverConfig(max_retries=5, backoff_base=2.0,
                                    backoff_cap=2.0),
            slo=1.5,
        )
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 2), faults,
            config,
        )
        # the first backoff (to t=3.0) already passes deadline 2.5
        assert out.assignments.tolist() == [-2]
        assert out.shed_reasons.tolist() == [SHED_DEADLINE]
        assert out.retries.tolist() == [1]

    def test_goodput_and_slo_attainment(self):
        trace = Trace([0.0, 0.1, 0.2, 50.0], duration=100.0,
                      service_demands=[5.0, 5.0, 5.0, 1.0])
        out = route_with_overload(
            make_router("round_robin"), make_context(trace, 1),
            no_faults(1, 100.0), OverloadConfig(slo=6.0),
        )
        # 2 of 4 land (requests 0 and 3), both within deadline
        assert out.n_shed == 2
        assert out.goodput == pytest.approx(0.5)
        assert out.slo_attainment == pytest.approx(1.0)
        assert out.goodput <= (out.landed.sum() / 4.0)


class TestConservation:
    """dispatched + dropped + shed == offered, on every outcome."""

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_every_request_accounted(self, name, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        for label, faults in overload_scenarios(3, trace.duration).items():
            out = route_with_overload_step(
                make_router(name), make_context(trace, 3, seed=7),
                faults, FULL_CONFIG,
            )
            landed = int(out.landed.sum())
            assert landed + out.n_dropped + out.n_shed == len(trace), label
            assert out.goodput <= landed / len(trace) + 1e-12, label


# --------------------------------------------------------------------- #
# fleet engines and sweep integration
# --------------------------------------------------------------------- #


class TestFleetEnginesUnderOverload:
    KWARGS = dict(
        service_time=0.4, route_seed=21,
        faults=FaultProcess(mtbf=40.0, mttr=8.0, severity=4.0),
        fault_seed=77,
        overload=OverloadConfig(
            failover=FailoverConfig(max_retries=3),
            breaker=BreakerConfig(failure_threshold=2, recovery_time=5.0,
                                  latency_threshold=2.0),
            retry_budget=RetryBudgetConfig(capacity=6.0, refill_rate=0.2),
            slo=3.0,
        ),
    )
    OVERLOAD_FIELDS = ("availability", "n_retries", "n_dropped", "n_shed",
                       "n_budget_shed", "n_breaker_trips", "n_offered")

    @pytest.mark.parametrize("engine", ("auto", "flat"))
    @pytest.mark.parametrize("router_name", ("jsq", "round_robin", "random"))
    def test_engines_pinned_under_overload(self, engine, router_name, rng):
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        device = get_preset("mobile_hdd")
        ref = run_fleet(device, FixedTimeout(), trace,
                        make_router(router_name), 4, engine="scalar",
                        **self.KWARGS)
        fast = run_fleet(device, FixedTimeout(), trace,
                         make_router(router_name), 4, engine=engine,
                         **self.KWARGS)
        assert_fleet_reports_match(ref, fast)
        for field in self.OVERLOAD_FIELDS:
            assert getattr(ref, field) == getattr(fast, field), field
        for field in ("goodput", "slo_attainment"):
            assert getattr(fast, field) == pytest.approx(
                getattr(ref, field), rel=1e-12), field

    def test_report_conserves_and_bounds_goodput(self, rng):
        trace = renewal_trace(Exponential(0.8), 400.0, rng)
        report = run_fleet(get_preset("mobile_hdd"), AlwaysOn(), trace,
                           make_router("jsq"), 3, **self.KWARGS)
        assert report.n_offered == len(trace)
        assert (report.n_requests + report.n_dropped + report.n_shed
                == report.n_offered)
        assert report.goodput <= report.n_requests / report.n_offered + 1e-12
        assert 0.0 <= report.slo_attainment <= 1.0

    def test_brownout_schedule_auto_upgrades_failover_path(self, rng):
        """Passing a brownout schedule through the plain ``failover``
        argument must engage the overload engine (severity is not
        representable on the fail-stop path) — and both engines agree."""
        trace = renewal_trace(Exponential(0.8), 200.0, rng)
        device = get_preset("wlan")
        kwargs = dict(
            service_time=0.4, route_seed=3,
            faults=FaultProcess(mtbf=30.0, mttr=10.0, severity=3.0),
            fault_seed=11, failover=FailoverConfig(max_retries=2),
        )
        ref = run_fleet(device, FixedTimeout(), trace, make_router("jsq"),
                        3, engine="scalar", **kwargs)
        fast = run_fleet(device, FixedTimeout(), trace, make_router("jsq"),
                         3, engine="flat", **kwargs)
        assert_fleet_reports_match(ref, fast)
        # brownouts slow devices without killing them
        assert ref.availability == 1.0
        assert ref.n_dropped == 0

    def test_overload_and_failover_are_mutually_exclusive(self, rng):
        trace = renewal_trace(Exponential(0.8), 100.0, rng)
        with pytest.raises(ValueError, match="overload.failover"):
            run_fleet(get_preset("mobile_hdd"), AlwaysOn(), trace,
                      make_router("jsq"), 2, service_time=0.4,
                      faults=FaultProcess(mtbf=30.0, mttr=5.0),
                      failover=FailoverConfig(),
                      overload=OverloadConfig())


class TestDispatcherOverload:
    def test_shed_requests_reach_no_subtrace(self):
        trace = Trace([0.0, 0.1, 0.2], duration=100.0,
                      service_demands=[5.0, 5.0, 5.0])
        subs, outcome = Dispatcher(
            "round_robin", 1, get_preset("mobile_hdd"),
        ).dispatch_with_overload(trace, None, OverloadConfig(slo=6.0))
        assert outcome.n_shed == 2
        assert len(subs[0]) == 1
        assert subs[0].service_demands.tolist() == [5.0]

    def test_subtraces_carry_inflated_demands(self):
        trace = Trace([1.0, 2.0], duration=10.0,
                      service_demands=[0.5, 0.5])
        faults = FaultSchedule([[(0.0, 1.5, 4.0)]], 10.0)
        subs, outcome = Dispatcher(
            "round_robin", 1, get_preset("mobile_hdd"),
        ).dispatch_with_overload(trace, faults)
        assert subs[0].service_demands.tolist() == [2.0, 0.5]
        assert outcome.n_shed == 0


class TestSweepIntegration:
    def _spec(self):
        proc = FaultProcess(mtbf=30.0, mttr=8.0, severity=4.0)
        overload = OverloadConfig(
            breaker=BreakerConfig(failure_threshold=2, recovery_time=5.0,
                                  latency_threshold=2.0),
            retry_budget=RetryBudgetConfig(capacity=6.0, refill_rate=0.2),
            slo=3.0,
        )
        return FleetSweepSpec(
            device="mobile_hdd",
            fleet_sizes=(3,),
            routers=("jsq",),
            policies=(PolicySpec("always_on", AlwaysOn()),),
            trace=TraceSpec("exp", Exponential(1.5), 120.0),
            n_traces=4,
            service_time=0.4,
            faults=proc,
            overload=overload,
        )

    def test_sweep_verified_with_metrics_and_columns(self):
        spec = self._spec()
        assert spec.uses_overload
        result = FleetSweepRunner(
            chunk_size=2, verify_fraction=1.0,
        ).run(spec)
        counters = result.execution["metrics"]["counters"]
        assert "fleet.requests_shed" in counters
        assert "breaker.trips" in counters
        block = result.execution["verification"]
        assert block["n_divergences"] == 0
        table = result.render()
        assert "shed" in table
        assert "goodput" in table

    def test_spec_failover_must_match_overload(self):
        spec = self._spec()
        with pytest.raises(ValueError, match="overload.failover"):
            FleetSweepSpec(
                device=spec.device, fleet_sizes=spec.fleet_sizes,
                routers=spec.routers, policies=spec.policies,
                trace=spec.trace, n_traces=spec.n_traces,
                service_time=spec.service_time, faults=spec.faults,
                failover=FailoverConfig(max_retries=7),
                overload=OverloadConfig(),
            )

    def test_brownout_process_implies_overload(self):
        spec = FleetSweepSpec(
            device="mobile_hdd", fleet_sizes=(2,), routers=("round_robin",),
            policies=(PolicySpec("always_on", AlwaysOn()),),
            trace=TraceSpec("exp", Exponential(1.0), 100.0),
            n_traces=2, service_time=0.4,
            faults=FaultProcess(mtbf=30.0, mttr=5.0, severity=2.0),
        )
        assert spec.uses_overload
