"""SimSweepRunner: event-sim cell grids over the executor layer."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import AdaptiveTimeout, AlwaysOn, FixedTimeout, OracleShutdown
from repro.experiments import SimSweepConfig, build_sim_sweep_spec, run_sim_sweep
from repro.runtime import (
    PolicySpec,
    SimSweepRunner,
    SimSweepSpec,
    TraceSpec,
    resolve_n_jobs,
    run_sim_chunk,
)
from repro.runtime import executor as executor_mod
from repro.workload import Exponential


def small_spec(**overrides) -> SimSweepSpec:
    base = dict(
        devices=("mobile_hdd", "two_state"),
        traces=(TraceSpec("exp", Exponential(0.1), 400.0),),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("timeout", FixedTimeout()),
            PolicySpec("oracle", OracleShutdown(), oracle=True),
        ),
        n_traces=4,
        seed=5,
        seed_stride=11,
        service_time=0.3,
    )
    base.update(overrides)
    return SimSweepSpec(**base)


class TestSpecValidation:
    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            small_spec(devices=())
        with pytest.raises(ValueError):
            small_spec(policies=())

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            small_spec(n_traces=0)
        with pytest.raises(ValueError):
            small_spec(seed_stride=0)
        with pytest.raises(ValueError):
            small_spec(service_time=0.0)
        with pytest.raises(ValueError):
            TraceSpec("bad", Exponential(0.1), 0.0)
        with pytest.raises(ValueError):
            SimSweepRunner(chunk_size=0)

    def test_seeds_are_strided(self):
        assert small_spec().seeds() == [5, 16, 27, 38]


class TestGridExecution:
    def test_full_grid_shape_and_order(self):
        spec = small_spec()
        result = SimSweepRunner(chunk_size=2).run(spec)
        assert len(result.cells) == 2 * 1 * 3  # device x trace x policy
        assert [c.device for c in result.cells[:3]] == ["mobile_hdd"] * 3
        for cell in result.cells:
            assert len(cell.reports) == spec.n_traces

    def test_results_identical_across_chunking_and_jobs(self):
        spec = small_spec()
        reference = SimSweepRunner(chunk_size=spec.n_traces).run(spec)
        for chunk_size, n_jobs in ((1, 1), (3, 1), (2, 2)):
            other = SimSweepRunner(chunk_size=chunk_size, n_jobs=n_jobs).run(spec)
            for a, b in zip(reference.cells, other.cells):
                assert (a.device, a.trace, a.policy) == (b.device, b.trace, b.policy)
                assert a.reports == b.reports  # dataclass equality, exact

    def test_chunk_worker_is_pure(self):
        spec = small_spec()
        args = ("mobile_hdd", spec.policies[1], spec.traces[0],
                spec.service_time, [5, 16])
        assert run_sim_chunk(*args) == run_sim_chunk(*args)

    def test_stateful_policy_cells_fall_back_deterministically(self):
        spec = small_spec(policies=(
            PolicySpec("adaptive", AdaptiveTimeout(initial_timeout=1.0)),
        ))
        a = SimSweepRunner(chunk_size=1).run(spec)
        b = SimSweepRunner(chunk_size=4).run(spec)
        for ca, cb in zip(a.cells, b.cells):
            assert ca.reports == cb.reports

    def test_sweep_reports_drop_raw_latency_arrays(self):
        """Sweep cells aggregate summary fields only, so the per-request
        arrays are dropped before reports leave the worker."""
        result = SimSweepRunner(chunk_size=2).run(small_spec())
        for cell in result.cells:
            for report in cell.reports:
                assert report.latencies == ()
                assert report.n_requests > 0
                assert report.mean_latency >= 0.0

    def test_cell_lookup_and_aggregates(self):
        result = SimSweepRunner(chunk_size=2).run(small_spec())
        cell = result.cell("mobile_hdd", "exp", "timeout")
        ci = cell.power_ci()
        assert ci.low <= ci.estimate <= ci.high
        always_on = result.cell("mobile_hdd", "exp", "always_on")
        # paired traces: shutting down at break-even cannot cost energy
        assert cell.power_ci().estimate <= always_on.power_ci().estimate
        assert always_on.mean_shutdowns == 0
        oracle = result.cell("mobile_hdd", "exp", "oracle")
        assert oracle.mean_wrong_shutdowns == 0
        with pytest.raises(KeyError):
            result.cell("mobile_hdd", "exp", "nope")

    def test_render_lists_every_cell(self):
        result = SimSweepRunner(chunk_size=4).run(small_spec())
        table = result.render()
        assert "SIM-SWEEP" in table
        for cell in result.cells:
            assert cell.policy in table


class TestSerialDegrade:
    """The pool-degrade heuristic: tiny chunks and one-core hosts run
    in-process, and the decision is recorded in the result metadata."""

    def test_resolve_n_jobs_decisions(self, monkeypatch):
        assert resolve_n_jobs(1) == (1, "serial_requested")
        monkeypatch.setattr(executor_mod, "_host_cpu_count", lambda: 1)
        assert resolve_n_jobs(4, est_chunk_seconds=100.0) == (
            1, "single_core_host"
        )
        monkeypatch.setattr(executor_mod, "_host_cpu_count", lambda: 8)
        assert resolve_n_jobs(4, est_chunk_seconds=1e-4) == (1, "small_chunks")
        assert resolve_n_jobs(4, est_chunk_seconds=100.0) == (4, "parallel")
        assert resolve_n_jobs(4) == (4, "parallel")  # no estimate: trust caller
        assert resolve_n_jobs(
            4, est_chunk_seconds=0.02, min_chunk_seconds=0.01
        ) == (4, "parallel")
        # many small chunks together still amortize the pool spin-up...
        assert resolve_n_jobs(
            4, est_chunk_seconds=0.04, n_tasks=200
        ) == (4, "parallel")
        # ...but a handful of them do not, even just above the
        # per-chunk floor (the aggregate test governs when n_tasks is
        # known)
        assert resolve_n_jobs(
            4, est_chunk_seconds=0.01, n_tasks=8
        ) == (1, "small_chunks")
        assert resolve_n_jobs(
            4, est_chunk_seconds=0.06, n_tasks=3
        ) == (1, "small_chunks")
        assert resolve_n_jobs(
            4, est_chunk_seconds=0.06, n_tasks=100
        ) == (4, "parallel")

    def test_execution_metadata_recorded(self):
        spec = small_spec()
        runner = SimSweepRunner(chunk_size=2, n_jobs=2)
        result = runner.run(spec)
        meta = result.execution
        assert meta["n_jobs_requested"] == 2
        assert meta["n_jobs_effective"] in (1, 2)
        assert meta["decision"] in (
            "serial_requested", "single_core_host", "small_chunks", "parallel"
        )
        assert meta["estimated_chunk_seconds"] >= 0.0
        serial = SimSweepRunner(chunk_size=2, n_jobs=1).run(spec)
        assert serial.execution["decision"] == "serial_requested"
        assert serial.execution["n_jobs_effective"] == 1

    def test_small_chunks_degrade_but_results_identical(self):
        """small_spec's ~40-request replications are far below the ship
        threshold: a 2-job run degrades to in-process execution with
        bit-identical results."""
        spec = small_spec()
        est = SimSweepRunner(chunk_size=2).estimate_chunk_seconds(spec)
        assert est < executor_mod.MIN_CHUNK_SECONDS
        a = SimSweepRunner(chunk_size=2, n_jobs=1).run(spec)
        b = SimSweepRunner(chunk_size=2, n_jobs=2).run(spec)
        assert b.execution["n_jobs_effective"] == 1
        assert b.execution["decision"] in ("single_core_host", "small_chunks")
        for ca, cb in zip(a.cells, b.cells):
            assert ca.reports == cb.reports

    def test_estimate_tracks_engine_family(self):
        """Policies with no batch hook cost ~1000x more per request than
        the batched engines, and the estimate must reflect that — the
        lock-step engine moved adaptive/predictive into the fast bucket."""
        from repro.runtime.simsweep import (
            FAST_SECONDS_PER_REQUEST,
            SCALAR_SECONDS_PER_REQUEST,
            estimate_request_seconds,
        )
        from test_runtime_eventsim_batch import _StatefulScalarOnly

        for policy in (FixedTimeout(), AdaptiveTimeout(initial_timeout=1.0)):
            assert estimate_request_seconds(policy, 1000.0) == pytest.approx(
                1000.0 * FAST_SECONDS_PER_REQUEST
            )
        assert estimate_request_seconds(
            _StatefulScalarOnly(), 1000.0
        ) == pytest.approx(1000.0 * SCALAR_SECONDS_PER_REQUEST)


class TestExperimentHarness:
    def test_config_roundtrip_and_determinism(self):
        config = dataclasses.replace(
            SimSweepConfig(), devices=("mobile_hdd",), duration=400.0,
            n_traces=2, chunk_size=1,
        )
        spec = build_sim_sweep_spec(config)
        assert spec.n_traces == 2
        assert len(spec.traces) == 2  # exp + pareto families
        a = run_sim_sweep(config)
        b = run_sim_sweep(dataclasses.replace(config, n_jobs=2))
        for ca, cb in zip(a.cells, b.cells):
            assert ca.reports == cb.reports

    def test_unknown_device_fails_fast(self):
        with pytest.raises(KeyError):
            build_sim_sweep_spec(
                dataclasses.replace(SimSweepConfig(), devices=("warp",))
            )
