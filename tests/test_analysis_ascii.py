"""ASCII chart and table rendering tests."""

import numpy as np
import pytest

from repro.analysis import ascii_chart, format_table


class TestChart:
    def test_contains_series_glyphs_and_legend(self):
        x = np.arange(10, dtype=float)
        chart = ascii_chart(x, {"alpha": x, "beta": x[::-1]})
        assert "*" in chart
        assert "o" in chart
        assert "*=alpha" in chart
        assert "o=beta" in chart

    def test_vlines_drawn(self):
        x = np.arange(100, dtype=float)
        chart = ascii_chart(x, {"s": np.zeros(100)}, vlines=[50])
        assert "|" in chart.splitlines()[4]

    def test_hlines_drawn_and_legended(self):
        x = np.arange(10, dtype=float)
        chart = ascii_chart(x, {"s": x}, hlines={"ref": 5.0})
        assert "--=ref" in chart
        assert "-" in chart

    def test_title_and_labels(self):
        x = np.arange(5, dtype=float)
        chart = ascii_chart(x, {"s": x}, title="My Title", y_label="power")
        assert chart.splitlines()[0] == "My Title"
        assert "power" in chart

    def test_empty_data(self):
        assert ascii_chart(np.array([]), {}) == "(no data)"

    def test_misaligned_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(np.arange(3, dtype=float), {"s": np.zeros(5)})

    def test_constant_series_no_crash(self):
        x = np.arange(4, dtype=float)
        chart = ascii_chart(x, {"s": np.full(4, 2.0)})
        assert "*" in chart

    def test_nan_values_skipped(self):
        x = np.arange(4, dtype=float)
        y = np.array([1.0, np.nan, 3.0, 4.0])
        chart = ascii_chart(x, {"s": y})
        assert "*" in chart


class TestTable:
    def test_alignment_and_content(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["long-name", 2.5]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000012345], [123456.0], [0.5], [0]])
        assert "1.234e-05" in text
        assert "1.235e+05" in text or "1.234e+05" in text
        assert "0.5" in text
