"""Vectorized event-sim kernel: field-for-field equivalence with the
scalar :class:`~repro.sim.DPMSimulator` event loop.

The contract mirrors the batched slotted engine's: the fast path must be
indistinguishable from the reference semantics.  Every eligible baseline
policy is pinned against the scalar loop on shared traces across device
presets (rel tol <= 1e-9 on every :class:`~repro.sim.SimReport` field,
identical residency key sets), and stateful policies must fall back to
the scalar loop with identical results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    MultiLevelTimeout,
    OracleShutdown,
    PredictiveShutdown,
)
from repro.device import PowerState, PowerStateMachine, Transition, get_preset
from repro.sim import BatchIdleContext, DPMSimulator, resolve_demands
from repro.runtime import run_vectorized, simulate_trace
from repro.workload import Exponential, Pareto, Trace, renewal_trace

#: presets the equivalence matrix runs over (>= 3, different wait-state
#: shapes: mobile_hdd/abstract3 park in a free idle state, two_state and
#: wlan park at home because their shallow trips cost energy/latency)
PRESETS = ("mobile_hdd", "abstract3", "two_state", "wlan")

FIELDS = (
    "duration", "total_energy", "mean_power", "energy_saving_ratio",
    "n_requests", "mean_latency", "p95_latency", "max_latency",
    "n_shutdowns", "n_wrong_shutdowns", "n_idle_periods",
    "mean_idle_length",
)


def assert_reports_match(ref, fast, rel=1e-9):
    """Field-for-field SimReport comparison (ints exact, floats tight)."""
    for name in FIELDS:
        a, b = getattr(ref, name), getattr(fast, name)
        if isinstance(a, int):
            assert a == b, f"{name}: {a} != {b}"
        else:
            assert b == pytest.approx(a, rel=rel, abs=1e-12), name
    assert set(ref.state_residency) == set(fast.state_residency)
    for key, a in ref.state_residency.items():
        assert fast.state_residency[key] == pytest.approx(a, rel=rel, abs=1e-12), key


def run_both(device_name, policy_factory, trace, oracle=False,
             service_time=0.4):
    """Scalar and vectorized reports for the same cell (fresh objects
    each, so neither run can contaminate the other)."""
    ref = DPMSimulator(
        get_preset(device_name), policy_factory(),
        service_time=service_time, oracle=oracle,
    ).run(trace)
    fast = run_vectorized(
        get_preset(device_name), policy_factory(), trace,
        service_time=service_time, oracle=oracle,
    )
    return ref, fast


ELIGIBLE = [
    ("always_on", AlwaysOn, False),
    ("greedy", GreedySleep, False),
    ("timeout_break_even", FixedTimeout, False),
    ("timeout_short", lambda: FixedTimeout(1.5), False),
    ("oracle", OracleShutdown, True),
]


class TestEligibleEquivalence:
    @pytest.mark.parametrize("device_name", PRESETS)
    @pytest.mark.parametrize(
        "policy_factory,oracle", [(f, o) for _, f, o in ELIGIBLE],
        ids=[name for name, _, _ in ELIGIBLE],
    )
    def test_exponential_trace(self, device_name, policy_factory, oracle, rng):
        trace = renewal_trace(Exponential(0.05), 3_000.0, rng)
        ref, fast = run_both(device_name, policy_factory, trace, oracle)
        assert fast is not None, "eligible cell unexpectedly fell back"
        assert_reports_match(ref, fast)

    @pytest.mark.parametrize("device_name", ("mobile_hdd", "wlan"))
    @pytest.mark.parametrize(
        "policy_factory,oracle", [(f, o) for _, f, o in ELIGIBLE],
        ids=[name for name, _, _ in ELIGIBLE],
    )
    def test_heavy_tailed_trace(self, device_name, policy_factory, oracle, rng):
        trace = renewal_trace(Pareto(1.6, 6.0), 3_000.0, rng)
        ref, fast = run_both(device_name, policy_factory, trace, oracle)
        assert fast is not None
        assert_reports_match(ref, fast)

    def test_per_request_demands(self, rng):
        base = renewal_trace(Exponential(0.1), 1_500.0, rng)
        demands = rng.uniform(0.0, 1.2, size=len(base))  # zeros fall back
        trace = Trace(base.arrival_times, duration=1_500.0,
                      service_demands=demands)
        for factory, oracle in ((FixedTimeout, False), (OracleShutdown, True)):
            ref, fast = run_both("mobile_hdd", factory, trace, oracle)
            assert fast is not None
            assert_reports_match(ref, fast)

    def test_saturated_trace_single_busy_period(self, rng):
        """Queueing regime: arrivals outrun service, gaps never open."""
        trace = renewal_trace(Exponential(5.0), 200.0, rng)
        ref, fast = run_both("mobile_hdd", FixedTimeout, trace)
        assert fast is not None
        assert fast.n_idle_periods == ref.n_idle_periods
        assert_reports_match(ref, fast)

    def test_multilevel_first_stage(self, rng):
        trace = renewal_trace(Exponential(0.05), 2_000.0, rng)
        factory = lambda: MultiLevelTimeout([(2.0, "standby")])
        ref, fast = run_both("mobile_hdd", factory, trace)
        assert fast is not None
        assert_reports_match(ref, fast)


class TestEdgeCases:
    """Tie-breaking and boundary semantics, on integral (exactly
    representable) times so both engines resolve ties identically."""

    def test_empty_trace(self):
        trace = Trace([], duration=50.0)
        for factory, oracle in ((GreedySleep, False), (FixedTimeout, False),
                                (OracleShutdown, True), (AlwaysOn, False)):
            ref, fast = run_both("mobile_hdd", factory, trace, oracle)
            assert fast is not None
            assert_reports_match(ref, fast)

    def test_arrival_at_time_zero(self):
        """t=0 arrival lands after begin_idle(0): greedy still counts a
        (wrong) shutdown on the zero-length first gap."""
        trace = Trace([0.0, 0.0, 8.0], duration=30.0)
        ref, fast = run_both("mobile_hdd", GreedySleep, trace)
        assert fast is not None
        assert ref.n_shutdowns == fast.n_shutdowns
        assert ref.n_wrong_shutdowns == fast.n_wrong_shutdowns
        assert_reports_match(ref, fast)

    def test_timeout_tieing_with_arrival_never_fires(self):
        """TIMEOUT and ARRIVAL at the same instant: the arrival wins the
        tie-break, so no shutdown happens (integral times, exact)."""
        trace = Trace([2.0, 10.0], duration=12.0)
        # idle starts at 2 + 3 = 5; timeout 5 -> fires exactly at 10;
        # the trailing gap's timeout (13 + 5) is beyond the window too
        factory = lambda: FixedTimeout(5.0, "off")
        ref, fast = run_both("two_state", factory, trace, service_time=3.0)
        assert fast is not None
        assert ref.n_shutdowns == fast.n_shutdowns == 0
        # one second earlier the timeout beats the arrival
        early = lambda: FixedTimeout(4.0, "off")
        ref, fast = run_both("two_state", early, trace, service_time=3.0)
        assert fast is not None
        assert ref.n_shutdowns == fast.n_shutdowns == 1
        assert_reports_match(ref, fast)

    def test_trailing_timeout_beyond_window_is_dropped(self):
        """A TIMEOUT scheduled at/after the trace duration never fires,
        but a zero-timeout (inline) shutdown still does."""
        trace = Trace([1.0], duration=4.0)
        # idle restarts at 2; timeout 2 -> event at exactly 4 = duration
        factory = lambda: FixedTimeout(2.0, "standby")
        ref, fast = run_both("mobile_hdd", factory, trace, service_time=1.0)
        assert fast is not None
        assert ref.n_shutdowns == fast.n_shutdowns == 0
        assert_reports_match(ref, fast)
        ref, fast = run_both("mobile_hdd", GreedySleep, trace, service_time=1.0)
        assert ref.n_shutdowns == fast.n_shutdowns == 2  # inline: no check
        assert_reports_match(ref, fast)

    def test_final_down_transition_extends_duration(self):
        """A trailing shutdown whose down transition out-lives the window
        stretches the reported duration past it on both paths."""
        trace = Trace([9.0], duration=10.0)
        ref, fast = run_both("mobile_hdd", GreedySleep, trace, service_time=0.5)
        assert fast is not None
        assert ref.duration > 10.0
        assert_reports_match(ref, fast)

    def test_wake_during_down_transition(self):
        """Arrival mid-down-flight: the device completes the descent,
        then wakes — both paths charge the full round trip."""
        trace = Trace([6.0, 6.2], duration=20.0)  # standby fall takes 0.67
        factory = lambda: FixedTimeout(0.5, "standby")
        ref, fast = run_both("mobile_hdd", factory, trace, service_time=0.3)
        assert fast is not None
        assert ref.n_shutdowns >= 1
        assert_reports_match(ref, fast)


class TestFallback:
    def test_stateful_policies_decline_batch(self, rng):
        trace = renewal_trace(Exponential(0.05), 1_000.0, rng)
        for factory in (lambda: AdaptiveTimeout(initial_timeout=2.0),
                        lambda: PredictiveShutdown(smoothing=0.5)):
            assert run_vectorized(
                get_preset("mobile_hdd"), factory(), trace, service_time=0.4
            ) is None

    def test_simulate_trace_falls_back_with_identical_results(self, rng):
        """simulate_trace on a stateful policy IS the scalar loop."""
        trace = renewal_trace(Exponential(0.05), 1_000.0, rng)
        for factory in (lambda: AdaptiveTimeout(initial_timeout=2.0),
                        lambda: PredictiveShutdown(smoothing=0.5)):
            ref = DPMSimulator(
                get_preset("mobile_hdd"), factory(), service_time=0.4
            ).run(trace)
            fast = simulate_trace(
                get_preset("mobile_hdd"), factory(), trace, service_time=0.4
            )
            assert fast == ref  # same code path: exact dataclass equality

    def test_simulate_trace_uses_kernel_when_eligible(self, rng):
        trace = renewal_trace(Exponential(0.05), 1_000.0, rng)
        report = simulate_trace(
            get_preset("mobile_hdd"), FixedTimeout(), trace, service_time=0.4
        )
        ref = DPMSimulator(
            get_preset("mobile_hdd"), FixedTimeout(), service_time=0.4
        ).run(trace)
        assert_reports_match(ref, report)

    def test_costly_wait_state_falls_back(self, rng):
        """An explicit wait state without a free instant round trip keeps
        the scalar loop (the kernel cannot fold the park into residency)."""
        # wlan's on<->doze trip costs energy and latency
        trace = renewal_trace(Exponential(0.05), 500.0, rng)
        assert run_vectorized(
            get_preset("wlan"), FixedTimeout(), trace, service_time=0.4,
            wait_state="doze",
        ) is None
        ref = DPMSimulator(
            get_preset("wlan"), FixedTimeout(), service_time=0.4,
            wait_state="doze",
        ).run(trace)
        fast = simulate_trace(
            get_preset("wlan"), FixedTimeout(), trace, service_time=0.4,
            wait_state="doze",
        )
        assert fast == ref

    def test_invalid_service_time_raises_like_simulator(self):
        with pytest.raises(ValueError):
            run_vectorized(
                get_preset("mobile_hdd"), FixedTimeout(), Trace([1.0]),
                service_time=0.0,
            )


class TestKernelInternals:
    def test_resolve_demands_defaults_and_zero_fallback(self):
        trace = Trace([1.0, 2.0, 3.0], duration=5.0,
                      service_demands=[0.5, 0.0, 2.0])
        np.testing.assert_allclose(
            resolve_demands(trace, 0.7), [0.5, 0.7, 2.0]
        )
        bare = Trace([1.0, 2.0], duration=5.0)
        np.testing.assert_allclose(resolve_demands(bare, 0.7), [0.7, 0.7])

    def test_decide_batch_matches_on_idle_for_oracle(self, rng):
        """The oracle's batched decisions replicate per-gap on_idle."""
        device = get_preset("mobile_hdd")
        policy = OracleShutdown()
        gap_starts = np.array([0.0, 10.0, 25.0, 40.0])
        next_arrivals = np.array([4.0, 11.0, 39.0, np.nan])
        batch = policy.decide_batch(BatchIdleContext(
            gap_starts=gap_starts, next_arrivals=next_arrivals,
            device=device, wait_state="idle",
        ))
        from repro.sim import IdleContext
        names = device.state_names
        for i in range(gap_starts.size):
            nxt = None if np.isnan(next_arrivals[i]) else float(next_arrivals[i])
            scalar = policy.on_idle(IdleContext(
                now=float(gap_starts[i]), device=device,
                wait_state="idle", next_arrival=nxt,
            ))
            expect_idx = -1 if scalar.target_state is None else names.index(
                scalar.target_state
            )
            assert batch.target_idx[i] == expect_idx
            assert batch.timeouts[i] == scalar.timeout

    def test_wake_delay_cascade_converges(self):
        """Chained gaps where each wake delay shifts the next gap's
        decision: the fixpoint must settle on scalar semantics."""
        # two_state: down 0.5s, up 1.5s; timeout 8 on gaps ~8-10 long
        arrivals = [10.0, 20.0, 30.0, 40.0, 50.0]
        trace = Trace(arrivals, duration=60.0)
        factory = lambda: FixedTimeout(8.0, "off")
        ref, fast = run_both("two_state", factory, trace, service_time=1.0)
        assert fast is not None
        assert_reports_match(ref, fast)


class TestDispatcherDegenerates:
    """Shapes the fleet dispatcher routinely produces: empty sub-traces
    (a device that got no requests but still owns the whole window),
    single-request sub-traces, and the all-requests-to-one-device skew
    of a consolidating router.  Field-for-field vs the scalar loop."""

    DEGENERATE_POLICIES = (
        (AlwaysOn, False), (GreedySleep, False), (FixedTimeout, False),
        (OracleShutdown, True),
    )

    @pytest.mark.parametrize("device_name", PRESETS)
    def test_empty_subtrace_long_window(self, device_name):
        """A starved device: zero requests over a long window (greedy
        parks it immediately; the report is one trailing idle period)."""
        trace = Trace([], duration=5_000.0)
        for factory, oracle in self.DEGENERATE_POLICIES:
            ref, fast = run_both(device_name, factory, trace, oracle)
            assert fast is not None
            assert fast.n_requests == 0
            assert fast.n_idle_periods == 1
            assert_reports_match(ref, fast)

    @pytest.mark.parametrize("device_name", PRESETS)
    def test_single_request_subtrace(self, device_name):
        """One request mid-window: a leading gap, one service, and a
        trailing gap."""
        trace = Trace([100.0], duration=2_000.0)
        for factory, oracle in self.DEGENERATE_POLICIES:
            ref, fast = run_both(device_name, factory, trace, oracle)
            assert fast is not None
            assert fast.n_requests == 1
            assert_reports_match(ref, fast)

    def test_all_requests_to_one_device_skew(self, rng):
        """A consolidating router's worst case: one device gets the whole
        stream, its siblings get nothing — both extremes must match the
        scalar loop on the same shared window."""
        trace = renewal_trace(Exponential(0.8), 1_500.0, rng)
        assignments = np.zeros(len(trace), dtype=np.int64)
        subs = trace.split(assignments, n_parts=4)
        assert [len(s) for s in subs] == [len(trace), 0, 0, 0]
        for sub in (subs[0], subs[1]):
            for factory, oracle in self.DEGENERATE_POLICIES:
                ref, fast = run_both("mobile_hdd", factory, sub, oracle)
                assert fast is not None
                assert_reports_match(ref, fast)
