"""Slotted environment dynamics tests."""

import numpy as np
import pytest

from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.workload import ConstantRate, PiecewiseConstantRate


def make_env(**kwargs):
    defaults = dict(
        schedule=ConstantRate(0.2), queue_capacity=4, p_serve=1.0,
        perf_weight=0.5, loss_penalty=2.0, seed=7,
    )
    defaults.update(kwargs)
    return SlottedDPMEnv(abstract_three_state(), **defaults)


class TestIndexing:
    def test_state_count(self):
        env = make_env()
        assert env.n_states == 5 * 5  # 5 modes x (cap 4 + 1)

    def test_encode_decode_roundtrip(self):
        env = make_env()
        for state in range(env.n_states):
            mode, queue = env.decode(state)
            mode_index = env.mode_space.modes.index(mode)
            assert env.encode(mode_index, queue) == state

    def test_encode_bounds(self):
        env = make_env()
        with pytest.raises(ValueError):
            env.encode(0, 99)
        with pytest.raises(ValueError):
            env.encode(99, 0)
        with pytest.raises(ValueError):
            env.decode(env.n_states)

    def test_state_label(self):
        env = make_env()
        assert env.state_label(env.state) == "active|q=0"


class TestConstruction:
    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_env(queue_capacity=0)
        with pytest.raises(ValueError):
            make_env(p_serve=0.0)
        with pytest.raises(ValueError):
            make_env(p_serve=1.5)
        with pytest.raises(ValueError):
            make_env(perf_weight=-1.0)


class TestDynamics:
    def test_always_on_never_saves(self):
        env = make_env(schedule=ConstantRate(0.0))
        stay = env.mode_space.action_index("active")
        for _ in range(100):
            env.step(stay)
        assert env.energy_saving_ratio() == pytest.approx(0.0)
        assert env.totals.energy == pytest.approx(100.0)

    def test_sleeping_saves_energy(self):
        env = make_env(schedule=ConstantRate(0.0))
        env.step(env.mode_space.action_index("sleep"))  # 1-slot transition
        sleep_stay = env.mode_space.action_index("sleep")
        for _ in range(99):
            env.step(sleep_stay)
        assert env.energy_saving_ratio() > 0.9

    def test_queue_grows_when_sleeping(self):
        env = make_env(schedule=ConstantRate(1.0))
        env.step(env.mode_space.action_index("sleep"))
        for _ in range(10):
            _, _, info = env.step(env.mode_space.action_index("sleep"))
        assert info.queue == env.queue_capacity
        assert env.totals.losses > 0

    def test_service_drains_queue(self):
        env = make_env(schedule=ConstantRate(0.0), p_serve=1.0)
        env.reset(queue=3)
        stay = env.mode_space.action_index("active")
        _, _, info = env.step(stay)
        assert info.served
        assert info.queue == 2

    def test_no_service_while_idle(self):
        env = make_env(schedule=ConstantRate(0.0))
        env.reset(queue=3)
        env.step(env.mode_space.action_index("idle"))
        _, _, info = env.step(env.mode_space.action_index("idle"))
        assert not info.served
        assert info.queue == 3

    def test_no_service_during_wake_transition(self):
        env = make_env(schedule=ConstantRate(0.0))
        env.reset(queue=2, mode="sleep")
        wake = env.mode_space.action_index("active")
        _, _, info1 = env.step(wake)
        _, _, info2 = env.step(wake)
        _, _, info3 = env.step(wake)
        assert not info1.served and not info2.served and not info3.served
        # now in active: next slot serves
        _, _, info4 = env.step(wake)
        assert info4.served

    def test_reward_formula(self):
        env = make_env(schedule=ConstantRate(0.0))
        env.reset(queue=2)
        stay = env.mode_space.action_index("active")
        _, reward, info = env.step(stay)
        expected = -info.energy - 0.5 * info.queue
        assert reward == pytest.approx(expected)

    def test_loss_penalty_applied(self):
        env = make_env(schedule=ConstantRate(1.0))
        env.reset(queue=4, mode="sleep")
        _, reward, info = env.step(env.mode_space.action_index("sleep"))
        assert info.lost
        sleep_energy = info.energy
        assert reward == pytest.approx(-sleep_energy - 0.5 * 4 - 2.0)

    def test_disallowed_action_raises(self):
        env = make_env()
        env.reset(mode="sleep")
        with pytest.raises(KeyError):
            env.step(env.mode_space.action_index("idle"))

    def test_seed_reproducibility(self):
        env_a = make_env(seed=3)
        env_b = make_env(seed=3)
        stay = env_a.mode_space.action_index("active")
        for _ in range(200):
            sa, ra, _ = env_a.step(stay)
            sb, rb, _ = env_b.step(stay)
            assert sa == sb
            assert ra == rb

    def test_reset_clears_totals(self):
        env = make_env()
        stay = env.mode_space.action_index("active")
        for _ in range(10):
            env.step(stay)
        env.reset()
        assert env.totals.slots == 0
        assert env.current_slot == 0
        assert env.state == env.encode(
            env.mode_space.steady_mode_index("active"), 0
        )

    def test_reset_seed_reproduces_episode(self):
        env = make_env()
        stay = env.mode_space.action_index("active")
        env.reset(seed=11)
        first = [env.step(stay)[1] for _ in range(50)]
        env.reset(seed=11)
        second = [env.step(stay)[1] for _ in range(50)]
        assert first == second

    def test_nonstationary_schedule_followed(self):
        schedule = PiecewiseConstantRate([(500, 1.0), (500, 0.0)])
        env = make_env(schedule=schedule)
        stay = env.mode_space.action_index("active")
        arrivals_first = sum(env.step(stay)[2].arrived for _ in range(500))
        arrivals_second = sum(env.step(stay)[2].arrived for _ in range(500))
        assert arrivals_first == 500
        assert arrivals_second == 0


class TestTotals:
    def test_little_law_consistency(self):
        env = make_env(schedule=ConstantRate(0.3), seed=5)
        stay = env.mode_space.action_index("active")
        for _ in range(20_000):
            env.step(stay)
        totals = env.totals
        # mean latency = mean queue / accepted rate
        expected = totals.mean_queue() / (
            (totals.arrivals - totals.losses) / totals.slots
        )
        assert totals.mean_latency(1.0) == pytest.approx(expected)

    def test_mean_power(self):
        env = make_env(schedule=ConstantRate(0.0))
        stay = env.mode_space.action_index("active")
        for _ in range(100):
            env.step(stay)
        assert env.totals.mean_power(1.0) == pytest.approx(1.0)

    def test_empty_totals(self):
        env = make_env()
        assert env.totals.mean_queue() == 0.0
        assert env.totals.mean_latency(1.0) == 0.0
        assert env.totals.loss_rate() == 0.0
        assert env.energy_saving_ratio() == 0.0
