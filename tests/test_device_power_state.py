"""Unit tests for PowerState and Transition primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.device import PowerState, Transition


class TestPowerState:
    def test_basic_construction(self):
        st_ = PowerState("active", 2.5, can_service=True)
        assert st_.name == "active"
        assert st_.power == 2.5
        assert st_.can_service

    def test_default_not_servicing(self):
        assert not PowerState("sleep", 0.1).can_service

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            PowerState("", 1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError, match="power"):
            PowerState("x", -0.1)

    def test_zero_power_allowed(self):
        assert PowerState("off", 0.0).power == 0.0

    def test_energy(self):
        assert PowerState("x", 2.0).energy(3.0) == pytest.approx(6.0)

    def test_energy_zero_duration(self):
        assert PowerState("x", 2.0).energy(0.0) == 0.0

    def test_energy_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            PowerState("x", 2.0).energy(-1.0)

    def test_roundtrip_dict(self):
        st_ = PowerState("idle", 0.4, can_service=True)
        assert PowerState.from_dict(st_.to_dict()) == st_

    @given(power=st.floats(min_value=0, max_value=1e6, allow_nan=False))
    def test_energy_scales_linearly(self, power):
        state = PowerState("s", power)
        assert state.energy(2.0) == pytest.approx(2 * state.energy(1.0))

    def test_frozen(self):
        with pytest.raises(Exception):
            PowerState("x", 1.0).power = 2.0


class TestTransition:
    def test_basic_construction(self):
        tr = Transition("on", "off", energy=0.5, latency=1.5)
        assert tr.key == ("on", "off")
        assert tr.mean_power == pytest.approx(0.5 / 1.5)

    def test_self_transition_rejected(self):
        with pytest.raises(ValueError, match="self-transition"):
            Transition("on", "on", 0.0, 0.0)

    def test_negative_energy_rejected(self):
        with pytest.raises(ValueError, match="energy"):
            Transition("a", "b", -1.0, 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Transition("a", "b", 0.0, -1.0)

    def test_instant_transition_mean_power_zero(self):
        assert Transition("a", "b", 5.0, 0.0).mean_power == 0.0

    def test_roundtrip_dict(self):
        tr = Transition("a", "b", 1.25, 0.75)
        assert Transition.from_dict(tr.to_dict()) == tr
