"""Bootstrap CI tests."""

import numpy as np
import pytest

from repro.analysis import CI, bootstrap_ci


class TestBootstrapCI:
    def test_ci_contains_point_estimate(self, rng):
        samples = rng.normal(5.0, 1.0, size=200)
        ci = bootstrap_ci(samples, rng=rng)
        assert ci.low <= ci.estimate <= ci.high
        assert ci.contains(ci.estimate)

    def test_ci_covers_true_mean_for_normal_data(self):
        hits = 0
        for seed in range(20):
            rng = np.random.default_rng(seed)
            samples = rng.normal(2.0, 1.0, size=150)
            ci = bootstrap_ci(samples, confidence=0.95, rng=rng)
            hits += ci.contains(2.0)
        assert hits >= 16  # ~95% coverage, generous slack

    def test_narrower_with_more_data(self, rng):
        small = bootstrap_ci(rng.normal(0, 1, size=20), rng=rng)
        large = bootstrap_ci(rng.normal(0, 1, size=5000), rng=rng)
        assert large.half_width < small.half_width

    def test_custom_statistic(self, rng):
        samples = rng.exponential(1.0, size=500)
        ci = bootstrap_ci(samples, statistic=np.median, rng=rng)
        assert ci.estimate == pytest.approx(np.median(samples))

    def test_single_sample_degenerate(self):
        ci = bootstrap_ci(np.array([3.0]))
        assert ci.low == ci.high == ci.estimate == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]), n_resamples=0)

    def test_str_format(self):
        ci = CI(1.0, 0.5, 1.5, 0.95)
        text = str(ci)
        assert "1" in text and "0.5" in text

    def test_deterministic_default_rng(self):
        samples = np.arange(50, dtype=float)
        a = bootstrap_ci(samples)
        b = bootstrap_ci(samples)
        assert (a.low, a.high) == (b.low, b.high)
