"""Graceful interruption: signal mid-sweep, flush, resume bit-identically.

Two layers: the in-process contract of :func:`run_chunks_checkpointed`
(a KeyboardInterrupt during chunk collection surfaces as
:class:`SweepInterrupted` carrying journaled progress), and the full
subprocess integration — a real SIGINT/SIGTERM delivered to a running
checkpointed ``fleet-sweep`` must exit 130 with a resume hint, leave a
valid journal behind, and ``--resume`` must complete the sweep with
output identical to an uninterrupted run.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime import SerialExecutor, run_chunks_checkpointed
from repro.runtime.verify import SweepInterrupted

SRC = Path(__file__).resolve().parent.parent / "src"

#: long enough (~4-5 s of chunk collection across 40 chunks) that a
#: signal sent after the third journaled chunk reliably lands mid-sweep
_SWEEP_CMD = [
    sys.executable, "-m", "repro", "fleet-sweep",
    "--devices", "2", "--router", "round_robin", "--seeds", "32",
]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _count_records(path: Path) -> int:
    if not path.exists():
        return 0
    count = 0
    with open(path, "rb") as fh:
        while True:
            try:
                pickle.load(fh)
            except Exception:
                break
            count += 1
    return count


def _wait_for_records(path: Path, n: int, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        count = _count_records(path)
        if count >= n:
            return count
        time.sleep(0.05)
    return _count_records(path)


# --------------------------------------------------------------------- #
# in-process: run_chunks_checkpointed interrupt contract
# --------------------------------------------------------------------- #


class TestInterruptContract:
    def test_keyboard_interrupt_surfaces_sweep_interrupted(self, tmp_path):
        ck = tmp_path / "ck.pkl"

        def fn(x):
            if x == 2:
                raise KeyboardInterrupt
            return x * x

        with pytest.raises(SweepInterrupted) as err:
            run_chunks_checkpointed(
                SerialExecutor(), fn, [(0,), (1,), (2,), (3,)], "k",
                checkpoint=ck,
            )
        exc = err.value
        assert exc.signal_name == "SIGINT"
        assert exc.n_completed == 2
        assert exc.n_total == 4
        hint = exc.resume_hint()
        assert "2/4" in hint
        assert str(ck) in hint

        # the journal holds exactly the chunks collected before the
        # signal, and a rerun completes from there
        results, execution = run_chunks_checkpointed(
            SerialExecutor(), lambda x: x * x, [(0,), (1,), (2,), (3,)],
            "k", checkpoint=ck,
        )
        assert results == [0, 1, 4, 9]
        assert execution["resumed_chunks"] == 2
        assert execution["computed_chunks"] == 2

    def test_hint_without_checkpoint_suggests_adding_one(self):
        def fn(x):
            raise KeyboardInterrupt

        with pytest.raises(SweepInterrupted) as err:
            run_chunks_checkpointed(SerialExecutor(), fn, [(0,)], "k")
        hint = err.value.resume_hint()
        assert "checkpoint" in hint.lower()


# --------------------------------------------------------------------- #
# subprocess integration: real signals against the CLI
# --------------------------------------------------------------------- #


class TestSignalIntegration:
    @pytest.mark.parametrize("sig,name", [
        (signal.SIGINT, "SIGINT"),
        (signal.SIGTERM, "SIGTERM"),
    ])
    def test_signal_mid_sweep_then_resume_bit_identical(
        self, tmp_path, sig, name
    ):
        ck = tmp_path / "fleet.ck"
        proc = subprocess.Popen(
            _SWEEP_CMD + ["--checkpoint", str(ck)], env=_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            n_before = _wait_for_records(ck, 3)
            if n_before == 0:
                pytest.fail("no journal records appeared within the timeout")
            proc.send_signal(sig)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        if proc.returncode == 0:
            pytest.skip("sweep finished before the signal landed")
        assert proc.returncode == 130, (out, err)
        assert "interrupted by " + name in err
        assert "--resume" in err
        assert str(ck) in err

        # every chunk journaled before the signal survived the teardown
        assert _count_records(ck) >= n_before

        resumed = subprocess.run(
            _SWEEP_CMD + ["--checkpoint", str(ck), "--resume"],
            env=_env(), capture_output=True, text=True, timeout=180,
        )
        assert resumed.returncode == 0, resumed.stderr
        reference = subprocess.run(
            _SWEEP_CMD, env=_env(), capture_output=True, text=True,
            timeout=180,
        )
        assert reference.returncode == 0, reference.stderr
        assert resumed.stdout == reference.stdout
