"""Model-based adaptive DPM controller tests."""

import numpy as np
import pytest

from repro.adaptive import (
    BernoulliCUSUM,
    ModelBasedAdaptiveDPM,
    SlidingWindowEstimator,
)
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate, PiecewiseConstantRate


def make_env(schedule, seed=0):
    return SlottedDPMEnv(
        abstract_three_state(), schedule, queue_capacity=4, p_serve=0.9, seed=seed
    )


class TestStationary:
    def test_tracks_optimal_in_stationary_env(self):
        env = make_env(ConstantRate(0.15), seed=1)
        controller = ModelBasedAdaptiveDPM(
            env, solver="policy_iteration", initial_rate=0.15,
        )
        hist = controller.run(30_000, record_every=30_000)
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        opt = model.solve(0.95, "policy_iteration")
        opt_reward = model.evaluate_policy(opt.policy).average_reward
        # executes the exact optimal policy: empirical reward near optimal
        assert hist.reward[-1] == pytest.approx(opt_reward, abs=0.05)

    def test_initial_policy_matches_solver(self):
        env = make_env(ConstantRate(0.15))
        controller = ModelBasedAdaptiveDPM(
            env, solver="policy_iteration", initial_rate=0.15
        )
        model = build_dpm_model(
            abstract_three_state(), arrival_rate=0.15,
            queue_capacity=4, p_serve=0.9,
        )
        opt = model.solve(0.95, "policy_iteration")
        assert controller.policy.agreement(opt.policy) == 1.0


class TestAdaptation:
    def test_reoptimizes_after_switch(self):
        schedule = PiecewiseConstantRate([(5_000, 0.30), (15_000, 0.03)])
        env = make_env(schedule, seed=2)
        controller = ModelBasedAdaptiveDPM(
            env,
            solver="policy_iteration",
            estimator=SlidingWindowEstimator(1_000),
            detector=BernoulliCUSUM(0.30, drift=0.03, threshold=8.0),
            min_samples=500,
            initial_rate=0.30,
        )
        controller.run(20_000, record_every=5_000)
        assert controller.log.n_reoptimizations >= 1
        rates = [e.detected_rate for e in controller.log.events]
        # at least one re-optimization must have seen the new low rate
        assert min(rates) < 0.1

    def test_freeze_delays_adaptation(self):
        schedule = PiecewiseConstantRate([(2_000, 0.30), (8_000, 0.03)])
        env_fast = make_env(schedule, seed=3)
        env_slow = make_env(schedule, seed=3)
        common = dict(
            solver="policy_iteration",
            min_samples=300,
            initial_rate=0.30,
        )
        fast = ModelBasedAdaptiveDPM(
            env_fast,
            estimator=SlidingWindowEstimator(500),
            detector=BernoulliCUSUM(0.30, drift=0.03, threshold=8.0),
            freeze_slots=0,
            **common,
        )
        slow = ModelBasedAdaptiveDPM(
            env_slow,
            estimator=SlidingWindowEstimator(500),
            detector=BernoulliCUSUM(0.30, drift=0.03, threshold=8.0),
            freeze_slots=4_000,
            **common,
        )
        fast.run(10_000, record_every=10_000)
        slow.run(10_000, record_every=10_000)
        first_fast = fast.log.events[0].slot if fast.log.events else 10_000
        first_slow = slow.log.events[0].slot if slow.log.events else 10_000
        assert first_slow >= first_fast + 3_000

    def test_overhead_accounting(self):
        env = make_env(ConstantRate(0.2), seed=4)
        controller = ModelBasedAdaptiveDPM(env, solver="value_iteration",
                                           initial_rate=0.2)
        controller.run(3_000, record_every=1_000)
        log = controller.log
        assert log.estimator_seconds > 0
        assert log.detector_seconds > 0
        assert log.total_overhead_seconds() >= (
            log.estimator_seconds + log.detector_seconds
        )

    def test_history_compatible_with_qdpm(self):
        env = make_env(ConstantRate(0.2), seed=5)
        controller = ModelBasedAdaptiveDPM(env, solver="value_iteration",
                                           initial_rate=0.2)
        hist = controller.run(4_000, record_every=1_000)
        assert len(hist) == 4
        assert np.all(hist.td_error == 0)

    def test_validation(self):
        env = make_env(ConstantRate(0.2))
        with pytest.raises(ValueError):
            ModelBasedAdaptiveDPM(env, min_samples=0)
        with pytest.raises(ValueError):
            ModelBasedAdaptiveDPM(env, freeze_slots=-1)
        controller = ModelBasedAdaptiveDPM(env, solver="value_iteration",
                                           initial_rate=0.2)
        with pytest.raises(ValueError):
            controller.run(0)
