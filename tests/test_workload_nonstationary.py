"""Rate schedule tests (Fig. 2's switching input and the drift models)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    ConstantRate,
    PiecewiseConstantRate,
    RandomWalkRate,
    SinusoidalRate,
    fig2_schedule,
)


class TestConstantRate:
    def test_rate_everywhere(self):
        schedule = ConstantRate(0.3)
        assert schedule.rate_at(0) == 0.3
        assert schedule.rate_at(10**9) == 0.3
        assert schedule.switch_points(1000) == []
        assert schedule.mean_rate(1000) == 0.3
        assert schedule.max_rate(1000) == 0.3

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            ConstantRate(1.5)
        with pytest.raises(ValueError):
            ConstantRate(-0.1)


class TestPiecewiseConstant:
    def make(self):
        return PiecewiseConstantRate([(100, 0.3), (200, 0.1), (100, 0.5)])

    def test_rates_per_segment(self):
        s = self.make()
        assert s.rate_at(0) == 0.3
        assert s.rate_at(99) == 0.3
        assert s.rate_at(100) == 0.1
        assert s.rate_at(299) == 0.1
        assert s.rate_at(300) == 0.5

    def test_final_rate_holds_forever(self):
        assert self.make().rate_at(10_000) == 0.5

    def test_switch_points(self):
        assert self.make().switch_points(400) == [100, 300]
        assert self.make().switch_points(200) == [100]

    def test_total_slots(self):
        assert self.make().total_slots == 400

    def test_segment_index(self):
        s = self.make()
        assert s.segment_index_at(0) == 0
        assert s.segment_index_at(150) == 1
        assert s.segment_index_at(999) == 2
        with pytest.raises(ValueError):
            s.segment_index_at(-1)

    def test_mean_rate_exact(self):
        s = self.make()
        expected = (100 * 0.3 + 200 * 0.1 + 100 * 0.5) / 400
        assert s.mean_rate(400) == pytest.approx(expected)

    def test_mean_rate_beyond_end_uses_final(self):
        s = PiecewiseConstantRate([(100, 0.2)])
        assert s.mean_rate(200) == pytest.approx(0.2)

    def test_max_rate(self):
        assert self.make().max_rate(400) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantRate([])
        with pytest.raises(ValueError):
            PiecewiseConstantRate([(0, 0.5)])
        with pytest.raises(ValueError):
            PiecewiseConstantRate([(10, 1.5)])

    def test_fig2_schedule_shape(self):
        s = fig2_schedule()
        assert s.total_slots == 200_000
        assert len(s.switch_points(200_000)) == 3


class TestSinusoidal:
    def test_oscillates_around_base(self):
        s = SinusoidalRate(0.3, 0.1, period=100)
        values = [s.rate_at(t) for t in range(100)]
        assert max(values) == pytest.approx(0.4, abs=0.01)
        assert min(values) == pytest.approx(0.2, abs=0.01)
        assert np.mean(values) == pytest.approx(0.3, abs=0.01)

    def test_clipped_to_unit_interval(self):
        s = SinusoidalRate(0.9, 0.5, period=10)
        assert all(0.0 <= s.rate_at(t) <= 1.0 for t in range(30))

    def test_validation(self):
        with pytest.raises(ValueError):
            SinusoidalRate(0.5, -0.1, 10)
        with pytest.raises(ValueError):
            SinusoidalRate(0.5, 0.1, 0)

    @given(
        base=st.floats(min_value=0, max_value=1),
        amplitude=st.floats(min_value=0, max_value=1),
        slot=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=80, deadline=None)
    def test_always_a_probability(self, base, amplitude, slot):
        s = SinusoidalRate(base, amplitude, period=1000)
        assert 0.0 <= s.rate_at(slot) <= 1.0


class TestRandomWalk:
    def test_deterministic_given_seed(self):
        a = RandomWalkRate(0.3, 0.05, seed=5)
        b = RandomWalkRate(0.3, 0.05, seed=5)
        assert [a.rate_at(t) for t in range(0, 5000, 97)] == [
            b.rate_at(t) for t in range(0, 5000, 97)
        ]

    def test_pure_function_of_slot(self):
        s = RandomWalkRate(0.3, 0.05, seed=1)
        later = s.rate_at(10_000)
        earlier = s.rate_at(100)
        assert s.rate_at(10_000) == later
        assert s.rate_at(100) == earlier

    def test_bounds_respected(self):
        s = RandomWalkRate(0.5, 0.2, low=0.2, high=0.8, step_every=10, seed=3)
        values = [s.rate_at(t) for t in range(0, 20_000, 10)]
        assert min(values) >= 0.2
        assert max(values) <= 0.8

    def test_constant_within_step_window(self):
        s = RandomWalkRate(0.3, 0.05, step_every=100, seed=2)
        assert s.rate_at(0) == s.rate_at(99)

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkRate(0.3, 0.0)
        with pytest.raises(ValueError):
            RandomWalkRate(0.9, 0.1, low=0.0, high=0.5)
        with pytest.raises(ValueError):
            RandomWalkRate(0.3, 0.1, step_every=0)
        with pytest.raises(ValueError):
            RandomWalkRate(0.3, 0.1, seed=1).rate_at(-5)
