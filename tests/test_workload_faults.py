"""Fault model: seeded schedules, interval conventions, determinism.

The contract under test is the one the failure-aware routing engines
build on: a schedule is a pure function of ``(seed, n_devices,
horizon)``, a device is down on ``[start, end)`` exactly, and the merged
transition stream replayed incrementally reproduces ``alive_mask`` bit
for bit at every query instant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload import (
    FaultProcess,
    FaultSchedule,
    no_faults,
    resolve_fault_schedule,
)


class TestFaultSchedule:
    def test_interval_convention_half_open(self):
        sched = FaultSchedule([[(2.0, 5.0)]], horizon=10.0)
        assert not sched.is_down(0, 1.999)
        assert sched.is_down(0, 2.0)          # down at the failure instant
        assert sched.is_down(0, 4.999)
        assert not sched.is_down(0, 5.0)      # up at the repair instant
        assert not sched.is_down(0, 9.0)

    def test_alive_mask_matches_is_down(self):
        sched = FaultSchedule(
            [[(1.0, 3.0)], [], [(0.5, 2.0), (4.0, 6.0)]], horizon=10.0
        )
        for t in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.5, 6.0, 9.9):
            expected = [not sched.is_down(d, t) for d in range(3)]
            assert sched.alive_mask(t).tolist() == expected

    def test_transitions_replay_equals_alive_mask(self):
        """Applying every event with time <= t reproduces the mask —
        the invariant the vectorized routing engine relies on."""
        sched = FaultSchedule(
            [[(1.0, 3.0), (5.0, 7.0)], [(3.0, 4.0)], []], horizon=10.0
        )
        times, devices, downs = sched.transitions()
        assert np.all(np.diff(times) >= 0)
        for t in (0.0, 0.5, 1.0, 2.9, 3.0, 4.0, 5.0, 6.5, 7.0, 10.0):
            alive = np.ones(3, dtype=bool)
            for k in range(times.size):
                if times[k] <= t:
                    alive[devices[k]] = not downs[k]
            assert np.array_equal(alive, sched.alive_mask(t))

    def test_availability_and_down_time(self):
        sched = FaultSchedule([[(0.0, 2.0), (6.0, 8.0)], []], horizon=10.0)
        assert sched.down_time(0) == pytest.approx(4.0)
        assert sched.down_time(1) == 0.0
        assert sched.availability() == pytest.approx([0.6, 1.0])

    def test_all_down_at(self):
        sched = FaultSchedule([[(1.0, 2.0)], [(1.5, 3.0)]], horizon=5.0)
        assert not sched.all_down_at(0.0)
        assert sched.all_down_at(1.5)
        assert not sched.all_down_at(2.5)

    @pytest.mark.parametrize("bad", [
        [[(2.0, 1.0)]],             # start >= end
        [[(-1.0, 1.0)]],            # before the window
        [[(0.0, 11.0)]],            # past the horizon
        [[(0.0, 3.0), (2.0, 4.0)]], # overlapping
        [[(4.0, 5.0), (1.0, 2.0)]], # unsorted
    ])
    def test_invalid_intervals_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule(bad, horizon=10.0)

    def test_empty_fleet_and_horizon_raise(self):
        with pytest.raises(ValueError):
            FaultSchedule([], horizon=10.0)
        with pytest.raises(ValueError):
            FaultSchedule([[]], horizon=0.0)

    def test_no_faults_helper(self):
        sched = no_faults(3, 100.0)
        assert sched.availability().tolist() == [1.0, 1.0, 1.0]
        assert sched.alive_mask(50.0).all()


class TestBrownoutSeverity:
    """Satellite + tentpole surface: intervals may carry a severity
    (service-demand multiplier >= 1.0); infinity means fail-stop, and
    only fail-stop intervals count as *down*."""

    def test_bare_intervals_are_fail_stop(self):
        sched = FaultSchedule([[(1.0, 3.0)]], horizon=10.0)
        assert not sched.has_brownouts
        assert sched.severity_at(0, 2.0) == float("inf")
        assert sched.is_down(0, 2.0)

    def test_brownout_interval_is_degraded_not_down(self):
        sched = FaultSchedule([[(1.0, 3.0, 4.0)]], horizon=10.0)
        assert sched.has_brownouts
        assert not sched.is_down(0, 2.0)
        assert sched.alive_mask(2.0).all()
        assert sched.severity_at(0, 2.0) == 4.0
        assert sched.severity_at(0, 0.5) == 1.0   # outside: nominal
        assert sched.severity_at(0, 3.0) == 1.0   # half-open [start, end)
        assert sched.down_time(0) == 0.0
        assert sched.degraded_time(0) == pytest.approx(2.0)
        assert sched.availability().tolist() == [1.0]

    def test_mixed_intervals_split_accounting(self):
        sched = FaultSchedule(
            [[(1.0, 2.0, 2.0), (4.0, 6.0)]], horizon=10.0)
        assert sched.has_brownouts
        assert sched.down_time(0) == pytest.approx(2.0)
        assert sched.degraded_time(0) == pytest.approx(1.0)
        assert sched.interval_severities(0) == [2.0, float("inf")]
        assert sched.availability().tolist() == [0.8]

    def test_transitions_cover_fail_stop_only(self):
        sched = FaultSchedule(
            [[(1.0, 2.0, 2.0), (4.0, 6.0)], [(3.0, 5.0)]], horizon=10.0)
        times, devices, downs = sched.transitions()
        # the brownout interval contributes no down/up events
        assert times.tolist() == [3.0, 4.0, 5.0, 6.0]
        assert devices.tolist() == [1, 0, 1, 0]
        assert downs.tolist() == [True, True, False, False]

    @pytest.mark.parametrize("bad", [
        [[(1.0, 2.0, 0.5)]],               # severity < 1
        [[(1.0, 2.0, 0.0)]],
        [[(1.0, 2.0, -3.0)]],
        [[(1.0, 2.0, float("nan"))]],
        [[(1.0, 2.0, 3.0, 4.0)]],          # not a pair/triple
        [[(1.0,)]],
    ])
    def test_invalid_severity_raises(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule(bad, horizon=10.0)


class TestDownMaskVectorized:
    """Satellite: ``down_mask(times)`` is one searchsorted sweep per
    device; it must agree with per-instant ``is_down`` point queries on
    every boundary convention."""

    def test_matches_point_queries(self):
        sched = FaultSchedule(
            [[(1.0, 3.0), (5.0, 7.0, 2.0)], [], [(0.5, 2.0), (4.0, 6.0)]],
            horizon=10.0,
        )
        times = np.array([0.0, 0.5, 1.0, 1.999, 2.0, 3.0, 4.0, 5.0, 6.0,
                          6.999, 7.0, 9.9])
        mask = sched.down_mask(times)
        assert mask.shape == (times.size, 3)
        for i, t in enumerate(times):
            for d in range(3):
                assert mask[i, d] == sched.is_down(d, float(t)), (t, d)

    def test_unsorted_and_repeated_query_times(self):
        sched = FaultSchedule([[(2.0, 5.0)]], horizon=10.0)
        times = np.array([9.0, 2.0, 2.0, 1.0, 4.999, 5.0])
        assert sched.down_mask(times)[:, 0].tolist() == [
            False, True, True, False, True, False]

    def test_brownouts_never_masked_down(self):
        sched = FaultSchedule([[(0.0, 10.0, 100.0)]], horizon=10.0)
        times = np.linspace(0.0, 9.9, 23)
        assert not sched.down_mask(times).any()

    def test_empty_times_and_empty_device(self):
        sched = FaultSchedule([[(1.0, 2.0)], []], horizon=10.0)
        assert sched.down_mask(np.array([])).shape == (0, 2)
        assert not sched.down_mask(np.array([1.5]))[:, 1].any()

    def test_random_schedules_fuzz(self):
        rng = np.random.default_rng(424242)
        for trial in range(25):
            proc = FaultProcess(
                mtbf=float(rng.uniform(3.0, 30.0)),
                mttr=float(rng.uniform(1.0, 10.0)),
                severity=(float(rng.uniform(1.0, 8.0))
                          if trial % 3 == 0 else float("inf")),
            )
            sched = proc.realize(3, 200.0, seed=trial)
            times = rng.uniform(-5.0, 205.0, size=64)
            mask = sched.down_mask(times)
            for i, t in enumerate(times):
                for d in range(3):
                    assert mask[i, d] == sched.is_down(d, float(t))


class TestTransitionsAvailabilityOracle:
    """Satellite: property-style fuzz — transitions() replay and
    availability() must agree with a brute-force per-timestep oracle on
    randomized interval sets, including adjacent and near-zero-length
    intervals."""

    def _random_schedule(self, rng, horizon=50.0):
        """Random sorted, non-overlapping intervals per device, with
        adjacent (end == next start) pairs and tiny intervals thrown
        in, and a random subset made brownouts."""
        n_devices = int(rng.integers(1, 5))
        intervals = []
        for _ in range(n_devices):
            cuts = np.sort(rng.uniform(0.0, horizon, size=2 * int(
                rng.integers(0, 5))))
            dev = []
            for s, e in zip(cuts[::2], cuts[1::2]):
                if e <= s:
                    continue
                if rng.random() < 0.25:
                    dev.append((float(s), float(e),
                                float(rng.uniform(1.0, 6.0))))
                else:
                    dev.append((float(s), float(e)))
            # occasionally make two intervals exactly adjacent
            if len(dev) >= 2 and rng.random() < 0.5:
                s0, e0 = dev[0][0], dev[0][1]
                dev[1] = (e0, dev[1][1]) if dev[1][1] > e0 else dev[1]
                dev = [d for d in dev if d[1] > d[0]]
                dev.sort()
            intervals.append(dev)
        return FaultSchedule(intervals, horizon=horizon)

    def test_transitions_replay_matches_alive_mask(self):
        rng = np.random.default_rng(99)
        for _ in range(20):
            sched = self._random_schedule(rng)
            times, devices, downs = sched.transitions()
            assert np.all(np.diff(times) >= 0)
            probes = np.concatenate([
                rng.uniform(0.0, 50.0, size=40), times, times - 1e-9])
            for t in probes:
                alive = np.ones(sched.n_devices, dtype=bool)
                for k in range(times.size):
                    if times[k] <= t:
                        alive[devices[k]] = not downs[k]
                assert np.array_equal(alive, sched.alive_mask(float(t))), t

    def test_availability_matches_riemann_oracle(self):
        rng = np.random.default_rng(7)
        grid = np.arange(0.0, 50.0, 0.01)
        for _ in range(10):
            sched = self._random_schedule(rng)
            availability = sched.availability()
            down = sched.down_mask(grid)
            for d in range(sched.n_devices):
                oracle = 1.0 - down[:, d].mean()
                assert availability[d] == pytest.approx(oracle, abs=2e-3)

    def test_overlapping_random_intervals_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule([[(0.0, 3.0, 2.0), (2.0, 4.0)]], horizon=10.0)
        with pytest.raises(ValueError):
            FaultSchedule([[(1.0, 1.0)]], horizon=10.0)  # zero-length


class TestFaultProcess:
    def test_realize_is_pure_function_of_seed(self):
        proc = FaultProcess(mtbf=50.0, mttr=5.0)
        a = proc.realize(4, 1_000.0, seed=7)
        b = proc.realize(4, 1_000.0, seed=7)
        for d in range(4):
            assert a.intervals(d) == b.intervals(d)
        c = proc.realize(4, 1_000.0, seed=8)
        assert any(a.intervals(d) != c.intervals(d) for d in range(4))

    def test_per_device_streams_independent_of_fleet_size(self):
        """Device d's fault history is keyed (seed, d): growing the
        fleet never perturbs existing devices' schedules."""
        proc = FaultProcess(mtbf=30.0, mttr=4.0)
        small = proc.realize(2, 500.0, seed=3)
        large = proc.realize(8, 500.0, seed=3)
        for d in range(2):
            assert small.intervals(d) == large.intervals(d)

    def test_deterministic_schedule_is_exact_and_correlated(self):
        proc = FaultProcess(mtbf=10.0, mttr=2.0, deterministic=True)
        sched = proc.realize(3, 25.0, seed=0)
        expected = [(10.0, 12.0), (22.0, 24.0)]
        for d in range(3):
            assert sched.intervals(d) == expected

    def test_exponential_means_are_plausible(self):
        proc = FaultProcess(mtbf=100.0, mttr=10.0)
        sched = proc.realize(64, 100_000.0, seed=1)
        spans = [e - s for d in range(64) for s, e in sched.intervals(d)]
        # repair-interval mean ~ mttr (loose 3-sigma-ish bounds)
        assert 8.0 < float(np.mean(spans)) < 12.0
        # availability ~ mtbf / (mtbf + mttr) = 0.909
        assert 0.88 < float(sched.availability().mean()) < 0.94

    def test_start_down_cohort(self):
        proc = FaultProcess(
            mtbf=1e6, mttr=5.0, deterministic=True, start_down=0.5
        )
        sched = proc.realize(4, 100.0, seed=0)
        assert sched.is_down(0, 0.0) and sched.is_down(1, 0.0)
        assert not sched.is_down(2, 0.0) and not sched.is_down(3, 0.0)
        assert not sched.is_down(0, 5.0)  # repaired after mttr exactly

    def test_intervals_clipped_to_horizon(self):
        proc = FaultProcess(mtbf=8.0, mttr=100.0, deterministic=True)
        sched = proc.realize(1, 10.0, seed=0)
        assert sched.intervals(0) == [(8.0, 10.0)]

    @pytest.mark.parametrize("kwargs", [
        {"mtbf": 0.0, "mttr": 1.0},
        {"mtbf": -1.0, "mttr": 1.0},
        {"mtbf": 1.0, "mttr": 0.0},
        {"mtbf": 1.0, "mttr": -2.0},
        {"mtbf": 1.0, "mttr": 1.0, "start_down": 1.0},
        {"mtbf": 1.0, "mttr": 1.0, "start_down": -0.1},
        {"mtbf": 1.0, "mttr": 1.0, "severity": 0.5},
        {"mtbf": 1.0, "mttr": 1.0, "severity": float("nan")},
    ])
    def test_invalid_process_raises(self, kwargs):
        with pytest.raises(ValueError):
            FaultProcess(**kwargs)

    def test_brownout_process_realizes_brownout_schedule(self):
        proc = FaultProcess(mtbf=20.0, mttr=5.0, severity=3.0)
        sched = proc.realize(2, 500.0, seed=4)
        assert sched.has_brownouts
        assert sched.availability().tolist() == [1.0, 1.0]
        sevs = [s for d in range(2) for s in sched.interval_severities(d)]
        assert sevs and all(s == 3.0 for s in sevs)

    def test_severity_does_not_perturb_interval_stream(self):
        """The severity tag rides along without extra RNG draws: the
        same seed yields the same intervals fail-stop or brownout."""
        fail_stop = FaultProcess(mtbf=20.0, mttr=5.0).realize(
            3, 500.0, seed=9)
        brownout = FaultProcess(mtbf=20.0, mttr=5.0, severity=2.5).realize(
            3, 500.0, seed=9)
        for d in range(3):
            assert fail_stop.intervals(d) == brownout.intervals(d)


class TestResolveFaultSchedule:
    def test_passthrough_and_realize(self):
        sched = no_faults(2, 10.0)
        assert resolve_fault_schedule(sched, 2, 10.0) is sched
        proc = FaultProcess(mtbf=5.0, mttr=1.0)
        realized = resolve_fault_schedule(proc, 3, 10.0, seed=4)
        assert isinstance(realized, FaultSchedule)
        assert realized.n_devices == 3
        assert resolve_fault_schedule(None, 2, 10.0) is None

    def test_device_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="2 devices"):
            resolve_fault_schedule(no_faults(2, 10.0), 4, 10.0)

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            resolve_fault_schedule(0.5, 2, 10.0)
