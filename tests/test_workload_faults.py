"""Fault model: seeded schedules, interval conventions, determinism.

The contract under test is the one the failure-aware routing engines
build on: a schedule is a pure function of ``(seed, n_devices,
horizon)``, a device is down on ``[start, end)`` exactly, and the merged
transition stream replayed incrementally reproduces ``alive_mask`` bit
for bit at every query instant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload import (
    FaultProcess,
    FaultSchedule,
    no_faults,
    resolve_fault_schedule,
)


class TestFaultSchedule:
    def test_interval_convention_half_open(self):
        sched = FaultSchedule([[(2.0, 5.0)]], horizon=10.0)
        assert not sched.is_down(0, 1.999)
        assert sched.is_down(0, 2.0)          # down at the failure instant
        assert sched.is_down(0, 4.999)
        assert not sched.is_down(0, 5.0)      # up at the repair instant
        assert not sched.is_down(0, 9.0)

    def test_alive_mask_matches_is_down(self):
        sched = FaultSchedule(
            [[(1.0, 3.0)], [], [(0.5, 2.0), (4.0, 6.0)]], horizon=10.0
        )
        for t in (0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.5, 6.0, 9.9):
            expected = [not sched.is_down(d, t) for d in range(3)]
            assert sched.alive_mask(t).tolist() == expected

    def test_transitions_replay_equals_alive_mask(self):
        """Applying every event with time <= t reproduces the mask —
        the invariant the vectorized routing engine relies on."""
        sched = FaultSchedule(
            [[(1.0, 3.0), (5.0, 7.0)], [(3.0, 4.0)], []], horizon=10.0
        )
        times, devices, downs = sched.transitions()
        assert np.all(np.diff(times) >= 0)
        for t in (0.0, 0.5, 1.0, 2.9, 3.0, 4.0, 5.0, 6.5, 7.0, 10.0):
            alive = np.ones(3, dtype=bool)
            for k in range(times.size):
                if times[k] <= t:
                    alive[devices[k]] = not downs[k]
            assert np.array_equal(alive, sched.alive_mask(t))

    def test_availability_and_down_time(self):
        sched = FaultSchedule([[(0.0, 2.0), (6.0, 8.0)], []], horizon=10.0)
        assert sched.down_time(0) == pytest.approx(4.0)
        assert sched.down_time(1) == 0.0
        assert sched.availability() == pytest.approx([0.6, 1.0])

    def test_all_down_at(self):
        sched = FaultSchedule([[(1.0, 2.0)], [(1.5, 3.0)]], horizon=5.0)
        assert not sched.all_down_at(0.0)
        assert sched.all_down_at(1.5)
        assert not sched.all_down_at(2.5)

    @pytest.mark.parametrize("bad", [
        [[(2.0, 1.0)]],             # start >= end
        [[(-1.0, 1.0)]],            # before the window
        [[(0.0, 11.0)]],            # past the horizon
        [[(0.0, 3.0), (2.0, 4.0)]], # overlapping
        [[(4.0, 5.0), (1.0, 2.0)]], # unsorted
    ])
    def test_invalid_intervals_raise(self, bad):
        with pytest.raises(ValueError):
            FaultSchedule(bad, horizon=10.0)

    def test_empty_fleet_and_horizon_raise(self):
        with pytest.raises(ValueError):
            FaultSchedule([], horizon=10.0)
        with pytest.raises(ValueError):
            FaultSchedule([[]], horizon=0.0)

    def test_no_faults_helper(self):
        sched = no_faults(3, 100.0)
        assert sched.availability().tolist() == [1.0, 1.0, 1.0]
        assert sched.alive_mask(50.0).all()


class TestFaultProcess:
    def test_realize_is_pure_function_of_seed(self):
        proc = FaultProcess(mtbf=50.0, mttr=5.0)
        a = proc.realize(4, 1_000.0, seed=7)
        b = proc.realize(4, 1_000.0, seed=7)
        for d in range(4):
            assert a.intervals(d) == b.intervals(d)
        c = proc.realize(4, 1_000.0, seed=8)
        assert any(a.intervals(d) != c.intervals(d) for d in range(4))

    def test_per_device_streams_independent_of_fleet_size(self):
        """Device d's fault history is keyed (seed, d): growing the
        fleet never perturbs existing devices' schedules."""
        proc = FaultProcess(mtbf=30.0, mttr=4.0)
        small = proc.realize(2, 500.0, seed=3)
        large = proc.realize(8, 500.0, seed=3)
        for d in range(2):
            assert small.intervals(d) == large.intervals(d)

    def test_deterministic_schedule_is_exact_and_correlated(self):
        proc = FaultProcess(mtbf=10.0, mttr=2.0, deterministic=True)
        sched = proc.realize(3, 25.0, seed=0)
        expected = [(10.0, 12.0), (22.0, 24.0)]
        for d in range(3):
            assert sched.intervals(d) == expected

    def test_exponential_means_are_plausible(self):
        proc = FaultProcess(mtbf=100.0, mttr=10.0)
        sched = proc.realize(64, 100_000.0, seed=1)
        spans = [e - s for d in range(64) for s, e in sched.intervals(d)]
        # repair-interval mean ~ mttr (loose 3-sigma-ish bounds)
        assert 8.0 < float(np.mean(spans)) < 12.0
        # availability ~ mtbf / (mtbf + mttr) = 0.909
        assert 0.88 < float(sched.availability().mean()) < 0.94

    def test_start_down_cohort(self):
        proc = FaultProcess(
            mtbf=1e6, mttr=5.0, deterministic=True, start_down=0.5
        )
        sched = proc.realize(4, 100.0, seed=0)
        assert sched.is_down(0, 0.0) and sched.is_down(1, 0.0)
        assert not sched.is_down(2, 0.0) and not sched.is_down(3, 0.0)
        assert not sched.is_down(0, 5.0)  # repaired after mttr exactly

    def test_intervals_clipped_to_horizon(self):
        proc = FaultProcess(mtbf=8.0, mttr=100.0, deterministic=True)
        sched = proc.realize(1, 10.0, seed=0)
        assert sched.intervals(0) == [(8.0, 10.0)]

    @pytest.mark.parametrize("kwargs", [
        {"mtbf": 0.0, "mttr": 1.0},
        {"mtbf": -1.0, "mttr": 1.0},
        {"mtbf": 1.0, "mttr": 0.0},
        {"mtbf": 1.0, "mttr": -2.0},
        {"mtbf": 1.0, "mttr": 1.0, "start_down": 1.0},
        {"mtbf": 1.0, "mttr": 1.0, "start_down": -0.1},
    ])
    def test_invalid_process_raises(self, kwargs):
        with pytest.raises(ValueError):
            FaultProcess(**kwargs)


class TestResolveFaultSchedule:
    def test_passthrough_and_realize(self):
        sched = no_faults(2, 10.0)
        assert resolve_fault_schedule(sched, 2, 10.0) is sched
        proc = FaultProcess(mtbf=5.0, mttr=1.0)
        realized = resolve_fault_schedule(proc, 3, 10.0, seed=4)
        assert isinstance(realized, FaultSchedule)
        assert realized.n_devices == 3
        assert resolve_fault_schedule(None, 2, 10.0) is None

    def test_device_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="2 devices"):
            resolve_fault_schedule(no_faults(2, 10.0), 4, 10.0)

    def test_wrong_type_raises(self):
        with pytest.raises(TypeError):
            resolve_fault_schedule(0.5, 2, 10.0)
