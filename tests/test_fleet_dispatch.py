"""Dispatcher and router semantics of :mod:`repro.fleet.dispatch`.

The fleet mirrors the repo's stateless/stateful split: stateless routers
must be bit-identical between their scalar reference loop and the
closed-form ``route_batch`` path, queue-aware routers must be
bit-identical between the scalar loop and the epoch-advance
``route_step_batch`` path (dense backlog arrays, one arrival per round),
and the dispatcher must partition traces without losing requests,
demands, or window duration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.device import get_preset
from repro.fleet import (
    ROUTERS,
    Dispatcher,
    JoinShortestQueueRouter,
    PowerAwareRouter,
    RandomRouter,
    RouteContext,
    RoundRobinRouter,
    make_router,
)
from repro.fleet.dispatch import _COMPACT_MIN_SETTLED, _BacklogTracker
from repro.workload import Exponential, Trace, renewal_trace

STATELESS = ("round_robin", "random")
QUEUE_AWARE = ("jsq", "power_aware")
EPOCH_PRESETS = ("mobile_hdd", "wlan", "sa1100")


def make_context(trace, n_devices, device_name="mobile_hdd", seed=0,
                 service_time=0.4):
    demands = trace.service_demands
    if demands is None:
        demands = np.full(len(trace), service_time)
    return RouteContext(
        arrivals=trace.arrival_times,
        demands=demands,
        n_devices=n_devices,
        device=get_preset(device_name),
        rng=np.random.default_rng(seed),
    )


class TestRegistry:
    def test_all_four_routers_registered(self):
        assert set(ROUTERS) == {"round_robin", "random", "jsq", "power_aware"}

    def test_make_router_unknown_name(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("teleport")

    def test_names_match_registry_keys(self):
        for name in ROUTERS:
            assert make_router(name).name == name


class TestStatelessBitExactness:
    """route() and route_batch() must agree bit-for-bit (the fleet's
    analogue of the decide_batch contract)."""

    @pytest.mark.parametrize("name", STATELESS)
    @pytest.mark.parametrize("n_devices", (1, 3, 16))
    def test_scalar_equals_batch(self, name, n_devices, rng):
        trace = renewal_trace(Exponential(0.8), 500.0, rng)
        router = make_router(name)
        scalar = router.route(make_context(trace, n_devices, seed=9))
        batch = router.route_batch(make_context(trace, n_devices, seed=9))
        assert scalar.dtype == batch.dtype == np.int64
        assert np.array_equal(scalar, batch)

    @pytest.mark.parametrize("name", QUEUE_AWARE)
    def test_queue_aware_has_no_batch_path(self, name, rng):
        trace = renewal_trace(Exponential(0.8), 100.0, rng)
        assert make_router(name).route_batch(make_context(trace, 4)) is None

    @pytest.mark.parametrize("name", STATELESS)
    def test_stateless_has_no_step_path(self, name, rng):
        """Stateless routers are served by route_batch; the epoch-advance
        hook stays the base-class None for them."""
        trace = renewal_trace(Exponential(0.8), 100.0, rng)
        assert make_router(name).route_step_batch(make_context(trace, 4)) is None


class TestQueueAwareEpochPath:
    """route() and route_step_batch() must agree bit-for-bit: the dense
    backlog arrays book the exact same completion floats as the scalar
    tracker, and every argmin/argmax tie breaks to the lowest index in
    both paths."""

    @pytest.mark.parametrize("name", QUEUE_AWARE)
    @pytest.mark.parametrize("device_name", EPOCH_PRESETS)
    @pytest.mark.parametrize("n_devices", (1, 3, 16))
    def test_scalar_equals_step_batch(self, name, device_name, n_devices, rng):
        trace = renewal_trace(Exponential(0.8), 500.0, rng)
        router = make_router(name)
        scalar = router.route(make_context(trace, n_devices, device_name))
        stepped = router.route_step_batch(
            make_context(trace, n_devices, device_name)
        )
        assert stepped.dtype == np.int64
        assert np.array_equal(scalar, stepped)

    @pytest.mark.parametrize("name", QUEUE_AWARE)
    @pytest.mark.parametrize("device_name", EPOCH_PRESETS)
    def test_degenerate_traces(self, name, device_name):
        router = make_router(name)
        for trace in (
            Trace([], duration=5.0),                    # no arrivals at all
            Trace([0.0, 0.0, 0.0, 0.0], duration=1.0),  # one simultaneous burst
            Trace([1.0], duration=2.0),                 # single request
            Trace([0.0, 0.0, 3.0, 3.0, 3.0], duration=4.0),
        ):
            for n_devices in (1, 2, 4):
                ctx = make_context(trace, n_devices, device_name)
                scalar = router.route(ctx)
                stepped = router.route_step_batch(
                    make_context(trace, n_devices, device_name)
                )
                assert np.array_equal(scalar, stepped), (trace, n_devices)

    @pytest.mark.parametrize("name", QUEUE_AWARE)
    def test_heavy_trace_with_varied_demands(self, name, rng):
        """Overload regime with per-request demands: long backlogs, many
        settles per arrival, float completion times exercised hard."""
        base = renewal_trace(Exponential(3.0), 300.0, rng)
        trace = Trace(base.arrival_times, duration=300.0,
                      service_demands=rng.uniform(0.05, 1.5, size=len(base)))
        router = make_router(name)
        scalar = router.route(make_context(trace, 8))
        stepped = router.route_step_batch(make_context(trace, 8))
        assert np.array_equal(scalar, stepped)

    def test_simultaneous_arrivals_tie_break_lowest_index(self):
        """Equal queue lengths must resolve to the lowest device index on
        the epoch path exactly as on the scalar scan."""
        trace = Trace([0.0, 0.0, 0.0, 0.0], duration=10.0)
        out = JoinShortestQueueRouter().route_step_batch(
            make_context(trace, 4)
        )
        assert out.tolist() == [0, 1, 2, 3]

    def test_power_aware_all_awake_and_full_branch(self):
        """max_queue=1 with a tight burst drives the router through all
        three branches — including the every-device-awake-and-full plain
        shortest-queue fallback — identically on both paths."""
        trace = Trace([0.0, 0.1, 0.2, 0.3], duration=10.0)
        router = PowerAwareRouter(awake_window=0.05, max_queue=1)
        stepped = router.route_step_batch(make_context(trace, 2))
        assert stepped.tolist() == [0, 1, 0, 1]
        assert np.array_equal(router.route(make_context(trace, 2)), stepped)

    def test_dispatcher_prefers_epoch_path(self, rng):
        """assignments(vectorized=True) must reach route_step_batch for
        queue-aware routers — proven by breaking the scalar loop."""
        trace = renewal_trace(Exponential(0.8), 200.0, rng)
        device = get_preset("mobile_hdd")
        for name in QUEUE_AWARE:
            dispatcher = Dispatcher(name, 4, device, service_time=0.4)
            expected = dispatcher.assignments(trace, vectorized=False)
            def broken(ctx):
                raise AssertionError("scalar route must not be consulted")
            dispatcher.router.route = broken
            assert np.array_equal(
                dispatcher.assignments(trace, vectorized=True), expected
            )


class TestBacklogCompaction:
    """settle() compacts settled completion prefixes so per-device lists
    stay bounded by the live backlog, not by the trace length."""

    def test_long_trace_memory_stays_bounded(self):
        tracker = _BacklogTracker(1)
        now = 0.0
        for _ in range(5000):
            tracker.assign(0, now, 0.5)
            now += 1.0
            tracker.settle(now)
            assert tracker.queue_len(0) == 0
            # without compaction this list would grow to 5000 entries
            assert len(tracker._completions[0]) <= 2 * _COMPACT_MIN_SETTLED

    def test_compaction_preserves_scalar_semantics(self):
        """Queue lengths and booked completions must match a plain
        uncompacted reference through interleaved assigns and settles
        (including partial settles that leave an unsettled tail)."""
        tracker = _BacklogTracker(2)
        pending = [[], []]
        last = [0.0, 0.0]
        now = 0.0
        for i in range(400):
            d = i % 2
            now += 0.25 if i % 3 else 0.0    # repeats exercise ties
            tracker.settle(now)
            pending = [[c for c in p if c > now] for p in pending]
            assert tracker.queue_len(0) == len(pending[0])
            assert tracker.queue_len(1) == len(pending[1])
            demand = 0.4 + (i % 5) * 0.3     # mixes drain and backlog
            start = max(now, last[d])
            done = start + demand
            last[d] = done
            pending[d].append(done)
            tracker.assign(d, now, demand)
            assert float(tracker.last_completion[d]) == done


class TestRoundRobin:
    def test_cycles_in_request_order(self, rng):
        trace = renewal_trace(Exponential(1.0), 50.0, rng)
        out = RoundRobinRouter().route(make_context(trace, 3))
        assert out.tolist() == [i % 3 for i in range(len(trace))]


class TestRandom:
    def test_within_bounds_and_seed_deterministic(self, rng):
        trace = renewal_trace(Exponential(1.0), 300.0, rng)
        a = RandomRouter().route(make_context(trace, 5, seed=3))
        b = RandomRouter().route(make_context(trace, 5, seed=3))
        c = RandomRouter().route(make_context(trace, 5, seed=4))
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)  # overwhelmingly likely
        assert a.min() >= 0 and a.max() < 5


class TestJoinShortestQueue:
    def test_spreads_simultaneous_burst(self):
        # four arrivals inside one service time: each must land on a
        # different (empty-queue) device, lowest index first
        trace = Trace([0.0, 0.1, 0.2, 0.3], duration=10.0)
        out = JoinShortestQueueRouter().route(make_context(trace, 4))
        assert out.tolist() == [0, 1, 2, 3]

    def test_reuses_drained_device(self):
        # second arrival comes after the first completes: queue empty
        # everywhere again, so the tie falls back to device 0
        trace = Trace([0.0, 5.0], duration=10.0)
        out = JoinShortestQueueRouter().route(make_context(trace, 2))
        assert out.tolist() == [0, 0]


class TestPowerAware:
    def test_consolidates_when_fleet_sleeps(self):
        # gaps longer than the awake window: every arrival re-wakes the
        # same most-recently-used device instead of spreading
        device = get_preset("mobile_hdd")
        window = PowerAwareRouter().resolve_window(device)
        gap = window + 5.0
        times = [i * gap for i in range(5)]
        trace = Trace(times, duration=times[-1] + 1.0)
        out = PowerAwareRouter().route(make_context(trace, 4))
        assert out.tolist() == [0] * 5

    def test_wakes_sleeping_device_when_awake_queue_full(self):
        # max_queue=1: t=0 lands on device 0; at t=0.1 device 0 is awake
        # but full, so the burst wakes device 1; by t=0.2 both are busy
        # and full, so plain shortest-queue takes over
        trace = Trace([0.0, 0.1, 0.2, 0.3], duration=10.0)
        out = PowerAwareRouter(awake_window=0.05, max_queue=1).route(
            make_context(trace, 2)
        )
        assert out.tolist() == [0, 1, 0, 1]

    def test_bounded_queue_prefers_awake_until_full(self):
        # after t=0 only device 0 is awake (busy); it keeps the burst
        # until its queue hits max_queue=2, then device 1 is woken
        trace = Trace([0.0, 0.1, 0.2], duration=10.0)
        out = PowerAwareRouter(awake_window=0.05, max_queue=2).route(
            make_context(trace, 3)
        )
        assert out.tolist() == [0, 0, 1]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            PowerAwareRouter(awake_window=-1.0)
        with pytest.raises(ValueError):
            PowerAwareRouter(max_queue=0)


class TestDispatcher:
    def test_validation(self):
        device = get_preset("mobile_hdd")
        with pytest.raises(ValueError):
            Dispatcher("round_robin", 0, device)
        with pytest.raises(ValueError):
            Dispatcher("round_robin", 2, device, service_time=0.0)
        with pytest.raises(TypeError):
            Dispatcher(object(), 2, device)
        with pytest.raises(ValueError, match="unknown router"):
            Dispatcher("warp", 2, device)

    @pytest.mark.parametrize("name", sorted(ROUTERS))
    def test_partition_conserves_requests_and_window(self, name, rng):
        trace = renewal_trace(Exponential(0.6), 400.0, rng)
        subs = Dispatcher(name, 4, get_preset("mobile_hdd"),
                          service_time=0.4, seed=7).dispatch(trace)
        assert len(subs) == 4
        assert sum(len(s) for s in subs) == len(trace)
        assert all(s.duration == trace.duration for s in subs)
        merged = Trace.merge(subs)
        assert np.array_equal(merged.arrival_times, trace.arrival_times)

    def test_demands_travel_with_their_requests(self, rng):
        base = renewal_trace(Exponential(0.5), 200.0, rng)
        demands = rng.uniform(0.1, 1.0, size=len(base))
        trace = Trace(base.arrival_times, duration=200.0,
                      service_demands=demands)
        dispatcher = Dispatcher("round_robin", 3, get_preset("mobile_hdd"))
        assignments = dispatcher.assignments(trace)
        subs = dispatcher.dispatch(trace)
        for d, sub in enumerate(subs):
            assert np.array_equal(sub.service_demands,
                                  demands[assignments == d])

    def test_dispatch_is_pure(self, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        dispatcher = Dispatcher("random", 5, get_preset("mobile_hdd"), seed=11)
        a = dispatcher.assignments(trace)
        b = dispatcher.assignments(trace)
        assert np.array_equal(a, b)

    def test_scalar_flag_forces_reference_loop(self, rng):
        trace = renewal_trace(Exponential(0.8), 300.0, rng)
        dispatcher = Dispatcher("random", 5, get_preset("mobile_hdd"), seed=11)
        assert np.array_equal(
            dispatcher.assignments(trace, vectorized=True),
            dispatcher.assignments(trace, vectorized=False),
        )


class TestTraceSplit:
    """The workload-layer primitive the dispatcher rides on."""

    def test_split_validation(self):
        trace = Trace([1.0, 2.0], duration=5.0)
        with pytest.raises(ValueError, match="match"):
            trace.split([0])
        with pytest.raises(ValueError, match="integers"):
            trace.split([0.5, 1.5])
        with pytest.raises(ValueError, match="n_parts"):
            trace.split([0, 0], n_parts=0)
        with pytest.raises(ValueError, match="lie in"):
            trace.split([0, 3], n_parts=2)
        with pytest.raises(ValueError, match="lie in"):
            trace.split([-1, 0], n_parts=2)

    def test_split_empty_parts_allowed(self):
        parts = Trace([1.0], duration=4.0).split([2], n_parts=4)
        assert [len(p) for p in parts] == [0, 0, 1, 0]
        assert all(p.duration == 4.0 for p in parts)

    def test_split_empty_trace(self):
        parts = Trace([], duration=3.0).split([], n_parts=2)
        assert [len(p) for p in parts] == [0, 0]
        assert all(p.duration == 3.0 for p in parts)

    def test_merge_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace.merge([])
        with pytest.raises(TypeError, match="Trace"):
            Trace.merge([Trace([1.0], duration=2.0), [2.0]])

    def test_merge_carries_demands_and_window(self):
        a = Trace([1.0, 3.0], duration=6.0, service_demands=[0.2, 0.4])
        b = Trace([2.0], duration=4.0)
        merged = Trace.merge([a, b])
        assert merged.arrival_times.tolist() == [1.0, 2.0, 3.0]
        assert merged.service_demands.tolist() == [0.2, 0.0, 0.4]
        assert merged.duration == 6.0

    def test_split_merge_roundtrip(self, rng):
        base = renewal_trace(Exponential(0.7), 300.0, rng)
        demands = rng.uniform(0.1, 0.9, size=len(base))
        trace = Trace(base.arrival_times, duration=300.0,
                      service_demands=demands)
        assignments = rng.integers(0, 4, size=len(trace))
        merged = Trace.merge(trace.split(assignments, n_parts=4))
        assert np.array_equal(merged.arrival_times, trace.arrival_times)
        assert merged.duration == trace.duration
        # demand multiset survives; order of simultaneous arrivals may not
        assert np.allclose(np.sort(merged.service_demands),
                           np.sort(demands))
