"""Shared benchmark configuration.

Benchmarks double as the figure/table regenerators: each prints the
rendered artifact (archived via ``pytest benchmarks/ --benchmark-only |
tee bench_output.txt``) and asserts the *shape* of the paper's claim.
Horizons are reduced relative to EXPERIMENTS.md headline runs to keep the
suite re-runnable in minutes; the claim directions are unaffected.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import Fig1Config, Fig2Config


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running benchmark; deselect with -m 'not slow'",
    )


@pytest.fixture(scope="session")
def fig1_config():
    """Reduced FIG1 config (~60k slots)."""
    return dataclasses.replace(
        Fig1Config(), n_slots=60_000, record_every=2_000
    )


@pytest.fixture(scope="session")
def fig2_config():
    """Reduced FIG2 config (4 x 25k slots)."""
    return dataclasses.replace(
        Fig2Config(), segment_slots=25_000, record_every=1_000
    )
