"""EXT-QOS bench: the paper's "QoS guaranteed Q-DPM" future-work item.

The Lagrangian-constrained controller must hold the time-average queue
near the target while still saving energy; sweeping the target traces an
energy/QoS frontier (tighter targets -> less saving).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.extensions import QoSQDPM
from repro.workload import ConstantRate


def run_target(target, seed=17, n_slots=100_000):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=6, p_serve=0.9, perf_weight=0.0, loss_penalty=0.0,
        seed=seed,
    )
    controller = QoSQDPM(
        env, target_queue=target, kappa=0.02, dual_every=400,
        learning_rate=0.15, epsilon=0.05, seed=seed + 1,
    )
    hist = controller.run(n_slots, record_every=10_000)
    tail = slice(-4, None)
    return {
        "target": target,
        "mean_queue": float(hist.queue[tail].mean()),
        "saving": float(hist.saving_ratio[tail].mean()),
        "lambda": float(hist.lambda_[-1]),
    }


def test_qos_frontier(benchmark):
    targets = (0.3, 0.8, 2.0)

    def sweep():
        return [run_target(t) for t in targets]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["target queue", "achieved queue", "saving ratio", "final lambda"],
        [[r["target"], round(r["mean_queue"], 3), round(r["saving"], 3),
          round(r["lambda"], 3)] for r in rows],
        title="EXT-QOS: Lagrangian-constrained Q-DPM frontier",
    ))

    for row in rows:
        # constraint respected within dual-ascent slack
        assert row["mean_queue"] < row["target"] + 0.6, row
    # looser QoS -> at least as much energy saving (frontier direction)
    savings = [r["saving"] for r in rows]
    assert savings[-1] >= savings[0] - 0.03, savings
    # tightest target needs the largest multiplier
    assert rows[0]["lambda"] >= rows[-1]["lambda"] - 0.05
