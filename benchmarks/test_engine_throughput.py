"""Engine throughput bench: scalar vs batched vs sharded slots/sec.

The tentpole claims of the vectorized + sharded runtime, measured:

- training B independent Q-DPM seeds lock-step on
  :class:`~repro.runtime.BatchedQDPM` sustains >= 5x the
  replica-slots/sec of the scalar :class:`~repro.core.QDPM` loop at
  B >= 32 (shared-RNG mode);
- sharding a multi-chunk sweep across 4 worker processes
  (``SweepRunner(n_jobs=4)``) sustains >= 2x the wall-clock throughput
  of the serial chunk loop on a >= 4-core host (skipped, not failed,
  on smaller machines).

Every case records its numbers into ``BENCH_engine.json`` at the repo
root (read-modify-write, so cases compose across pytest invocations),
giving the perf trajectory a machine-readable artifact per PR instead
of living only in pytest output.  The quick snapshot case is *not*
marked slow, so a ``-m "not slow"`` CI run still produces the artifact.

Deselect with ``-m "not slow"`` for a quick suite run.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from _bench_util import REPO_ROOT, record_bench
from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.runtime import BatchedQDPM, BatchedSlottedEnv, RolloutSpec, SweepRunner
from repro.runtime.telemetry import TELEMETRY
from repro.workload import ConstantRate

N_SLOTS = 20_000
ENV_KW = dict(queue_capacity=8, p_serve=0.9)

BENCH_PATH = REPO_ROOT / "BENCH_engine.json"


def _record_bench(section: str, payload: dict) -> None:
    """Merge one section (plus host metadata) into the perf artifact."""
    record_bench(BENCH_PATH, section, payload)


def _scalar_slots_per_sec(n_slots: int = N_SLOTS, repeats: int = 3) -> float:
    """Best-of-N scalar training throughput (one seed)."""
    best = 0.0
    for _ in range(repeats):
        env = SlottedDPMEnv(
            abstract_three_state(), ConstantRate(0.15), seed=0, **ENV_KW
        )
        controller = QDPM(env, epsilon=0.08, seed=1)
        start = time.perf_counter()
        controller.run(n_slots, record_every=n_slots)
        best = max(best, n_slots / (time.perf_counter() - start))
    return best


def _batched_slots_per_sec(n_replicas: int, rng_mode: str,
                           n_slots: int = N_SLOTS) -> float:
    """Batched training throughput in replica-slots/sec."""
    env = BatchedSlottedEnv(
        abstract_three_state(), ConstantRate(0.15), n_replicas=n_replicas,
        seeds=0, rng_mode=rng_mode, **ENV_KW,
    )
    driver = BatchedQDPM(env, epsilon=0.08, seed=1)
    start = time.perf_counter()
    driver.run(n_slots, record_every=n_slots)
    return n_slots * n_replicas / (time.perf_counter() - start)


def _sweep_spec(n_slots: int) -> RolloutSpec:
    return RolloutSpec(
        schedule=ConstantRate(0.15), n_slots=n_slots, record_every=n_slots,
        epsilon=0.08, **ENV_KW,
    )


def _sweep_seconds(n_jobs: int, n_seeds: int, batch_size: int,
                   n_slots: int) -> float:
    """Wall-clock of one multi-chunk sweep at a given job count."""
    runner = SweepRunner(batch_size=batch_size, n_jobs=n_jobs)
    start = time.perf_counter()
    runner.run_many(_sweep_spec(n_slots), seeds=list(range(n_seeds)))
    return time.perf_counter() - start


@pytest.mark.slow
def test_engine_throughput():
    scalar = _scalar_slots_per_sec()
    print()
    print(f"scalar QDPM:                {scalar:12,.0f} slots/sec")
    results = {}
    for rng_mode in ("replica", "shared"):
        for b in (32, 64, 128):
            sps = _batched_slots_per_sec(b, rng_mode)
            results[(rng_mode, b)] = sps
            print(
                f"batched[{rng_mode:7s}] B={b:3d}: {sps:12,.0f} "
                f"replica-slots/sec ({sps / scalar:5.1f}x)"
            )
    _record_bench("engine_throughput", {
        "n_slots": N_SLOTS,
        "scalar_slots_per_sec": scalar,
        "batched_replica_slots_per_sec": {
            f"{mode}_B{b}": sps for (mode, b), sps in results.items()
        },
    })

    # the acceptance bar: >= 5x scalar throughput at B >= 32.  The
    # bit-exact per-replica-stream mode pays O(B) generator calls per
    # slot and crosses 5x by B=64; the shared-stream mode (opt-in via
    # RolloutSpec(rng_mode="shared")) must clear the bar comfortably.
    assert results[("shared", 64)] >= 5.0 * scalar, (
        f"batched engine only {results[('shared', 64)] / scalar:.1f}x "
        f"scalar at B=64 (shared rng)"
    )
    # monotone scaling: more replicas per batch amortize better
    assert results[("shared", 128)] > results[("shared", 32)]
    assert results[("replica", 128)] > results[("replica", 32)]


@pytest.mark.slow
def test_sharded_sweep_speedup():
    """Sharding a multi-chunk sweep across 4 processes >= 2x serial.

    16 seeds x batch 4 = 4 independent chunks; at ``n_jobs = 4`` each
    worker owns one chunk, so ideal scaling is ~4x and the bar is a
    conservative 2x.  Requires real cores — skipped (not failed) on
    hosts with fewer than 4.
    """
    n_cores = os.cpu_count() or 1
    n_seeds, batch_size, n_slots = 16, 4, 8_000
    serial = _sweep_seconds(1, n_seeds, batch_size, n_slots)
    sharded = _sweep_seconds(4, n_seeds, batch_size, n_slots)
    speedup = serial / sharded
    print()
    print(
        f"sweep {n_seeds} seeds x {n_slots} slots (batch {batch_size}): "
        f"serial {serial:.2f}s vs 4 jobs {sharded:.2f}s ({speedup:.2f}x, "
        f"{n_cores} cores)"
    )
    _record_bench("sharded_sweep", {
        "n_seeds": n_seeds,
        "batch_size": batch_size,
        "n_slots": n_slots,
        "serial_seconds": serial,
        "jobs4_seconds": sharded,
        "speedup": speedup,
    })
    if n_cores < 4:
        pytest.skip(
            f"sharded-speedup bar needs >= 4 cores, host has {n_cores} "
            f"(numbers recorded to {BENCH_PATH.name})"
        )
    assert speedup >= 2.0, (
        f"sharded sweep only {speedup:.2f}x serial at 4 jobs on "
        f"{n_cores} cores"
    )


def test_telemetry_overhead():
    """Telemetry must be (nearly) free: < 2% disabled, < 10% enabled.

    Three timings of the same serial multi-chunk sweep, min-of-N each:

    - **baseline** — every instrumentation point stubbed to a no-op on
      the singleton, approximating the pre-telemetry runtime;
    - **disabled** — the shipped default (tracing off, counting metrics
      on): the cost of one ``enabled`` check per span site plus a dict
      increment per chunk-boundary event;
    - **enabled** — tracing on: span records and buffer appends.

    Instrumentation is per *chunk* (never per slot/request), so both
    overheads shrink as chunks grow; the bars are asserted at a small
    chunk size where telemetry is proportionally most visible.  Not
    marked slow: the CI bench job records this into the artifact.
    """
    n_seeds, batch_size, n_slots, repeats = 4, 2, 4_000, 5
    spec = _sweep_spec(n_slots)
    runner = SweepRunner(batch_size=batch_size)
    seeds = list(range(n_seeds))

    def best_seconds() -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            runner.run_many(spec, seeds)
            best = min(best, time.perf_counter() - start)
        return best

    TELEMETRY.reset()
    null_span = TELEMETRY.span("off")  # the shared no-op handle
    stubs = {
        "span": lambda *a, **k: null_span,
        "instant": lambda *a, **k: None,
        "inc": lambda *a, **k: None,
        "gauge": lambda *a, **k: None,
        "observe": lambda *a, **k: None,
        "resilience_event": lambda payload: payload,
    }
    try:
        for name, stub in stubs.items():
            setattr(TELEMETRY, name, stub)
        baseline = best_seconds()
    finally:
        for name in stubs:
            delattr(TELEMETRY, name)
    disabled = best_seconds()
    TELEMETRY.enable_tracing()
    try:
        enabled = best_seconds()
    finally:
        TELEMETRY.reset()

    disabled_overhead = disabled / baseline - 1.0
    enabled_overhead = enabled / baseline - 1.0
    print()
    print(
        f"telemetry overhead ({n_seeds} seeds x {n_slots} slots, batch "
        f"{batch_size}): baseline {baseline * 1e3:.1f}ms, disabled "
        f"{disabled * 1e3:.1f}ms ({disabled_overhead:+.2%}), enabled "
        f"{enabled * 1e3:.1f}ms ({enabled_overhead:+.2%})"
    )
    _record_bench("telemetry_overhead", {
        "n_seeds": n_seeds,
        "batch_size": batch_size,
        "n_slots": n_slots,
        "baseline_seconds": baseline,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
    })
    assert disabled_overhead < 0.02, (
        f"default-off telemetry costs {disabled_overhead:.2%} "
        f"(bar: < 2%)"
    )
    assert enabled_overhead < 0.10, (
        f"enabled tracing costs {enabled_overhead:.2%} (bar: < 10%)"
    )


def test_quick_throughput_snapshot():
    """Small, assertion-light snapshot so a ``-m "not slow"`` run (the CI
    bench job) still writes the ``BENCH_engine.json`` artifact."""
    n_slots = 2_000
    scalar = _scalar_slots_per_sec(n_slots=n_slots, repeats=1)
    batched = _batched_slots_per_sec(16, "shared", n_slots=n_slots)
    serial = _sweep_seconds(1, n_seeds=4, batch_size=2, n_slots=n_slots)
    sharded = _sweep_seconds(2, n_seeds=4, batch_size=2, n_slots=n_slots)
    _record_bench("quick_snapshot", {
        "n_slots": n_slots,
        "scalar_slots_per_sec": scalar,
        "batched_shared_B16_replica_slots_per_sec": batched,
        "sweep_serial_seconds": serial,
        "sweep_jobs2_seconds": sharded,
    })
    assert scalar > 0 and batched > 0
    assert BENCH_PATH.exists()
    data = json.loads(BENCH_PATH.read_text())
    assert "quick_snapshot" in data and "cpu_count" in data
    # host metadata makes artifacts from different runners comparable
    host = data["host"]
    assert host["platform"] and host["python_version"] and host["timestamp_utc"]
