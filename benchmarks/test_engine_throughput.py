"""Engine throughput bench: scalar vs batched slots/sec.

The tentpole claim of the vectorized runtime, measured: training B
independent Q-DPM seeds lock-step on :class:`~repro.runtime.BatchedQDPM`
sustains >= 5x the replica-slots/sec of the scalar
:class:`~repro.core.QDPM` loop at B >= 32.  Recorded per PR so future
engine changes have a perf trajectory to regress against.

Deselect with ``-m "not slow"`` for a quick suite run.
"""

from __future__ import annotations

import time

import pytest

from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.runtime import BatchedQDPM, BatchedSlottedEnv
from repro.workload import ConstantRate

N_SLOTS = 20_000
ENV_KW = dict(queue_capacity=8, p_serve=0.9)


def _scalar_slots_per_sec(repeats: int = 3) -> float:
    """Best-of-N scalar training throughput (one seed)."""
    best = 0.0
    for _ in range(repeats):
        env = SlottedDPMEnv(
            abstract_three_state(), ConstantRate(0.15), seed=0, **ENV_KW
        )
        controller = QDPM(env, epsilon=0.08, seed=1)
        start = time.perf_counter()
        controller.run(N_SLOTS, record_every=N_SLOTS)
        best = max(best, N_SLOTS / (time.perf_counter() - start))
    return best


def _batched_slots_per_sec(n_replicas: int, rng_mode: str) -> float:
    """Batched training throughput in replica-slots/sec."""
    env = BatchedSlottedEnv(
        abstract_three_state(), ConstantRate(0.15), n_replicas=n_replicas,
        seeds=0, rng_mode=rng_mode, **ENV_KW,
    )
    driver = BatchedQDPM(env, epsilon=0.08, seed=1)
    start = time.perf_counter()
    driver.run(N_SLOTS, record_every=N_SLOTS)
    return N_SLOTS * n_replicas / (time.perf_counter() - start)


@pytest.mark.slow
def test_engine_throughput():
    scalar = _scalar_slots_per_sec()
    print()
    print(f"scalar QDPM:                {scalar:12,.0f} slots/sec")
    results = {}
    for rng_mode in ("replica", "shared"):
        for b in (32, 64, 128):
            sps = _batched_slots_per_sec(b, rng_mode)
            results[(rng_mode, b)] = sps
            print(
                f"batched[{rng_mode:7s}] B={b:3d}: {sps:12,.0f} "
                f"replica-slots/sec ({sps / scalar:5.1f}x)"
            )

    # the acceptance bar: >= 5x scalar throughput at B >= 32.  The
    # bit-exact per-replica-stream mode pays O(B) generator calls per
    # slot and crosses 5x by B=64; the shared-stream mode (opt-in via
    # RolloutSpec(rng_mode="shared")) must clear the bar comfortably.
    assert results[("shared", 64)] >= 5.0 * scalar, (
        f"batched engine only {results[('shared', 64)] / scalar:.1f}x "
        f"scalar at B=64 (shared rng)"
    )
    # monotone scaling: more replicas per batch amortize better
    assert results[("shared", 128)] > results[("shared", 32)]
    assert results[("replica", 128)] > results[("replica", 32)]
