"""Ablation: exploration strategy (paper's constant epsilon vs. variants).

DESIGN.md design-choice #2.  Constant epsilon (the paper) pays a
permanent tax but stays plastic; decaying epsilon converges closer to the
pure optimum in stationary settings; Boltzmann weights exploration by
value differences.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    QDPM,
    Boltzmann,
    EpsilonGreedy,
    ExponentialDecay,
    QLearningAgent,
)
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate

N_SLOTS = 80_000
RATE = 0.15


def run_strategy(strategy, seed):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(RATE),
        queue_capacity=4, p_serve=0.9, seed=seed,
    )
    agent = QLearningAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        exploration=strategy, seed=seed + 1,
    )
    controller = QDPM(env, agent=agent)
    hist = controller.run(N_SLOTS, record_every=4_000)
    return float(hist.reward[-4:].mean())


def test_exploration_ablation(benchmark):
    strategies = {
        "eps=0.1 (paper)": lambda: EpsilonGreedy(0.1),
        "eps decay 0.3->0.01": lambda: EpsilonGreedy(
            ExponentialDecay(0.3, decay=0.9999, minimum=0.01)
        ),
        "boltzmann T=0.3": lambda: Boltzmann(0.3),
    }

    def sweep():
        return {
            name: np.mean([run_strategy(make(), seed) for seed in (81, 82)])
            for name, make in strategies.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = build_dpm_model(
        abstract_three_state(), arrival_rate=RATE, queue_capacity=4, p_serve=0.9
    )
    optimal = model.solve(0.95, "policy_iteration")
    opt_reward = model.evaluate_policy(optimal.policy).average_reward

    print()
    print(format_table(
        ["strategy", "final online payoff", "gap to pure optimum"],
        [[name, round(v, 4), round(opt_reward - v, 4)]
         for name, v in results.items()],
        title=f"Ablation: exploration strategy (optimum {opt_reward:.4f})",
    ))

    # every strategy must land in the optimum's neighbourhood
    for name, value in results.items():
        assert opt_reward - value < 0.25, (name, value, opt_reward)
    # decaying epsilon must beat constant epsilon in a stationary world
    assert results["eps decay 0.3->0.01"] >= results["eps=0.1 (paper)"] - 0.02
