"""Ablation: full state observation vs. coarse queue buckets.

DESIGN.md design-choice #1.  The embedded pitch of the paper wants the
smallest possible |s| x |a| table; the coarse observation shrinks the
table several-fold and learns faster early, at some asymptotic payoff
cost.  The bench records both sides of the trade.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import FullObservation, QueueBucketObservation, SlottedDPMEnv
from repro.workload import ConstantRate

N_SLOTS = 80_000
RECORD = 4_000


def run_variant(make_obs, seed):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=8, p_serve=0.9, seed=seed,
    )
    obs = make_obs(env)
    controller = QDPM(env, observation=obs, learning_rate=0.1,
                      epsilon=0.08, seed=seed + 1)
    hist = controller.run(N_SLOTS, record_every=RECORD)
    return {
        "table_rows": obs.n_observations,
        "early": float(hist.reward[:3].mean()),
        "final": float(hist.reward[-3:].mean()),
    }


def test_observation_ablation(benchmark):
    def sweep():
        return {
            "full": run_variant(FullObservation, seed=71),
            "buckets(0|1-3|4+)": run_variant(
                lambda env: QueueBucketObservation(env, boundaries=(1, 4)),
                seed=71,
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["observation", "table rows", "early payoff", "final payoff"],
        [[name, r["table_rows"], round(r["early"], 4), round(r["final"], 4)]
         for name, r in results.items()],
        title="Ablation: observation granularity",
    ))

    full = results["full"]
    coarse = results["buckets(0|1-3|4+)"]
    # the whole point of buckets: a much smaller table
    assert coarse["table_rows"] * 2 <= full["table_rows"]
    # both must actually learn
    assert full["final"] > full["early"]
    assert coarse["final"] > coarse["early"]
    # coarse must stay competitive (within a modest payoff margin)
    assert coarse["final"] > full["final"] - 0.25
