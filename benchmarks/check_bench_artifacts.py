#!/usr/bin/env python
"""Gate the CI bench job on complete, non-regressed perf artifacts.

A silently-skipped benchmark used to produce an empty (or partial)
``BENCH_*.json`` that still uploaded fine — the artifact looked alive
while carrying no numbers.  This checker fails loudly instead: each
artifact must exist and contain every expected top-level section, and
every section whose bench *asserts* a speedup bar must have recorded a
``speedup`` at or above that bar — so the artifacts double as a
perf-regression guard even on runs that deselect the assertion itself.

Run:  python benchmarks/check_bench_artifacts.py [repo_root]
Exit: 0 when every artifact is complete, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from _bench_util import SPEEDUP_BARS  # noqa: E402  (sibling module)

#: artifact -> top-level keys the bench suite must have recorded
EXPECTED_KEYS = {
    "BENCH_engine.json": (
        "cpu_count", "host", "quick_snapshot", "telemetry_overhead",
    ),
    "BENCH_sim.json": (
        "cpu_count", "host", "event_sim_kernel", "stateful_batch", "sim_sweep",
    ),
    "BENCH_fleet.json": (
        "cpu_count", "host", "fleet_kernel", "queue_aware_routing",
        "flattened_cell", "fault_tolerant_routing", "overload_resilience",
        "fleet_sweep",
    ),
}


def check_artifacts(root: Path) -> list:
    """All problems found across the expected artifacts (empty = pass)."""
    problems = []
    for name, keys in EXPECTED_KEYS.items():
        path = root / name
        if not path.exists():
            problems.append(f"{name}: missing (bench did not write it)")
            continue
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            problems.append(f"{name}: unparsable JSON ({exc})")
            continue
        for key in keys:
            if key not in data:
                problems.append(f"{name}: missing top-level key {key!r}")
        for section, bar in SPEEDUP_BARS.get(name, {}).items():
            if section not in data:
                continue  # already reported above if expected
            speedup = data[section].get("speedup")
            if not isinstance(speedup, (int, float)):
                problems.append(
                    f"{name}: section {section!r} recorded no 'speedup'"
                )
            elif speedup < bar:
                problems.append(
                    f"{name}: {section} speedup {speedup:.2f}x regressed "
                    f"below its asserted {bar:.0f}x bar"
                )
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = check_artifacts(root)
    if problems:
        print("bench artifact check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    for name in EXPECTED_KEYS:
        print(f"{name}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
