#!/usr/bin/env python
"""Gate the CI bench job on complete perf artifacts.

A silently-skipped benchmark used to produce an empty (or partial)
``BENCH_*.json`` that still uploaded fine — the artifact looked alive
while carrying no numbers.  This checker fails loudly instead: each
artifact must exist and contain every expected top-level section.

Run:  python benchmarks/check_bench_artifacts.py [repo_root]
Exit: 0 when every artifact is complete, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: artifact -> top-level keys the bench suite must have recorded
EXPECTED_KEYS = {
    "BENCH_engine.json": ("cpu_count", "host", "quick_snapshot"),
    "BENCH_sim.json": ("cpu_count", "host", "event_sim_kernel", "sim_sweep"),
    "BENCH_fleet.json": ("cpu_count", "host", "fleet_kernel", "fleet_sweep"),
}


def check_artifacts(root: Path) -> list:
    """All problems found across the expected artifacts (empty = pass)."""
    problems = []
    for name, keys in EXPECTED_KEYS.items():
        path = root / name
        if not path.exists():
            problems.append(f"{name}: missing (bench did not write it)")
            continue
        try:
            data = json.loads(path.read_text())
        except ValueError as exc:
            problems.append(f"{name}: unparsable JSON ({exc})")
            continue
        for key in keys:
            if key not in data:
                problems.append(f"{name}: missing top-level key {key!r}")
    return problems


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    problems = check_artifacts(root)
    if problems:
        print("bench artifact check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    for name in EXPECTED_KEYS:
        print(f"{name}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
