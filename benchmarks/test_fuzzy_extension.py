"""EXT-FUZZY bench: the paper's "Fuzzy Q-DPM in noisy environment" item.

Records the crisp-vs-fuzzy comparison under queue-observation noise.
Honest finding (EXPERIMENTS.md): in this environment fuzzy membership
spreading does NOT improve on plain Q-learning — stochastic sampling
already averages the observation noise, while spreading biases
neighbouring cells whose optimal actions differ.  The bench archives the
numbers and asserts (a) both agents remain functional under heavy noise
and (b) noise hurts both, which is what makes the question non-trivial.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv
from repro.extensions import FuzzyQLearningAgent, NoisyQueueObservation
from repro.workload import ConstantRate


def run_agent(spread, noise, seed, n_slots=60_000):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=4, p_serve=0.9, seed=seed,
    )
    agent = FuzzyQLearningAgent(
        env, spread=spread, discount=0.95, learning_rate=0.15, seed=seed,
    )
    controller = QDPM(
        env, agent=agent,
        observation=NoisyQueueObservation(env, noise, seed=seed + 1),
    )
    hist = controller.run(n_slots, record_every=10_000)
    return float(hist.reward[-3:].mean())


def test_fuzzy_vs_crisp_under_noise(benchmark):
    def sweep():
        rows = []
        for noise in (0.0, 0.4, 0.8):
            crisp = np.mean([run_agent(0.0, noise, s) for s in (5, 6)])
            fuzzy = np.mean([run_agent(0.5, noise, s) for s in (5, 6)])
            rows.append((noise, crisp, fuzzy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["observation noise", "crisp payoff", "fuzzy payoff", "fuzzy - crisp"],
        [[n, round(c, 4), round(f, 4), round(f - c, 4)] for n, c, f in rows],
        title="EXT-FUZZY: crisp vs fuzzy Q-DPM under queue-observation noise "
              "(negative finding: fuzzy does not win here)",
    ))

    clean_crisp = rows[0][1]
    for noise, crisp, fuzzy in rows:
        # both agents keep working: far above the sleep-forever floor (~-2.5)
        assert crisp > -1.6
        assert fuzzy > -1.6
    # noise is genuinely harmful to the crisp agent (the premise of the
    # future-work item)
    assert rows[-1][1] < clean_crisp + 0.02
