"""CLAIM-VAR bench: "tolerant to small scale variations".

Measured finding (see EXPERIMENTS.md): tolerance holds as *graceful
degradation* — Q-DPM's payoff moves only slightly as sinusoidal drift
grows and its gap to a frozen optimal policy stays a bounded tax.  The
stronger reading (overtaking a frozen optimal policy) does NOT hold at
these drift sizes; the bench asserts the honest version.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import VariationConfig, run_variation


def test_variation_tolerance(benchmark):
    config = dataclasses.replace(
        VariationConfig(), n_slots=100_000, warmup_slots=40_000
    )
    result = benchmark.pedantic(
        run_variation, args=(config,), rounds=1, iterations=1
    )
    print()
    print(result.render())

    stationary = result.rows[0]
    worst = result.rows[-1]
    qdpm_drop = stationary.qdpm_reward - worst.qdpm_reward
    assert qdpm_drop < 0.15, f"Q-DPM degraded by {qdpm_drop:.3f} under drift"
    for row in result.rows:
        assert abs(row.reward_gap) < 0.25, (
            f"gap to frozen optimal exploded at amplitude {row.amplitude}"
        )
    benchmark.extra_info["qdpm_drop"] = float(qdpm_drop)
    benchmark.extra_info["gaps"] = [float(r.reward_gap) for r in result.rows]
