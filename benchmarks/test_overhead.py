"""CLAIM-EFF / CLAIM-MEM bench: runtime and memory of Q-DPM vs the
model-based optimizers.

This is the paper's efficiency argument made concrete: a Q-DPM control
step is two O(|A|) table operations; one model-based adaptation is an LP
solve over the whole state-action space ("runs extremely slow"), plus
holding the full transition model in memory ("a little bit memory" for
the table instead).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import QTable
from repro.device import get_preset
from repro.env import build_dpm_model
from repro.experiments import OverheadConfig, run_overhead


@pytest.fixture(scope="module")
def model():
    return build_dpm_model(
        get_preset("abstract3"), arrival_rate=0.15, queue_capacity=16,
        p_serve=0.9,
    )


class TestMicro:
    """Microbenchmarks of the two competing per-adaptation costs."""

    def test_qdpm_control_step(self, benchmark, model):
        """One greedy select + one Eqn.-3 update (the whole Q-DPM runtime)."""
        table = QTable(model.mdp.n_states, model.mdp.n_actions)
        allowed = list(range(model.mdp.n_actions))
        rng = np.random.default_rng(0)
        states = rng.integers(0, model.mdp.n_states, size=4096)
        idx = iter(range(10**9))

        def control_step():
            i = next(idx)
            s = int(states[i % 4096])
            s2 = int(states[(i + 1) % 4096])
            action = table.best_action(s, allowed)
            target = -1.0 + 0.95 * table.max_value(s2, allowed)
            table.update_toward(s, action, target, 0.1)

        benchmark(control_step)

    def test_lp_policy_optimization(self, benchmark, model):
        """One full LP policy optimization (the model-based adaptation)."""
        benchmark.pedantic(
            model.solve, args=(0.95, "linear_programming"),
            rounds=3, iterations=1,
        )

    def test_policy_iteration_solve(self, benchmark, model):
        benchmark.pedantic(
            model.solve, args=(0.95, "policy_iteration"), rounds=3, iterations=1
        )

    def test_value_iteration_solve(self, benchmark, model):
        benchmark.pedantic(
            model.solve, args=(0.95, "value_iteration"), rounds=3, iterations=1
        )


class TestClaimTable:
    def test_overhead_sweep(self, benchmark):
        config = dataclasses.replace(OverheadConfig(), n_q_ops=5_000)
        result = benchmark.pedantic(
            run_overhead, args=(config,), rounds=1, iterations=1
        )
        print()
        print(result.render())
        for row in result.rows:
            # CLAIM-EFF: LP is orders of magnitude costlier than a Q step
            assert row.lp_over_q > 100, (
                f"LP/Qstep only {row.lp_over_q:.0f}x at |S|={row.n_states}"
            )
            # CLAIM-MEM: the model dwarfs the Q table, and the gap grows
            # linearly with the state count
            assert row.model_over_table > row.n_states / 2
        ratios = [r.model_over_table for r in result.rows]
        assert ratios == sorted(ratios), "memory gap must grow with |S|"
