"""Shared helpers for the perf-artifact benchmarks.

Every bench module records its numbers into a ``BENCH_*.json`` file at
the repo root via :func:`record_bench` (read-modify-write, so cases
compose across pytest invocations).  Each write also refreshes a
``host`` block — platform, Python version, CPU count, UTC timestamp —
so artifacts collected from different CI runners are comparable.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path

#: repo root (benchmarks/ lives directly under it)
REPO_ROOT = Path(__file__).resolve().parent.parent


def host_metadata() -> dict:
    """Provenance of the machine producing a perf artifact."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python_version": sys.version.split()[0],
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def record_bench(path: Path, section: str, payload: dict) -> None:
    """Merge one section into the perf artifact at ``path``."""
    data = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except ValueError:
            data = {}
    data["cpu_count"] = os.cpu_count()  # kept top-level for compatibility
    data["host"] = host_metadata()
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


#: asserted speedup bars per artifact section — the single source for
#: both the bench modules' assertions and the CI artifact checker
#: (check_bench_artifacts.py), so the gate can never drift from the
#: bars the benches actually enforce.  Sections whose recorded speedup
#: is informational only (e.g. sweep serial/2-jobs ratios, which need
#: real cores) are deliberately absent.
SPEEDUP_BARS = {
    "BENCH_sim.json": {"event_sim_kernel": 5.0, "stateful_batch": 5.0},
    "BENCH_fleet.json": {
        "fleet_kernel": 5.0,
        "queue_aware_routing": 5.0,
        "flattened_cell": 1.5,
        # the scalar failure-aware reference now precomputes its
        # arrival-instant masks through the same vectorized down_mask
        # sweep as the fast path (PR 10), so the remaining gap is the
        # dense-backlog epoch advance: ~2x measured, 1.5x asserted
        "fault_tolerant_routing": 1.5,
        "overload_resilience": 1.3,
    },
}
