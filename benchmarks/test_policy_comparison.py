"""EXT-POLICY bench: the classic cross-policy DPM comparison table.

Shape assertions: oracle dominates every causal policy and never
mis-shuts; greedy saves the most energy among causal policies at the
worst latency; always-on is the zero-saving / best-latency anchor;
timeout policies sit in between.
"""

from __future__ import annotations

import dataclasses

from repro.experiments import PolicyTableConfig, run_policy_table


def test_policy_comparison_table(benchmark):
    config = dataclasses.replace(PolicyTableConfig(), duration=20_000.0)
    result = benchmark.pedantic(
        run_policy_table, args=(config,), rounds=1, iterations=1
    )
    print()
    print(result.render())

    by_trace = {}
    for row in result.rows:
        by_trace.setdefault(row.trace, {})[row.policy] = row

    for trace, rows in by_trace.items():
        oracle = rows["oracle"]
        on = rows["always_on"]
        greedy = rows["greedy"]
        assert oracle.n_wrong_shutdowns == 0
        assert on.saving_vs_always_on == 0.0
        for name, row in rows.items():
            assert oracle.saving_vs_always_on >= row.saving_vs_always_on - 1e-9, (
                f"{name} out-saved the oracle on {trace}"
            )
        # greedy trades latency for energy relative to always-on
        assert greedy.saving_vs_always_on > 0.2
        assert greedy.mean_latency > on.mean_latency
        # a break-even timeout sits between always-on and greedy in saving
        timeout = next(v for k, v in rows.items() if k.startswith("timeout(Tbe"))
        assert 0.0 < timeout.saving_vs_always_on <= greedy.saving_vs_always_on + 0.02


def test_wrong_shutdowns_ordering(benchmark):
    """Heavy-tailed (Pareto) idle traffic induces more wrong shutdowns for
    the aggressive policies than memoryless traffic — the classic reason
    predictive policies exist."""
    config = dataclasses.replace(PolicyTableConfig(), duration=20_000.0)
    result = benchmark.pedantic(
        run_policy_table, args=(config,), rounds=1, iterations=1
    )
    greedy_rows = [r for r in result.rows if r.policy == "greedy"]
    wrong_rate = {
        r.trace: r.n_wrong_shutdowns / max(1, r.n_shutdowns) for r in greedy_rows
    }
    pareto = next(v for k, v in wrong_rate.items() if "pareto" in k)
    exp = next(v for k, v in wrong_rate.items() if "exp" in k)
    assert pareto > exp
