"""Ablation: TD agent variants on the same DPM task.

Compares the paper's Watkins Q-learning with SARSA, Expected SARSA,
Double Q-learning (targets the max-bootstrap overestimation this
reproduction observed at rarely-visited states), and Watkins Q(lambda)
(faster credit propagation across multi-slot wake-ups).  Same
environment, same exploration, same budget.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import (
    QDPM,
    DoubleQLearningAgent,
    EpsilonGreedy,
    ExpectedSarsaAgent,
    QLearningAgent,
    SarsaAgent,
    WatkinsQLambdaAgent,
)
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate

RATE = 0.15
N_SLOTS = 70_000

AGENTS = {
    "q-learning (paper)": lambda env, seed: QLearningAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        exploration=EpsilonGreedy(0.08), seed=seed,
    ),
    "sarsa": lambda env, seed: SarsaAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        exploration=EpsilonGreedy(0.08), seed=seed,
    ),
    "expected sarsa": lambda env, seed: ExpectedSarsaAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        exploration=EpsilonGreedy(0.08), seed=seed,
    ),
    "double q": lambda env, seed: DoubleQLearningAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        exploration=EpsilonGreedy(0.08), seed=seed,
    ),
    "q(lambda=0.7)": lambda env, seed: WatkinsQLambdaAgent(
        env.n_states, env.n_actions, discount=0.95, learning_rate=0.1,
        lambda_=0.7, exploration=EpsilonGreedy(0.08), seed=seed,
    ),
}


def run_one(make_agent, seed):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(RATE),
        queue_capacity=4, p_serve=0.9, seed=seed,
    )
    agent = make_agent(env, seed + 1)
    controller = QDPM(env, agent=agent)
    hist = controller.run(N_SLOTS, record_every=5_000)
    early = float(hist.reward[2:5].mean())   # slots 10k-25k: learning speed
    final = float(hist.reward[-3:].mean())
    return early, final


def test_agent_variants(benchmark):
    def sweep():
        out = {}
        for name, make_agent in AGENTS.items():
            runs = [run_one(make_agent, seed) for seed in (101, 102)]
            out[name] = tuple(np.mean(runs, axis=0))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    model = build_dpm_model(
        abstract_three_state(), arrival_rate=RATE, queue_capacity=4, p_serve=0.9
    )
    opt = model.solve(0.95, "policy_iteration")
    opt_soft = model.evaluate_policy(opt.policy, epsilon=0.08).average_reward

    print()
    print(format_table(
        ["agent", "early payoff (10-25k)", "final payoff",
         "final gap to eps-soft opt"],
        [[name, round(e, 4), round(f, 4), round(opt_soft - f, 4)]
         for name, (e, f) in results.items()],
        title=f"Ablation: TD agent variants (eps-soft optimum {opt_soft:.4f})",
    ))

    for name, (early, final) in results.items():
        assert final > early - 0.02, f"{name} failed to improve"
        assert opt_soft - final < 0.25, f"{name} far from optimum: {final}"
