"""FIG2 bench: regenerate "Rapid Response".

Asserted shape (paper Fig. 2): on piecewise-stationary input, Q-DPM
re-converges after each marked switching point at least as fast as the
model-based pipeline, which pays detection + re-estimation +
re-optimization lag — "the significant time overhead is removed in
Q-DPM".
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig2


def test_fig2_rapid_response(benchmark, fig2_config):
    result = benchmark.pedantic(
        run_fig2, args=(fig2_config,), rounds=1, iterations=1
    )
    print()
    print(result.render())

    horizon = fig2_config.segment_slots
    q_times = [
        r.response_slots if r.response_slots is not None else horizon
        for r in result.qdpm_responses
    ]
    m_times = [
        r.response_slots if r.response_slots is not None else horizon
        for r in result.mb_responses
    ]
    # headline shape: Q-DPM's mean response is at least as fast
    assert np.mean(q_times) <= np.mean(m_times) + fig2_config.record_every, (
        f"Q-DPM responses {q_times} vs model-based {m_times}"
    )
    # the model-based pipeline must have actually reacted (it is a real
    # baseline, not a strawman): one re-optimization per true switch
    assert result.mb_log.n_reoptimizations >= len(result.switch_points)
    benchmark.extra_info["qdpm_response_slots"] = q_times
    benchmark.extra_info["mb_response_slots"] = m_times
    benchmark.extra_info["mb_reoptimizations"] = result.mb_log.n_reoptimizations


def test_fig2_payoff_dips_at_switches(benchmark, fig2_config):
    """Paper: "energy reduction may be heavily affected by parameter
    variation (e.g., around the first changing point)" — the dip around a
    switch is measurable for both controllers."""
    result = benchmark.pedantic(
        run_fig2, args=(fig2_config,), rounds=1, iterations=1
    )
    for resp in result.qdpm_responses:
        assert resp.dip <= resp.target + 1e-9
