"""FIG1 bench: regenerate "Convergence on Optimal Policy".

Asserted shape (paper Fig. 1): Q-DPM's online payoff climbs to the
optimal reference and settles within a small band of the
exploration-adjusted optimum, "despite it requires much less resources".
"""

from __future__ import annotations

import numpy as np

from repro.experiments import run_fig1


def test_fig1_convergence(benchmark, fig1_config):
    result = benchmark.pedantic(
        run_fig1, args=(fig1_config,), rounds=1, iterations=1
    )
    print()
    print(result.render())

    # shape assertions: starts far below, ends near the soft optimum
    early = result.online_reward[:3].mean()
    late = result.online_reward[-5:].mean()
    assert late > early, "no learning progress visible"
    gap = result.optimal_soft_reward - late
    assert gap < 0.12, f"did not approach the optimal line (gap {gap:.3f})"
    # the greedy snapshot should agree with the optimum on most states
    assert result.final_policy_agreement > 0.5
    benchmark.extra_info["optimal_payoff"] = result.optimal_reward
    benchmark.extra_info["final_online_payoff"] = float(late)
    benchmark.extra_info["convergence_slot"] = result.convergence_slot


def test_fig1_converges_across_rates(benchmark, fig1_config):
    """Paper: "After studying many cases, we conclude that Q-DPM can
    approximate the theoretically optimal policy" — sweep arrival rates."""
    import dataclasses

    def sweep():
        gaps = {}
        for rate in (0.05, 0.15, 0.30):
            config = dataclasses.replace(
                fig1_config, arrival_rate=rate, n_slots=50_000
            )
            result = run_fig1(config)
            late = result.online_reward[-5:].mean()
            gaps[rate] = result.optimal_soft_reward - late
        return gaps

    gaps = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for rate, gap in gaps.items():
        print(f"rate={rate}: payoff gap to eps-soft optimum = {gap:.4f}")
    assert all(gap < 0.15 for gap in gaps.values()), gaps
