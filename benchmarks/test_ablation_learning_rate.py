"""Ablation: constant learning rate — steady-state quality vs. tracking.

DESIGN.md design-choice #3, and the knob behind Fig. 2's headline: a low
constant alpha converges tightly in stationary settings but tracks regime
switches slowly; a high alpha is noisy at steady state but re-converges
almost immediately.  The paper's constant-alpha choice is exactly this
trade-off; the bench quantifies both columns.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import QDPM
from repro.device import abstract_three_state
from repro.env import SlottedDPMEnv, build_dpm_model
from repro.workload import ConstantRate, PiecewiseConstantRate


def stationary_payoff(lr, seed, n_slots=60_000):
    env = SlottedDPMEnv(
        abstract_three_state(), ConstantRate(0.15),
        queue_capacity=4, p_serve=0.9, seed=seed,
    )
    controller = QDPM(env, learning_rate=lr, epsilon=0.05, seed=seed + 1)
    hist = controller.run(n_slots, record_every=4_000)
    return float(hist.reward[-4:].mean())


def _post_switch_target(rate=0.03, epsilon=0.05):
    """Exact eps-soft optimal payoff of the post-switch regime — a fixed,
    controller-independent recovery target (a self-relative target is
    meaningless for learning rates too slow to ever converge)."""
    model = build_dpm_model(
        abstract_three_state(), arrival_rate=rate, queue_capacity=4, p_serve=0.9
    )
    optimal = model.solve(0.95, "policy_iteration")
    return model.evaluate_policy(optimal.policy, epsilon=epsilon).average_reward


def switch_recovery_slots(lr, seed, target, segment=25_000):
    schedule = PiecewiseConstantRate([(segment, 0.30), (segment, 0.03)])
    env = SlottedDPMEnv(
        abstract_three_state(), schedule,
        queue_capacity=4, p_serve=0.9, seed=seed,
    )
    controller = QDPM(env, learning_rate=lr, epsilon=0.05, seed=seed + 1)
    hist = controller.run(2 * segment, record_every=1_000)
    for slot, value in zip(hist.slots, hist.reward):
        if slot >= segment and value >= target - 0.1:
            return int(slot - segment)
    return segment


def test_learning_rate_ablation(benchmark):
    rates = (0.05, 0.2, 0.5)

    def sweep():
        target = _post_switch_target()
        rows = []
        for lr in rates:
            steady = stationary_payoff(lr, seed=91)
            recovery = switch_recovery_slots(lr, seed=92, target=target)
            rows.append((lr, steady, recovery))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["alpha", "stationary payoff", "switch recovery (slots)"],
        [[lr, round(s, 4), rec] for lr, s, rec in rows],
        title="Ablation: constant learning rate — quality vs tracking",
    ))

    # the trade-off's tracking half: the highest alpha recovers at least
    # as fast as the lowest
    assert rows[-1][2] <= rows[0][2]
    # every alpha still learns a sane stationary policy
    for lr, steady, _ in rows:
        assert steady > -1.2, (lr, steady)
