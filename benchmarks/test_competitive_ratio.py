"""Competitive-ratio bench: the theory anchor behind the timeout baseline.

Certifies, on sampled idle-period distributions, that the energy
break-even timeout stays within the deterministic 2-competitive bound on
every device preset with a usable two-level structure — and that the
naive extremes (greedy, never-sleep) violate it, which is why the bound
is interesting.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    competitive_report,
    deterministic_lower_bound_ratio,
    energy_break_even,
    format_table,
)
from repro.device import get_preset, two_state


def test_break_even_timeout_within_bound(benchmark):
    bound = deterministic_lower_bound_ratio()
    rng = np.random.default_rng(0)

    def sweep():
        rows = []
        for dist_name, lengths in (
            ("exp(mean 5)", rng.exponential(5.0, size=5_000)),
            ("pareto-ish", (rng.pareto(1.5, size=5_000) + 0.01) * 2.0),
            ("adversarial", np.full(1_000, 1.0) * 0.0 + np.linspace(0.01, 20, 1_000)),
        ):
            device = two_state()
            report = competitive_report(device, lengths)
            rows.append([
                dist_name,
                round(report.ratio, 3),
                round(report.worst_period_ratio, 3),
            ])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(format_table(
        ["idle distribution", "aggregate ratio", "worst period ratio"],
        rows,
        title=f"break-even timeout vs oracle (bound = {bound})",
    ))
    for _, ratio, worst in rows:
        assert ratio <= bound + 1e-6
        assert worst <= bound + 1e-6


def test_naive_extremes_break_the_bound(benchmark):
    device = two_state()
    tau_star = energy_break_even(device)

    def measure():
        short = np.full(500, tau_star / 50)
        long = np.full(500, tau_star * 50)
        greedy = competitive_report(device, short, timeout=0.0)
        lazy = competitive_report(device, long, timeout=np.inf)
        return greedy.worst_period_ratio, lazy.worst_period_ratio

    greedy_worst, lazy_worst = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    print(f"\ngreedy on short idles: {greedy_worst:.1f}x oracle; "
          f"never-sleep on long idles: {lazy_worst:.1f}x oracle")
    assert greedy_worst > deterministic_lower_bound_ratio()
    assert lazy_worst > deterministic_lower_bound_ratio()
