"""Fleet throughput bench: vectorized fleet path vs. per-device scalar loop.

The tentpole claim of the fleet subsystem, measured: routing one
high-rate arrival stream across N=64 device replicas and evaluating
every sub-trace on the vectorized busy-period kernel sustains >= 5x the
request throughput of the scalar reference dispatcher (scalar routing
loop + one :class:`~repro.sim.DPMSimulator` event loop per device).
The bar is deliberately conservative — the per-device engines alone
measure ~100-1000x, and the fleet path adds only the NumPy partition on
top.  A second case times the (fleet size x router x policy) sweep at 1
and 2 jobs (recorded, not asserted: speedup needs real cores).

Numbers are recorded into ``BENCH_fleet.json`` at the repo root
(sibling of ``BENCH_engine.json`` / ``BENCH_sim.json``), with host
metadata so artifacts from different CI runners are comparable.  None
of the cases is slow-marked: a ``-m "not slow"`` CI run still produces
the full artifact.
"""

from __future__ import annotations

import json
import time

import numpy as np

from _bench_util import REPO_ROOT, SPEEDUP_BARS, record_bench
from repro.baselines import AlwaysOn, FixedTimeout, OracleShutdown
from repro.device import get_preset
from repro.fleet import FleetSweepRunner, FleetSweepSpec, make_router, run_fleet
from repro.runtime import PolicySpec, TraceSpec
from repro.workload import Exponential, renewal_trace

BENCH_PATH = REPO_ROOT / "BENCH_fleet.json"
BARS = SPEEDUP_BARS["BENCH_fleet.json"]

DEVICE = "mobile_hdd"
SERVICE_TIME = 0.4
N_DEVICES = 64
RATE = 2.0            #: fleet-wide requests/sec shared by the replicas
DURATION = 8_000.0    #: ~16k expected requests, ~250 per device


def _fleet_trace():
    trace = renewal_trace(Exponential(RATE), DURATION, np.random.default_rng(13))
    assert len(trace) >= 10_000, "bench trace must carry >= 10k requests"
    return trace


def _requests_per_sec(trace, engine: str, repeats: int = 1) -> float:
    device = get_preset(DEVICE)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_fleet(
            device, FixedTimeout(), trace, make_router("round_robin"),
            N_DEVICES, service_time=SERVICE_TIME, route_seed=1, engine=engine,
        )
        elapsed = time.perf_counter() - start
        assert report.n_requests == len(trace)
        best = max(best, len(trace) / elapsed)
    return best


def test_fleet_vectorized_speedup():
    """The acceptance bar: vectorized fleet >= 5x the scalar loop at
    N=64 devices."""
    trace = _fleet_trace()
    scalar = _requests_per_sec(trace, "scalar")
    vectorized = _requests_per_sec(trace, "auto", repeats=3)
    speedup = vectorized / scalar
    print()
    print(f"scalar fleet (64 event loops): {scalar:12,.0f} requests/sec")
    print(f"vectorized fleet path:         {vectorized:12,.0f} requests/sec "
          f"({speedup:,.0f}x)")
    record_bench(BENCH_PATH, "fleet_kernel", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "router": "round_robin",
        "policy": "timeout_break_even",
        "n_requests": len(trace),
        "trace_duration": DURATION,
        "scalar_requests_per_sec": scalar,
        "vectorized_requests_per_sec": vectorized,
        "speedup": speedup,
    })
    assert speedup >= BARS["fleet_kernel"], (
        f"vectorized fleet only {speedup:.1f}x the scalar reference dispatcher"
    )


def _sweep_seconds(n_jobs: int, spec: FleetSweepSpec):
    runner = FleetSweepRunner(chunk_size=2, n_jobs=n_jobs)
    start = time.perf_counter()
    result = runner.run(spec)
    return time.perf_counter() - start, result.execution


def test_fleet_sweep_sharded_timings():
    """Wall-clock of the (fleet x router x policy) sweep at 1 and 2 jobs.

    Recorded, not asserted: speedup needs real cores, and the reference
    container has one.  The artifact still tracks the trajectory — and
    since PR 5 the runner may *degrade* the 2-job request to in-process
    execution (single-core host / tiny chunks); the recorded decision
    says which configuration actually ran.
    """
    spec = FleetSweepSpec(
        device=DEVICE,
        fleet_sizes=(4, 16),
        routers=("round_robin", "power_aware"),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("timeout", FixedTimeout()),
            PolicySpec("oracle", OracleShutdown(), oracle=True),
        ),
        trace=TraceSpec("exp", Exponential(1.0), 2_000.0),
        n_traces=8,
        seed=3,
        service_time=SERVICE_TIME,
    )
    serial, _ = _sweep_seconds(1, spec)
    sharded, execution = _sweep_seconds(2, spec)
    n_cells = len(spec.fleet_sizes) * len(spec.routers) * len(spec.policies)
    print()
    print(f"fleet sweep ({n_cells} cells x {spec.n_traces} traces): "
          f"serial {serial:.2f}s vs 2 jobs {sharded:.2f}s "
          f"({serial / sharded:.2f}x, decision={execution['decision']})")
    record_bench(BENCH_PATH, "fleet_sweep", {
        "n_cells": n_cells,
        "n_traces": spec.n_traces,
        "trace_duration": 2_000.0,
        "serial_seconds": serial,
        "jobs2_seconds": sharded,
        "speedup": serial / sharded,
        "jobs2_decision": execution["decision"],
        "jobs2_effective": execution["n_jobs_effective"],
    })
    assert serial > 0 and sharded > 0


def test_bench_fleet_artifact_shape():
    """The artifact the CI bench job gates on: expected top-level keys."""
    assert BENCH_PATH.exists()
    data = json.loads(BENCH_PATH.read_text())
    for key in ("host", "fleet_kernel", "fleet_sweep"):
        assert key in data, f"BENCH_fleet.json missing {key!r}"
    assert data["fleet_kernel"]["speedup"] >= BARS["fleet_kernel"]
