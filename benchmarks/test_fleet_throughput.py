"""Fleet throughput bench: vectorized fleet paths vs. scalar references.

The tentpole claims of the fleet subsystem, measured at N=64 replicas:

- ``fleet_kernel`` — routing one high-rate arrival stream across the
  fleet and evaluating every sub-trace on the vectorized busy-period
  kernel sustains >= 5x the request throughput of the scalar reference
  dispatcher (scalar routing loop + one
  :class:`~repro.sim.DPMSimulator` event loop per device).
- ``queue_aware_routing`` — the epoch-advance ``route_step_batch``
  path (dense backlog arrays + a shared completion heap) assigns
  requests >= 5x faster than the scalar per-request reference loop for
  ``jsq`` (the ``power_aware`` rate is recorded alongside; its dense
  mask arithmetic per epoch leaves less headroom).
- ``flattened_cell`` — one :func:`~repro.fleet.run_fleet_batch`
  kernel invocation over a whole (seed x device) cell beats R x N
  per-trace kernel runs >= 1.5x (the win is invocation-overhead
  amortization; per-replica report compilation is shared cost).
- ``fault_tolerant_routing`` — failure-aware dispatch (seeded fault
  schedule + failover retries) on the vectorized engine (dense backlog
  arrays + one whole-trace ``down_mask`` sweep) routes >= 1.5x faster
  than the scalar failure-aware reference loop, with bit-identical
  assignments/retries/dispatch times.  The bar shrank in PR 10: the
  scalar reference now shares the vectorized mask sweep, so only the
  dense-backlog epoch advance separates the paths.
- ``overload_resilience`` — the full graceful-degradation stack
  (brownout-capable faults, circuit breakers, a fleet-wide retry
  budget, deadline-aware shedding) on the vectorized overload engine
  >= 1.3x the scalar overload reference, bit-identical outcomes, with
  the degradation machinery demonstrably exercised (trips, retries,
  and budget sheds all non-zero).

Bars are deliberately conservative against CI-runner noise.  A further
case times the (fleet size x router x policy) sweep at 1 and 2 jobs
(recorded, not asserted: speedup needs real cores).

Numbers are recorded into ``BENCH_fleet.json`` at the repo root
(sibling of ``BENCH_engine.json`` / ``BENCH_sim.json``), with host
metadata so artifacts from different CI runners are comparable.  None
of the cases is slow-marked: a ``-m "not slow"`` CI run still produces
the full artifact.
"""

from __future__ import annotations

import json
import time

import numpy as np

from _bench_util import REPO_ROOT, SPEEDUP_BARS, record_bench
from repro.baselines import AlwaysOn, FixedTimeout, OracleShutdown
from repro.device import get_preset
from repro.fleet import (
    BreakerConfig,
    Dispatcher,
    FailoverConfig,
    FleetSweepRunner,
    FleetSweepSpec,
    OverloadConfig,
    RetryBudgetConfig,
    make_router,
    run_fleet,
    run_fleet_batch,
)
from repro.runtime import PolicySpec, TraceSpec
from repro.workload import Exponential, FaultProcess, renewal_trace

BENCH_PATH = REPO_ROOT / "BENCH_fleet.json"
BARS = SPEEDUP_BARS["BENCH_fleet.json"]

DEVICE = "mobile_hdd"
SERVICE_TIME = 0.4
N_DEVICES = 64
RATE = 2.0            #: fleet-wide requests/sec shared by the replicas
DURATION = 8_000.0    #: ~16k expected requests, ~250 per device


def _fleet_trace():
    trace = renewal_trace(Exponential(RATE), DURATION, np.random.default_rng(13))
    assert len(trace) >= 10_000, "bench trace must carry >= 10k requests"
    return trace


def _requests_per_sec(trace, engine: str, repeats: int = 1) -> float:
    device = get_preset(DEVICE)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_fleet(
            device, FixedTimeout(), trace, make_router("round_robin"),
            N_DEVICES, service_time=SERVICE_TIME, route_seed=1, engine=engine,
        )
        elapsed = time.perf_counter() - start
        assert report.n_requests == len(trace)
        best = max(best, len(trace) / elapsed)
    return best


def test_fleet_vectorized_speedup():
    """The acceptance bar: vectorized fleet >= 5x the scalar loop at
    N=64 devices."""
    trace = _fleet_trace()
    scalar = _requests_per_sec(trace, "scalar")
    vectorized = _requests_per_sec(trace, "auto", repeats=3)
    speedup = vectorized / scalar
    print()
    print(f"scalar fleet (64 event loops): {scalar:12,.0f} requests/sec")
    print(f"vectorized fleet path:         {vectorized:12,.0f} requests/sec "
          f"({speedup:,.0f}x)")
    record_bench(BENCH_PATH, "fleet_kernel", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "router": "round_robin",
        "policy": "timeout_break_even",
        "n_requests": len(trace),
        "trace_duration": DURATION,
        "scalar_requests_per_sec": scalar,
        "vectorized_requests_per_sec": vectorized,
        "speedup": speedup,
    })
    assert speedup >= BARS["fleet_kernel"], (
        f"vectorized fleet only {speedup:.1f}x the scalar reference dispatcher"
    )


def _route_seconds(router_name: str, trace, vectorized: bool,
                   repeats: int = 1) -> float:
    dispatcher = Dispatcher(
        router_name, N_DEVICES, get_preset(DEVICE),
        service_time=SERVICE_TIME, seed=7,
    )
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        out = dispatcher.assignments(trace, vectorized=vectorized)
        best = min(best, time.perf_counter() - start)
        assert out.size == len(trace)
    return best


def test_queue_aware_routing_speedup():
    """The routing acceptance bar: the epoch-advance path assigns >= 5x
    faster than the scalar reference loop for jsq at N=64 (power_aware
    recorded alongside) — with bit-identical assignments."""
    trace = _fleet_trace()
    timings = {}
    for name in ("jsq", "power_aware"):
        dispatcher = Dispatcher(name, N_DEVICES, get_preset(DEVICE),
                                service_time=SERVICE_TIME, seed=7)
        assert np.array_equal(
            dispatcher.assignments(trace, vectorized=True),
            dispatcher.assignments(trace, vectorized=False),
        ), f"{name}: epoch path diverged from the scalar reference"
        scalar = _route_seconds(name, trace, vectorized=False)
        stepped = _route_seconds(name, trace, vectorized=True, repeats=3)
        timings[name] = (scalar, stepped, scalar / stepped)
    print()
    for name, (scalar, stepped, speedup) in timings.items():
        print(f"{name:12s} scalar route: {scalar:6.3f}s   "
              f"epoch-advance: {stepped:6.3f}s   ({speedup:,.1f}x)")
    jsq_speedup = timings["jsq"][2]
    record_bench(BENCH_PATH, "queue_aware_routing", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "n_requests": len(trace),
        "jsq_scalar_seconds": timings["jsq"][0],
        "jsq_step_seconds": timings["jsq"][1],
        "power_aware_scalar_seconds": timings["power_aware"][0],
        "power_aware_step_seconds": timings["power_aware"][1],
        "power_aware_speedup": timings["power_aware"][2],
        "speedup": jsq_speedup,
    })
    assert jsq_speedup >= BARS["queue_aware_routing"], (
        f"jsq epoch-advance routing only {jsq_speedup:.1f}x the scalar loop"
    )


def test_flattened_cell_speedup():
    """The whole-cell flattening bar: one run_fleet_batch kernel call
    over R seeds x N devices beats R per-trace auto-engine fleet runs
    (the pre-flattening sweep path) >= 1.5x."""
    device = get_preset(DEVICE)
    rng = np.random.default_rng(29)
    n_seeds = 16
    traces = [
        renewal_trace(Exponential(RATE), 1_000.0, rng) for _ in range(n_seeds)
    ]
    seeds = list(range(n_seeds))
    router = "round_robin"  # isolates flattening from routing cost

    start = time.perf_counter()
    per_trace = [
        run_fleet(device, FixedTimeout(), trace, make_router(router),
                  N_DEVICES, service_time=SERVICE_TIME, route_seed=seed,
                  engine="auto")
        for trace, seed in zip(traces, seeds)
    ]
    per_trace_seconds = time.perf_counter() - start

    flat_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        flattened = run_fleet_batch(
            device, FixedTimeout(), traces, make_router(router), N_DEVICES,
            service_time=SERVICE_TIME, route_seeds=seeds,
        )
        flat_seconds = min(flat_seconds, time.perf_counter() - start)
    assert [r.n_requests for r in flattened] == \
        [r.n_requests for r in per_trace]

    speedup = per_trace_seconds / flat_seconds
    n_requests = sum(len(t) for t in traces)
    print()
    print(f"cell ({n_seeds} seeds x {N_DEVICES} devices, "
          f"{n_requests:,} requests): per-trace {per_trace_seconds:.3f}s "
          f"vs flattened {flat_seconds:.3f}s ({speedup:.2f}x)")
    record_bench(BENCH_PATH, "flattened_cell", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "n_seeds": n_seeds,
        "router": router,
        "policy": "timeout_break_even",
        "n_requests": n_requests,
        "per_trace_seconds": per_trace_seconds,
        "flattened_seconds": flat_seconds,
        "speedup": speedup,
    })
    assert speedup >= BARS["flattened_cell"], (
        f"flattened cell only {speedup:.2f}x the per-trace engine"
    )


def test_fault_tolerant_routing_speedup():
    """The failure-aware routing bar: the vectorized engine (dense
    backlog + whole-trace down_mask sweep) >= 1.5x the scalar
    reference loop at N=64, bit-identical outcomes."""
    trace = _fleet_trace()
    faults = FaultProcess(mtbf=2_000.0, mttr=200.0)
    dispatcher = Dispatcher("jsq", N_DEVICES, get_preset(DEVICE),
                            service_time=SERVICE_TIME, seed=7)

    start = time.perf_counter()
    _, scalar_out = dispatcher.dispatch_with_faults(
        trace, faults, vectorized=False, fault_seed=5,
    )
    scalar_seconds = time.perf_counter() - start

    vec_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _, vec_out = dispatcher.dispatch_with_faults(
            trace, faults, vectorized=True, fault_seed=5,
        )
        vec_seconds = min(vec_seconds, time.perf_counter() - start)

    assert np.array_equal(scalar_out.assignments, vec_out.assignments)
    assert np.array_equal(scalar_out.retries, vec_out.retries)
    assert np.array_equal(scalar_out.dispatch_times, vec_out.dispatch_times)

    speedup = scalar_seconds / vec_seconds
    print()
    print(f"fault-tolerant routing (jsq, {len(trace):,} requests, "
          f"{scalar_out.n_retries} retries, {scalar_out.n_dropped} drops): "
          f"scalar {scalar_seconds:.3f}s vs vectorized {vec_seconds:.3f}s "
          f"({speedup:.1f}x)")
    record_bench(BENCH_PATH, "fault_tolerant_routing", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "router": "jsq",
        "mtbf": 2_000.0,
        "mttr": 200.0,
        "n_requests": len(trace),
        "n_retries": int(scalar_out.n_retries),
        "n_dropped": int(scalar_out.n_dropped),
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vec_seconds,
        "speedup": speedup,
    })
    assert speedup >= BARS["fault_tolerant_routing"], (
        f"vectorized failure-aware routing only {speedup:.1f}x the "
        f"scalar reference"
    )


def test_overload_resilience_speedup():
    """The graceful-degradation bar: the vectorized overload engine
    >= 1.3x the scalar overload reference at N=64 with breakers, a
    tight retry budget, and deadlines all armed — and the scenario must
    actually exercise them (trips, retries, and budget sheds > 0), or
    the bench pins a no-op."""
    trace = _fleet_trace()
    faults = FaultProcess(mtbf=500.0, mttr=120.0)
    config = OverloadConfig(
        failover=FailoverConfig(max_retries=3, backoff_base=0.25,
                                backoff_cap=2.0),
        breaker=BreakerConfig(failure_threshold=3, recovery_time=30.0,
                              latency_threshold=2.0),
        retry_budget=RetryBudgetConfig(capacity=8.0, refill_rate=0.02),
        slo=4.0,
    )
    dispatcher = Dispatcher("jsq", N_DEVICES, get_preset(DEVICE),
                            service_time=SERVICE_TIME, seed=7)

    start = time.perf_counter()
    _, scalar_out = dispatcher.dispatch_with_overload(
        trace, faults, config, vectorized=False, fault_seed=5,
    )
    scalar_seconds = time.perf_counter() - start

    vec_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        _, vec_out = dispatcher.dispatch_with_overload(
            trace, faults, config, vectorized=True, fault_seed=5,
        )
        vec_seconds = min(vec_seconds, time.perf_counter() - start)

    assert np.array_equal(scalar_out.assignments, vec_out.assignments)
    assert np.array_equal(scalar_out.retries, vec_out.retries)
    assert np.array_equal(scalar_out.dispatch_times, vec_out.dispatch_times)
    assert np.array_equal(scalar_out.shed_reasons, vec_out.shed_reasons)
    assert np.array_equal(scalar_out.completions, vec_out.completions,
                          equal_nan=True)
    assert scalar_out.n_breaker_trips == vec_out.n_breaker_trips
    # the degradation machinery must be live, not configured away
    assert scalar_out.n_breaker_trips > 0
    assert scalar_out.n_retries > 0
    assert scalar_out.n_budget_shed > 0

    speedup = scalar_seconds / vec_seconds
    print()
    print(f"overload routing (jsq, {len(trace):,} requests, "
          f"{scalar_out.n_breaker_trips} trips, {scalar_out.n_shed} shed, "
          f"goodput {scalar_out.goodput:.4f}): scalar {scalar_seconds:.3f}s "
          f"vs vectorized {vec_seconds:.3f}s ({speedup:.1f}x)")
    record_bench(BENCH_PATH, "overload_resilience", {
        "device": DEVICE,
        "n_devices": N_DEVICES,
        "router": "jsq",
        "mtbf": 500.0,
        "mttr": 120.0,
        "slo": 4.0,
        "n_requests": len(trace),
        "n_retries": int(scalar_out.n_retries),
        "n_shed": int(scalar_out.n_shed),
        "n_budget_shed": int(scalar_out.n_budget_shed),
        "n_breaker_trips": int(scalar_out.n_breaker_trips),
        "goodput": float(scalar_out.goodput),
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vec_seconds,
        "speedup": speedup,
    })
    assert speedup >= BARS["overload_resilience"], (
        f"vectorized overload routing only {speedup:.1f}x the "
        f"scalar reference"
    )


def _sweep_seconds(n_jobs: int, spec: FleetSweepSpec):
    runner = FleetSweepRunner(chunk_size=2, n_jobs=n_jobs)
    start = time.perf_counter()
    result = runner.run(spec)
    return time.perf_counter() - start, result.execution


def test_fleet_sweep_sharded_timings():
    """Wall-clock of the (fleet x router x policy) sweep at 1 and 2 jobs.

    Recorded, not asserted: speedup needs real cores, and the reference
    container has one.  The artifact still tracks the trajectory — and
    since PR 5 the runner may *degrade* the 2-job request to in-process
    execution (single-core host / tiny chunks); the recorded decision
    says which configuration actually ran.
    """
    spec = FleetSweepSpec(
        device=DEVICE,
        fleet_sizes=(4, 16),
        routers=("round_robin", "power_aware"),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("timeout", FixedTimeout()),
            PolicySpec("oracle", OracleShutdown(), oracle=True),
        ),
        trace=TraceSpec("exp", Exponential(1.0), 2_000.0),
        n_traces=8,
        seed=3,
        service_time=SERVICE_TIME,
    )
    serial, _ = _sweep_seconds(1, spec)
    sharded, execution = _sweep_seconds(2, spec)
    n_cells = len(spec.fleet_sizes) * len(spec.routers) * len(spec.policies)
    print()
    print(f"fleet sweep ({n_cells} cells x {spec.n_traces} traces): "
          f"serial {serial:.2f}s vs 2 jobs {sharded:.2f}s "
          f"({serial / sharded:.2f}x, decision={execution['decision']})")
    record_bench(BENCH_PATH, "fleet_sweep", {
        "n_cells": n_cells,
        "n_traces": spec.n_traces,
        "trace_duration": 2_000.0,
        "serial_seconds": serial,
        "jobs2_seconds": sharded,
        "speedup": serial / sharded,
        "jobs2_decision": execution["decision"],
        "jobs2_effective": execution["n_jobs_effective"],
    })
    assert serial > 0 and sharded > 0


def test_bench_fleet_artifact_shape():
    """The artifact the CI bench job gates on: expected top-level keys."""
    assert BENCH_PATH.exists()
    data = json.loads(BENCH_PATH.read_text())
    for key in ("host", "fleet_kernel", "queue_aware_routing",
                "flattened_cell", "fault_tolerant_routing",
                "overload_resilience", "fleet_sweep"):
        assert key in data, f"BENCH_fleet.json missing {key!r}"
    for section, bar in BARS.items():
        assert data[section]["speedup"] >= bar, section
