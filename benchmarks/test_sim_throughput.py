"""Event-sim throughput bench: scalar event loop vs. vectorized engines.

The tentpole claims of the vectorized event-driven runtime, measured:

- on a >= 10k-request Poisson trace with a break-even timeout policy,
  the busy-period kernel (:mod:`repro.runtime.eventsim`) sustains >= 5x
  the request throughput of the scalar :class:`~repro.sim.DPMSimulator`
  event loop (measured ~100-800x — the bar is deliberately
  conservative);
- for the *stateful* adaptive-timeout baseline, the lock-step
  cross-replication engine (:func:`~repro.runtime.run_step_batched`) at
  R = 64 seeded replications sustains >= 5x the scalar loop's request
  throughput (measured ~15x — the replication axis is the only
  batchable one for stateful policies, and the scalar loop is
  comparatively quick here because short replication traces keep its
  event heap small).

A further case times the sharded (device x trace x policy) sweep
(:class:`~repro.runtime.SimSweepRunner`) at 1 and 2 jobs.

Numbers are recorded into ``BENCH_sim.json`` at the repo root (sibling
of ``BENCH_engine.json``), with host metadata so artifacts from
different CI runners are comparable.  None of the cases is slow-marked:
a ``-m "not slow"`` CI run still produces the full artifact, and
``check_bench_artifacts.py`` gates CI on the recorded speedups staying
above their asserted bars.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from _bench_util import REPO_ROOT, SPEEDUP_BARS, record_bench
from repro.baselines import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    OracleShutdown,
)
from repro.device import get_preset
from repro.runtime import (
    PolicySpec,
    SimSweepRunner,
    SimSweepSpec,
    TraceSpec,
    run_step_batched,
    run_vectorized,
)
from repro.sim import DPMSimulator
from repro.workload import Exponential, renewal_trace

BENCH_PATH = REPO_ROOT / "BENCH_sim.json"
BARS = SPEEDUP_BARS["BENCH_sim.json"]

DEVICE = "mobile_hdd"
SERVICE_TIME = 0.4
RATE = 0.05
DURATION = 220_000.0  # ~11k expected requests at rate 0.05


def _poisson_trace():
    trace = renewal_trace(Exponential(RATE), DURATION, np.random.default_rng(11))
    assert len(trace) >= 10_000, "bench trace must carry >= 10k requests"
    return trace


def _scalar_requests_per_sec(trace) -> float:
    sim = DPMSimulator(get_preset(DEVICE), FixedTimeout(),
                       service_time=SERVICE_TIME)
    start = time.perf_counter()
    sim.run(trace)
    return len(trace) / (time.perf_counter() - start)


def _vectorized_requests_per_sec(trace, repeats: int = 3) -> float:
    device = get_preset(DEVICE)
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        report = run_vectorized(device, FixedTimeout(), trace,
                                service_time=SERVICE_TIME)
        elapsed = time.perf_counter() - start
        assert report is not None, "timeout policy must ride the kernel"
        best = max(best, len(trace) / elapsed)
    return best


def test_event_sim_kernel_speedup():
    """The acceptance bar: vectorized >= 5x scalar on >= 10k requests."""
    trace = _poisson_trace()
    scalar = _scalar_requests_per_sec(trace)
    vectorized = _vectorized_requests_per_sec(trace)
    speedup = vectorized / scalar
    print()
    print(f"scalar event loop:   {scalar:12,.0f} requests/sec")
    print(f"vectorized kernel:   {vectorized:12,.0f} requests/sec "
          f"({speedup:,.0f}x)")
    record_bench(BENCH_PATH, "event_sim_kernel", {
        "device": DEVICE,
        "n_requests": len(trace),
        "trace_duration": DURATION,
        "policy": "timeout_break_even",
        "scalar_requests_per_sec": scalar,
        "vectorized_requests_per_sec": vectorized,
        "speedup": speedup,
    })
    assert speedup >= BARS["event_sim_kernel"], (
        f"vectorized kernel only {speedup:.1f}x the scalar event loop"
    )


STATEFUL_R = 64                  #: replication count of the lock-step case
STATEFUL_DURATION = 8_000.0      #: ~400 expected requests per replication


def _stateful_traces():
    traces = [
        renewal_trace(Exponential(RATE), STATEFUL_DURATION,
                      np.random.default_rng(500 + i))
        for i in range(STATEFUL_R)
    ]
    assert sum(len(t) for t in traces) >= 20_000
    return traces


def test_stateful_batch_speedup():
    """The stateful acceptance bar: lock-step engine >= 5x the scalar
    event loop on R = 64 adaptive-timeout replications."""
    device = get_preset(DEVICE)
    traces = _stateful_traces()
    n_requests = sum(len(t) for t in traces)

    start = time.perf_counter()
    for trace in traces:
        DPMSimulator(device, AdaptiveTimeout(initial_timeout=2.0),
                     service_time=SERVICE_TIME).run(trace)
    scalar = n_requests / (time.perf_counter() - start)

    batched = 0.0
    for _ in range(3):
        start = time.perf_counter()
        reports = run_step_batched(
            device, AdaptiveTimeout(initial_timeout=2.0), traces,
            service_time=SERVICE_TIME,
        )
        elapsed = time.perf_counter() - start
        assert reports is not None, "adaptive must ride the lock-step engine"
        batched = max(batched, n_requests / elapsed)

    speedup = batched / scalar
    print()
    print(f"scalar event loop:   {scalar:12,.0f} requests/sec")
    print(f"lock-step batched:   {batched:12,.0f} requests/sec "
          f"({speedup:,.0f}x at R={STATEFUL_R})")
    record_bench(BENCH_PATH, "stateful_batch", {
        "device": DEVICE,
        "policy": "adaptive_timeout",
        "n_replications": STATEFUL_R,
        "n_requests_total": n_requests,
        "trace_duration": STATEFUL_DURATION,
        "scalar_requests_per_sec": scalar,
        "batched_requests_per_sec": batched,
        "speedup": speedup,
    })
    assert speedup >= BARS["stateful_batch"], (
        f"lock-step engine only {speedup:.1f}x the scalar event loop"
    )


def _sweep_seconds(n_jobs: int, spec: SimSweepSpec):
    runner = SimSweepRunner(chunk_size=2, n_jobs=n_jobs)
    start = time.perf_counter()
    result = runner.run(spec)
    return time.perf_counter() - start, result.execution


def test_sim_sweep_sharded_timings():
    """Wall-clock of the (device x trace x policy) sweep at 1 and 2 jobs.

    Recorded, not asserted: speedup needs real cores, and the reference
    container has one.  The artifact still tracks the trajectory — and
    since PR 5 the runner may *degrade* the 2-job request to in-process
    execution (single-core host / tiny chunks); the recorded decision
    says which configuration actually ran.
    """
    spec = SimSweepSpec(
        devices=("mobile_hdd", "wlan"),
        traces=(TraceSpec("exp", Exponential(RATE), 20_000.0),),
        policies=(
            PolicySpec("always_on", AlwaysOn()),
            PolicySpec("greedy", GreedySleep()),
            PolicySpec("timeout", FixedTimeout()),
            PolicySpec("oracle", OracleShutdown(), oracle=True),
        ),
        n_traces=8,
        seed=3,
        service_time=SERVICE_TIME,
    )
    serial, _ = _sweep_seconds(1, spec)
    sharded, execution = _sweep_seconds(2, spec)
    print()
    n_cells = len(spec.devices) * len(spec.traces) * len(spec.policies)
    print(f"sim sweep ({n_cells} cells x {spec.n_traces} traces): "
          f"serial {serial:.2f}s vs 2 jobs {sharded:.2f}s "
          f"({serial / sharded:.2f}x, decision={execution['decision']})")
    record_bench(BENCH_PATH, "sim_sweep", {
        "n_cells": len(spec.devices) * len(spec.traces) * len(spec.policies),
        "n_traces": spec.n_traces,
        "trace_duration": 20_000.0,
        "serial_seconds": serial,
        "jobs2_seconds": sharded,
        "speedup": serial / sharded,
        "jobs2_decision": execution["decision"],
        "jobs2_effective": execution["n_jobs_effective"],
    })
    assert serial > 0 and sharded > 0


def test_bench_sim_artifact_shape():
    """The artifact the CI bench job gates on: expected top-level keys."""
    assert BENCH_PATH.exists()
    data = json.loads(BENCH_PATH.read_text())
    for key in ("host", "event_sim_kernel", "stateful_batch", "sim_sweep"):
        assert key in data, f"BENCH_sim.json missing {key!r}"
    for section, bar in BARS.items():
        assert data[section]["speedup"] >= bar
