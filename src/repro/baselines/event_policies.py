"""Classic event-driven DPM baselines.

The comparator families every DPM paper (including this one, implicitly
via its citations) measures against:

- :class:`AlwaysOn` — never leaves the wait state; the energy baseline.
- :class:`GreedySleep` — shuts down the instant the device idles.
- :class:`FixedTimeout` — shut down after a fixed linger; the policy every
  OS actually ships.  ``timeout = break-even`` is the classic
  2-competitive choice.
- :class:`AdaptiveTimeout` — multiplicative-increase/decrease timeout
  adaptation (Douglis et al. style).
- :class:`PredictiveShutdown` — exponential-average prediction of the next
  idle length (Hwang & Wu); sleeps immediately when the prediction
  exceeds break-even.
- :class:`MultiLevelTimeout` — staged descent through several rest states
  at increasing thresholds (for 3+-state devices).
- :class:`OracleShutdown` — clairvoyant lower bound: knows the true next
  arrival and sleeps exactly when profitable.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from dataclasses import dataclass

from ..device import PowerStateMachine
from ..sim.policy_api import (
    NEVER,
    BatchIdleContext,
    BatchIdleDecision,
    EventPolicy,
    IdleContext,
    IdleDecision,
    StepBatchContext,
)


def _constant_batch(
    ctx: BatchIdleContext, target: Optional[str], timeout: float
) -> BatchIdleDecision:
    """Batch form of a gap-independent decision (the timeout family)."""
    n = ctx.gap_starts.size
    idx = -1 if target is None else ctx.device.state_names.index(target)
    return BatchIdleDecision(
        target_idx=np.full(n, idx, dtype=np.int64),
        timeouts=np.full(n, float(timeout)),
    )


def _deepest_profitable_state(device: PowerStateMachine) -> str:
    """Deepest rest state reachable for shutdown decisions (lowest power)."""
    home = device.initial_state
    candidates = [
        name
        for name in device.sleep_states_by_depth(home)
        if device.can_transition(name, home)
        or any(device.can_transition(name, s) for s in device.service_states())
    ]
    if not candidates:
        raise ValueError(f"device {device.name!r} has no usable rest state")
    return min(candidates, key=lambda n: device.state(n).power)


class AlwaysOn(EventPolicy):
    """Never power down; the reference consumer all savings are measured
    against (and the zero-latency-penalty extreme)."""

    name = "always_on"

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        return IdleDecision(target_state=None, timeout=NEVER)

    def decide_batch(self, ctx: BatchIdleContext) -> BatchIdleDecision:
        return _constant_batch(ctx, None, NEVER)


class GreedySleep(EventPolicy):
    """Power down immediately on idleness (maximum shutdown aggression)."""

    name = "greedy"

    def __init__(self, target_state: Optional[str] = None) -> None:
        self._target = target_state

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        return IdleDecision(target_state=target, timeout=0.0)

    def decide_batch(self, ctx: BatchIdleContext) -> BatchIdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        return _constant_batch(ctx, target, 0.0)


class FixedTimeout(EventPolicy):
    """Shut down after ``timeout`` seconds of idleness.

    ``timeout=None`` defaults to the target's break-even time, which makes
    the policy 2-competitive against the offline oracle on any input.
    """

    name = "timeout"

    def __init__(
        self,
        timeout: Optional[float] = None,
        target_state: Optional[str] = None,
    ) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError(f"timeout must be >= 0, got {timeout}")
        self._timeout = timeout
        self._target = target_state

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        timeout = self._timeout
        if timeout is None:
            timeout = ctx.device.break_even_time(target, ctx.device.initial_state)
        return IdleDecision(target_state=target, timeout=timeout)

    def decide_batch(self, ctx: BatchIdleContext) -> BatchIdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        timeout = self._timeout
        if timeout is None:
            timeout = ctx.device.break_even_time(target, ctx.device.initial_state)
        return _constant_batch(ctx, target, timeout)


@dataclass
class _AdaptiveStepStates:
    """Dense per-replica state of R lock-step :class:`AdaptiveTimeout` runs."""

    timeouts: np.ndarray     #: (R,) current timeout per replica
    target_idx: int          #: shared shutdown target (device is shared)
    break_even: float        #: shared break-even time of that target


@dataclass
class _PredictiveStepStates:
    """Dense per-replica state of R lock-step :class:`PredictiveShutdown` runs."""

    predictions: np.ndarray  #: (R,) current idle-length prediction
    target_idx: int
    break_even: float


class AdaptiveTimeout(EventPolicy):
    """Timeout that adapts to the observed idle-length process.

    After an idle period that would have paid for a shutdown the timeout
    shrinks (be more aggressive); after one that would not, it grows.
    Multiplicative adaptation clipped to ``[min_timeout, max_timeout]``.
    """

    name = "adaptive_timeout"

    def __init__(
        self,
        initial_timeout: float,
        target_state: Optional[str] = None,
        grow: float = 1.5,
        shrink: float = 0.7,
        min_timeout: float = 1e-3,
        max_timeout: float = 1e3,
    ) -> None:
        if initial_timeout < 0:
            raise ValueError("initial_timeout must be >= 0")
        if not (grow > 1.0 and 0.0 < shrink < 1.0):
            raise ValueError("need grow > 1 and 0 < shrink < 1")
        if not 0 < min_timeout <= max_timeout:
            raise ValueError("need 0 < min_timeout <= max_timeout")
        self._initial = float(initial_timeout)
        self._timeout = float(initial_timeout)
        self._target = target_state
        self._grow = grow
        self._shrink = shrink
        self._min = min_timeout
        self._max = max_timeout
        self._break_even: Optional[float] = None

    def reset(self) -> None:
        self._timeout = self._initial
        self._break_even = None

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        if self._break_even is None:
            self._break_even = ctx.device.break_even_time(
                target, ctx.device.initial_state
            )
        return IdleDecision(target_state=target, timeout=self._timeout)

    def on_idle_end(self, idle_length: float) -> None:
        if self._break_even is None:
            return
        if idle_length > self._break_even + self._timeout:
            self._timeout = max(self._min, self._timeout * self._shrink)
        elif idle_length < self._break_even:
            self._timeout = min(self._max, self._timeout * self._grow)

    @property
    def current_timeout(self) -> float:
        """The timeout the next idle period will use."""
        return self._timeout

    # -- lock-step cross-replication hooks ----------------------------- #

    def make_step_state(
        self, n: int, device: PowerStateMachine, wait_state: str
    ) -> _AdaptiveStepStates:
        """R fresh timeout estimators as one dense array (external to
        ``self``, so a batched run never touches the instance state)."""
        target = self._target or _deepest_profitable_state(device)
        return _AdaptiveStepStates(
            timeouts=np.full(n, self._initial),
            target_idx=device.state_names.index(target),
            break_even=device.break_even_time(target, device.initial_state),
        )

    def decide_step_batch(
        self, states: _AdaptiveStepStates, ctx: StepBatchContext
    ) -> BatchIdleDecision:
        n = states.timeouts.size
        return BatchIdleDecision(
            target_idx=np.full(n, states.target_idx, dtype=np.int64),
            timeouts=states.timeouts.copy(),
        )

    def end_step_batch(
        self,
        states: _AdaptiveStepStates,
        idle_lengths: np.ndarray,
        active: np.ndarray,
    ) -> None:
        idle = np.where(active, idle_lengths, 0.0)
        timeouts = states.timeouts
        shrink = active & (idle > states.break_even + timeouts)
        grow = active & ~shrink & (idle < states.break_even)
        timeouts[shrink] = np.maximum(self._min, timeouts[shrink] * self._shrink)
        timeouts[grow] = np.minimum(self._max, timeouts[grow] * self._grow)


class PredictiveShutdown(EventPolicy):
    """Hwang & Wu exponential-average idle-length predictor.

    Predicts the next idle length as
    ``pred <- a * last_idle + (1 - a) * pred`` and shuts down *immediately*
    when the prediction exceeds the break-even time (no timeout linger —
    the whole point of prediction is to skip the wait).
    """

    name = "predictive"

    def __init__(
        self,
        smoothing: float = 0.5,
        target_state: Optional[str] = None,
        initial_prediction: float = 0.0,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self._alpha = float(smoothing)
        self._target = target_state
        self._initial_prediction = float(initial_prediction)
        self._prediction = float(initial_prediction)

    def reset(self) -> None:
        self._prediction = self._initial_prediction

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        target = self._target or _deepest_profitable_state(ctx.device)
        break_even = ctx.device.break_even_time(target, ctx.device.initial_state)
        if self._prediction > break_even:
            return IdleDecision(target_state=target, timeout=0.0)
        return IdleDecision(target_state=None, timeout=NEVER)

    def on_idle_end(self, idle_length: float) -> None:
        self._prediction = (
            self._alpha * idle_length + (1.0 - self._alpha) * self._prediction
        )

    @property
    def prediction(self) -> float:
        """Current idle-length prediction."""
        return self._prediction

    # -- lock-step cross-replication hooks ----------------------------- #

    def make_step_state(
        self, n: int, device: PowerStateMachine, wait_state: str
    ) -> _PredictiveStepStates:
        """R fresh predictors as one dense array (external to ``self``)."""
        target = self._target or _deepest_profitable_state(device)
        return _PredictiveStepStates(
            predictions=np.full(n, self._initial_prediction),
            target_idx=device.state_names.index(target),
            break_even=device.break_even_time(target, device.initial_state),
        )

    def decide_step_batch(
        self, states: _PredictiveStepStates, ctx: StepBatchContext
    ) -> BatchIdleDecision:
        sleep = states.predictions > states.break_even
        return BatchIdleDecision(
            target_idx=np.where(sleep, states.target_idx, -1).astype(np.int64),
            timeouts=np.where(sleep, 0.0, NEVER),
        )

    def end_step_batch(
        self,
        states: _PredictiveStepStates,
        idle_lengths: np.ndarray,
        active: np.ndarray,
    ) -> None:
        idle = np.where(active, idle_lengths, 0.0)
        states.predictions[:] = np.where(
            active,
            self._alpha * idle + (1.0 - self._alpha) * states.predictions,
            states.predictions,
        )


class MultiLevelTimeout(EventPolicy):
    """Staged descent: enter deeper states at increasing idle thresholds.

    ``levels`` is a list of ``(threshold_seconds, state_name)`` sorted by
    threshold.  The first level acts as the initial timeout; deeper levels
    are re-armed on each fall (the simulator re-consults the policy only
    at idle start, so this policy plans the *first* descent and relies on
    subsequent idle periods for deeper ones; the common two-level disk
    idle->standby pattern is expressed directly).
    """

    name = "multilevel_timeout"

    def __init__(self, levels: Sequence[Tuple[float, str]]) -> None:
        levels = list(levels)
        if not levels:
            raise ValueError("need at least one (threshold, state) level")
        thresholds = [t for t, _ in levels]
        if thresholds != sorted(thresholds):
            raise ValueError("levels must be sorted by threshold")
        if any(t < 0 for t in thresholds):
            raise ValueError("thresholds must be >= 0")
        self._levels = levels

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        threshold, state = self._levels[0]
        return IdleDecision(target_state=state, timeout=threshold)

    def decide_batch(self, ctx: BatchIdleContext) -> BatchIdleDecision:
        threshold, state = self._levels[0]
        return _constant_batch(ctx, state, threshold)


class OracleShutdown(EventPolicy):
    """Clairvoyant policy: the offline lower bound of every comparison.

    Requires the simulator's ``oracle=True`` mode (the context then
    carries the true next arrival).  Sleeps immediately iff the upcoming
    idle period is longer than the break-even time of the most profitable
    rest state for that length.
    """

    name = "oracle"

    def on_idle(self, ctx: IdleContext) -> IdleDecision:
        if ctx.next_arrival is None:
            # no more arrivals: sleep in the deepest state forever
            return IdleDecision(
                target_state=_deepest_profitable_state(ctx.device), timeout=0.0
            )
        idle_length = ctx.next_arrival - ctx.now
        home = ctx.device.initial_state
        best_state: Optional[str] = None
        best_energy = ctx.device.state(ctx.wait_state).power * idle_length
        for name in ctx.device.sleep_states_by_depth(home):
            if not (
                ctx.device.can_transition(home, name)
                or ctx.device.can_transition(ctx.wait_state, name)
            ):
                continue
            if not ctx.device.can_transition(name, home):
                continue
            energy = ctx.device.idle_energy(name, idle_length, home)
            if energy < best_energy:
                best_energy = energy
                best_state = name
        if best_state is None:
            return IdleDecision(target_state=None, timeout=NEVER)
        return IdleDecision(target_state=best_state, timeout=0.0)

    def decide_batch(self, ctx: BatchIdleContext) -> BatchIdleDecision:
        """All-gaps form of :meth:`on_idle`: per-gap argmin over the same
        candidate roster, same strict-improvement tie-breaking."""
        device, wait, home = ctx.device, ctx.wait_state, ctx.device.initial_state
        names = device.state_names
        n = ctx.gap_starts.size
        target_idx = np.full(n, -1, dtype=np.int64)
        timeouts = np.full(n, NEVER)
        known = ~np.isnan(ctx.next_arrivals)
        if (~known).any():
            # no (visible) next arrival: deepest profitable state, now
            deep = names.index(_deepest_profitable_state(device))
            target_idx[~known] = deep
            timeouts[~known] = 0.0
        if known.any():
            idle = ctx.next_arrivals[known] - ctx.gap_starts[known]
            best_energy = device.state(wait).power * idle
            best_idx = np.full(idle.size, -1, dtype=np.int64)
            for name in device.sleep_states_by_depth(home):
                if not (
                    device.can_transition(home, name)
                    or device.can_transition(wait, name)
                ):
                    continue
                if not device.can_transition(name, home):
                    continue
                rt_energy, rt_latency = device.round_trip(home, name)
                power = device.state(name).power
                energy = rt_energy + power * np.maximum(0.0, idle - rt_latency)
                better = energy < best_energy
                best_energy = np.where(better, energy, best_energy)
                best_idx = np.where(better, names.index(name), best_idx)
            target_idx[known] = best_idx
            timeouts[known] = np.where(best_idx >= 0, 0.0, NEVER)
        return BatchIdleDecision(target_idx=target_idx, timeouts=timeouts)
