"""Reference policies for the slotted environment.

Fixed (non-learning) policies over the exact slotted state space, used as
context lines in figures and as sanity anchors in tests: the always-on
policy defines the energy baseline, the greedy-sleep policy the maximum-
saving / worst-latency extreme, and the threshold policy is the shape the
optimal policy usually takes (sleep when idle and the queue is empty,
wake when the backlog crosses a threshold).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..env.slotted_env import SlottedDPMEnv
from ..mdp import DeterministicPolicy


def _actions_template(env: SlottedDPMEnv) -> np.ndarray:
    """Start from the mandatory action in each state (transition modes
    have exactly one allowed action)."""
    actions = np.empty(env.n_states, dtype=int)
    for state in range(env.n_states):
        actions[state] = env.allowed_actions(state)[0]
    return actions


def always_on_policy(env: SlottedDPMEnv) -> DeterministicPolicy:
    """Stay in the home servicing state forever."""
    home_action = env.mode_space.action_index(env.device.initial_state)
    actions = _actions_template(env)
    for state in range(env.n_states):
        allowed = env.allowed_actions(state)
        if home_action in allowed:
            actions[state] = home_action
    return DeterministicPolicy(actions)


def greedy_sleep_policy(
    env: SlottedDPMEnv, sleep_state: Optional[str] = None
) -> DeterministicPolicy:
    """Sleep whenever the queue is empty; wake as soon as work exists."""
    device = env.device
    if sleep_state is None:
        sleep_state = device.deepest_state()
    sleep_action = env.mode_space.action_index(sleep_state)
    home_action = env.mode_space.action_index(device.initial_state)
    actions = _actions_template(env)
    for state in range(env.n_states):
        allowed = env.allowed_actions(state)
        _, queue = env.decode(state)
        want = sleep_action if queue == 0 else home_action
        if want in allowed:
            actions[state] = want
    return DeterministicPolicy(actions)


def threshold_policy(
    env: SlottedDPMEnv,
    wake_threshold: int = 1,
    sleep_state: Optional[str] = None,
) -> DeterministicPolicy:
    """Sleep on empty queue; wake when the backlog reaches the threshold.

    ``wake_threshold=1`` equals :func:`greedy_sleep_policy`; larger values
    batch requests, trading latency for fewer wake-ups.
    """
    if wake_threshold < 1:
        raise ValueError(f"wake_threshold must be >= 1, got {wake_threshold}")
    device = env.device
    if sleep_state is None:
        sleep_state = device.deepest_state()
    sleep_action = env.mode_space.action_index(sleep_state)
    home_action = env.mode_space.action_index(device.initial_state)
    actions = _actions_template(env)
    for state in range(env.n_states):
        allowed = env.allowed_actions(state)
        mode, queue = env.decode(state)
        if queue >= wake_threshold:
            want = home_action
        elif queue == 0:
            want = sleep_action
        else:
            # between empty and threshold: hold the current mode
            if mode.kind == "steady":
                want = env.mode_space.action_index(mode.state)
            else:
                want = actions[state]
        if want in allowed:
            actions[state] = want
    return DeterministicPolicy(actions)
