"""DPM baseline policies: event-driven classics and slotted references."""

from .event_policies import (
    AdaptiveTimeout,
    AlwaysOn,
    FixedTimeout,
    GreedySleep,
    MultiLevelTimeout,
    OracleShutdown,
    PredictiveShutdown,
)
from .slotted_policies import (
    always_on_policy,
    greedy_sleep_policy,
    threshold_policy,
)

__all__ = [
    "AlwaysOn",
    "GreedySleep",
    "FixedTimeout",
    "AdaptiveTimeout",
    "PredictiveShutdown",
    "MultiLevelTimeout",
    "OracleShutdown",
    "always_on_policy",
    "greedy_sleep_policy",
    "threshold_policy",
]
