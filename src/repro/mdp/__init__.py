"""Finite MDP library: containers, chains, and exact solvers."""

from .dtmc import (
    start_occupancy,
    is_stochastic,
    long_run_occupancy,
    occupancy_weighted,
    stationary_distribution,
)
from .evaluation import (
    average_reward,
    long_run_state_average,
    policy_evaluation,
    policy_occupancy,
)
from .linprog_solver import linear_programming
from .mdp import FiniteMDP, random_mdp
from .policy import (
    DeterministicPolicy,
    greedy_policy,
    induced_chain,
    induced_reward,
)
from .policy_iteration import policy_iteration
from .value_iteration import (
    SolveResult,
    bellman_backup,
    q_from_values,
    value_iteration,
)

__all__ = [
    "FiniteMDP",
    "random_mdp",
    "DeterministicPolicy",
    "greedy_policy",
    "induced_chain",
    "induced_reward",
    "SolveResult",
    "value_iteration",
    "bellman_backup",
    "q_from_values",
    "policy_iteration",
    "linear_programming",
    "policy_evaluation",
    "policy_occupancy",
    "average_reward",
    "long_run_state_average",
    "is_stochastic",
    "stationary_distribution",
    "long_run_occupancy",
    "start_occupancy",
    "occupancy_weighted",
]
