"""Policy containers and helpers shared by all solvers."""

from __future__ import annotations

from typing import Optional

import numpy as np

from .mdp import FiniteMDP


class DeterministicPolicy:
    """A state -> action lookup with validity checking against an MDP."""

    def __init__(self, actions: np.ndarray, mdp: Optional[FiniteMDP] = None) -> None:
        self._actions = np.asarray(actions, dtype=int).copy()
        if self._actions.ndim != 1:
            raise ValueError("actions must be a 1-D array of action indices")
        if mdp is not None:
            if self._actions.shape[0] != mdp.n_states:
                raise ValueError(
                    f"policy covers {self._actions.shape[0]} states, "
                    f"MDP has {mdp.n_states}"
                )
            bad = ~mdp.allowed[np.arange(mdp.n_states), self._actions]
            if bad.any():
                raise ValueError(
                    "policy plays disallowed actions in states "
                    f"{np.nonzero(bad)[0].tolist()}"
                )

    @property
    def actions(self) -> np.ndarray:
        """Copy of the action-index array."""
        return self._actions.copy()

    def __call__(self, state: int) -> int:
        return int(self._actions[state])

    def __len__(self) -> int:
        return int(self._actions.shape[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeterministicPolicy):
            return NotImplemented
        return np.array_equal(self._actions, other._actions)

    def __hash__(self) -> int:  # policies are value objects
        return hash(self._actions.tobytes())

    def agreement(self, other: "DeterministicPolicy") -> float:
        """Fraction of states on which two policies pick the same action."""
        if len(self) != len(other):
            raise ValueError("policies cover different state counts")
        return float(np.mean(self._actions == other._actions))

    def __repr__(self) -> str:
        return f"DeterministicPolicy(n_states={len(self)})"


def greedy_policy(q_values: np.ndarray, allowed: Optional[np.ndarray] = None,
                  mdp: Optional[FiniteMDP] = None) -> DeterministicPolicy:
    """Greedy policy from a Q matrix, restricted to allowed actions."""
    q = np.asarray(q_values, dtype=float)
    if q.ndim != 2:
        raise ValueError("q_values must be (S, A)")
    if allowed is None and mdp is not None:
        allowed = mdp.allowed
    if allowed is not None:
        q = q.copy()
        q[~np.asarray(allowed, dtype=bool)] = -np.inf
    return DeterministicPolicy(np.argmax(q, axis=1), mdp=mdp)


def induced_chain(mdp: FiniteMDP, policy: DeterministicPolicy) -> np.ndarray:
    """Transition matrix of the Markov chain the policy induces."""
    idx = np.arange(mdp.n_states)
    return mdp.transition[idx, policy.actions, :]


def induced_reward(mdp: FiniteMDP, policy: DeterministicPolicy) -> np.ndarray:
    """Per-state expected immediate reward under the policy."""
    idx = np.arange(mdp.n_states)
    return mdp.reward[idx, policy.actions]
