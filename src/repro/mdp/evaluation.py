"""Policy evaluation: discounted values and long-run averages.

``policy_evaluation`` is the inner linear solve of policy iteration;
``average_reward`` / ``long_run_state_average`` convert a policy into the
exact steady-state performance numbers (power, queue, saving ratio) that
the figure reproductions plot as reference lines.
"""

from __future__ import annotations

import numpy as np

from .dtmc import long_run_occupancy, start_occupancy, stationary_distribution
from .mdp import FiniteMDP
from .policy import DeterministicPolicy, induced_chain, induced_reward


def policy_evaluation(
    mdp: FiniteMDP,
    policy: DeterministicPolicy,
    discount: float,
) -> np.ndarray:
    """Exact discounted value of a policy: solve ``(I - b P_pi) V = R_pi``."""
    if not 0.0 <= discount < 1.0:
        raise ValueError(f"discount must be in [0, 1), got {discount}")
    p_pi = induced_chain(mdp, policy)
    r_pi = induced_reward(mdp, policy)
    n = mdp.n_states
    return np.linalg.solve(np.eye(n) - discount * p_pi, r_pi)


def policy_occupancy(
    mdp: FiniteMDP,
    policy: DeterministicPolicy,
    start_state: int = 0,
) -> np.ndarray:
    """Long-run state occupancy of the policy-induced chain.

    Exact and start-state-aware: uses the SCC/absorption decomposition of
    :func:`~repro.mdp.dtmc.start_occupancy`, which handles the reducible
    chains half-trained greedy policies induce (a start-independent
    stationary solve could land in an unreachable recurrent class).
    Falls back to Cesaro power iteration on numerical failure.
    """
    p_pi = induced_chain(mdp, policy)
    try:
        return start_occupancy(p_pi, start_state)
    except (ValueError, np.linalg.LinAlgError):
        start = np.zeros(mdp.n_states)
        start[start_state] = 1.0
        return long_run_occupancy(p_pi, start)


def average_reward(
    mdp: FiniteMDP,
    policy: DeterministicPolicy,
    start_state: int = 0,
) -> float:
    """Exact long-run average reward per step of the policy."""
    pi = policy_occupancy(mdp, policy, start_state)
    return float(pi @ induced_reward(mdp, policy))


def long_run_state_average(
    mdp: FiniteMDP,
    policy: DeterministicPolicy,
    per_pair_values: np.ndarray,
    start_state: int = 0,
) -> float:
    """Long-run average of an arbitrary per-(s, a) quantity under a policy.

    ``per_pair_values`` is ``(S, A)`` — e.g. the expected energy per slot
    or expected queue length tables produced by the exact model builder.
    """
    per_pair_values = np.asarray(per_pair_values, dtype=float)
    if per_pair_values.shape != (mdp.n_states, mdp.n_actions):
        raise ValueError(
            f"per_pair_values must be (S, A) = "
            f"({mdp.n_states}, {mdp.n_actions}), got {per_pair_values.shape}"
        )
    pi = policy_occupancy(mdp, policy, start_state)
    per_state = per_pair_values[np.arange(mdp.n_states), policy.actions]
    return float(pi @ per_state)
