"""Discrete-time Markov chain utilities.

Used to turn "policy + MDP" into long-run performance numbers: the
stationary distribution of the induced chain gives the exact average
power, queue length, and energy-saving ratio of a policy — the flat
"optimal" reference line in the Fig. 1 reproduction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def is_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True if ``matrix`` is row-stochastic within ``tol``."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        return False
    if np.any(matrix < -tol):
        return False
    return bool(np.all(np.abs(matrix.sum(axis=1) - 1.0) <= tol))


def stationary_distribution(matrix: np.ndarray, tol: float = 1e-10) -> np.ndarray:
    """Stationary distribution of a unichain transition matrix.

    Solves ``pi P = pi, sum(pi) = 1`` by least squares on the augmented
    linear system.  Assumes a single recurrent class (unichain) — true for
    every policy-induced chain of the slotted DPM environment because
    Bernoulli arrivals/services randomize all cycles.  For a chain with
    several recurrent classes the returned vector is *one* valid
    stationary distribution; use :func:`long_run_occupancy` when the
    start state matters.

    Raises
    ------
    ValueError
        If ``matrix`` is not square row-stochastic.
    """
    matrix = np.asarray(matrix, dtype=float)
    if not is_stochastic(matrix, tol=1e-6):
        raise ValueError("matrix must be square and row-stochastic")
    n = matrix.shape[0]
    # (P^T - I) pi = 0 with normalization row appended
    a = np.vstack([matrix.T - np.eye(n), np.ones((1, n))])
    b = np.zeros(n + 1)
    b[-1] = 1.0
    pi, *_ = np.linalg.lstsq(a, b, rcond=None)
    pi = np.clip(pi, 0.0, None)
    total = pi.sum()
    if total <= 0:
        raise ValueError("failed to find a stationary distribution")
    pi = pi / total
    residual = np.abs(pi @ matrix - pi).max()
    if residual > 1e-6:
        # fall back to power iteration with Cesaro averaging (periodic or
        # ill-conditioned chains)
        pi = long_run_occupancy(matrix, np.full(n, 1.0 / n))
    return pi


def long_run_occupancy(
    matrix: np.ndarray,
    start: np.ndarray,
    max_iter: int = 200_000,
    tol: float = 1e-12,
) -> np.ndarray:
    """Cesaro-limit state occupancy from a start distribution.

    Power iteration with running average; converges for any finite chain
    (periodic included) to the long-run fraction of time per state.
    """
    matrix = np.asarray(matrix, dtype=float)
    dist = np.asarray(start, dtype=float)
    if dist.shape != (matrix.shape[0],):
        raise ValueError("start distribution has wrong length")
    if abs(dist.sum() - 1.0) > 1e-8 or np.any(dist < 0):
        raise ValueError("start must be a probability distribution")
    avg = dist.copy()
    for k in range(1, max_iter + 1):
        dist = dist @ matrix
        new_avg = avg + (dist - avg) / (k + 1)
        if np.abs(new_avg - avg).max() < tol and k > 100:
            return new_avg / new_avg.sum()
        avg = new_avg
    return avg / avg.sum()


def start_occupancy(
    matrix: np.ndarray,
    start_state: int,
    prob_tol: float = 1e-12,
) -> np.ndarray:
    """Exact long-run occupancy from a given start state, reducible chains
    included.

    A policy-induced chain need not be unichain: a half-trained greedy
    policy can create absorbing "trap" classes that are unreachable from
    the start state, and the start-independent stationary solve may pick
    the wrong class.  This routine is exact for any finite chain:

    1. decompose the transition graph into strongly connected components;
    2. identify the *closed* (recurrent) classes;
    3. solve the absorption probabilities from the start state into each
       closed class (linear system on the transient states);
    4. solve the stationary distribution inside each closed class;
    5. mix the class stationary distributions by absorption probability.

    Returns the long-run fraction of time spent in each state.
    """
    import networkx as nx

    matrix = np.asarray(matrix, dtype=float)
    if not is_stochastic(matrix, tol=1e-6):
        raise ValueError("matrix must be square and row-stochastic")
    n = matrix.shape[0]
    if not 0 <= start_state < n:
        raise ValueError(f"start_state out of range: {start_state}")

    support = matrix > prob_tol
    graph = nx.from_numpy_array(support.astype(int), create_using=nx.DiGraph)
    sccs = list(nx.strongly_connected_components(graph))

    # closed class = no edge leaving the component
    closed: list = []
    component_of = np.empty(n, dtype=int)
    for idx, comp in enumerate(sccs):
        for node in comp:
            component_of[node] = idx
    for idx, comp in enumerate(sccs):
        comp_list = sorted(comp)
        rows = support[np.ix_(comp_list, comp_list)]
        leaves = support[comp_list].sum() - rows.sum()
        if leaves == 0:
            closed.append(comp_list)

    # stationary distribution inside each closed class
    class_stationary = []
    for comp_list in closed:
        sub = matrix[np.ix_(comp_list, comp_list)]
        sub = sub / sub.sum(axis=1, keepdims=True)  # renormalize numerics
        pi_sub = stationary_distribution(sub)
        class_stationary.append(pi_sub)

    closed_states = set()
    for comp_list in closed:
        closed_states.update(comp_list)

    # if the start state already lives in a closed class, we are done
    for comp_list, pi_sub in zip(closed, class_stationary):
        if start_state in comp_list:
            out = np.zeros(n)
            out[comp_list] = pi_sub
            return out

    # absorption probabilities from the transient states
    transient = sorted(set(range(n)) - closed_states)
    t_index = {s: i for i, s in enumerate(transient)}
    q = matrix[np.ix_(transient, transient)]
    lhs = np.eye(len(transient)) - q
    out = np.zeros(n)
    start_row = t_index[start_state]
    for comp_list, pi_sub in zip(closed, class_stationary):
        r = matrix[np.ix_(transient, comp_list)].sum(axis=1)
        absorb = np.linalg.solve(lhs, r)
        prob = float(absorb[start_row])
        if prob > 0:
            out[comp_list] += prob * pi_sub
    total = out.sum()
    if total <= 0:
        raise ValueError("no closed class reachable from the start state")
    return out / total


def occupancy_weighted(pi: np.ndarray, values: np.ndarray) -> float:
    """Convenience: long-run average of per-state ``values`` under ``pi``."""
    pi = np.asarray(pi, dtype=float)
    values = np.asarray(values, dtype=float)
    if pi.shape != values.shape:
        raise ValueError("pi and values must have the same shape")
    return float(pi @ values)
