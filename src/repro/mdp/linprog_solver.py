"""Linear-programming policy optimization — the model-based baseline.

This is the optimizer the paper singles out: "the widely applied linear
programming policy optimization runs extremely slow" (even on a
Pentium III 800 MHz).  We implement the standard primal LP for discounted
MDPs —

    minimize    sum_s V(s)
    subject to  V(s) >= R(s, a) + beta * sum_s' P(s'|s, a) V(s')
                for every allowed pair (s, a)

— via ``scipy.optimize.linprog`` (HiGHS), extract the greedy policy from
the optimal values, and let the CLAIM-EFF benchmark time it against a
single Q-table update.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .mdp import FiniteMDP
from .policy import greedy_policy
from .value_iteration import SolveResult, q_from_values


def linear_programming(
    mdp: FiniteMDP,
    discount: float,
) -> SolveResult:
    """Solve the discounted MDP exactly with the primal LP.

    Raises
    ------
    ValueError
        For a discount outside [0, 1).
    RuntimeError
        If the LP solver reports failure.
    """
    if not 0.0 <= discount < 1.0:
        raise ValueError(f"discount must be in [0, 1), got {discount}")
    n_states, n_actions = mdp.n_states, mdp.n_actions

    # Constraint rows: (beta * P(.|s,a) - e_s) . V <= -R(s,a) per allowed pair.
    pairs = np.argwhere(mdp.allowed)
    rows = []
    rhs = np.empty(len(pairs))
    for i, (s, a) in enumerate(pairs):
        row = discount * mdp.transition[s, a]
        row = row.copy()
        row[s] -= 1.0
        rows.append(row)
        rhs[i] = -mdp.reward[s, a]
    a_ub = sparse.csr_matrix(np.asarray(rows))
    cost = np.ones(n_states)

    result = linprog(
        c=cost,
        A_ub=a_ub,
        b_ub=rhs,
        bounds=[(None, None)] * n_states,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(f"LP policy optimization failed: {result.message}")
    values = np.asarray(result.x, dtype=float)
    q = q_from_values(mdp, values, discount)
    policy = greedy_policy(q, mdp=mdp)
    residual = float(np.abs(np.max(q, axis=1) - values).max())
    iterations = int(getattr(result, "nit", 0))
    return SolveResult(values, policy, iterations, residual)
