"""Howard policy iteration for discounted finite MDPs.

Exact policy evaluation (direct linear solve) alternated with greedy
improvement.  Terminates in finitely many steps at an optimal policy;
used as the gold-standard reference the other solvers are tested against.
"""

from __future__ import annotations

import numpy as np

from .evaluation import policy_evaluation
from .mdp import FiniteMDP
from .policy import DeterministicPolicy, greedy_policy
from .value_iteration import SolveResult, q_from_values


def _initial_policy(mdp: FiniteMDP) -> DeterministicPolicy:
    """Any valid starting policy: the first allowed action per state."""
    actions = np.argmax(mdp.allowed, axis=1)
    return DeterministicPolicy(actions, mdp=mdp)


def policy_iteration(
    mdp: FiniteMDP,
    discount: float,
    max_iter: int = 1_000,
) -> SolveResult:
    """Solve the MDP by Howard policy iteration.

    Raises
    ------
    ValueError
        For a discount outside [0, 1).
    RuntimeError
        If no fixed point is reached within ``max_iter`` improvement
        rounds (cannot happen for a finite MDP unless ``max_iter`` is
        tiny, since each round strictly improves).
    """
    if not 0.0 <= discount < 1.0:
        raise ValueError(f"discount must be in [0, 1), got {discount}")
    policy = _initial_policy(mdp)
    values = policy_evaluation(mdp, policy, discount)
    for it in range(1, max_iter + 1):
        q = q_from_values(mdp, values, discount)
        improved = greedy_policy(q, mdp=mdp)
        # keep the incumbent action on ties to guarantee termination
        incumbent_q = q[np.arange(mdp.n_states), policy.actions]
        best_q = q[np.arange(mdp.n_states), improved.actions]
        keep = incumbent_q >= best_q - 1e-12
        actions = np.where(keep, policy.actions, improved.actions)
        new_policy = DeterministicPolicy(actions, mdp=mdp)
        new_values = policy_evaluation(mdp, new_policy, discount)
        residual = float(np.abs(new_values - values).max())
        if new_policy == policy:
            return SolveResult(new_values, new_policy, it, residual)
        policy, values = new_policy, new_values
    raise RuntimeError(f"policy iteration did not converge in {max_iter} rounds")
