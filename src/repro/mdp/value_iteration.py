"""Value iteration for discounted finite MDPs.

The fixed-point iteration on the paper's Eqn. 1 (Bellman optimality):
``J*(s) = max_a E[c(s, a, s') + beta * J*(s')]``.  Serves both as an
optimal-policy reference and as the cheap member of the offline-solver
family timed in the CLAIM-EFF benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .mdp import FiniteMDP
from .policy import DeterministicPolicy, greedy_policy


@dataclass(frozen=True)
class SolveResult:
    """Output of an exact MDP solver."""

    values: np.ndarray              #: optimal state values J*
    policy: DeterministicPolicy     #: an optimal deterministic policy
    iterations: int                 #: solver iterations used
    residual: float                 #: final Bellman residual (sup-norm)


def bellman_backup(mdp: FiniteMDP, values: np.ndarray, discount: float) -> np.ndarray:
    """One Bellman optimality backup; returns the updated value vector."""
    q = q_from_values(mdp, values, discount)
    return np.max(q, axis=1)


def q_from_values(mdp: FiniteMDP, values: np.ndarray, discount: float) -> np.ndarray:
    """Q(s, a) = R(s, a) + discount * sum_s' P(s'|s, a) V(s').

    Disallowed pairs get ``-inf`` so downstream maxima ignore them.
    """
    values = np.asarray(values, dtype=float)
    if values.shape != (mdp.n_states,):
        raise ValueError(f"values must have shape ({mdp.n_states},)")
    q = mdp.reward + discount * (mdp.transition @ values)
    q[~mdp.allowed] = -np.inf
    return q


def value_iteration(
    mdp: FiniteMDP,
    discount: float,
    tol: float = 1e-8,
    max_iter: int = 100_000,
) -> SolveResult:
    """Solve the MDP by value iteration.

    Stops when the sup-norm Bellman residual drops below ``tol`` (which
    bounds the value suboptimality by ``tol * discount / (1 - discount)``).

    Raises
    ------
    ValueError
        For a discount outside [0, 1).
    RuntimeError
        If ``max_iter`` sweeps do not reach ``tol``.
    """
    if not 0.0 <= discount < 1.0:
        raise ValueError(f"discount must be in [0, 1), got {discount}")
    values = np.zeros(mdp.n_states)
    for it in range(1, max_iter + 1):
        new_values = bellman_backup(mdp, values, discount)
        residual = float(np.abs(new_values - values).max())
        values = new_values
        if residual < tol:
            policy = greedy_policy(
                q_from_values(mdp, values, discount), mdp=mdp
            )
            return SolveResult(values, policy, it, residual)
    raise RuntimeError(
        f"value iteration did not converge in {max_iter} sweeps "
        f"(residual {residual:.3e} > tol {tol:.3e})"
    )
