"""Finite discrete-time Markov decision process container.

The paper frames DPM as a DTMDP (its Eqn. 1 is the Bellman optimality
equation) and contrasts two routes to the optimal policy:

- the *model-based* route — know ``P`` and ``R`` explicitly and run an
  offline optimizer (linear programming in the papers it cites), and
- the *model-free* route — Q-learning on sampled transitions (Q-DPM).

This module is the explicit-model half: a validated ``(P, R, allowed)``
triple that the solvers in this package consume and that
:mod:`repro.env.model_builder` produces exactly for the slotted DPM
environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

#: Tolerance used when checking that probability rows sum to one.
_PROB_TOL = 1e-9


@dataclass
class FiniteMDP:
    """An explicit finite MDP.

    Attributes
    ----------
    transition:
        ``(S, A, S)`` array; ``transition[s, a]`` is the next-state
        distribution of playing ``a`` in ``s``.  Rows of *disallowed*
        pairs must be all zero.
    reward:
        ``(S, A)`` array of expected immediate rewards.
    allowed:
        ``(S, A)`` boolean mask of playable actions; every state needs at
        least one allowed action.
    state_labels, action_labels:
        Optional human-readable names used in reports.
    """

    transition: np.ndarray
    reward: np.ndarray
    allowed: np.ndarray
    state_labels: Optional[Sequence[str]] = None
    action_labels: Optional[Sequence[str]] = None

    def __post_init__(self) -> None:
        self.transition = np.asarray(self.transition, dtype=float)
        self.reward = np.asarray(self.reward, dtype=float)
        self.allowed = np.asarray(self.allowed, dtype=bool)
        if self.transition.ndim != 3 or (
            self.transition.shape[0] != self.transition.shape[2]
        ):
            raise ValueError(
                f"transition must be (S, A, S), got {self.transition.shape}"
            )
        s, a, _ = self.transition.shape
        if self.reward.shape != (s, a):
            raise ValueError(
                f"reward must be (S, A) = ({s}, {a}), got {self.reward.shape}"
            )
        if self.allowed.shape != (s, a):
            raise ValueError(
                f"allowed must be (S, A) = ({s}, {a}), got {self.allowed.shape}"
            )
        if np.any(self.transition < -_PROB_TOL):
            raise ValueError("transition probabilities must be >= 0")
        if not self.allowed.any(axis=1).all():
            bad = np.nonzero(~self.allowed.any(axis=1))[0]
            raise ValueError(f"states with no allowed action: {bad.tolist()}")
        row_sums = self.transition.sum(axis=2)
        if np.any(np.abs(row_sums[self.allowed] - 1.0) > 1e-6):
            raise ValueError("allowed (s, a) transition rows must sum to 1")
        if np.any(np.abs(row_sums[~self.allowed]) > 1e-6):
            raise ValueError("disallowed (s, a) transition rows must be all-zero")
        if self.state_labels is not None and len(self.state_labels) != s:
            raise ValueError("state_labels length mismatch")
        if self.action_labels is not None and len(self.action_labels) != a:
            raise ValueError("action_labels length mismatch")

    @property
    def n_states(self) -> int:
        """Number of states S."""
        return self.transition.shape[0]

    @property
    def n_actions(self) -> int:
        """Number of actions A (global action set; see ``allowed``)."""
        return self.transition.shape[1]

    def allowed_actions(self, state: int) -> np.ndarray:
        """Indices of actions playable in ``state``."""
        return np.nonzero(self.allowed[state])[0]

    def masked_reward(self) -> np.ndarray:
        """Reward with ``-inf`` at disallowed pairs (for max-reductions)."""
        out = self.reward.copy()
        out[~self.allowed] = -np.inf
        return out

    def memory_bytes(self) -> dict:
        """Footprint report used by the CLAIM-MEM experiment.

        Returns the bytes needed to *store the model* (transition tensor +
        reward matrix) versus the bytes a Q-table over the same state-action
        space needs.  The gap is the paper's "a little bit memory" claim.
        """
        return {
            "model_bytes": self.transition.nbytes + self.reward.nbytes,
            "q_table_bytes": self.reward.nbytes,
            "n_states": self.n_states,
            "n_actions": self.n_actions,
        }


def random_mdp(
    n_states: int,
    n_actions: int,
    rng: np.random.Generator,
    reward_scale: float = 1.0,
    sparsity: float = 0.0,
) -> FiniteMDP:
    """Generate a random dense MDP (test/benchmark fixture).

    ``sparsity`` in [0, 1) disallows roughly that fraction of actions
    (always keeping at least one per state).
    """
    if n_states < 1 or n_actions < 1:
        raise ValueError("need n_states >= 1 and n_actions >= 1")
    if not 0 <= sparsity < 1:
        raise ValueError("sparsity must be in [0, 1)")
    raw = rng.random((n_states, n_actions, n_states)) + 1e-6
    transition = raw / raw.sum(axis=2, keepdims=True)
    reward = rng.normal(0.0, reward_scale, size=(n_states, n_actions))
    allowed = rng.random((n_states, n_actions)) >= sparsity
    for s in range(n_states):
        if not allowed[s].any():
            allowed[s, int(rng.integers(n_actions))] = True
    transition = transition * allowed[:, :, None]
    return FiniteMDP(transition=transition, reward=reward, allowed=allowed)
