"""Observation mappings: what the Power Manager actually sees.

The paper's Q-table is indexed by an |s| x |a| encoding of the observed
system state.  How much of the true environment state the PM observes is
a design choice with a cost/performance trade-off (the ablation bench
``test_ablation_observation``):

- :class:`FullObservation` — the PM sees the exact environment state
  (mode incl. transition countdowns, exact queue).  Q-learning can then
  converge to the true optimum (Fig. 1 protocol).
- :class:`QueueBucketObservation` — queue lengths are bucketed and
  transition countdowns collapsed; a smaller table that learns faster but
  may lose optimality.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from .slotted_env import SlottedDPMEnv


class ObservationMap(ABC):
    """Maps environment state indices to (smaller) observation indices."""

    @property
    @abstractmethod
    def n_observations(self) -> int:
        """Size of the observation space."""

    @abstractmethod
    def observe(self, state: int) -> int:
        """Observation index for environment state ``state``."""

    @abstractmethod
    def label(self, observation: int) -> str:
        """Readable name for an observation index."""


class FullObservation(ObservationMap):
    """Identity map: the PM observes the exact environment state."""

    def __init__(self, env: SlottedDPMEnv) -> None:
        self._env = env

    @property
    def n_observations(self) -> int:
        return self._env.n_states

    def observe(self, state: int) -> int:
        if not 0 <= state < self._env.n_states:
            raise ValueError(f"state index out of range: {state}")
        return state

    def label(self, observation: int) -> str:
        return self._env.state_label(observation)


class QueueBucketObservation(ObservationMap):
    """Coarse map: steady-state-or-inflight mode x bucketed queue.

    All countdown modes of one transition collapse onto a single
    "in-flight toward X" pseudo-mode, and the queue is reduced to bucket
    indices by ``boundaries`` (e.g. ``[1, 4]`` gives buckets
    {0}, {1..3}, {4..cap}).
    """

    def __init__(self, env: SlottedDPMEnv, boundaries: Sequence[int] = (1, 4)) -> None:
        bounds = list(boundaries)
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("boundaries must be strictly increasing")
        if bounds and (bounds[0] < 1 or bounds[-1] > env.queue_capacity):
            raise ValueError(
                f"boundaries must lie in [1, queue_capacity={env.queue_capacity}]"
            )
        self._env = env
        self._bounds = bounds
        # collapse countdown modes: key = (kind, state, source)
        self._mode_groups: List[tuple] = []
        self._group_of_mode: List[int] = []
        seen = {}
        for mode in env.mode_space.modes:
            key = (mode.kind, mode.state, mode.source)
            if key not in seen:
                seen[key] = len(self._mode_groups)
                self._mode_groups.append(key)
            self._group_of_mode.append(seen[key])
        self._n_buckets = len(bounds) + 1

    @property
    def n_observations(self) -> int:
        return len(self._mode_groups) * self._n_buckets

    def _bucket(self, queue: int) -> int:
        for i, b in enumerate(self._bounds):
            if queue < b:
                return i
        return len(self._bounds)

    def observe(self, state: int) -> int:
        mode, queue = self._env.decode(state)
        mode_index = self._env.mode_space.modes.index(mode)
        group = self._group_of_mode[mode_index]
        return group * self._n_buckets + self._bucket(queue)

    def label(self, observation: int) -> str:
        group, bucket = divmod(observation, self._n_buckets)
        kind, state, source = self._mode_groups[group]
        mode_name = state if kind == "steady" else f"{source}->{state}"
        lo = 0 if bucket == 0 else self._bounds[bucket - 1]
        hi = (
            self._bounds[bucket] - 1
            if bucket < len(self._bounds)
            else self._env.queue_capacity
        )
        return f"{mode_name}|q={lo}..{hi}"
