"""Slotted DPM environment and its exact DTMDP model."""

from .model_builder import DPMModel, PolicyPerformance, build_dpm_model
from .observation import FullObservation, ObservationMap, QueueBucketObservation
from .slotted_env import EnvTotals, SlottedDPMEnv, StepInfo
from .states import DenseStepTables, Mode, ModeSpace, StepEffect

__all__ = [
    "Mode",
    "ModeSpace",
    "StepEffect",
    "DenseStepTables",
    "SlottedDPMEnv",
    "StepInfo",
    "EnvTotals",
    "DPMModel",
    "PolicyPerformance",
    "build_dpm_model",
    "ObservationMap",
    "FullObservation",
    "QueueBucketObservation",
]
