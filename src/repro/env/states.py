"""Slot-level mode enumeration of a device power model.

The slotted DTMDP state is ``(mode, queue)``.  The *mode* component is
either a steady power state or an in-flight transition with a countdown
of remaining slots; this module enumerates all modes of a
:class:`~repro.device.PowerStateMachine` under a given slot length and
precomputes, for every (mode, action) pair, the deterministic part of one
slot: next mode, energy charged, and whether requests are serviced this
slot.  The stochastic part (Bernoulli arrival and service completion)
lives in the environment / model builder.

Actions are global: one "go to power state X" command per device power
state.  In a steady mode the allowed commands are "stay" plus every state
with a direct transition edge; in a transition mode the device is
committed — the only allowed command is the transition's target (a
"continue" in the paper's terms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..device import PowerStateMachine


@dataclass(frozen=True)
class Mode:
    """One mode: a steady power state, or a transition in flight.

    ``kind`` is ``"steady"`` or ``"trans"``.  For transitions, ``source``
    / ``target`` name the edge and ``remaining`` >= 1 counts the slots
    still needed (including none of the already-spent ones).
    """

    kind: str
    state: str
    source: str = ""
    remaining: int = 0

    @property
    def label(self) -> str:
        """Human-readable mode name used in reports."""
        if self.kind == "steady":
            return self.state
        return f"{self.source}->{self.state}[{self.remaining}]"


@dataclass(frozen=True)
class StepEffect:
    """Deterministic outcome of playing an action for one slot."""

    next_mode: int      #: mode index after the slot
    energy: float       #: energy charged to this slot (joules)
    can_service: bool   #: whether a request may complete this slot


@dataclass(frozen=True)
class DenseStepTables:
    """The mode-space step function as dense ``(n_modes, n_actions)`` arrays.

    This is the batched runtime's view of :class:`ModeSpace`: every
    (mode, action) pair resolved to flat arrays so one ``step`` over B
    replicas is pure fancy indexing instead of B dict lookups.  Disallowed
    pairs hold ``next_mode = -1`` / ``energy = 0`` / ``can_service =
    False`` and are excluded by ``allowed``.
    """

    next_mode: np.ndarray       #: int64 (M, A); -1 where disallowed
    energy: np.ndarray          #: float64 (M, A)
    can_service: np.ndarray     #: bool (M, A)
    allowed: np.ndarray         #: bool (M, A) action-legality mask
    allowed_padded: np.ndarray  #: int64 (M, max_degree) allowed actions, row-padded
    n_allowed: np.ndarray       #: int64 (M,) valid prefix length of each padded row


class ModeSpace:
    """All modes of a device at a given slot length, with step effects.

    Parameters
    ----------
    device:
        The device power model.
    slot_length:
        Slot duration in seconds; transition latencies are discretized to
        ``ceil(latency / slot_length)`` slots (0 slots = instantaneous).
    """

    def __init__(self, device: PowerStateMachine, slot_length: float = 1.0) -> None:
        if slot_length <= 0:
            raise ValueError(f"slot_length must be > 0, got {slot_length}")
        self.device = device
        self.slot_length = float(slot_length)

        #: action a = "command power state action_names[a]"
        self.action_names: List[str] = device.state_names
        self._action_index: Dict[str, int] = {
            name: i for i, name in enumerate(self.action_names)
        }

        self._modes: List[Mode] = []
        self._mode_index: Dict[Tuple, int] = {}
        for name in device.state_names:
            self._add_mode(Mode("steady", name))
        # countdown modes for multi-slot transitions: remaining = 1..L-1
        self._latency_slots: Dict[Tuple[str, str], int] = {}
        for tr in device.transitions:
            n_slots = int(math.ceil(tr.latency / self.slot_length - 1e-12))
            self._latency_slots[tr.key] = n_slots
            for remaining in range(1, n_slots):
                self._add_mode(Mode("trans", tr.target, tr.source, remaining))

        self._effects: Dict[Tuple[int, int], StepEffect] = {}
        self._allowed: List[List[int]] = [[] for _ in self._modes]
        self._build_effects()
        self._dense: Optional[DenseStepTables] = None

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    def _add_mode(self, mode: Mode) -> None:
        key = (mode.kind, mode.state, mode.source, mode.remaining)
        self._mode_index[key] = len(self._modes)
        self._modes.append(mode)

    def _index_of(self, mode: Mode) -> int:
        return self._mode_index[(mode.kind, mode.state, mode.source, mode.remaining)]

    def _steady_index(self, name: str) -> int:
        return self._mode_index[("steady", name, "", 0)]

    def _per_slot_transition_energy(self, source: str, target: str) -> float:
        tr = self.device.transition(source, target)
        n_slots = self._latency_slots[(source, target)]
        if n_slots == 0:
            return tr.energy
        return tr.energy / n_slots

    def _build_effects(self) -> None:
        slot = self.slot_length
        for m_idx, mode in enumerate(self._modes):
            if mode.kind == "steady":
                here = self.device.state(mode.state)
                stay_action = self._action_index[mode.state]
                self._allowed[m_idx].append(stay_action)
                self._effects[(m_idx, stay_action)] = StepEffect(
                    next_mode=m_idx,
                    energy=here.power * slot,
                    can_service=here.can_service,
                )
                for target in self.device.targets_from(mode.state):
                    action = self._action_index[target]
                    n_slots = self._latency_slots[(mode.state, target)]
                    per_slot_energy = self._per_slot_transition_energy(
                        mode.state, target
                    )
                    if n_slots == 0:
                        # instantaneous switch: the slot is spent in the target
                        dest = self.device.state(target)
                        effect = StepEffect(
                            next_mode=self._steady_index(target),
                            energy=per_slot_energy + dest.power * slot,
                            can_service=dest.can_service,
                        )
                    elif n_slots == 1:
                        effect = StepEffect(
                            next_mode=self._steady_index(target),
                            energy=per_slot_energy,
                            can_service=False,
                        )
                    else:
                        nxt = Mode("trans", target, mode.state, n_slots - 1)
                        effect = StepEffect(
                            next_mode=self._index_of(nxt),
                            energy=per_slot_energy,
                            can_service=False,
                        )
                    self._allowed[m_idx].append(action)
                    self._effects[(m_idx, action)] = effect
            else:
                # transition in flight: only "continue"
                action = self._action_index[mode.state]
                per_slot_energy = self._per_slot_transition_energy(
                    mode.source, mode.state
                )
                if mode.remaining == 1:
                    next_mode = self._steady_index(mode.state)
                else:
                    nxt = Mode("trans", mode.state, mode.source, mode.remaining - 1)
                    next_mode = self._index_of(nxt)
                self._allowed[m_idx].append(action)
                self._effects[(m_idx, action)] = StepEffect(
                    next_mode=next_mode,
                    energy=per_slot_energy,
                    can_service=False,
                )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    @property
    def n_modes(self) -> int:
        """Total number of modes (steady + countdown)."""
        return len(self._modes)

    @property
    def n_actions(self) -> int:
        """Size of the global action set (= number of power states)."""
        return len(self.action_names)

    @property
    def modes(self) -> List[Mode]:
        """All modes, index order."""
        return list(self._modes)

    def mode(self, index: int) -> Mode:
        """Mode at ``index``."""
        return self._modes[index]

    def steady_mode_index(self, state_name: str) -> int:
        """Mode index of the steady power state ``state_name``."""
        self.device.state(state_name)
        return self._steady_index(state_name)

    def action_index(self, state_name: str) -> int:
        """Action index commanding power state ``state_name``."""
        try:
            return self._action_index[state_name]
        except KeyError:
            raise KeyError(f"unknown power state {state_name!r}")

    def allowed_actions(self, mode_index: int) -> List[int]:
        """Allowed action indices in the given mode."""
        return list(self._allowed[mode_index])

    def effect(self, mode_index: int, action: int) -> StepEffect:
        """Deterministic slot outcome of (mode, action).

        Raises
        ------
        KeyError
            If the action is not allowed in the mode.
        """
        try:
            return self._effects[(mode_index, action)]
        except KeyError:
            mode = self._modes[mode_index]
            raise KeyError(
                f"action {self.action_names[action]!r} not allowed in mode "
                f"{mode.label!r}"
            )

    def latency_slots(self, source: str, target: str) -> int:
        """Discretized latency (slots) of the edge ``source -> target``."""
        return self._latency_slots[(source, target)]

    def dense_tables(self) -> DenseStepTables:
        """Dense-array form of the step function (cached after first call).

        ``allowed_padded`` rows keep the *same order* as
        :meth:`allowed_actions` (stay-action first, then targets), so
        order-sensitive consumers — uniform exploration draws, tie-break
        scans — see exactly what the scalar path sees.
        """
        if self._dense is None:
            m, a = self.n_modes, self.n_actions
            next_mode = np.full((m, a), -1, dtype=np.int64)
            energy = np.zeros((m, a), dtype=np.float64)
            can_service = np.zeros((m, a), dtype=bool)
            allowed = np.zeros((m, a), dtype=bool)
            max_degree = max(len(acts) for acts in self._allowed)
            allowed_padded = np.zeros((m, max_degree), dtype=np.int64)
            n_allowed = np.zeros(m, dtype=np.int64)
            for mode_idx, acts in enumerate(self._allowed):
                n_allowed[mode_idx] = len(acts)
                for k, action in enumerate(acts):
                    effect = self._effects[(mode_idx, action)]
                    next_mode[mode_idx, action] = effect.next_mode
                    energy[mode_idx, action] = effect.energy
                    can_service[mode_idx, action] = effect.can_service
                    allowed[mode_idx, action] = True
                    allowed_padded[mode_idx, k] = action
            for arr in (next_mode, energy, can_service, allowed,
                        allowed_padded, n_allowed):
                arr.setflags(write=False)
            self._dense = DenseStepTables(
                next_mode=next_mode,
                energy=energy,
                can_service=can_service,
                allowed=allowed,
                allowed_padded=allowed_padded,
                n_allowed=n_allowed,
            )
        return self._dense

    def __repr__(self) -> str:
        return (
            f"ModeSpace({self.device.name!r}, slot={self.slot_length}, "
            f"modes={self.n_modes}, actions={self.n_actions})"
        )
