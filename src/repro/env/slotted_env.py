"""The slotted DPM environment: device + request queue + arrival schedule.

This is the system the Power Manager controls.  Each slot:

1. the PM commands a power state (the action);
2. the deterministic slot effect applies (mode change / transition
   progress / residence energy — see :class:`~repro.env.states.ModeSpace`);
3. if the post-effect slot can service and the queue is non-empty, one
   request completes with probability ``p_serve``;
4. a new request arrives with probability ``schedule.rate_at(slot)``;
   arrivals into a full queue are dropped (counted as losses);
5. the reward is ``-(energy) - perf_weight * queue_after -
   loss_penalty * losses_this_slot``.

With a :class:`~repro.workload.ConstantRate` schedule this process *is*
the finite DTMDP that :mod:`repro.env.model_builder` writes down exactly —
so the analytically optimal policy of Fig. 1 and the Q-DPM agent see the
same world.  Nonstationary schedules realize the Fig. 2 setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..device import PowerStateMachine
from ..workload.nonstationary import ConstantRate, RateSchedule
from .states import Mode, ModeSpace


@dataclass
class StepInfo:
    """Per-slot diagnostics returned by :meth:`SlottedDPMEnv.step`."""

    slot: int            #: slot index just simulated (0-based)
    energy: float        #: energy charged this slot
    queue: int           #: queue length at slot end
    arrived: bool        #: a request arrived this slot
    served: bool         #: a request completed this slot
    lost: bool           #: an arrival was dropped (queue full)
    mode_label: str      #: mode at slot end
    arrival_rate: float  #: schedule rate used this slot


@dataclass
class EnvTotals:
    """Cumulative counters over an episode (reset on :meth:`reset`)."""

    slots: int = 0
    energy: float = 0.0
    queue_integral: float = 0.0
    arrivals: int = 0
    completions: int = 0
    losses: int = 0

    def mean_power(self, slot_length: float) -> float:
        """Average power over the episode (watts)."""
        if self.slots == 0:
            return 0.0
        return self.energy / (self.slots * slot_length)

    def mean_queue(self) -> float:
        """Time-average queue length."""
        if self.slots == 0:
            return 0.0
        return self.queue_integral / self.slots

    def mean_latency(self, slot_length: float) -> float:
        """Mean request latency via Little's law (seconds).

        Uses the *accepted* arrival rate; returns 0 when nothing arrived.
        """
        accepted = self.arrivals - self.losses
        if accepted <= 0 or self.slots == 0:
            return 0.0
        rate = accepted / (self.slots * slot_length)
        return self.mean_queue() / rate

    def loss_rate(self) -> float:
        """Fraction of arrivals dropped."""
        if self.arrivals == 0:
            return 0.0
        return self.losses / self.arrivals


class SlottedDPMEnv:
    """Discrete-time power-management environment.

    Parameters
    ----------
    device:
        Power model of the managed component.
    schedule:
        Per-slot Bernoulli arrival probability (may be nonstationary).
    slot_length:
        Slot duration in seconds.
    queue_capacity:
        Maximum backlog; arrivals beyond it are dropped.
    p_serve:
        Probability that a pending request completes in a servicing slot.
    perf_weight:
        Reward weight on the end-of-slot queue length (latency proxy).
    loss_penalty:
        Additional penalty per dropped request.
    seed:
        Seed for the internal random generator (reproducible episodes).
    """

    def __init__(
        self,
        device: PowerStateMachine,
        schedule: Optional[RateSchedule] = None,
        slot_length: float = 1.0,
        queue_capacity: int = 8,
        p_serve: float = 1.0,
        perf_weight: float = 0.5,
        loss_penalty: float = 2.0,
        seed: Optional[int] = None,
    ) -> None:
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if not 0.0 < p_serve <= 1.0:
            raise ValueError(f"p_serve must be in (0, 1], got {p_serve}")
        if perf_weight < 0 or loss_penalty < 0:
            raise ValueError("perf_weight and loss_penalty must be >= 0")
        self.device = device
        self.mode_space = ModeSpace(device, slot_length)
        self.schedule = schedule if schedule is not None else ConstantRate(0.1)
        self.slot_length = float(slot_length)
        self.queue_capacity = int(queue_capacity)
        self.p_serve = float(p_serve)
        self.perf_weight = float(perf_weight)
        self.loss_penalty = float(loss_penalty)
        self._rng = np.random.default_rng(seed)

        self._mode: int = self.mode_space.steady_mode_index(device.initial_state)
        self._queue: int = 0
        self._slot: int = 0
        self.totals = EnvTotals()

    # ------------------------------------------------------------------ #
    # state indexing
    # ------------------------------------------------------------------ #

    @property
    def n_states(self) -> int:
        """Total state count: modes x queue levels."""
        return self.mode_space.n_modes * (self.queue_capacity + 1)

    @property
    def n_actions(self) -> int:
        """Global action count (one per device power state)."""
        return self.mode_space.n_actions

    @property
    def action_names(self) -> List[str]:
        """Names of the global actions ("command state X")."""
        return list(self.mode_space.action_names)

    def encode(self, mode_index: int, queue: int) -> int:
        """Flatten (mode, queue) into a state index."""
        if not 0 <= queue <= self.queue_capacity:
            raise ValueError(f"queue out of range: {queue}")
        if not 0 <= mode_index < self.mode_space.n_modes:
            raise ValueError(f"mode index out of range: {mode_index}")
        return mode_index * (self.queue_capacity + 1) + queue

    def decode(self, state: int) -> Tuple[Mode, int]:
        """Inverse of :meth:`encode`: returns (Mode, queue length)."""
        if not 0 <= state < self.n_states:
            raise ValueError(f"state index out of range: {state}")
        mode_index, queue = divmod(state, self.queue_capacity + 1)
        return self.mode_space.mode(mode_index), queue

    def state_label(self, state: int) -> str:
        """Readable name like ``"sleep|q=3"``."""
        mode, queue = self.decode(state)
        return f"{mode.label}|q={queue}"

    def allowed_actions(self, state: int) -> List[int]:
        """Action indices playable in ``state`` (mode-determined)."""
        mode_index = state // (self.queue_capacity + 1)
        return self.mode_space.allowed_actions(mode_index)

    @property
    def state(self) -> int:
        """Current flattened state index."""
        return self.encode(self._mode, self._queue)

    @property
    def current_slot(self) -> int:
        """Index of the next slot to be simulated."""
        return self._slot

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def reset(self, seed: Optional[int] = None, queue: int = 0,
              mode: Optional[str] = None) -> int:
        """Restart the episode; returns the initial state index."""
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        start = mode if mode is not None else self.device.initial_state
        self._mode = self.mode_space.steady_mode_index(start)
        if not 0 <= queue <= self.queue_capacity:
            raise ValueError(f"queue out of range: {queue}")
        self._queue = int(queue)
        self._slot = 0
        self.totals = EnvTotals()
        return self.state

    def step(self, action: int) -> Tuple[int, float, StepInfo]:
        """Advance one slot under ``action``.

        Returns ``(next_state, reward, info)``.

        Raises
        ------
        KeyError
            If ``action`` is not allowed in the current mode.
        """
        effect = self.mode_space.effect(self._mode, action)
        rate = self.schedule.rate_at(self._slot)

        served = False
        if effect.can_service and self._queue > 0:
            served = bool(self._rng.random() < self.p_serve)
        queue = self._queue - int(served)

        arrived = bool(self._rng.random() < rate)
        lost = False
        if arrived:
            if queue < self.queue_capacity:
                queue += 1
            else:
                lost = True

        reward = (
            -effect.energy
            - self.perf_weight * queue
            - self.loss_penalty * int(lost)
        )

        info = StepInfo(
            slot=self._slot,
            energy=effect.energy,
            queue=queue,
            arrived=arrived,
            served=served,
            lost=lost,
            mode_label=self.mode_space.mode(effect.next_mode).label,
            arrival_rate=rate,
        )

        self.totals.slots += 1
        self.totals.energy += effect.energy
        self.totals.queue_integral += queue
        self.totals.arrivals += int(arrived)
        self.totals.completions += int(served)
        self.totals.losses += int(lost)

        self._mode = effect.next_mode
        self._queue = queue
        self._slot += 1
        return self.state, reward, info

    # ------------------------------------------------------------------ #
    # reference quantities
    # ------------------------------------------------------------------ #

    def always_on_power(self) -> float:
        """Power of keeping the device in its home (servicing) state."""
        return self.device.state(self.device.initial_state).power

    def energy_saving_ratio(self) -> float:
        """Episode energy saving vs. the always-on policy so far."""
        if self.totals.slots == 0:
            return 0.0
        baseline = self.always_on_power() * self.slot_length * self.totals.slots
        if baseline <= 0:
            return 0.0
        return 1.0 - self.totals.energy / baseline

    def __repr__(self) -> str:
        return (
            f"SlottedDPMEnv(device={self.device.name!r}, "
            f"states={self.n_states}, actions={self.n_actions}, "
            f"qcap={self.queue_capacity})"
        )
