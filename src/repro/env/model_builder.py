"""Exact DTMDP construction for the slotted DPM environment.

Writes down, in closed form, the ``(P, R)`` model of
:class:`~repro.env.slotted_env.SlottedDPMEnv` for a *frozen* arrival
probability.  This is what the model-based baseline optimizes (LP /
policy iteration / value iteration) and what provides the "optimal policy
derived by analytical techniques which assume model is completely known
in prior" of the paper's Fig. 1.

Besides the MDP itself, the builder exports per-(state, action) tables of
expected energy, expected end-of-slot queue, and expected loss — so the
long-run *power*, *latency*, and *energy-saving ratio* of any policy are
computable exactly via stationary analysis, without simulation noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..device import PowerStateMachine
from ..mdp import (
    DeterministicPolicy,
    FiniteMDP,
    SolveResult,
    linear_programming,
    long_run_state_average,
    policy_iteration,
    policy_occupancy,
    start_occupancy,
    value_iteration,
)
from .states import ModeSpace


@dataclass(frozen=True)
class PolicyPerformance:
    """Exact long-run performance of a policy on a frozen DPM model."""

    mean_power: float          #: watts
    mean_queue: float          #: time-average backlog
    mean_latency: float        #: seconds (Little's law on accepted arrivals)
    loss_rate: float           #: fraction of arrivals dropped
    energy_saving_ratio: float #: 1 - power / always-on power
    average_reward: float      #: long-run reward per slot


@dataclass
class DPMModel:
    """An exact slotted-DPM model: MDP plus physical per-pair tables."""

    mdp: FiniteMDP
    energy: np.ndarray         #: (S, A) expected energy per slot
    queue: np.ndarray          #: (S, A) expected end-of-slot queue
    loss: np.ndarray           #: (S, A) expected dropped arrivals per slot
    mode_space: ModeSpace
    arrival_rate: float
    p_serve: float
    queue_capacity: int
    perf_weight: float
    loss_penalty: float

    @property
    def slot_length(self) -> float:
        """Slot duration inherited from the mode space."""
        return self.mode_space.slot_length

    def initial_state(self) -> int:
        """Flattened index of (home mode, empty queue)."""
        home = self.mode_space.steady_mode_index(
            self.mode_space.device.initial_state
        )
        return home * (self.queue_capacity + 1)

    def always_on_power(self) -> float:
        """Power of the home servicing state (the saving-ratio baseline)."""
        device = self.mode_space.device
        return device.state(device.initial_state).power

    def solve(
        self,
        discount: float,
        method: str = "policy_iteration",
    ) -> SolveResult:
        """Compute the optimal policy with the chosen exact solver.

        ``method`` is one of ``"value_iteration"``, ``"policy_iteration"``,
        ``"linear_programming"``.
        """
        solvers = {
            "value_iteration": value_iteration,
            "policy_iteration": policy_iteration,
            "linear_programming": linear_programming,
        }
        try:
            solver = solvers[method]
        except KeyError:
            raise KeyError(f"unknown solver {method!r}; options: {sorted(solvers)}")
        return solver(self.mdp, discount)

    def evaluate_policy(
        self, policy: DeterministicPolicy, epsilon: float = 0.0
    ) -> PolicyPerformance:
        """Exact long-run metrics of a policy via stationary analysis.

        ``epsilon`` > 0 evaluates the epsilon-soft version of the policy
        (uniform random among allowed actions with probability epsilon) —
        the *fair* reference for an online learner that keeps exploring,
        since pure-greedy references make the exploration tax look like a
        convergence failure.
        """
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        start = self.initial_state()
        n_states = self.mdp.n_states
        idx = np.arange(n_states)
        acts = policy.actions
        if epsilon == 0.0:
            pi = policy_occupancy(self.mdp, policy, start)
            mean_energy = float(pi @ self.energy[idx, acts])
            mean_queue = float(pi @ self.queue[idx, acts])
            mean_loss = float(pi @ self.loss[idx, acts])
            mean_reward = float(pi @ self.mdp.reward[idx, acts])
        else:
            # action distribution of the epsilon-soft policy
            probs = np.where(self.mdp.allowed, epsilon, 0.0)
            probs /= np.maximum(probs.sum(axis=1, keepdims=True), 1e-300)
            probs *= epsilon
            probs[idx, acts] += 1.0 - epsilon
            p_mix = np.einsum("sa,sat->st", probs, self.mdp.transition)
            pi = start_occupancy(p_mix, start)
            mean_energy = float(pi @ (probs * self.energy).sum(axis=1))
            mean_queue = float(pi @ (probs * self.queue).sum(axis=1))
            mean_loss = float(pi @ (probs * self.loss).sum(axis=1))
            reward = np.where(self.mdp.allowed, self.mdp.reward, 0.0)
            mean_reward = float(pi @ (probs * reward).sum(axis=1))
        mean_power = mean_energy / self.slot_length
        accepted_rate = self.arrival_rate - mean_loss  # per slot
        if accepted_rate > 1e-12:
            latency = mean_queue / (accepted_rate / self.slot_length)
        else:
            latency = 0.0
        baseline = self.always_on_power()
        saving = 1.0 - mean_power / baseline if baseline > 0 else 0.0
        loss_rate = mean_loss / self.arrival_rate if self.arrival_rate > 0 else 0.0
        return PolicyPerformance(
            mean_power=mean_power,
            mean_queue=mean_queue,
            mean_latency=latency,
            loss_rate=loss_rate,
            energy_saving_ratio=saving,
            average_reward=mean_reward,
        )

    def state_labels(self) -> List[str]:
        """Readable labels aligned with the flattened state indexing."""
        labels = []
        for mode in self.mode_space.modes:
            for q in range(self.queue_capacity + 1):
                labels.append(f"{mode.label}|q={q}")
        return labels


def build_dpm_model(
    device: PowerStateMachine,
    arrival_rate: float,
    slot_length: float = 1.0,
    queue_capacity: int = 8,
    p_serve: float = 1.0,
    perf_weight: float = 0.5,
    loss_penalty: float = 2.0,
) -> DPMModel:
    """Construct the exact DTMDP of the slotted environment.

    Parameters mirror :class:`~repro.env.slotted_env.SlottedDPMEnv` with a
    frozen ``arrival_rate`` in place of a schedule.

    The state indexing matches the environment exactly
    (``state = mode_index * (queue_capacity + 1) + queue``), so a policy
    solved on this model can be executed verbatim in the environment.
    """
    if not 0.0 <= arrival_rate <= 1.0:
        raise ValueError(f"arrival_rate must be in [0, 1], got {arrival_rate}")
    if queue_capacity < 1:
        raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
    if not 0.0 < p_serve <= 1.0:
        raise ValueError(f"p_serve must be in (0, 1], got {p_serve}")
    if perf_weight < 0 or loss_penalty < 0:
        raise ValueError("perf_weight and loss_penalty must be >= 0")

    space = ModeSpace(device, slot_length)
    n_q = queue_capacity + 1
    n_states = space.n_modes * n_q
    n_actions = space.n_actions

    transition = np.zeros((n_states, n_actions, n_states))
    reward = np.zeros((n_states, n_actions))
    allowed = np.zeros((n_states, n_actions), dtype=bool)
    energy_tab = np.zeros((n_states, n_actions))
    queue_tab = np.zeros((n_states, n_actions))
    loss_tab = np.zeros((n_states, n_actions))

    p_arr = arrival_rate
    for m_idx in range(space.n_modes):
        for q in range(n_q):
            s = m_idx * n_q + q
            for a in space.allowed_actions(m_idx):
                effect = space.effect(m_idx, a)
                allowed[s, a] = True
                energy_tab[s, a] = effect.energy

                serve_prob = p_serve if (effect.can_service and q > 0) else 0.0
                # outcomes: (served?, arrived?)
                for served, p_srv in ((1, serve_prob), (0, 1.0 - serve_prob)):
                    if p_srv == 0.0:
                        continue
                    q_mid = q - served
                    for arrived, p_a in ((1, p_arr), (0, 1.0 - p_arr)):
                        prob = p_srv * p_a
                        if prob == 0.0:
                            continue
                        lost = 0
                        q_next = q_mid
                        if arrived:
                            if q_mid < queue_capacity:
                                q_next = q_mid + 1
                            else:
                                lost = 1
                        s_next = effect.next_mode * n_q + q_next
                        transition[s, a, s_next] += prob
                        queue_tab[s, a] += prob * q_next
                        loss_tab[s, a] += prob * lost
                reward[s, a] = (
                    -effect.energy
                    - perf_weight * queue_tab[s, a]
                    - loss_penalty * loss_tab[s, a]
                )

    labels_s = []
    for mode in space.modes:
        for q in range(n_q):
            labels_s.append(f"{mode.label}|q={q}")
    mdp = FiniteMDP(
        transition=transition,
        reward=reward,
        allowed=allowed,
        state_labels=labels_s,
        action_labels=[f"goto:{n}" for n in space.action_names],
    )
    return DPMModel(
        mdp=mdp,
        energy=energy_tab,
        queue=queue_tab,
        loss=loss_tab,
        mode_space=space,
        arrival_rate=arrival_rate,
        p_serve=p_serve,
        queue_capacity=queue_capacity,
        perf_weight=perf_weight,
        loss_penalty=loss_penalty,
    )
