"""QoS-guaranteed Q-DPM (the paper's first future-work item).

"There is still a lot of rewarding research remaining to perform, such as
QoS guaranteed Q-DPM" — implemented here as a Lagrangian primal-dual
constrained Q-learning controller: minimize energy subject to a mean
backlog (latency, via Little's law) constraint.

The reward the agent maximizes is ``-(energy) - lambda * queue`` where
the multiplier adapts on a slow timescale:

    lambda <- max(0, lambda + kappa * (mean_queue_window - target_queue))

When the constraint is violated the multiplier grows and the policy
shifts toward performance; when it is slack the multiplier decays and the
policy saves more energy.  The usual two-timescale argument applies: the
Q-table converges per multiplier value, the multiplier climbs the dual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.exploration import EpsilonGreedy
from ..core.qlearning import QLearningAgent
from ..env.observation import FullObservation, ObservationMap
from ..env.slotted_env import SlottedDPMEnv


@dataclass
class QoSHistory:
    """Windowed traces of a constrained run."""

    slots: np.ndarray
    energy: np.ndarray          #: mean energy per slot in the window
    queue: np.ndarray           #: mean queue in the window
    lambda_: np.ndarray         #: multiplier value at window end
    saving_ratio: np.ndarray


class QoSQDPM:
    """Constrained Q-DPM holding the mean queue at/below a target.

    Parameters
    ----------
    env:
        Environment to control.  Its internal ``perf_weight`` /
        ``loss_penalty`` still shape the *environment's* reward, but this
        controller learns from its own Lagrangian reward, so the env is
        typically built with ``perf_weight=0``.
    target_queue:
        Constraint level on the time-average queue length (a latency
        target divided by the arrival rate, via Little's law).
    kappa:
        Dual ascent step size.
    lambda_init, lambda_max:
        Initial and maximum multiplier.
    dual_every:
        Slots between multiplier updates (the slow timescale).
    """

    def __init__(
        self,
        env: SlottedDPMEnv,
        target_queue: float,
        discount: float = 0.95,
        learning_rate: float = 0.1,
        epsilon: float = 0.08,
        kappa: float = 0.01,
        lambda_init: float = 0.1,
        lambda_max: float = 50.0,
        dual_every: int = 500,
        observation: Optional[ObservationMap] = None,
        seed: Optional[int] = None,
    ) -> None:
        if target_queue < 0:
            raise ValueError("target_queue must be >= 0")
        if kappa <= 0:
            raise ValueError("kappa must be > 0")
        if dual_every < 1:
            raise ValueError("dual_every must be >= 1")
        if not 0 <= lambda_init <= lambda_max:
            raise ValueError("need 0 <= lambda_init <= lambda_max")
        self.env = env
        self.observation = (
            observation if observation is not None else FullObservation(env)
        )
        self.agent = QLearningAgent(
            n_observations=self.observation.n_observations,
            n_actions=env.n_actions,
            discount=discount,
            learning_rate=learning_rate,
            exploration=EpsilonGreedy(epsilon),
            seed=seed,
        )
        self.target_queue = float(target_queue)
        self.kappa = float(kappa)
        self.lambda_ = float(lambda_init)
        self.lambda_max = float(lambda_max)
        self.dual_every = int(dual_every)

    def run(self, n_slots: int, record_every: int = 1000) -> QoSHistory:
        """Control for ``n_slots`` slots with dual adaptation."""
        if n_slots < 1:
            raise ValueError("n_slots must be >= 1")
        always_on = self.env.always_on_power() * self.env.slot_length

        slots: List[int] = []
        energy_hist: List[float] = []
        queue_hist: List[float] = []
        lambda_hist: List[float] = []
        saving_hist: List[float] = []

        win_energy = win_queue = 0.0
        win_count = 0
        dual_queue_sum = 0.0
        dual_count = 0
        for _ in range(n_slots):
            state = self.env.state
            obs = self.observation.observe(state)
            allowed = self.env.allowed_actions(state)
            action = self.agent.select_action(obs, allowed)
            next_state, _, info = self.env.step(action)
            # Lagrangian reward replaces the environment's own shaping
            reward = -info.energy - self.lambda_ * info.queue
            next_obs = self.observation.observe(next_state)
            next_allowed = self.env.allowed_actions(next_state)
            self.agent.update(obs, action, reward, next_obs, next_allowed)

            dual_queue_sum += info.queue
            dual_count += 1
            if dual_count == self.dual_every:
                violation = dual_queue_sum / dual_count - self.target_queue
                self.lambda_ = float(
                    np.clip(self.lambda_ + self.kappa * violation, 0.0,
                            self.lambda_max)
                )
                dual_queue_sum = 0.0
                dual_count = 0

            win_energy += info.energy
            win_queue += info.queue
            win_count += 1
            if win_count == record_every:
                slots.append(info.slot)
                energy_hist.append(win_energy / win_count)
                queue_hist.append(win_queue / win_count)
                lambda_hist.append(self.lambda_)
                ratio = (
                    1.0 - (win_energy / win_count) / always_on
                    if always_on > 0 else 0.0
                )
                saving_hist.append(ratio)
                win_energy = win_queue = 0.0
                win_count = 0
        return QoSHistory(
            slots=np.asarray(slots),
            energy=np.asarray(energy_hist),
            queue=np.asarray(queue_hist),
            lambda_=np.asarray(lambda_hist),
            saving_ratio=np.asarray(saving_hist),
        )
