"""Paper future-work extensions: QoS-constrained and fuzzy Q-DPM."""

from .fuzzy import FuzzyQLearningAgent, NoisyQueueObservation, triangular_membership
from .qos import QoSHistory, QoSQDPM

__all__ = [
    "QoSQDPM",
    "QoSHistory",
    "NoisyQueueObservation",
    "FuzzyQLearningAgent",
    "triangular_membership",
]
