"""Fuzzy Q-DPM for noisy environments (the paper's second future-work item).

"... and Fuzzy Q-DPM in noisy environment."  Real power managers read the
backlog through imperfect counters (shared registers, delayed interrupts).
We model this with :class:`NoisyQueueObservation` — the observed queue
length is corrupted by symmetric +-1 noise — and counter it with
:class:`FuzzyQLearningAgent`, which treats the observed queue as a fuzzy
set: a triangular membership over the neighbouring queue levels.  Both
action-value lookups and TD updates are membership-weighted averages, so
a single corrupted reading cannot yank one table cell far off.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exploration import EpsilonGreedy, ExplorationStrategy
from ..core.qlearning import QLearningAgent
from ..env.observation import ObservationMap
from ..env.slotted_env import SlottedDPMEnv


class NoisyQueueObservation(ObservationMap):
    """Observation channel that corrupts the queue reading.

    With probability ``noise`` the reported queue length is off by +-1
    (clipped to the valid range).  The mode component is read exactly.
    The map is stochastic — two calls on the same state may differ — which
    is precisely the difficulty the fuzzy agent addresses.
    """

    def __init__(
        self, env: SlottedDPMEnv, noise: float = 0.2, seed: Optional[int] = None
    ) -> None:
        if not 0.0 <= noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {noise}")
        self._env = env
        self.noise = float(noise)
        self._rng = np.random.default_rng(seed)

    @property
    def n_observations(self) -> int:
        return self._env.n_states

    def observe(self, state: int) -> int:
        mode_index, queue = divmod(state, self._env.queue_capacity + 1)
        if self._rng.random() < self.noise:
            queue += int(self._rng.choice((-1, 1)))
            queue = int(np.clip(queue, 0, self._env.queue_capacity))
        return mode_index * (self._env.queue_capacity + 1) + queue

    def label(self, observation: int) -> str:
        return self._env.state_label(observation)


def triangular_membership(
    queue: int, capacity: int, spread: float = 0.5
) -> List[Tuple[int, float]]:
    """Membership of an observed queue reading over neighbouring levels.

    Weight 1 at the reading, ``spread`` at the two adjacent levels,
    normalized.  ``spread=0`` degenerates to crisp (plain Q-learning).
    """
    if not 0.0 <= spread <= 1.0:
        raise ValueError(f"spread must be in [0, 1], got {spread}")
    members = [(queue, 1.0)]
    if spread > 0:
        if queue > 0:
            members.append((queue - 1, spread))
        if queue < capacity:
            members.append((queue + 1, spread))
    total = sum(w for _, w in members)
    return [(q, w / total) for q, w in members]


class FuzzyQLearningAgent(QLearningAgent):
    """Q-learning with fuzzy (membership-weighted) reads and writes.

    Requires the environment's flat state indexing (mode x queue); the
    agent de-flattens each observation, builds the queue membership, and

    - acts on the membership-weighted Q row, and
    - spreads each TD update across member cells in proportion to their
      membership (fuzzy inference followed by defuzzified update).
    """

    def __init__(
        self,
        env: SlottedDPMEnv,
        spread: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(
            n_observations=env.n_states,
            n_actions=env.n_actions,
            **kwargs,
        )
        self._capacity = env.queue_capacity
        self._spread = float(spread)

    def _members(self, observation: int) -> List[Tuple[int, float]]:
        base = self._capacity + 1
        mode_index, queue = divmod(observation, base)
        return [
            (mode_index * base + q, w)
            for q, w in triangular_membership(queue, self._capacity, self._spread)
        ]

    def _fuzzy_q(self, observation: int, action: int) -> float:
        return sum(w * self.table.get(obs, action) for obs, w in
                   self._members(observation))

    def select_action(self, observation: int, allowed: Sequence[int]) -> int:
        # epsilon-exploration as usual, but exploitation on the fuzzy value
        if isinstance(self.exploration, EpsilonGreedy):
            eps = self.exploration.epsilon_at(self.steps)
            if self._rng.random() < eps:
                return int(self._rng.choice(np.asarray(allowed, dtype=int)))
        values = [self._fuzzy_q(observation, a) for a in allowed]
        best = int(np.argmax(values))
        return int(list(allowed)[best])

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        return max(self._fuzzy_q(next_observation, a) for a in next_allowed)

    def update(
        self,
        observation: int,
        action: int,
        reward: float,
        next_observation: int,
        next_allowed: Sequence[int],
        terminal: bool = False,
    ) -> float:
        if terminal:
            target = reward
        else:
            target = reward + self.discount * self._bootstrap(
                next_observation, next_allowed
            )
        total_delta = 0.0
        for obs, weight in self._members(observation):
            lr = self.learning_rate_for(obs, action) * weight
            total_delta += self.table.update_toward(obs, action, target, lr)
        self._step += 1
        return total_delta
