"""Tabular temporal-difference agents: Q-learning (the paper), SARSA,
Expected SARSA.

The paper adopts Watkins' Q-learning, "almost the most practical RL
algorithm because it is quite easy to implement", with the update (its
Eqn. 3):

    Q(s, a) <- (1 - alpha) Q(s, a) + alpha * (c(s, a, s') +
               beta * max_b Q(s', b))

(the paper writes the learning rate as gamma and the discount as beta; we
use the modern ``alpha`` / ``discount`` naming).  SARSA and Expected
SARSA are included as on-policy comparison points for the ablation
benches — they share every line except the bootstrap target.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Union

import numpy as np

from .exploration import EpsilonGreedy, ExplorationStrategy
from .qtable import QTable
from .schedules import Constant, Schedule


class TDAgent(ABC):
    """Common machinery of the tabular TD agents.

    Parameters
    ----------
    n_observations, n_actions:
        Q-table dimensions.
    discount:
        Discount factor beta in [0, 1).
    learning_rate:
        Float (constant, the paper's choice) or a
        :class:`~repro.core.schedules.Schedule` evaluated on the pair's
        visit count (per-pair decays, Robbins-Monro style).
    exploration:
        An :class:`~repro.core.exploration.ExplorationStrategy`;
        defaults to the paper's epsilon-greedy with epsilon = 0.1.
    initial_q:
        Initial table fill; modest optimism speeds early exploration.
    seed:
        RNG seed for action selection.
    """

    def __init__(
        self,
        n_observations: int,
        n_actions: int,
        discount: float = 0.95,
        learning_rate: Union[float, Schedule] = 0.1,
        exploration: Optional[ExplorationStrategy] = None,
        initial_q: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError(f"discount must be in [0, 1), got {discount}")
        self.table = QTable(n_observations, n_actions, initial_value=initial_q)
        self.discount = float(discount)
        self._lr = (
            learning_rate
            if isinstance(learning_rate, Schedule)
            else Constant(float(learning_rate))
        )
        self.exploration = exploration if exploration is not None else EpsilonGreedy(0.1)
        self._rng = np.random.default_rng(seed)
        self._step = 0

    @property
    def steps(self) -> int:
        """Number of updates applied so far."""
        return self._step

    def learning_rate_for(self, observation: int, action: int) -> float:
        """Learning rate used for the next update of this pair."""
        return self._lr.value(self.table.visits(observation, action))

    def select_action(self, observation: int, allowed: Sequence[int]) -> int:
        """Behaviour-policy action (exploration included)."""
        return self.exploration.select(
            self.table, observation, allowed, self._step, self._rng
        )

    def greedy_action(self, observation: int, allowed: Sequence[int]) -> int:
        """Exploitation-only action (for policy extraction / evaluation)."""
        return self.table.best_action(observation, allowed)

    @abstractmethod
    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        """Value estimate of the successor used in the TD target."""

    def update(
        self,
        observation: int,
        action: int,
        reward: float,
        next_observation: int,
        next_allowed: Sequence[int],
        terminal: bool = False,
    ) -> float:
        """Apply one TD update; returns the absolute TD change.

        ``terminal`` suppresses the bootstrap (the DPM process is
        continuing, so it is False in every experiment here, but the agent
        is usable on episodic tasks too).
        """
        if terminal:
            target = reward
        else:
            target = reward + self.discount * self._bootstrap(
                next_observation, next_allowed
            )
        lr = self.learning_rate_for(observation, action)
        delta = self.table.update_toward(observation, action, target, lr)
        self._step += 1
        return delta


class QLearningAgent(TDAgent):
    """Watkins' Q-learning — the Q-DPM agent (off-policy, max bootstrap)."""

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        return self.table.max_value(next_observation, next_allowed)


class SarsaAgent(TDAgent):
    """SARSA: bootstrap from the action the behaviour policy will take.

    The successor action is sampled with the agent's own exploration
    strategy, remembered, and returned by :meth:`select_action` on the
    next call so the trajectory stays consistent (classic SARSA loop).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending_action: Optional[int] = None

    def select_action(self, observation: int, allowed: Sequence[int]) -> int:
        if self._pending_action is not None:
            action = self._pending_action
            self._pending_action = None
            if action in set(int(a) for a in allowed):
                return action
        return super().select_action(observation, allowed)

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        nxt = self.exploration.select(
            self.table, next_observation, next_allowed, self._step, self._rng
        )
        self._pending_action = int(nxt)
        return self.table.get(next_observation, nxt)


class ExpectedSarsaAgent(TDAgent):
    """Expected SARSA with an epsilon-greedy target policy.

    Uses the closed-form expectation under epsilon-greedy, which needs the
    current epsilon; only meaningful with an
    :class:`~repro.core.exploration.EpsilonGreedy` exploration strategy
    (enforced at construction).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if not isinstance(self.exploration, EpsilonGreedy):
            raise TypeError(
                "ExpectedSarsaAgent requires EpsilonGreedy exploration, got "
                f"{type(self.exploration).__name__}"
            )

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        allowed = np.asarray(next_allowed, dtype=int)
        eps = self.exploration.epsilon_at(self._step)
        q = np.array([self.table.get(next_observation, a) for a in allowed])
        greedy_value = q.max()
        uniform_value = q.mean()
        return (1.0 - eps) * greedy_value + eps * uniform_value
