"""Double Q-learning (van Hasselt, 2010) for the DPM setting.

Motivated by an artifact this reproduction actually observed: plain
Q-learning's max-bootstrap *overestimates* rarely-visited pairs (EXPERIMENTS.md,
FIG1 caveat), which can leave "stay asleep with a full queue" looking
spuriously attractive in a frozen greedy snapshot.  Double Q-learning
keeps two tables and decouples action *selection* (argmax on one table)
from action *evaluation* (value from the other), removing the positive
bias at the cost of 2x memory — still tiny by CLAIM-MEM standards.

Drop-in compatible with :class:`~repro.core.qdpm.QDPM` (it subclasses
:class:`~repro.core.qlearning.TDAgent`); acting uses the *sum* of the two
tables, the standard choice.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from .exploration import ExplorationStrategy
from .qlearning import TDAgent
from .qtable import QTable
from .schedules import Schedule


class DoubleQLearningAgent(TDAgent):
    """Tabular Double Q-learning.

    On each update, a fair coin picks which table to write:

        A-update:  Q_A(s,a) <- (1-lr) Q_A(s,a) +
                   lr * (r + beta * Q_B(s', argmax_b Q_A(s', b)))

    and symmetrically for B.  ``self.table`` (inherited) holds the *sum*
    Q_A + Q_B and is what action selection and policy extraction read —
    so every :class:`~repro.core.exploration.ExplorationStrategy` and the
    :class:`~repro.core.qdpm.QDPM` controller work unchanged.
    """

    def __init__(
        self,
        n_observations: int,
        n_actions: int,
        discount: float = 0.95,
        learning_rate: Union[float, Schedule] = 0.1,
        exploration: Optional[ExplorationStrategy] = None,
        initial_q: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            n_observations=n_observations,
            n_actions=n_actions,
            discount=discount,
            learning_rate=learning_rate,
            exploration=exploration,
            initial_q=initial_q,
            seed=seed,
        )
        half = initial_q / 2.0
        self._table_a = QTable(n_observations, n_actions, initial_value=half)
        self._table_b = QTable(n_observations, n_actions, initial_value=half)

    @property
    def table_a(self) -> QTable:
        """First of the two independent estimators."""
        return self._table_a

    @property
    def table_b(self) -> QTable:
        """Second of the two independent estimators."""
        return self._table_b

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        """Unused: :meth:`update` overrides the whole TD step."""
        raise NotImplementedError("DoubleQLearningAgent overrides update()")

    def _refresh_sum(self, observation: int, action: int) -> None:
        self.table.set(
            observation,
            action,
            self._table_a.get(observation, action)
            + self._table_b.get(observation, action),
        )

    def update(
        self,
        observation: int,
        action: int,
        reward: float,
        next_observation: int,
        next_allowed: Sequence[int],
        terminal: bool = False,
    ) -> float:
        """One double-estimator TD update; returns the absolute change of
        the summed table entry."""
        if self._rng.random() < 0.5:
            selector, evaluator = self._table_a, self._table_b
        else:
            selector, evaluator = self._table_b, self._table_a

        if terminal:
            target = reward
        else:
            best = selector.best_action(next_observation, next_allowed)
            target = reward + self.discount * evaluator.get(next_observation, best)

        lr = self._lr.value(selector.visits(observation, action))
        delta = selector.update_toward(observation, action, target, lr)
        # keep the acting table (the sum) and its visit counter in sync;
        # the zero-learning-rate update increments the visit count only
        self._refresh_sum(observation, action)
        self.table.update_toward(
            observation, action, self.table.get(observation, action), 0.0
        )
        self._step += 1
        return delta
