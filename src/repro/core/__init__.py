"""Q-DPM core: Q-table, schedules, exploration, TD agents, controller."""

from .double_q import DoubleQLearningAgent
from .exploration import (
    Boltzmann,
    EpsilonGreedy,
    ExplorationStrategy,
    FixedDrawEpsilonGreedy,
    Greedy,
)
from .qdpm import QDPM, RunHistory
from .qlambda import WatkinsQLambdaAgent
from .qlearning import ExpectedSarsaAgent, QLearningAgent, SarsaAgent, TDAgent
from .qtable import QTable
from .schedules import (
    Constant,
    ExponentialDecay,
    HarmonicDecay,
    LinearDecay,
    Schedule,
)

__all__ = [
    "QTable",
    "Schedule",
    "Constant",
    "LinearDecay",
    "ExponentialDecay",
    "HarmonicDecay",
    "ExplorationStrategy",
    "Greedy",
    "EpsilonGreedy",
    "FixedDrawEpsilonGreedy",
    "Boltzmann",
    "TDAgent",
    "QLearningAgent",
    "SarsaAgent",
    "ExpectedSarsaAgent",
    "DoubleQLearningAgent",
    "WatkinsQLambdaAgent",
    "QDPM",
    "RunHistory",
]
