"""Scalar parameter schedules (learning rate, exploration probability).

The paper uses a fixed learning rate and a fixed exploration probability.
Constant schedules keep the controller *permanently plastic* — exactly
what makes Q-DPM track nonstationary workloads (a 1/n decay would freeze
the policy and lose the Fig. 2 behaviour).  Decaying schedules are
provided for the stationary-convergence ablations.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod


class Schedule(ABC):
    """A scalar as a function of a step counter ``n`` (0-based)."""

    @abstractmethod
    def value(self, n: int) -> float:
        """Schedule value at step ``n``."""

    def __call__(self, n: int) -> float:
        return self.value(n)


class Constant(Schedule):
    """Fixed value — the paper's choice for both alpha and epsilon."""

    def __init__(self, value: float) -> None:
        self._value = float(value)

    def value(self, n: int) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Constant({self._value})"


class LinearDecay(Schedule):
    """Linear interpolation ``start -> end`` over ``steps`` steps."""

    def __init__(self, start: float, end: float, steps: int) -> None:
        if steps <= 0:
            raise ValueError(f"steps must be > 0, got {steps}")
        self._start = float(start)
        self._end = float(end)
        self._steps = int(steps)

    def value(self, n: int) -> float:
        if n >= self._steps:
            return self._end
        frac = n / self._steps
        return self._start + (self._end - self._start) * frac

    def __repr__(self) -> str:
        return f"LinearDecay({self._start}->{self._end} over {self._steps})"


class ExponentialDecay(Schedule):
    """``start * decay^n``, floored at ``minimum``."""

    def __init__(self, start: float, decay: float, minimum: float = 0.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if minimum < 0:
            raise ValueError("minimum must be >= 0")
        self._start = float(start)
        self._decay = float(decay)
        self._minimum = float(minimum)

    def value(self, n: int) -> float:
        return max(self._minimum, self._start * self._decay ** n)

    def __repr__(self) -> str:
        return (
            f"ExponentialDecay(start={self._start}, decay={self._decay}, "
            f"min={self._minimum})"
        )


class HarmonicDecay(Schedule):
    """``start / (1 + n / tau)`` — the Robbins-Monro-compatible decay.

    Satisfies the stochastic-approximation conditions (sum = inf, sum of
    squares < inf), so Q-learning with it converges almost surely in a
    stationary environment.
    """

    def __init__(self, start: float, tau: float = 1.0, minimum: float = 0.0) -> None:
        if tau <= 0:
            raise ValueError(f"tau must be > 0, got {tau}")
        if minimum < 0:
            raise ValueError("minimum must be >= 0")
        self._start = float(start)
        self._tau = float(tau)
        self._minimum = float(minimum)

    def value(self, n: int) -> float:
        return max(self._minimum, self._start / (1.0 + n / self._tau))

    def __repr__(self) -> str:
        return f"HarmonicDecay(start={self._start}, tau={self._tau})"
