"""Exploration strategies for the Q-DPM agent.

The paper: "At each state, with probability F a random action needs to be
taken instead of the action recommended by the Q(s, a)" — plain
epsilon-greedy.  Boltzmann (softmax) exploration is included for the
exploration ablation bench.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Union

import numpy as np

from .qtable import QTable
from .schedules import Constant, Schedule


def _as_schedule(value: Union[float, Schedule]) -> Schedule:
    return value if isinstance(value, Schedule) else Constant(float(value))


class ExplorationStrategy(ABC):
    """Picks an action given the Q-table and the allowed action set."""

    @abstractmethod
    def select(
        self,
        table: QTable,
        observation: int,
        allowed: Sequence[int],
        step: int,
        rng: np.random.Generator,
    ) -> int:
        """Return the action to play at global step ``step``."""


class Greedy(ExplorationStrategy):
    """Pure exploitation (used when freezing a learned policy)."""

    def select(
        self,
        table: QTable,
        observation: int,
        allowed: Sequence[int],
        step: int,
        rng: np.random.Generator,
    ) -> int:
        return table.best_action(observation, allowed, rng=rng)


class EpsilonGreedy(ExplorationStrategy):
    """The paper's strategy: random action with probability epsilon.

    ``epsilon`` may be a float (the paper's constant) or any
    :class:`~repro.core.schedules.Schedule` for decaying variants.
    """

    def __init__(self, epsilon: Union[float, Schedule] = 0.1) -> None:
        self._epsilon = _as_schedule(epsilon)

    def epsilon_at(self, step: int) -> float:
        """Exploration probability at a given step."""
        return self._epsilon.value(step)

    def select(
        self,
        table: QTable,
        observation: int,
        allowed: Sequence[int],
        step: int,
        rng: np.random.Generator,
    ) -> int:
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        eps = self.epsilon_at(step)
        if rng.random() < eps:
            return int(rng.choice(allowed))
        return table.best_action(observation, allowed, rng=rng)

    def __repr__(self) -> str:
        return f"EpsilonGreedy({self._epsilon!r})"


class FixedDrawEpsilonGreedy(ExplorationStrategy):
    """Epsilon-greedy that consumes exactly three uniforms per call.

    :class:`EpsilonGreedy` draws a *variable* number of uniforms per slot
    (the explore gate, then either one ``choice`` over the allowed set or
    a tie-break ``choice`` only when ties exist), so a scalar agent's
    stream never lines up with the batched engine's fixed-layout streams.
    This strategy consumes the same fixed three-uniform block per slot as
    :class:`~repro.runtime.BatchedQDPM` — ``[explore?, random-action
    pick, greedy tie-break pick]`` — with identical index arithmetic, so
    a scalar Q-DPM run seeded like batched replica ``i`` reproduces that
    replica's action stream bit for bit.  Same distribution as
    :class:`EpsilonGreedy` (uniform over allowed on explore, uniform over
    near-max ties on exploit); only the stream layout differs.
    """

    def __init__(self, epsilon: Union[float, Schedule] = 0.1,
                 tolerance: float = 1e-12) -> None:
        self._epsilon = _as_schedule(epsilon)
        self._tolerance = float(tolerance)

    def epsilon_at(self, step: int) -> float:
        """Exploration probability at a given step."""
        return self._epsilon.value(step)

    def select(
        self,
        table: QTable,
        observation: int,
        allowed: Sequence[int],
        step: int,
        rng: np.random.Generator,
    ) -> int:
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        # the fixed per-slot block, in the batched engine's layout
        draws = rng.random(3)
        row = table._q[observation, allowed]  # noqa: SLF001 - hot path
        near = row >= row.max() - self._tolerance
        count = int(near.sum())
        kth = min(int(draws[2] * count), count - 1)
        greedy = int(allowed[np.nonzero(near)[0][kth]])
        if draws[0] < self.epsilon_at(step):
            pick = min(int(draws[1] * allowed.size), allowed.size - 1)
            return int(allowed[pick])
        return greedy

    def __repr__(self) -> str:
        return f"FixedDrawEpsilonGreedy({self._epsilon!r})"


class Boltzmann(ExplorationStrategy):
    """Softmax exploration: P(a) proportional to exp(Q(s, a) / T)."""

    def __init__(self, temperature: Union[float, Schedule] = 1.0) -> None:
        self._temperature = _as_schedule(temperature)

    def select(
        self,
        table: QTable,
        observation: int,
        allowed: Sequence[int],
        step: int,
        rng: np.random.Generator,
    ) -> int:
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        temp = self._temperature.value(step)
        if temp <= 0:
            return table.best_action(observation, allowed, rng=rng)
        q = np.array([table.get(observation, a) for a in allowed])
        logits = (q - q.max()) / temp
        probs = np.exp(logits)
        probs /= probs.sum()
        return int(rng.choice(allowed, p=probs))

    def __repr__(self) -> str:
        return f"Boltzmann({self._temperature!r})"
