"""The Q-table: the entire run-time data structure of Q-DPM.

The paper: "Q values can be encoded in a |s| x |a| table that requires a
little bit memory space.  Hence, it is feasible to implement Q-DPM on
almost any embedded nodes."  This module is that table, plus the visit
counters used by decaying learning rates and the masking needed because
not every power command is legal in every mode.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np


class QTable:
    """Dense tabular action-value function with action masking.

    Parameters
    ----------
    n_observations, n_actions:
        Table dimensions.
    initial_value:
        Optimistic or pessimistic initialization of every entry.
    dtype:
        Storage dtype; ``np.float32`` halves the footprint on an
        embedded target, ``float64`` (default) removes rounding concerns.
    """

    def __init__(
        self,
        n_observations: int,
        n_actions: int,
        initial_value: float = 0.0,
        dtype: type = np.float64,
    ) -> None:
        if n_observations < 1 or n_actions < 1:
            raise ValueError("table dimensions must be >= 1")
        self._q = np.full((n_observations, n_actions), initial_value, dtype=dtype)
        self._visits = np.zeros((n_observations, n_actions), dtype=np.int64)

    @property
    def n_observations(self) -> int:
        """Number of observation rows."""
        return self._q.shape[0]

    @property
    def n_actions(self) -> int:
        """Number of action columns."""
        return self._q.shape[1]

    @property
    def values(self) -> np.ndarray:
        """Copy of the raw Q matrix."""
        return self._q.copy()

    @property
    def visit_counts(self) -> np.ndarray:
        """Copy of the per-pair update counters."""
        return self._visits.copy()

    def get(self, observation: int, action: int) -> float:
        """Q(observation, action)."""
        return float(self._q[observation, action])

    def set(self, observation: int, action: int, value: float) -> None:
        """Overwrite one entry (used by tests and warm starts)."""
        self._q[observation, action] = value

    def visits(self, observation: int, action: int) -> int:
        """Number of updates applied to the pair so far."""
        return int(self._visits[observation, action])

    # ------------------------------------------------------------------ #
    # the two O(|A|) runtime operations of Q-DPM
    # ------------------------------------------------------------------ #

    def best_action(
        self,
        observation: int,
        allowed: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Greedy action among ``allowed``; random tie-break if ``rng``.

        Raises
        ------
        ValueError
            If ``allowed`` is empty.
        """
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        row = self._q[observation, allowed]
        best = row.max()
        ties = allowed[row >= best - 1e-12]
        if rng is not None and ties.size > 1:
            return int(rng.choice(ties))
        return int(ties[0])

    def max_value(self, observation: int, allowed: Sequence[int]) -> float:
        """max_a Q(observation, a) over the allowed actions."""
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        return float(self._q[observation, allowed].max())

    def update_toward(
        self,
        observation: int,
        action: int,
        target: float,
        learning_rate: float,
    ) -> float:
        """Relaxation step ``Q <- (1 - lr) Q + lr * target`` (paper Eqn. 3).

        Returns the absolute change (the "temporal-difference magnitude"),
        which convergence diagnostics track.
        """
        if not 0.0 <= learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in [0, 1], got {learning_rate}")
        old = self._q[observation, action]
        new = (1.0 - learning_rate) * old + learning_rate * target
        self._q[observation, action] = new
        self._visits[observation, action] += 1
        return float(abs(new - old))

    # ------------------------------------------------------------------ #
    # batched variants — B replicas per call (the vectorized runtime)
    # ------------------------------------------------------------------ #

    def batch_best_action(
        self,
        observations: np.ndarray,
        allowed_mask: np.ndarray,
        tolerance: float = 1e-12,
        validate: bool = True,
    ) -> np.ndarray:
        """Greedy action per replica via masked argmax.

        Parameters
        ----------
        observations:
            int array of shape ``(B,)`` — one row index per replica.
        allowed_mask:
            bool array of shape ``(B, n_actions)`` — legality per replica.
        validate:
            Skip the shape / non-empty checks when False (hot loops whose
            masks come straight from the mode space are safe by
            construction).

        Ties within ``tolerance`` of the row max break toward the lowest
        action *index*.  Note this differs from :meth:`best_action`,
        whose deterministic branch follows the caller's ``allowed``
        sequence order — a boolean mask carries no order, so callers
        that need order-sensitive tie-breaking (e.g. "prefer the stay
        action") must resolve ties themselves (see
        ``BatchedQDPM._select_actions``).

        Raises
        ------
        ValueError
            If ``validate`` and any replica has an empty allowed set.
        """
        observations = np.asarray(observations, dtype=np.int64)
        allowed_mask = np.asarray(allowed_mask, dtype=bool)
        if validate:
            if allowed_mask.shape != (observations.size, self.n_actions):
                raise ValueError(
                    f"allowed_mask shape {allowed_mask.shape} does not match "
                    f"({observations.size}, {self.n_actions})"
                )
            if not allowed_mask.any(axis=1).all():
                raise ValueError(
                    "allowed action set must be non-empty per replica"
                )
        rows = self._q[observations]
        masked = np.where(allowed_mask, rows, -np.inf)
        best = masked.max(axis=1, keepdims=True)
        near_best = allowed_mask & (rows >= best - tolerance)
        return near_best.argmax(axis=1)

    def batch_max_value(
        self,
        observations: np.ndarray,
        allowed_mask: np.ndarray,
        validate: bool = True,
    ) -> np.ndarray:
        """``max_a Q(obs_b, a)`` per replica over each allowed set."""
        observations = np.asarray(observations, dtype=np.int64)
        allowed_mask = np.asarray(allowed_mask, dtype=bool)
        if validate and not allowed_mask.any(axis=1).all():
            raise ValueError("allowed action set must be non-empty per replica")
        masked = np.where(allowed_mask, self._q[observations], -np.inf)
        return masked.max(axis=1)

    def batch_update(
        self,
        observations: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        learning_rates: Union[float, np.ndarray],
        unique: bool = False,
    ) -> np.ndarray:
        """Vectorized Eqn.-3 relaxation at B (observation, action) pairs.

        Returns the per-pair absolute TD change, aligned with the inputs.
        Visit counters are exact under duplicate pairs (``np.add.at``);
        the Q write itself is one shot, so duplicates all relax from the
        same pre-update value instead of compounding sequentially — the
        lock-step engine never produces duplicates (each replica owns a
        disjoint row block), so callers that might must deduplicate first.
        ``unique=True`` is the caller's guarantee that all pairs are
        distinct, unlocking a fancy-indexed visit increment that is much
        faster than ``np.add.at``.
        """
        observations = np.asarray(observations, dtype=np.int64)
        actions = np.asarray(actions, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.float64)
        lrs = np.asarray(learning_rates, dtype=np.float64)
        if lrs.min() < 0.0 or lrs.max() > 1.0:
            raise ValueError("learning rates must be in [0, 1]")
        old = self._q[observations, actions]
        new = (1.0 - lrs) * old + lrs * targets
        self._q[observations, actions] = new
        if unique:
            self._visits[observations, actions] += 1
        else:
            np.add.at(self._visits, (observations, actions), 1)
        return np.abs(new - old)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Bytes held by the Q matrix itself (the CLAIM-MEM number)."""
        return int(self._q.nbytes)

    def greedy_actions(self, allowed_per_obs: Iterable[Sequence[int]]) -> np.ndarray:
        """Vector of greedy actions given per-observation allowed sets."""
        out = np.empty(self.n_observations, dtype=int)
        for obs, allowed in enumerate(allowed_per_obs):
            out[obs] = self.best_action(obs, allowed)
        return out

    def copy(self) -> "QTable":
        """Deep copy (used for snapshotting during experiments)."""
        clone = QTable(
            self.n_observations, self.n_actions, dtype=self._q.dtype.type
        )
        clone._q = self._q.copy()
        clone._visits = self._visits.copy()
        assert clone._q.dtype == self._q.dtype
        return clone

    # ------------------------------------------------------------------ #
    # persistence (warm-starting a deployed controller)
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Persist values and visit counts to an ``.npz`` file."""
        np.savez_compressed(path, q=self._q, visits=self._visits)

    @classmethod
    def load(cls, path: str) -> "QTable":
        """Restore a table written by :meth:`save`."""
        with np.load(path) as data:
            q = data["q"]
            visits = data["visits"]
        if q.ndim != 2 or q.shape != visits.shape:
            raise ValueError(f"corrupt Q-table file {path!r}")
        table = cls(q.shape[0], q.shape[1], dtype=q.dtype.type)
        table._q = q.copy()
        table._visits = visits.astype(np.int64).copy()
        return table

    def __repr__(self) -> str:
        return f"QTable({self.n_observations}x{self.n_actions})"
