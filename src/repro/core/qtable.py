"""The Q-table: the entire run-time data structure of Q-DPM.

The paper: "Q values can be encoded in a |s| x |a| table that requires a
little bit memory space.  Hence, it is feasible to implement Q-DPM on
almost any embedded nodes."  This module is that table, plus the visit
counters used by decaying learning rates and the masking needed because
not every power command is legal in every mode.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np


class QTable:
    """Dense tabular action-value function with action masking.

    Parameters
    ----------
    n_observations, n_actions:
        Table dimensions.
    initial_value:
        Optimistic or pessimistic initialization of every entry.
    dtype:
        Storage dtype; ``np.float32`` halves the footprint on an
        embedded target, ``float64`` (default) removes rounding concerns.
    """

    def __init__(
        self,
        n_observations: int,
        n_actions: int,
        initial_value: float = 0.0,
        dtype: type = np.float64,
    ) -> None:
        if n_observations < 1 or n_actions < 1:
            raise ValueError("table dimensions must be >= 1")
        self._q = np.full((n_observations, n_actions), initial_value, dtype=dtype)
        self._visits = np.zeros((n_observations, n_actions), dtype=np.int64)

    @property
    def n_observations(self) -> int:
        """Number of observation rows."""
        return self._q.shape[0]

    @property
    def n_actions(self) -> int:
        """Number of action columns."""
        return self._q.shape[1]

    @property
    def values(self) -> np.ndarray:
        """Copy of the raw Q matrix."""
        return self._q.copy()

    @property
    def visit_counts(self) -> np.ndarray:
        """Copy of the per-pair update counters."""
        return self._visits.copy()

    def get(self, observation: int, action: int) -> float:
        """Q(observation, action)."""
        return float(self._q[observation, action])

    def set(self, observation: int, action: int, value: float) -> None:
        """Overwrite one entry (used by tests and warm starts)."""
        self._q[observation, action] = value

    def visits(self, observation: int, action: int) -> int:
        """Number of updates applied to the pair so far."""
        return int(self._visits[observation, action])

    # ------------------------------------------------------------------ #
    # the two O(|A|) runtime operations of Q-DPM
    # ------------------------------------------------------------------ #

    def best_action(
        self,
        observation: int,
        allowed: Sequence[int],
        rng: Optional[np.random.Generator] = None,
    ) -> int:
        """Greedy action among ``allowed``; random tie-break if ``rng``.

        Raises
        ------
        ValueError
            If ``allowed`` is empty.
        """
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        row = self._q[observation, allowed]
        best = row.max()
        ties = allowed[row >= best - 1e-12]
        if rng is not None and ties.size > 1:
            return int(rng.choice(ties))
        return int(ties[0])

    def max_value(self, observation: int, allowed: Sequence[int]) -> float:
        """max_a Q(observation, a) over the allowed actions."""
        allowed = np.asarray(allowed, dtype=int)
        if allowed.size == 0:
            raise ValueError("allowed action set must be non-empty")
        return float(self._q[observation, allowed].max())

    def update_toward(
        self,
        observation: int,
        action: int,
        target: float,
        learning_rate: float,
    ) -> float:
        """Relaxation step ``Q <- (1 - lr) Q + lr * target`` (paper Eqn. 3).

        Returns the absolute change (the "temporal-difference magnitude"),
        which convergence diagnostics track.
        """
        if not 0.0 <= learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in [0, 1], got {learning_rate}")
        old = self._q[observation, action]
        new = (1.0 - learning_rate) * old + learning_rate * target
        self._q[observation, action] = new
        self._visits[observation, action] += 1
        return float(abs(new - old))

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #

    def memory_bytes(self) -> int:
        """Bytes held by the Q matrix itself (the CLAIM-MEM number)."""
        return int(self._q.nbytes)

    def greedy_actions(self, allowed_per_obs: Iterable[Sequence[int]]) -> np.ndarray:
        """Vector of greedy actions given per-observation allowed sets."""
        out = np.empty(self.n_observations, dtype=int)
        for obs, allowed in enumerate(allowed_per_obs):
            out[obs] = self.best_action(obs, allowed)
        return out

    def copy(self) -> "QTable":
        """Deep copy (used for snapshotting during experiments)."""
        clone = QTable(self.n_observations, self.n_actions)
        clone._q = self._q.copy()
        clone._visits = self._visits.copy()
        return clone

    # ------------------------------------------------------------------ #
    # persistence (warm-starting a deployed controller)
    # ------------------------------------------------------------------ #

    def save(self, path: str) -> None:
        """Persist values and visit counts to an ``.npz`` file."""
        np.savez_compressed(path, q=self._q, visits=self._visits)

    @classmethod
    def load(cls, path: str) -> "QTable":
        """Restore a table written by :meth:`save`."""
        with np.load(path) as data:
            q = data["q"]
            visits = data["visits"]
        if q.ndim != 2 or q.shape != visits.shape:
            raise ValueError(f"corrupt Q-table file {path!r}")
        table = cls(q.shape[0], q.shape[1], dtype=q.dtype.type)
        table._q = q.copy()
        table._visits = visits.astype(np.int64).copy()
        return table

    def __repr__(self) -> str:
        return f"QTable({self.n_observations}x{self.n_actions})"
