"""Watkins' Q(lambda): Q-learning with eligibility traces.

Eligibility traces propagate each TD error backward along the recent
trajectory, which matters in DPM because the consequences of a shutdown
decision (the wake-up cost, the queueing penalty while in transit)
arrive several slots after the decision.  Watkins' variant cuts the
trace on exploratory (non-greedy) actions, preserving the off-policy
convergence target.

The per-step cost is O(active traces) instead of O(1)-row — still far
from a model solve, and the trace dict is pruned below ``trace_floor``
to keep it small on embedded budgets.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .exploration import ExplorationStrategy
from .qlearning import TDAgent
from .schedules import Schedule


class WatkinsQLambdaAgent(TDAgent):
    """Tabular Watkins' Q(lambda).

    Parameters (beyond :class:`~repro.core.qlearning.TDAgent`)
    ----------
    lambda_:
        Trace decay in [0, 1); 0 recovers plain one-step Q-learning.
    trace_floor:
        Traces below this magnitude are dropped (sparse bookkeeping).
    """

    def __init__(
        self,
        n_observations: int,
        n_actions: int,
        discount: float = 0.95,
        learning_rate: Union[float, Schedule] = 0.1,
        exploration: Optional[ExplorationStrategy] = None,
        initial_q: float = 0.0,
        lambda_: float = 0.7,
        trace_floor: float = 1e-3,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= lambda_ < 1.0:
            raise ValueError(f"lambda_ must be in [0, 1), got {lambda_}")
        if trace_floor <= 0:
            raise ValueError(f"trace_floor must be > 0, got {trace_floor}")
        super().__init__(
            n_observations=n_observations,
            n_actions=n_actions,
            discount=discount,
            learning_rate=learning_rate,
            exploration=exploration,
            initial_q=initial_q,
            seed=seed,
        )
        self.lambda_ = float(lambda_)
        self.trace_floor = float(trace_floor)
        self._traces: Dict[Tuple[int, int], float] = {}

    @property
    def n_active_traces(self) -> int:
        """Current number of non-zero eligibility traces."""
        return len(self._traces)

    def reset_traces(self) -> None:
        """Clear all eligibility (episode boundary or regime reset)."""
        self._traces.clear()

    def _bootstrap(self, next_observation: int, next_allowed: Sequence[int]) -> float:
        return self.table.max_value(next_observation, next_allowed)

    def update(
        self,
        observation: int,
        action: int,
        reward: float,
        next_observation: int,
        next_allowed: Sequence[int],
        terminal: bool = False,
    ) -> float:
        """Trace-weighted TD update; returns the change at (s, a) itself."""
        current = self.table.get(observation, action)
        if terminal:
            td_error = reward - current
        else:
            td_error = (
                reward
                + self.discount * self._bootstrap(next_observation, next_allowed)
                - current
            )

        # replacing traces: the visited pair snaps to full eligibility
        self._traces[(observation, action)] = 1.0

        # Watkins' cut: traces survive only if the taken action was greedy.
        # The agent does not see the state's action mask here, so the test
        # is against all actions — conservative (may cut a trace that was
        # greedy within the allowed subset), never unsound.
        all_actions = list(range(self.table.n_actions))
        was_greedy = (
            self.table.get(observation, action)
            >= self.table.max_value(observation, all_actions) - 1e-12
        )

        lr = self.learning_rate_for(observation, action)
        delta_main = 0.0
        decay = self.discount * self.lambda_
        dead = []
        for (obs, act), trace in self._traces.items():
            change = self.table.update_toward(
                obs, act,
                self.table.get(obs, act) + td_error,
                min(1.0, lr * trace),
            )
            if (obs, act) == (observation, action):
                delta_main = change
            new_trace = trace * decay if was_greedy else 0.0
            if new_trace < self.trace_floor:
                dead.append((obs, act))
            else:
                self._traces[(obs, act)] = new_trace
        for key in dead:
            del self._traces[key]

        self._step += 1
        return delta_main
