"""The Q-DPM controller: the paper's power manager.

Couples a tabular TD agent (Q-learning by default) to a
:class:`~repro.env.SlottedDPMEnv` through an observation map.  On each
slot the controller

1. observes the system state,
2. selects a power command (epsilon-greedy over the Q-table),
3. applies it, receives the reinforcement signal (energy + performance
   penalty), and
4. performs the O(|A|) Q-update of the paper's Eqn. 3.

That loop — two table rows touched per slot, no parameter estimator, no
mode-switch controller, no policy re-optimization — is the entire runtime
of the technique, which is the paper's efficiency argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..env.observation import FullObservation, ObservationMap
from ..env.slotted_env import SlottedDPMEnv
from ..mdp import DeterministicPolicy
from .exploration import EpsilonGreedy, ExplorationStrategy
from .qlearning import QLearningAgent, TDAgent


@dataclass
class RunHistory:
    """Per-slot traces recorded by :meth:`QDPM.run`.

    Arrays are aligned: index ``i`` describes slot ``slot[i]``.  When a
    ``record_every`` stride is used, entries are per-window means (energy,
    reward, queue) over the stride.
    """

    slots: np.ndarray            #: slot index at each record point
    energy: np.ndarray           #: mean energy per slot in the window
    reward: np.ndarray           #: mean reward per slot in the window
    queue: np.ndarray            #: mean end-of-slot queue in the window
    saving_ratio: np.ndarray     #: windowed energy-saving ratio vs always-on
    td_error: np.ndarray         #: mean absolute TD change in the window

    def __len__(self) -> int:
        return int(self.slots.size)


class QDPM:
    """Q-learning dynamic power manager.

    Parameters
    ----------
    env:
        The slotted environment to control.
    agent:
        A :class:`~repro.core.qlearning.TDAgent`; defaults to Watkins'
        Q-learning with the paper's constant alpha / epsilon, sized to the
        observation space.
    observation:
        Observation map; defaults to full observability (Fig. 1 setting).
    discount, learning_rate, epsilon, seed:
        Convenience knobs forwarded to the default agent when ``agent``
        is not supplied.
    exploration:
        Exploration strategy for the default agent; ``None`` keeps the
        paper's :class:`~repro.core.exploration.EpsilonGreedy`.  Pass
        :class:`~repro.core.exploration.FixedDrawEpsilonGreedy` to
        consume the batched engine's fixed three-uniform block per slot,
        making a scalar run bit-identical to a
        :class:`~repro.runtime.BatchedQDPM` replica under matched seeds.
    """

    def __init__(
        self,
        env: SlottedDPMEnv,
        agent: Optional[TDAgent] = None,
        observation: Optional[ObservationMap] = None,
        discount: float = 0.95,
        learning_rate: float = 0.1,
        epsilon: float = 0.1,
        seed: Optional[int] = None,
        exploration: Optional[ExplorationStrategy] = None,
    ) -> None:
        self.env = env
        self.observation = (
            observation if observation is not None else FullObservation(env)
        )
        if agent is None:
            agent = QLearningAgent(
                n_observations=self.observation.n_observations,
                n_actions=env.n_actions,
                discount=discount,
                learning_rate=learning_rate,
                exploration=(
                    exploration if exploration is not None
                    else EpsilonGreedy(epsilon)
                ),
                seed=seed,
            )
        elif exploration is not None:
            raise ValueError(
                "pass exploration only when the default agent is built "
                "(agent is None); configure a supplied agent directly"
            )
        if agent.table.n_observations != self.observation.n_observations:
            raise ValueError(
                f"agent table has {agent.table.n_observations} rows but the "
                f"observation space has {self.observation.n_observations}"
            )
        if agent.table.n_actions != env.n_actions:
            raise ValueError(
                f"agent table has {agent.table.n_actions} actions but the "
                f"environment has {env.n_actions}"
            )
        self.agent = agent

    # ------------------------------------------------------------------ #
    # one slot of control — the entire runtime of Q-DPM
    # ------------------------------------------------------------------ #

    def control_step(self, learn: bool = True) -> tuple:
        """Observe, act, (optionally) learn; returns (reward, info)."""
        state = self.env.state
        obs = self.observation.observe(state)
        allowed = self.env.allowed_actions(state)
        if learn:
            action = self.agent.select_action(obs, allowed)
        else:
            action = self.agent.greedy_action(obs, allowed)
        next_state, reward, info = self.env.step(action)
        delta = 0.0
        if learn:
            next_obs = self.observation.observe(next_state)
            next_allowed = self.env.allowed_actions(next_state)
            delta = self.agent.update(
                obs, action, reward, next_obs, next_allowed
            )
        return reward, info, delta

    def run(
        self,
        n_slots: int,
        learn: bool = True,
        record_every: int = 1000,
        callback: Optional[Callable[[int], None]] = None,
    ) -> RunHistory:
        """Control the environment for ``n_slots`` slots.

        Records windowed means every ``record_every`` slots (the windowed
        energy-saving ratio is the Fig. 1 y-axis).  ``callback(slot)`` is
        invoked at each record point — experiments use it to snapshot the
        greedy policy.
        """
        if n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        if record_every < 1:
            raise ValueError(f"record_every must be >= 1, got {record_every}")
        always_on = self.env.always_on_power() * self.env.slot_length

        slots: List[int] = []
        energy: List[float] = []
        reward_hist: List[float] = []
        queue_hist: List[float] = []
        saving: List[float] = []
        td: List[float] = []

        win_energy = win_reward = win_queue = win_td = 0.0
        win_count = 0
        for _ in range(n_slots):
            reward, info, delta = self.control_step(learn=learn)
            win_energy += info.energy
            win_reward += reward
            win_queue += info.queue
            win_td += delta
            win_count += 1
            if win_count == record_every:
                slots.append(info.slot)
                energy.append(win_energy / win_count)
                reward_hist.append(win_reward / win_count)
                queue_hist.append(win_queue / win_count)
                ratio = 1.0 - (win_energy / win_count) / always_on if always_on > 0 else 0.0
                saving.append(ratio)
                td.append(win_td / win_count)
                if callback is not None:
                    callback(info.slot)
                win_energy = win_reward = win_queue = win_td = 0.0
                win_count = 0
        if win_count:
            # final partial window
            slots.append(self.env.current_slot - 1)
            energy.append(win_energy / win_count)
            reward_hist.append(win_reward / win_count)
            queue_hist.append(win_queue / win_count)
            ratio = 1.0 - (win_energy / win_count) / always_on if always_on > 0 else 0.0
            saving.append(ratio)
            td.append(win_td / win_count)
        return RunHistory(
            slots=np.asarray(slots),
            energy=np.asarray(energy),
            reward=np.asarray(reward_hist),
            queue=np.asarray(queue_hist),
            saving_ratio=np.asarray(saving),
            td_error=np.asarray(td),
        )

    # ------------------------------------------------------------------ #
    # policy extraction
    # ------------------------------------------------------------------ #

    def greedy_policy(self, prefer_visited: bool = True) -> DeterministicPolicy:
        """Greedy environment-state policy induced by the current Q-table.

        Well-defined for coarse observations too (all states sharing an
        observation share an action); with
        :class:`~repro.env.FullObservation` this is directly comparable to
        the exact solver's policy.

        ``prefer_visited`` (default) restricts the per-state argmax to
        actions that have received at least one Q-update whenever any
        exist, and falls back to the home-state command otherwise.
        Without it, never-updated entries retain their (optimistic)
        initial value and a frozen extraction can "choose" actions the
        agent never tried — good for exploration while learning, nonsense
        in a deployed snapshot.
        """
        table = self.agent.table
        home_action = self.env.mode_space.action_index(
            self.env.device.initial_state
        )
        actions = np.empty(self.env.n_states, dtype=int)
        for state in range(self.env.n_states):
            obs = self.observation.observe(state)
            allowed = self.env.allowed_actions(state)
            if prefer_visited:
                visited = [a for a in allowed if table.visits(obs, a) > 0]
                if visited:
                    actions[state] = table.best_action(obs, visited)
                elif home_action in allowed:
                    actions[state] = home_action
                else:
                    actions[state] = allowed[0]
            else:
                actions[state] = self.agent.greedy_action(obs, allowed)
        return DeterministicPolicy(actions)
