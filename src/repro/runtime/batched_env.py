"""Lock-step batched slotted environment: B replicas per NumPy op.

:class:`BatchedSlottedEnv` advances B independent copies of
:class:`~repro.env.SlottedDPMEnv` one slot at a time with vectorized
service/arrival draws, queue updates, reward computation, and per-replica
totals.  Semantics are bit-for-bit those of the scalar environment:

- the state encoding (``mode * (queue_capacity + 1) + queue``), the
  mode-space step effects, and the reward formula are identical;
- each replica owns its own ``numpy`` PCG64 stream seeded exactly as a
  scalar env would be, and consumes draws in the scalar order (service
  draw only when the post-effect slot can service a non-empty queue,
  then the arrival draw) — so replica ``i`` of a batched run reproduces
  a scalar run seeded ``seeds[i]`` to the last bit.

The per-slot cost is O(B) generator calls plus a constant number of
vectorized array ops, instead of the scalar path's O(B) full Python
interpreter round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..device import PowerStateMachine
from ..env.slotted_env import EnvTotals
from ..env.states import ModeSpace
from ..workload.nonstationary import ConstantRate, RateSchedule


def _resolve_seeds(
    seeds: Optional[Union[int, Sequence[Optional[int]]]], n_replicas: int
) -> List[Optional[int]]:
    """Per-replica seed list: int -> consecutive block, sequence -> as-is."""
    if seeds is None:
        return [None] * n_replicas
    if isinstance(seeds, (int, np.integer)):
        return [int(seeds) + i for i in range(n_replicas)]
    seeds = list(seeds)
    if len(seeds) != n_replicas:
        raise ValueError(
            f"got {len(seeds)} seeds for {n_replicas} replicas"
        )
    return [None if s is None else int(s) for s in seeds]


@dataclass
class BatchStepInfo:
    """Per-slot diagnostics for all replicas (vector twin of ``StepInfo``)."""

    slot: int                #: slot index just simulated (same for all replicas)
    energy: np.ndarray       #: (B,) energy charged this slot
    queue: np.ndarray        #: (B,) queue length at slot end
    arrived: np.ndarray      #: (B,) bool — a request arrived
    served: np.ndarray       #: (B,) bool — a request completed
    lost: np.ndarray         #: (B,) bool — an arrival was dropped
    modes: np.ndarray        #: (B,) mode index at slot end
    arrival_rate: float      #: schedule rate used this slot (lock-step)


@dataclass
class BatchedEnvTotals:
    """Per-replica cumulative counters (vector twin of ``EnvTotals``).

    Construct via :meth:`zeros` — the array fields are sized by the
    batch width, so there are no defaults.
    """

    slots: int
    energy: np.ndarray
    queue_integral: np.ndarray
    arrivals: np.ndarray
    completions: np.ndarray
    losses: np.ndarray

    @classmethod
    def zeros(cls, n_replicas: int) -> "BatchedEnvTotals":
        return cls(
            slots=0,
            energy=np.zeros(n_replicas),
            queue_integral=np.zeros(n_replicas),
            arrivals=np.zeros(n_replicas, dtype=np.int64),
            completions=np.zeros(n_replicas, dtype=np.int64),
            losses=np.zeros(n_replicas, dtype=np.int64),
        )

    def replica(self, i: int) -> EnvTotals:
        """Scalar :class:`~repro.env.EnvTotals` view of replica ``i``."""
        return EnvTotals(
            slots=self.slots,
            energy=float(self.energy[i]),
            queue_integral=float(self.queue_integral[i]),
            arrivals=int(self.arrivals[i]),
            completions=int(self.completions[i]),
            losses=int(self.losses[i]),
        )

    def mean_power(self, slot_length: float) -> np.ndarray:
        """Per-replica average power (watts)."""
        if self.slots == 0:
            return np.zeros_like(self.energy)
        return self.energy / (self.slots * slot_length)

    def mean_queue(self) -> np.ndarray:
        """Per-replica time-average queue length."""
        if self.slots == 0:
            return np.zeros_like(self.queue_integral)
        return self.queue_integral / self.slots

    def loss_rate(self) -> np.ndarray:
        """Per-replica fraction of arrivals dropped."""
        arrivals = np.maximum(self.arrivals, 1)
        return np.where(self.arrivals > 0, self.losses / arrivals, 0.0)


class BatchedSlottedEnv:
    """B lock-step replicas of :class:`~repro.env.SlottedDPMEnv`.

    Parameters mirror the scalar environment; ``n_replicas`` sets the
    batch width B and ``seeds`` the per-replica RNG streams (an int is
    expanded to the consecutive block ``seed, seed+1, ...``; a sequence
    is used verbatim, matching ``SlottedDPMEnv(seed=seeds[i])``).

    ``rng_mode`` trades exactness against speed:

    - ``"replica"`` (default) — one PCG64 stream per replica, consumed in
      the scalar draw order: replica ``i`` is bit-for-bit a scalar env
      seeded ``seeds[i]``.  Costs O(B) generator calls per slot.
    - ``"shared"`` — one generator draws a ``(2, B)`` uniform block per
      slot (service row, arrival row; the service row is consumed even
      when unused so the stream layout is slot-indexed).  Statistically
      identical, not stream-matched to any scalar run, and the fastest
      path at large B.
    """

    def __init__(
        self,
        device: PowerStateMachine,
        schedule: Optional[RateSchedule] = None,
        n_replicas: int = 1,
        slot_length: float = 1.0,
        queue_capacity: int = 8,
        p_serve: float = 1.0,
        perf_weight: float = 0.5,
        loss_penalty: float = 2.0,
        seeds: Optional[Union[int, Sequence[Optional[int]]]] = None,
        rng_mode: str = "replica",
    ) -> None:
        if n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {n_replicas}")
        if rng_mode not in ("replica", "shared"):
            raise ValueError(
                f"rng_mode must be 'replica' or 'shared', got {rng_mode!r}"
            )
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if not 0.0 < p_serve <= 1.0:
            raise ValueError(f"p_serve must be in (0, 1], got {p_serve}")
        if perf_weight < 0 or loss_penalty < 0:
            raise ValueError("perf_weight and loss_penalty must be >= 0")
        self.device = device
        self.mode_space = ModeSpace(device, slot_length)
        self.tables = self.mode_space.dense_tables()
        self.schedule = schedule if schedule is not None else ConstantRate(0.1)
        self.n_replicas = int(n_replicas)
        self.slot_length = float(slot_length)
        self.queue_capacity = int(queue_capacity)
        self.p_serve = float(p_serve)
        self.perf_weight = float(perf_weight)
        self.loss_penalty = float(loss_penalty)
        self.rng_mode = rng_mode
        self._seed_rngs(seeds)

        start = self.mode_space.steady_mode_index(device.initial_state)
        self._modes = np.full(n_replicas, start, dtype=np.int64)
        self._queues = np.zeros(n_replicas, dtype=np.int64)
        self._slot = 0
        self.totals = BatchedEnvTotals.zeros(n_replicas)

    def _seed_rngs(
        self, seeds: Optional[Union[int, Sequence[Optional[int]]]]
    ) -> None:
        resolved = _resolve_seeds(seeds, self.n_replicas)
        if self.rng_mode == "replica":
            self._rngs = [np.random.default_rng(s) for s in resolved]
            self._draw = [rng.random for rng in self._rngs]
            self._shared_rng = None
        else:
            entropy = None if all(s is None for s in resolved) else [
                0 if s is None else s for s in resolved
            ]
            self._rngs = []
            self._draw = []
            self._shared_rng = np.random.default_rng(entropy)

    # ------------------------------------------------------------------ #
    # state indexing (same encoding as the scalar env)
    # ------------------------------------------------------------------ #

    @property
    def n_states(self) -> int:
        """Per-replica state count: modes x queue levels."""
        return self.mode_space.n_modes * (self.queue_capacity + 1)

    @property
    def n_actions(self) -> int:
        """Global action count (one per device power state)."""
        return self.mode_space.n_actions

    @property
    def states(self) -> np.ndarray:
        """(B,) flattened state indices."""
        return self._modes * (self.queue_capacity + 1) + self._queues

    @property
    def modes(self) -> np.ndarray:
        """(B,) current mode indices (copy)."""
        return self._modes.copy()

    @property
    def queues(self) -> np.ndarray:
        """(B,) current queue lengths (copy)."""
        return self._queues.copy()

    @property
    def current_slot(self) -> int:
        """Index of the next slot to be simulated (lock-step)."""
        return self._slot

    def allowed_mask(self, states: Optional[np.ndarray] = None) -> np.ndarray:
        """(B, n_actions) legality mask for the given (or current) states."""
        if states is None:
            modes = self._modes
        else:
            modes = np.asarray(states, dtype=np.int64) // (self.queue_capacity + 1)
        return self.tables.allowed[modes]

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def reset(
        self,
        seeds: Optional[Union[int, Sequence[Optional[int]]]] = None,
        queue: int = 0,
        mode: Optional[str] = None,
    ) -> np.ndarray:
        """Restart every replica; returns the (B,) initial state vector."""
        if seeds is not None:
            self._seed_rngs(seeds)
        start = mode if mode is not None else self.device.initial_state
        self._modes[:] = self.mode_space.steady_mode_index(start)
        if not 0 <= queue <= self.queue_capacity:
            raise ValueError(f"queue out of range: {queue}")
        self._queues[:] = int(queue)
        self._slot = 0
        self.totals = BatchedEnvTotals.zeros(self.n_replicas)
        return self.states

    def set_schedule(self, schedule: RateSchedule) -> None:
        """Swap the arrival schedule (phase changes keep RNG streams)."""
        self.schedule = schedule

    def step(
        self, actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, BatchStepInfo]:
        """Advance every replica one slot under ``actions`` (B,).

        Returns ``(next_states, rewards, info)`` — all vectors.

        Raises
        ------
        KeyError
            If any replica's action is not allowed in its current mode.
        """
        actions = np.asarray(actions, dtype=np.int64)
        if actions.shape != (self.n_replicas,):
            raise ValueError(
                f"actions must have shape ({self.n_replicas},), got {actions.shape}"
            )
        out_of_range = (actions < 0) | (actions >= self.n_actions)
        if out_of_range.any():
            bad = int(np.nonzero(out_of_range)[0][0])
            raise KeyError(
                f"action index {int(actions[bad])} out of range "
                f"[0, {self.n_actions}) (replica {bad})"
            )
        tables = self.tables
        modes = self._modes
        next_modes = tables.next_mode[modes, actions]
        if (next_modes < 0).any():
            bad = int(np.nonzero(next_modes < 0)[0][0])
            raise KeyError(
                f"action {self.mode_space.action_names[int(actions[bad])]!r} "
                f"not allowed in mode "
                f"{self.mode_space.mode(int(modes[bad])).label!r} "
                f"(replica {bad})"
            )
        energy = tables.energy[modes, actions]
        rate = self.schedule.rate_at(self._slot)

        need_serve = tables.can_service[modes, actions] & (self._queues > 0)
        if self._shared_rng is not None:
            # one (2, B) block per slot: service row, arrival row
            draws = self._shared_rng.random((2, self.n_replicas)).T
        else:
            # scalar draw order per replica: service (conditional), then
            # arrival — tuple elements evaluate left-to-right, so each
            # replica's stream is consumed exactly as its scalar twin's
            draws = np.array([
                (d(), d()) if n else (2.0, d())
                for n, d in zip(need_serve.tolist(), self._draw)
            ])
        served = need_serve & (draws[:, 0] < self.p_serve)
        queues = self._queues - served
        arrived = draws[:, 1] < rate
        lost = arrived & (queues >= self.queue_capacity)
        queues = queues + (arrived & ~lost)

        rewards = (
            -energy
            - self.perf_weight * queues
            - self.loss_penalty * lost
        )

        info = BatchStepInfo(
            slot=self._slot,
            energy=energy,
            queue=queues,
            arrived=arrived,
            served=served,
            lost=lost,
            modes=next_modes,
            arrival_rate=rate,
        )

        self.totals.slots += 1
        self.totals.energy += energy
        self.totals.queue_integral += queues
        self.totals.arrivals += arrived
        self.totals.completions += served
        self.totals.losses += lost

        self._modes = next_modes
        self._queues = queues
        self._slot += 1
        return self.states, rewards, info

    # ------------------------------------------------------------------ #
    # reference quantities
    # ------------------------------------------------------------------ #

    def always_on_power(self) -> float:
        """Power of keeping the device in its home (servicing) state."""
        return self.device.state(self.device.initial_state).power

    def energy_saving_ratio(self) -> np.ndarray:
        """(B,) per-replica episode energy saving vs. always-on."""
        if self.totals.slots == 0:
            return np.zeros(self.n_replicas)
        baseline = self.always_on_power() * self.slot_length * self.totals.slots
        if baseline <= 0:
            return np.zeros(self.n_replicas)
        return 1.0 - self.totals.energy / baseline

    def __repr__(self) -> str:
        return (
            f"BatchedSlottedEnv(device={self.device.name!r}, "
            f"replicas={self.n_replicas}, states={self.n_states}, "
            f"actions={self.n_actions}, qcap={self.queue_capacity})"
        )
