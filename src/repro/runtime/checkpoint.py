"""Checkpoint/resume for chunked sweeps: an append-only result journal.

A sweep is a list of pure work units (chunks); each chunk's result is a
pure function of its picklable argument tuple.  That makes resumption
trivially sound: journal every completed chunk result keyed by
``(spec-hash, chunk-id)``, and on restart recompute only the chunks the
journal does not already hold — the merged results are bit-identical to
an uninterrupted run because *which process computed a chunk, and when,
never influences its bits* (the determinism contract the executor layer
already guarantees for any ``(chunk_size, n_jobs)``).

The journal is a single file of consecutive :mod:`pickle` records,
appended and flushed (+ fsynced) per chunk, so a run killed mid-sweep
loses at most the chunk in flight.  Two corruption modes are handled
separately:

- a **torn tail** — the kill arriving mid-write — breaks the outer
  pickle framing and ends the scan silently; every complete record
  before it is still honored;
- a **corrupt record body** — bit rot, a partial overwrite — is caught
  by the per-record CRC32 checksum each record carries: the outer
  framing still parses, the checksum mismatch is warned about, and the
  scan *continues* past it (a torn tail can only lose the final chunk;
  bit rot can hit any record).  Journals written before the checksum
  existed load unchanged.

The spec hash stored in every record guards against resuming with a
different sweep configuration: :func:`run_chunks_checkpointed` raises
:class:`CheckpointMismatchError` — instead of silently recomputing
everything — when an existing journal holds valid records but none for
the current spec key.  The hash must cover everything that shapes the
task list, including the chunk size, since chunk identity (not just
cell identity) is the journal key.

:func:`run_chunks_checkpointed` is also where sweeps become
interrupt-safe: SIGINT/SIGTERM during chunk collection tears the pool
down cleanly and surfaces as
:class:`~repro.runtime.verify.SweepInterrupted` with a one-line resume
hint — every chunk journaled before the signal is preserved, so the
resumed run completes bit-identically.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
import zlib
from pathlib import Path
from typing import (
    Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union,
)

from .executor import ChunkExecutionError, Executor
from .telemetry import TELEMETRY
from .verify import SweepInterrupted, _InterruptSignal, trap_signals


def spec_hash(*parts: Any) -> str:
    """Deterministic digest of picklable spec components.

    Pickle bytes of plain dataclasses / primitives are stable across
    runs and processes (insertion-ordered dicts, no address-dependent
    state), so the digest is a reliable identity for "the same sweep
    configuration".  Pass every input that shapes the task list —
    the spec itself *and* the chunking parameters.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(pickle.dumps(part, protocol=4))
    return digest.hexdigest()[:16]


class CheckpointMismatchError(RuntimeError):
    """An existing journal holds no records for the current spec key.

    Resuming would silently recompute the whole sweep while appending a
    second configuration's records to a journal the operator believes
    matches — almost always a changed spec or chunk size, or the wrong
    ``--checkpoint`` path.  Start a fresh journal (the CLI's
    non-``--resume`` path truncates automatically) or point at the
    right one.
    """

    def __init__(self, path: Union[str, Path], spec_key: str,
                 found_keys: Sequence[str]) -> None:
        self.path = str(path)
        self.spec_key = str(spec_key)
        self.found_keys = sorted(set(found_keys))
        super().__init__(
            f"checkpoint journal {self.path} holds no records for spec "
            f"{self.spec_key} (found spec keys: "
            f"{', '.join(self.found_keys)}) — the sweep configuration or "
            f"chunk size changed, or this is the wrong journal; delete "
            f"the file or drop --resume to start fresh"
        )


class CheckpointJournal:
    """Append-only ``(spec-hash, chunk-id) -> result`` journal file."""

    def __init__(self, path: Union[str, Path], spec_key: str) -> None:
        self.path = Path(path)
        self.spec_key = str(spec_key)

    def scan(self) -> Tuple[Dict[int, Any], Set[str], int]:
        """Full journal scan: ``(results, seen_spec_keys, n_corrupt)``.

        ``results`` holds this spec key's completed chunks;
        ``seen_spec_keys`` every spec key with at least one valid record
        (so callers can distinguish "empty journal" from "journal for a
        different sweep"); ``n_corrupt`` counts checksum-failed records
        that were skipped.  A truncated trailing record (interrupted
        mid-write) ends the scan silently — every complete record
        before it is still honored.
        """
        results: Dict[int, Any] = {}
        seen: Set[str] = set()
        n_corrupt = 0
        if not self.path.exists():
            return results, seen, n_corrupt
        with open(self.path, "rb") as fh:
            while True:
                try:
                    framed = pickle.load(fh)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, ValueError,
                        IndexError, ImportError):
                    # torn tail: the writer died mid-record
                    break
                record = self._unwrap(framed)
                if record is None:
                    n_corrupt += 1
                    continue
                key = record.get("spec")
                if key is not None:
                    seen.add(key)
                if key == self.spec_key:
                    results[int(record["chunk"])] = record["result"]
        if n_corrupt:
            warnings.warn(
                f"checkpoint journal {self.path}: skipped {n_corrupt} "
                f"corrupt record(s) (CRC mismatch); the affected chunks "
                f"will be recomputed",
                RuntimeWarning,
                stacklevel=2,
            )
        return results, seen, n_corrupt

    def load(self) -> Dict[int, Any]:
        """Completed chunk results recorded for this spec key.

        Records from other spec keys are skipped, checksum-failed
        records are skipped with a warning, and a truncated trailing
        record ends the scan silently.
        """
        return self.scan()[0]

    @staticmethod
    def _unwrap(framed: Any) -> Optional[Dict[str, Any]]:
        """Inner record of one framed journal entry, or ``None`` when
        the entry fails its checksum (corrupt body, intact framing)."""
        if not isinstance(framed, dict):
            return None
        if "payload" in framed:
            payload = framed["payload"]
            if zlib.crc32(payload) != framed.get("crc"):
                return None
            try:
                record = pickle.loads(payload)
            except Exception:
                return None
            return record if isinstance(record, dict) else None
        # legacy checksum-less record: the dict is the record itself
        return framed if "spec" in framed else None

    def append(self, chunk_id: int, result: Any) -> None:
        """Durably record one completed chunk result.

        The record body is pickled first and wrapped with its CRC32, so
        a reader can tell a corrupt body from a valid one without
        trusting the bytes it is about to unpickle.
        """
        payload = pickle.dumps(
            {"spec": self.spec_key, "chunk": int(chunk_id),
             "result": result},
            protocol=4,
        )
        framed = {"crc": zlib.crc32(payload), "payload": payload}
        with open(self.path, "ab") as fh:
            pickle.dump(framed, fh, protocol=4)
            fh.flush()
            os.fsync(fh.fileno())


def run_chunks_checkpointed(
    executor: Executor,
    fn: Callable[..., Any],
    tasks: Sequence[Tuple],
    spec_key: str,
    checkpoint: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.5,
    diagnostics_dir: Optional[Union[str, Path]] = None,
    spec: Any = None,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Run chunked work units with optional resilience and checkpointing.

    The single entry point the sweep runners share: fan ``tasks`` across
    ``executor`` with the per-chunk ``timeout`` / ``max_retries`` /
    ``retry_backoff`` contract of
    :meth:`~repro.runtime.executor.MultiprocessExecutor.submit_all`, and
    — when ``checkpoint`` names a journal file — skip chunks already
    recorded under ``spec_key`` and journal each fresh result as it is
    collected.  Returns ``(results, execution)`` where ``results`` is in
    task order (resumed and fresh chunks interleaved transparently) and
    ``execution`` records what happened: resumed/computed chunk counts
    and the retry/timeout/degrade event log.

    Interruption is first-class: SIGINT (and SIGTERM, trapped for the
    call's span) tears the pool down cleanly and raises
    :class:`~repro.runtime.verify.SweepInterrupted` carrying how many
    chunks were journaled and where — since every collected chunk was
    already fsynced by the ``on_result`` hook, the resumed run is
    bit-identical to an uninterrupted one.

    With ``diagnostics_dir`` set, an unrecoverable
    :class:`~repro.runtime.executor.ChunkExecutionError` additionally
    writes a minimal-repro JSON bundle (``spec`` rides along for the
    bundle's spec field) before propagating.

    Raises :class:`CheckpointMismatchError` when an existing journal
    holds valid records but none for ``spec_key`` — a silent full
    recompute is almost always a misconfiguration, not an intent.

    Chunk identity is positional: ``tasks[i]`` must be the same work
    unit on every invocation with the same ``spec_key`` (hash the
    chunking parameters into the key to guarantee it).
    """
    tasks = list(tasks)
    journal = None
    done: Dict[int, Any] = {}
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint, spec_key)
        recorded, seen_keys, _ = journal.scan()
        if tasks and seen_keys and spec_key not in seen_keys:
            raise CheckpointMismatchError(checkpoint, spec_key, seen_keys)
        done = {i: r for i, r in recorded.items() if i < len(tasks)}
    todo = [i for i in range(len(tasks)) if i not in done]
    TELEMETRY.inc("checkpoint.chunks_resumed", len(done))
    TELEMETRY.inc("checkpoint.chunks_computed", len(todo))

    # journaled-progress counter shared with the interrupt path: each
    # collected chunk bumps it *after* the journal fsync, so the resume
    # hint never overstates what survived
    progress = [len(done)]
    reporter = TELEMETRY.progress_reporter(
        total=len(tasks), done=len(done),
        workers=getattr(executor, "n_jobs", 1), label="sweep",
    )

    def on_result(j: int, result: Any) -> None:
        if journal is not None:
            journal.append(todo[j], result)
        progress[0] += 1
        if reporter is not None:
            reporter.update(progress[0])

    pending = None
    try:
        with trap_signals():
            pending = executor.submit_all(
                fn, [tasks[i] for i in todo],
                timeout=timeout, max_retries=max_retries,
                retry_backoff=retry_backoff, on_result=on_result,
            )
            fresh = pending.get()
        if reporter is not None:
            reporter.finish()
    except ChunkExecutionError as exc:
        # re-key from the submitted-subset index space to task order,
        # so the error names the chunk the caller knows (completed
        # results were already journaled via on_result, so a resumed
        # run picks up right behind the failure)
        remapped = ChunkExecutionError(
            todo[exc.chunk_index], exc.task,
            {todo[j]: r for j, r in exc.completed.items()}, exc.events,
        )
        if diagnostics_dir is not None:
            from .verify import bundle_for_exception

            bundle_for_exception(diagnostics_dir, remapped, spec=spec,
                                 spec_key=spec_key)
        raise remapped from exc.__cause__
    except (KeyboardInterrupt, _InterruptSignal) as exc:
        if pending is not None:
            pending.cancel()
        name = getattr(exc, "signal_name", "SIGINT")
        raise SweepInterrupted(
            name, progress[0], len(tasks),
            checkpoint=checkpoint,
        ) from None
    results = list(done.get(i) for i in range(len(tasks)))
    for j, i in enumerate(todo):
        results[i] = fresh[j]
    execution: Dict[str, Any] = {
        "resumed_chunks": len(done),
        "computed_chunks": len(todo),
        "resilience_events": list(pending.events),
    }
    if checkpoint is not None:
        execution["checkpoint"] = str(checkpoint)
    return results, execution
