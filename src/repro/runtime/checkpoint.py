"""Checkpoint/resume for chunked sweeps: an append-only result journal.

A sweep is a list of pure work units (chunks); each chunk's result is a
pure function of its picklable argument tuple.  That makes resumption
trivially sound: journal every completed chunk result keyed by
``(spec-hash, chunk-id)``, and on restart recompute only the chunks the
journal does not already hold — the merged results are bit-identical to
an uninterrupted run because *which process computed a chunk, and when,
never influences its bits* (the determinism contract the executor layer
already guarantees for any ``(chunk_size, n_jobs)``).

The journal is a single file of consecutive :mod:`pickle` records,
appended and flushed (+ fsynced) per chunk, so a run killed mid-sweep
loses at most the chunk in flight.  A truncated trailing record — the
kill arriving mid-write — is detected and ignored on load.  The spec
hash stored in every record guards against resuming with a different
sweep configuration: foreign records are skipped, so one journal file
can even host successive different sweeps without confusion.  The hash
must cover everything that shapes the task list — including the chunk
size, since chunk identity (not just cell identity) is the journal key.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .executor import ChunkExecutionError, Executor


def spec_hash(*parts: Any) -> str:
    """Deterministic digest of picklable spec components.

    Pickle bytes of plain dataclasses / primitives are stable across
    runs and processes (insertion-ordered dicts, no address-dependent
    state), so the digest is a reliable identity for "the same sweep
    configuration".  Pass every input that shapes the task list —
    the spec itself *and* the chunking parameters.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(pickle.dumps(part, protocol=4))
    return digest.hexdigest()[:16]


class CheckpointJournal:
    """Append-only ``(spec-hash, chunk-id) -> result`` journal file."""

    def __init__(self, path: Union[str, Path], spec_key: str) -> None:
        self.path = Path(path)
        self.spec_key = str(spec_key)

    def load(self) -> Dict[int, Any]:
        """Completed chunk results recorded for this spec key.

        Records from other spec keys are skipped; a truncated trailing
        record (interrupted mid-write) ends the scan silently — every
        complete record before it is still honored.
        """
        results: Dict[int, Any] = {}
        if not self.path.exists():
            return results
        with open(self.path, "rb") as fh:
            while True:
                try:
                    record = pickle.load(fh)
                except EOFError:
                    break
                except (pickle.UnpicklingError, AttributeError, ValueError,
                        IndexError, ImportError):
                    # torn tail: the writer died mid-record
                    break
                if record.get("spec") == self.spec_key:
                    results[int(record["chunk"])] = record["result"]
        return results

    def append(self, chunk_id: int, result: Any) -> None:
        """Durably record one completed chunk result."""
        record = {"spec": self.spec_key, "chunk": int(chunk_id),
                  "result": result}
        with open(self.path, "ab") as fh:
            pickle.dump(record, fh, protocol=4)
            fh.flush()
            os.fsync(fh.fileno())


def run_chunks_checkpointed(
    executor: Executor,
    fn: Callable[..., Any],
    tasks: Sequence[Tuple],
    spec_key: str,
    checkpoint: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
    max_retries: int = 0,
    retry_backoff: float = 0.5,
) -> Tuple[List[Any], Dict[str, Any]]:
    """Run chunked work units with optional resilience and checkpointing.

    The single entry point the sweep runners share: fan ``tasks`` across
    ``executor`` with the per-chunk ``timeout`` / ``max_retries`` /
    ``retry_backoff`` contract of
    :meth:`~repro.runtime.executor.MultiprocessExecutor.submit_all`, and
    — when ``checkpoint`` names a journal file — skip chunks already
    recorded under ``spec_key`` and journal each fresh result as it is
    collected.  Returns ``(results, execution)`` where ``results`` is in
    task order (resumed and fresh chunks interleaved transparently) and
    ``execution`` records what happened: resumed/computed chunk counts
    and the retry/timeout/degrade event log.

    Chunk identity is positional: ``tasks[i]`` must be the same work
    unit on every invocation with the same ``spec_key`` (hash the
    chunking parameters into the key to guarantee it).
    """
    tasks = list(tasks)
    journal = None
    done: Dict[int, Any] = {}
    if checkpoint is not None:
        journal = CheckpointJournal(checkpoint, spec_key)
        done = {i: r for i, r in journal.load().items() if i < len(tasks)}
    todo = [i for i in range(len(tasks)) if i not in done]

    on_result = None
    if journal is not None:
        def on_result(j: int, result: Any, _todo=todo, _journal=journal):
            _journal.append(_todo[j], result)

    try:
        pending = executor.submit_all(
            fn, [tasks[i] for i in todo],
            timeout=timeout, max_retries=max_retries,
            retry_backoff=retry_backoff, on_result=on_result,
        )
        fresh = pending.get()
    except ChunkExecutionError as exc:
        # re-key from the submitted-subset index space to task order,
        # so the error names the chunk the caller knows (completed
        # results were already journaled via on_result, so a resumed
        # run picks up right behind the failure)
        remapped = ChunkExecutionError(
            todo[exc.chunk_index], exc.task,
            {todo[j]: r for j, r in exc.completed.items()}, exc.events,
        )
        raise remapped from exc.__cause__
    results = list(done.get(i) for i in range(len(tasks)))
    for j, i in enumerate(todo):
        results[i] = fresh[j]
    execution: Dict[str, Any] = {
        "resumed_chunks": len(done),
        "computed_chunks": len(todo),
        "resilience_events": list(pending.events),
    }
    if checkpoint is not None:
        execution["checkpoint"] = str(checkpoint)
    return results, execution
