"""Batched Q-DPM: B independent learners trained in one lock-step loop.

Each replica is a *separate* Q-DPM training run (its own seed, its own
Q-table), but all B tables live as disjoint row blocks of one
:class:`~repro.core.QTable` with ``B * n_states`` rows, so one slot of
training for all replicas is:

1. one masked argmax over the padded allowed-action table for the
   greedy actions (ties break in allowed-list order, like the scalar
   agent's deterministic branch),
2. one vectorized epsilon-greedy overwrite for exploration,
3. one :meth:`BatchedSlottedEnv.step`,
4. one masked-max bootstrap + one :meth:`QTable.batch_update`.

Replica row blocks are disjoint, so the vectorized update is exactly B
sequential scalar updates.  The *environment* trajectories are bit-exact
per replica (see :mod:`repro.runtime.batched_env`).  Exploration is also
per-replica: each replica owns its own generator (seeded ``seed + i``
for an int seed — the scalar experiments' ``agent seed = env seed + 1``
convention composes naturally), drawing a fixed three-uniform block per
slot (explore?, random-action pick, tie-break pick).  That makes every
seed's trained outcome independent of how seeds are chunked into
batches, and matches the scalar agent's *distribution* — including
uniform random tie-breaking among near-max Q-values during training —
though not its exact stream layout (the scalar path consumes a variable
number of draws per slot, which cannot be vectorized without
serializing the loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Union

import numpy as np

from ..core.qdpm import RunHistory
from ..core.qtable import QTable
from ..core.schedules import Schedule
from ..mdp import DeterministicPolicy
from .batched_env import BatchedSlottedEnv, _resolve_seeds


@dataclass
class BatchRunHistory:
    """Windowed per-replica traces recorded by :meth:`BatchedQDPM.run`.

    ``slots`` has shape ``(n_records,)``; every other array has shape
    ``(n_records, B)`` — column ``i`` is replica ``i``'s trace.
    """

    slots: np.ndarray
    energy: np.ndarray
    reward: np.ndarray
    queue: np.ndarray
    saving_ratio: np.ndarray
    td_error: np.ndarray

    def __len__(self) -> int:
        return int(self.slots.size)

    @property
    def n_replicas(self) -> int:
        return int(self.reward.shape[1])

    def replica(self, i: int) -> RunHistory:
        """Scalar :class:`~repro.core.RunHistory` view of replica ``i``."""
        return RunHistory(
            slots=self.slots.copy(),
            energy=self.energy[:, i].copy(),
            reward=self.reward[:, i].copy(),
            queue=self.queue[:, i].copy(),
            saving_ratio=self.saving_ratio[:, i].copy(),
            td_error=self.td_error[:, i].copy(),
        )

    def mean_history(self) -> RunHistory:
        """Across-replica mean trace (the sweep's headline curve)."""
        return RunHistory(
            slots=self.slots.copy(),
            energy=self.energy.mean(axis=1),
            reward=self.reward.mean(axis=1),
            queue=self.queue.mean(axis=1),
            saving_ratio=self.saving_ratio.mean(axis=1),
            td_error=self.td_error.mean(axis=1),
        )


def run_lockstep(
    env: BatchedSlottedEnv,
    step_fn: Callable[[], tuple],
    n_slots: int,
    record_every: int = 1000,
    callback: Optional[Callable[[int], None]] = None,
) -> BatchRunHistory:
    """Drive ``step_fn`` for ``n_slots`` with QDPM-style window recording.

    ``step_fn() -> (rewards, info, deltas)`` advances every replica one
    slot.  Windowing matches :meth:`repro.core.QDPM.run`: per-window
    means every ``record_every`` slots plus a final partial window;
    ``callback(slot)`` fires at each full-window record point.  This is
    the single recording loop behind both the batched learner and the
    fixed-policy rollouts.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    if record_every < 1:
        raise ValueError(f"record_every must be >= 1, got {record_every}")
    b = env.n_replicas
    always_on = env.always_on_power() * env.slot_length

    slots: List[int] = []
    records: List[np.ndarray] = []

    win = np.zeros((4, b))  # energy, reward, queue, td
    win_count = 0

    def flush(slot_index: int) -> None:
        means = win / win_count
        saving = (
            1.0 - means[0] / always_on if always_on > 0 else np.zeros(b)
        )
        slots.append(slot_index)
        records.append(
            np.stack([means[0], means[1], means[2], saving, means[3]])
        )

    for _ in range(n_slots):
        rewards, info, deltas = step_fn()
        win[0] += info.energy
        win[1] += rewards
        win[2] += info.queue
        win[3] += deltas
        win_count += 1
        if win_count == record_every:
            flush(info.slot)
            if callback is not None:
                callback(info.slot)
            win[:] = 0.0
            win_count = 0
    if win_count:
        flush(env.current_slot - 1)

    stacked = np.stack(records)  # (n_records, 5, B)
    return BatchRunHistory(
        slots=np.asarray(slots),
        energy=stacked[:, 0, :],
        reward=stacked[:, 1, :],
        queue=stacked[:, 2, :],
        saving_ratio=stacked[:, 3, :],
        td_error=stacked[:, 4, :],
    )


class BatchedQDPM:
    """Lock-step trainer for B independent Q-DPM seeds.

    Parameters
    ----------
    env:
        A :class:`BatchedSlottedEnv` (its ``n_replicas`` fixes B).
    discount, learning_rate, epsilon, initial_q:
        The scalar Q-DPM hyperparameters, shared by every replica.
        ``learning_rate`` may be a float or a per-pair-visit
        :class:`~repro.core.schedules.Schedule`.
    seed:
        Per-replica exploration streams: an int expands to the
        consecutive block ``seed, seed + 1, ...``; a sequence of length
        B is used verbatim; ``None`` draws fresh entropy per replica.
        Replica ``i``'s trained outcome depends only on its own env and
        exploration seeds — never on batch composition.
    """

    def __init__(
        self,
        env: BatchedSlottedEnv,
        discount: float = 0.95,
        learning_rate: Union[float, Schedule] = 0.1,
        epsilon: float = 0.1,
        initial_q: float = 0.0,
        seed: Optional[Union[int, list]] = None,
    ) -> None:
        if not 0.0 <= discount < 1.0:
            raise ValueError(f"discount must be in [0, 1), got {discount}")
        if isinstance(learning_rate, Schedule):
            self._lr_schedule: Optional[Schedule] = learning_rate
            self._lr_const = 0.0
        else:
            if not 0.0 <= learning_rate <= 1.0:
                raise ValueError(
                    f"learning_rate must be in [0, 1], got {learning_rate}"
                )
            self._lr_schedule = None
            self._lr_const = float(learning_rate)
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.env = env
        self.discount = float(discount)
        self.epsilon = float(epsilon)
        b, s = env.n_replicas, env.n_states
        self.table = QTable(b * s, env.n_actions, initial_value=initial_q)
        self._offsets = np.arange(b, dtype=np.int64) * s
        self._replica_arange = np.arange(b)
        self._pad_arange = np.arange(env.tables.allowed_padded.shape[1])
        self._rngs = [
            np.random.default_rng(sd) for sd in _resolve_seeds(seed, b)
        ]
        # each learning slot consumes exactly DRAWS_PER_SLOT uniforms per
        # replica, so streams can be pre-drawn in blocks: same values in
        # the same order as per-slot calls, with the O(B) generator loop
        # amortized over _DRAW_BLOCK_SLOTS slots.
        self._draw_block = np.empty((b, self.DRAWS_PER_SLOT * self._DRAW_BLOCK_SLOTS))
        self._draw_pos = self._draw_block.shape[1]
        self._steps = 0

    #: uniforms per replica per learning slot: explore?, random pick, tie pick
    DRAWS_PER_SLOT = 3
    _DRAW_BLOCK_SLOTS = 256

    @property
    def n_replicas(self) -> int:
        """Batch width B."""
        return self.env.n_replicas

    def _next_draws(self) -> np.ndarray:
        """(B, DRAWS_PER_SLOT) view of this slot's per-replica uniforms."""
        if self._draw_pos >= self._draw_block.shape[1]:
            for i, rng in enumerate(self._rngs):
                rng.random(out=self._draw_block[i])
            self._draw_pos = 0
        out = self._draw_block[:, self._draw_pos:self._draw_pos + self.DRAWS_PER_SLOT]
        self._draw_pos += self.DRAWS_PER_SLOT
        return out

    @property
    def steps(self) -> int:
        """Slots of training applied so far (per replica)."""
        return self._steps

    # ------------------------------------------------------------------ #
    # one lock-step slot for all replicas
    # ------------------------------------------------------------------ #

    def _greedy_actions(self, obs: np.ndarray, modes: np.ndarray,
                        tie_uniform: Optional[np.ndarray] = None) -> np.ndarray:
        """Greedy action per replica over the allowed set.

        With ``tie_uniform`` (one uniform per replica), ties within
        1e-12 of the row max break *uniformly at random* — the behavior
        of the scalar training path, which always hands
        :meth:`QTable.best_action` its rng.  Without it, the first
        action in allowed-list order wins (the stay action; the scalar
        deterministic branch used for evaluation / policy extraction).
        """
        tables = self.env.tables
        padded = tables.allowed_padded[modes]               # (B, K)
        rows = self.table._q[obs[:, None], padded]          # (B, K)
        valid = self._pad_arange < tables.n_allowed[modes][:, None]
        masked = np.where(valid, rows, -np.inf)
        best = masked.max(axis=1, keepdims=True)
        near = valid & (rows >= best - 1e-12)
        if tie_uniform is None:
            pick = near.argmax(axis=1)                      # first in allowed order
        else:
            counts = near.sum(axis=1)
            kth = np.minimum(
                (tie_uniform * counts).astype(np.int64), counts - 1
            )
            pick = (near.cumsum(axis=1) > kth[:, None]).argmax(axis=1)
        return padded[self._replica_arange, pick]

    def _select_actions(self, obs: np.ndarray, modes: np.ndarray,
                        learn: bool) -> np.ndarray:
        if not learn:
            return self._greedy_actions(obs, modes)
        # three uniforms per replica per slot, from each replica's own
        # stream: explore?, random-action pick, greedy tie-break pick
        draws = self._next_draws()
        greedy = self._greedy_actions(obs, modes, tie_uniform=draws[:, 2])
        if self.epsilon <= 0.0:
            return greedy
        tables = self.env.tables
        explore = draws[:, 0] < self.epsilon
        n_allowed = tables.n_allowed[modes]
        pick = np.minimum(
            (draws[:, 1] * n_allowed).astype(np.int64), n_allowed - 1
        )
        random_actions = tables.allowed_padded[modes, pick]
        return np.where(explore, random_actions, greedy)

    def _learning_rates(self, obs: np.ndarray,
                        actions: np.ndarray) -> Union[float, np.ndarray]:
        if self._lr_schedule is None:
            return self._lr_const
        visits = self.table._visits[obs, actions]
        return np.array(
            [self._lr_schedule.value(int(v)) for v in visits]
        )

    def control_step(self, learn: bool = True) -> tuple:
        """One slot for every replica; returns (rewards, info, deltas)."""
        env = self.env
        states = env.states
        obs = states + self._offsets
        actions = self._select_actions(obs, env._modes, learn)
        lrs = self._learning_rates(obs, actions) if learn else None
        next_states, rewards, info = env.step(actions)
        if not learn:
            return rewards, info, np.zeros(self.n_replicas)
        next_obs = next_states + self._offsets
        next_mask = env.tables.allowed[env._modes]
        bootstrap = self.table.batch_max_value(
            next_obs, next_mask, validate=False
        )
        targets = rewards + self.discount * bootstrap
        # replica row blocks are disjoint -> pairs are unique by construction
        deltas = self.table.batch_update(
            obs, actions, targets, lrs, unique=True
        )
        self._steps += 1
        return rewards, info, deltas

    def run(
        self,
        n_slots: int,
        learn: bool = True,
        record_every: int = 1000,
        callback: Optional[Callable[[int], None]] = None,
    ) -> BatchRunHistory:
        """Train (or evaluate) every replica for ``n_slots`` slots.

        Windowing matches :meth:`repro.core.QDPM.run` (see
        :func:`run_lockstep`).
        """
        return run_lockstep(
            self.env,
            lambda: self.control_step(learn=learn),
            n_slots,
            record_every=record_every,
            callback=callback,
        )

    # ------------------------------------------------------------------ #
    # per-replica extraction
    # ------------------------------------------------------------------ #

    def replica_table(self, i: int) -> QTable:
        """Copy of replica ``i``'s Q-table block as a standalone table."""
        if not 0 <= i < self.n_replicas:
            raise ValueError(f"replica index out of range: {i}")
        s = self.env.n_states
        block = QTable(s, self.env.n_actions)
        block._q = self.table._q[i * s:(i + 1) * s].copy()
        block._visits = self.table._visits[i * s:(i + 1) * s].copy()
        return block

    def greedy_policy(self, replica: int = 0,
                      prefer_visited: bool = True) -> DeterministicPolicy:
        """Greedy policy of one replica (semantics of ``QDPM.greedy_policy``)."""
        env = self.env
        table = self.replica_table(replica)
        home_action = env.mode_space.action_index(env.device.initial_state)
        qcap1 = env.queue_capacity + 1
        actions = np.empty(env.n_states, dtype=int)
        for state in range(env.n_states):
            allowed = env.mode_space.allowed_actions(state // qcap1)
            if prefer_visited:
                visited = [a for a in allowed if table.visits(state, a) > 0]
                if visited:
                    actions[state] = table.best_action(state, visited)
                elif home_action in allowed:
                    actions[state] = home_action
                else:
                    actions[state] = allowed[0]
            else:
                actions[state] = table.best_action(state, allowed)
        return DeterministicPolicy(actions)

    def __repr__(self) -> str:
        return (
            f"BatchedQDPM(replicas={self.n_replicas}, "
            f"states={self.env.n_states}, actions={self.env.n_actions})"
        )
