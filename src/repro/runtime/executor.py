"""Process-parallel execution of sweep work units.

:class:`SweepRunner` chunks are embarrassingly parallel: every chunk is a
pure function of ``(RolloutSpec, chunk_seeds)`` — per-replica RNG streams
are constructed from the seeds inside the chunk, so a chunk computes the
same bits whether it runs in the parent process or a worker.  This module
supplies the executor abstraction that ships those units out:

- :class:`SerialExecutor` — in-process loop; the ``n_jobs = 1`` path and
  the reference semantics;
- :class:`MultiprocessExecutor` — a stdlib :mod:`multiprocessing` pool of
  ``n_jobs`` workers; ``map`` preserves task order, so callers reassemble
  results in seed order for free.

Work functions must be module-level (picklable by reference) and their
arguments/results picklable by value — every runtime work unit
(``RolloutSpec``, seed lists, ``SeedRun``) is a plain dataclass/NumPy
composite, so this holds by construction.  :func:`is_picklable` lets
callers probe user-supplied callables (e.g. scalar-fallback controller
factories, which are often closures) and degrade to the serial path
instead of crashing the pool.
"""

from __future__ import annotations

import os
import pickle
from multiprocessing import get_context
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union


def is_picklable(obj: Any) -> bool:
    """True when ``obj`` survives :func:`pickle.dumps` (pool-shippable)."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


class AsyncTasks:
    """Handle for tasks submitted via :meth:`Executor.submit_all`.

    ``get()`` blocks until every task finishes and returns the results in
    submission order; it must be called exactly once (it releases the
    worker pool).
    """

    def __init__(
        self,
        results: Optional[List[Any]] = None,
        pool: Any = None,
        async_result: Any = None,
    ) -> None:
        self._results = results
        self._pool = pool
        self._async = async_result
        self._cancelled = False

    def get(self) -> List[Any]:
        """Results in submission order (blocking).

        Raises
        ------
        RuntimeError
            If the tasks were already abandoned via :meth:`cancel` —
            their results no longer exist, and waiting would hang.
        """
        if self._cancelled:
            raise RuntimeError("tasks were cancelled; no results to get")
        if self._results is not None:
            return self._results
        try:
            return self._async.get()
        finally:
            self._release()

    def cancel(self) -> None:
        """Abandon the submitted tasks and release the pool.

        For cleanup paths where the caller is already failing: workers
        are terminated rather than drained, so no result is produced and
        no process leaks.  Safe to call after ``get`` (no-op) or instead
        of it (a later ``get`` raises rather than hangs).
        """
        self._cancelled = self._results is None
        self._release(terminate=True)

    def _release(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()


class SerialExecutor:
    """In-process executor: the reference (and ``n_jobs = 1``) path."""

    n_jobs = 1

    def map(self, fn: Callable[..., Any],
            tasks: Sequence[Tuple]) -> List[Any]:
        """``[fn(*task) for task in tasks]`` — order-preserving."""
        return [fn(*task) for task in tasks]

    def submit_all(self, fn: Callable[..., Any],
                   tasks: Sequence[Tuple]) -> AsyncTasks:
        """Eager serial execution behind the async-handle interface."""
        return AsyncTasks(results=self.map(fn, tasks))

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessExecutor:
    """Stdlib :mod:`multiprocessing` pool executor.

    Parameters
    ----------
    n_jobs:
        Worker process count (>= 1).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; ``None`` uses
        the platform default (``fork`` on Linux, ``spawn`` elsewhere —
        work functions are module-level, so both work).
    """

    def __init__(self, n_jobs: int, start_method: Optional[str] = None) -> None:
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self._start_method = start_method

    def _pool(self, n_tasks: int):
        ctx = get_context(self._start_method)
        return ctx.Pool(processes=min(self.n_jobs, n_tasks))

    def map(self, fn: Callable[..., Any],
            tasks: Sequence[Tuple]) -> List[Any]:
        """Order-preserving parallel ``starmap`` over the worker pool."""
        tasks = list(tasks)
        if len(tasks) <= 1 or self.n_jobs == 1:
            return [fn(*task) for task in tasks]
        with self._pool(len(tasks)) as pool:
            return pool.starmap(fn, tasks)

    def submit_all(self, fn: Callable[..., Any],
                   tasks: Sequence[Tuple]) -> AsyncTasks:
        """Dispatch tasks to workers and return immediately.

        Lets the parent overlap its own work (e.g. a callback-bearing
        lead chunk) with the pool; collect with :meth:`AsyncTasks.get`.
        Fewer than two tasks (or a single-worker pool) run eagerly
        in-process instead: pool spin-up costs more than the overlap a
        lone task could buy (``BENCH_engine.json``'s quick snapshot
        showed 2-job sweeps *slower* than serial for exactly this
        reason), and one worker cannot overlap anything with itself.
        """
        tasks = list(tasks)
        if len(tasks) < 2 or self.n_jobs == 1:
            return AsyncTasks(results=[fn(*task) for task in tasks])
        pool = self._pool(len(tasks))
        return AsyncTasks(pool=pool, async_result=pool.starmap_async(fn, tasks))

    def __repr__(self) -> str:
        return f"MultiprocessExecutor(n_jobs={self.n_jobs})"


#: Executors accepted wherever an ``n_jobs`` knob is exposed.
Executor = Union[SerialExecutor, MultiprocessExecutor]

#: estimated per-chunk wall seconds below which shipping a work unit to a
#: process pool costs more than it buys (pool spin-up alone is ~0.1-0.3s;
#: BENCH_{sim,fleet}.json showed 2-job sweeps of tiny chunks *slower*
#: than serial, 0.62-0.99x)
MIN_CHUNK_SECONDS = 0.05

#: wall seconds a pool must save over serial execution to justify its
#: spin-up — many small chunks may still clear this bar together
MIN_POOL_SAVING_SECONDS = 0.3


def _host_cpu_count() -> int:
    """CPU count of this host (monkeypatchable seam for tests)."""
    return os.cpu_count() or 1


def resolve_n_jobs(
    n_jobs: int,
    est_chunk_seconds: Optional[float] = None,
    n_tasks: Optional[int] = None,
    min_chunk_seconds: float = MIN_CHUNK_SECONDS,
) -> Tuple[int, str]:
    """Degrade a requested ``n_jobs`` when a pool cannot pay for itself.

    Extends the ``submit_all`` short-circuit (fewer than two tasks / one
    worker) to whole sweeps: multiprocess dispatch is kept only when the
    host actually has more than one core *and* the estimated work is
    large enough to amortize pool spin-up and result pickling.  With
    ``n_tasks`` given, the test is the aggregate saving at ``n_jobs``
    workers clearing the spin-up cost (so a sweep of many small chunks
    still parallelizes, while a handful of medium ones does not);
    without it, the per-chunk estimate against ``min_chunk_seconds``.

    Returns ``(effective_n_jobs, decision)`` where ``decision`` is one
    of ``"serial_requested"``, ``"single_core_host"``,
    ``"small_chunks"``, or ``"parallel"`` — the sweep runners record it
    in their result metadata so a degraded run is visible, not silent.
    """
    if n_jobs <= 1:
        return 1, "serial_requested"
    if _host_cpu_count() <= 1:
        return 1, "single_core_host"
    if est_chunk_seconds is not None:
        if n_tasks is not None:
            # n_tasks chunks across min(n_jobs, n_tasks) workers still
            # take ceil(n_tasks / n_jobs) rounds on the critical path
            rounds = -(-n_tasks // n_jobs)
            saving = est_chunk_seconds * (n_tasks - rounds)
            if saving < MIN_POOL_SAVING_SECONDS:
                return 1, "small_chunks"
        elif est_chunk_seconds < min_chunk_seconds:
            return 1, "small_chunks"
    return int(n_jobs), "parallel"


def get_executor(n_jobs: int = 1) -> Executor:
    """Executor for an ``n_jobs`` knob: 1 -> serial, > 1 -> process pool.

    Raises
    ------
    ValueError
        If ``n_jobs`` is not a positive integer.
    """
    try:
        as_int = int(n_jobs)
        exact = as_int == n_jobs
    except (TypeError, ValueError):
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    if not exact:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    n_jobs = as_int
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1:
        return SerialExecutor()
    return MultiprocessExecutor(n_jobs)
