"""Process-parallel execution of sweep work units.

:class:`SweepRunner` chunks are embarrassingly parallel: every chunk is a
pure function of ``(RolloutSpec, chunk_seeds)`` — per-replica RNG streams
are constructed from the seeds inside the chunk, so a chunk computes the
same bits whether it runs in the parent process or a worker.  This module
supplies the executor abstraction that ships those units out:

- :class:`SerialExecutor` — in-process loop; the ``n_jobs = 1`` path and
  the reference semantics;
- :class:`MultiprocessExecutor` — a stdlib :mod:`multiprocessing` pool of
  ``n_jobs`` workers; ``map`` preserves task order, so callers reassemble
  results in seed order for free.

Work functions must be module-level (picklable by reference) and their
arguments/results picklable by value — every runtime work unit
(``RolloutSpec``, seed lists, ``SeedRun``) is a plain dataclass/NumPy
composite, so this holds by construction.  :func:`is_picklable` lets
callers probe user-supplied callables (e.g. scalar-fallback controller
factories, which are often closures) and degrade to the serial path
instead of crashing the pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from multiprocessing import get_context
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from .telemetry import TELEMETRY, TracedCall, unwrap_result


def is_picklable(obj: Any) -> bool:
    """True when ``obj`` survives :func:`pickle.dumps` (pool-shippable)."""
    try:
        pickle.dumps(obj)
    except Exception:
        return False
    return True


#: ceiling on the exponential retry backoff sleep (seconds)
RETRY_BACKOFF_CAP = 8.0


def retry_backoff_seconds(
    attempt: int, base: float, cap: float = RETRY_BACKOFF_CAP
) -> float:
    """Sleep before pool retry ``attempt`` (1-based): capped exponential."""
    return min(base * (2.0 ** (attempt - 1)), cap)


class ChunkExecutionError(RuntimeError):
    """A work unit failed even after retries and an in-process rerun.

    Carries everything a checkpointing caller needs to salvage the run:

    Attributes
    ----------
    chunk_index:
        Submission-order index of the failing task.
    task:
        The failing task's argument tuple (its spec), so the error names
        *which* work unit died, not just that one did.
    completed:
        ``{chunk_index: result}`` for every task that finished before
        the failure surfaced — retrievable for checkpointing instead of
        discarded (tasks still in flight behind the failing one are not
        awaited).
    events:
        The retry/timeout/degrade decision log up to the failure.

    The original worker exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        chunk_index: int,
        task: Tuple,
        completed: Dict[int, Any],
        events: List[Dict[str, Any]],
    ) -> None:
        self.chunk_index = int(chunk_index)
        self.task = task
        self.completed = completed
        self.events = events
        attempts = sum(
            1 for e in events
            if e.get("chunk") == chunk_index and e.get("action") == "retry"
        )
        super().__init__(
            f"chunk {chunk_index} failed after {attempts} pool retr"
            f"{'y' if attempts == 1 else 'ies'} and an in-process rerun "
            f"(task spec: {task!r}); {len(completed)} completed chunk "
            f"result(s) preserved on .completed"
        )


def _run_serially(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple],
    max_retries: int = 0,
    retry_backoff: float = 0.5,
    on_result: Optional[Callable[[int, Any], None]] = None,
    events: Optional[List[Dict[str, Any]]] = None,
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """In-process reference execution with the same retry contract as
    the pool path (an exception is retried with capped backoff, then
    raises :class:`ChunkExecutionError` with completed results attached
    — in-process there is no cheaper mode left to degrade into)."""
    events = [] if events is None else events
    results: List[Any] = []
    for i, task in enumerate(tasks):
        attempt = 0
        while True:
            try:
                with TELEMETRY.span("chunk-run", cat="executor", chunk=i):
                    result = fn(*task)
                break
            except Exception as exc:
                if attempt >= max_retries:
                    raise ChunkExecutionError(
                        i, task, dict(enumerate(results)), events
                    ) from exc
                attempt += 1
                delay = retry_backoff_seconds(attempt, retry_backoff)
                events.append(TELEMETRY.resilience_event({
                    "chunk": i, "action": "retry", "attempt": attempt,
                    "backoff_seconds": delay, "where": "serial",
                }))
                time.sleep(delay)
        results.append(result)
        TELEMETRY.inc("executor.chunks_completed")
        if on_result is not None:
            on_result(i, result)
    return results, events


class AsyncTasks:
    """Handle for tasks submitted via :meth:`Executor.submit_all`.

    ``get()`` blocks until every task finishes and returns the results in
    submission order; it must be called exactly once (it releases the
    worker pool).  Collection is resilient when the submitting executor
    was configured so: a chunk whose worker raises is retried on the pool
    (capped-exponential backoff sleep) up to ``max_retries`` times and
    then rerun in-process serially; a chunk that exceeds the per-chunk
    ``timeout`` (including one whose worker died without reporting —
    e.g. ``os._exit``) is rerun in-process immediately, and the pool is
    torn down with ``terminate`` afterwards since a hung or dead worker
    slot cannot be reclaimed.  Every decision is recorded in
    :attr:`events` for the caller's execution metadata; if even the
    in-process rerun fails, :class:`ChunkExecutionError` surfaces with
    the failing chunk's index/spec and all completed results attached.
    """

    def __init__(
        self,
        results: Optional[List[Any]] = None,
        pool: Any = None,
        handles: Optional[List[Any]] = None,
        fn: Optional[Callable[..., Any]] = None,
        tasks: Optional[Sequence[Tuple]] = None,
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        on_result: Optional[Callable[[int, Any], None]] = None,
        events: Optional[List[Dict[str, Any]]] = None,
        calls: Optional[List[Callable[..., Any]]] = None,
    ) -> None:
        self._results = results
        self._pool = pool
        self._handles = handles
        self._fn = fn
        # per-task pool-shipped callables (telemetry-wrapped when tracing
        # was on at submission); retries must resubmit the same wrapper
        self._calls = calls
        self._tasks = list(tasks) if tasks is not None else None
        self._timeout = timeout
        self._max_retries = int(max_retries)
        self._retry_backoff = float(retry_backoff)
        self._on_result = on_result
        self._cancelled = False
        self._poisoned = False
        #: retry/timeout/degrade decision log (shared with the caller)
        self.events: List[Dict[str, Any]] = events if events is not None else []

    def get(self) -> List[Any]:
        """Results in submission order (blocking).

        Raises
        ------
        RuntimeError
            If the tasks were already abandoned via :meth:`cancel` —
            their results no longer exist, and waiting would hang.
        ChunkExecutionError
            If a chunk failed beyond recovery; completed results and the
            failing chunk's index/spec ride on the exception.
        """
        if self._cancelled:
            raise RuntimeError("tasks were cancelled; no results to get")
        if self._results is not None:
            return self._results
        results: List[Any] = []
        try:
            for i, handle in enumerate(self._handles):
                result = self._collect(i, handle, dict(enumerate(results)))
                results.append(result)
                TELEMETRY.inc("executor.chunks_completed")
                if self._on_result is not None:
                    self._on_result(i, result)
            return results
        except BaseException:
            # an aborted collection (KeyboardInterrupt / trapped signal /
            # ChunkExecutionError) leaves in-flight tasks behind — and a
            # Ctrl-C already hit the whole process group, so workers may
            # be dying mid-task; close()+join() would wait on results
            # that will never come.  terminate instead.
            self._poisoned = True
            raise
        finally:
            self._release(terminate=self._poisoned)

    def _collect(self, i: int, handle: Any, completed: Dict[int, Any]) -> Any:
        """One chunk's result, through the timeout/retry/degrade ladder."""
        attempt = 0
        while True:
            try:
                with TELEMETRY.span("collect", cat="executor", chunk=i,
                                    attempt=attempt):
                    if self._timeout is None:
                        return unwrap_result(handle.get())
                    return unwrap_result(handle.get(self._timeout))
            except multiprocessing.TimeoutError:
                # the worker is hung or died silently; its slot is not
                # reclaimable, so rerun here and terminate the pool on
                # the way out rather than wait for a result that may
                # never come
                self._poisoned = True
                self.events.append(TELEMETRY.resilience_event({
                    "chunk": i, "action": "timeout",
                    "timeout_seconds": self._timeout,
                }))
                return self._degrade(i, completed)
            except Exception as exc:
                if attempt >= self._max_retries:
                    self.events.append(TELEMETRY.resilience_event({
                        "chunk": i, "action": "serial_degrade",
                        "error": repr(exc),
                    }))
                    return self._degrade(i, completed)
                attempt += 1
                delay = retry_backoff_seconds(attempt, self._retry_backoff)
                self.events.append(TELEMETRY.resilience_event({
                    "chunk": i, "action": "retry", "attempt": attempt,
                    "backoff_seconds": delay, "error": repr(exc),
                }))
                time.sleep(delay)
                call = self._calls[i] if self._calls is not None else self._fn
                handle = self._pool.apply_async(call, self._tasks[i])

    def _degrade(self, i: int, completed: Dict[int, Any]) -> Any:
        """Last resort: run the chunk in-process, serially."""
        try:
            # the unwrapped fn: in-process, the parent tracer records
            # directly — no envelope round-trip needed
            with TELEMETRY.span("chunk-run", cat="executor", chunk=i,
                                degraded=True):
                return self._fn(*self._tasks[i])
        except Exception as exc:
            raise ChunkExecutionError(i, self._tasks[i], completed,
                                      self.events) from exc

    def cancel(self) -> None:
        """Abandon the submitted tasks and release the pool.

        For cleanup paths where the caller is already failing: workers
        are terminated rather than drained, so no result is produced and
        no process leaks.  Safe to call after ``get`` (no-op) or instead
        of it (a later ``get`` raises rather than hangs).
        """
        self._cancelled = self._results is None
        self._release(terminate=True)

    def _release(self, terminate: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            if terminate:
                pool.terminate()
            else:
                pool.close()
            pool.join()


class SerialExecutor:
    """In-process executor: the reference (and ``n_jobs = 1``) path."""

    n_jobs = 1

    def map(self, fn: Callable[..., Any],
            tasks: Sequence[Tuple]) -> List[Any]:
        """``[fn(*task) for task in tasks]`` — order-preserving."""
        return [fn(*task) for task in tasks]

    def submit_all(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple],
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> AsyncTasks:
        """Eager serial execution behind the async-handle interface.

        Honors the same retry contract as the pool path (``timeout`` is
        meaningless in-process and ignored); failures raise
        :class:`ChunkExecutionError` here rather than from ``get()``.
        """
        results, events = _run_serially(
            fn, tasks, max_retries=max_retries, retry_backoff=retry_backoff,
            on_result=on_result,
        )
        return AsyncTasks(results=results, events=events)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class MultiprocessExecutor:
    """Stdlib :mod:`multiprocessing` pool executor.

    Parameters
    ----------
    n_jobs:
        Worker process count (>= 1).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; ``None`` uses
        the platform default (``fork`` on Linux, ``spawn`` elsewhere —
        work functions are module-level, so both work).
    """

    def __init__(self, n_jobs: int, start_method: Optional[str] = None) -> None:
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.n_jobs = int(n_jobs)
        self._start_method = start_method

    def _pool(self, n_tasks: int):
        ctx = get_context(self._start_method)
        return ctx.Pool(processes=min(self.n_jobs, n_tasks))

    def map(self, fn: Callable[..., Any],
            tasks: Sequence[Tuple]) -> List[Any]:
        """Order-preserving parallel ``starmap`` over the worker pool."""
        tasks = list(tasks)
        if len(tasks) <= 1 or self.n_jobs == 1:
            return [fn(*task) for task in tasks]
        with self._pool(len(tasks)) as pool:
            return pool.starmap(fn, tasks)

    def submit_all(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple],
        timeout: Optional[float] = None,
        max_retries: int = 0,
        retry_backoff: float = 0.5,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> AsyncTasks:
        """Dispatch tasks to workers and return immediately.

        Lets the parent overlap its own work (e.g. a callback-bearing
        lead chunk) with the pool; collect with :meth:`AsyncTasks.get`.
        Fewer than two tasks (or a single-worker pool) run eagerly
        in-process instead: pool spin-up costs more than the overlap a
        lone task could buy (``BENCH_engine.json``'s quick snapshot
        showed 2-job sweeps *slower* than serial for exactly this
        reason), and one worker cannot overlap anything with itself.

        Tasks are shipped as individual ``apply_async`` submissions (not
        one ``starmap``) so collection can wait on, retry, and degrade
        each chunk independently: ``timeout`` bounds the wait for any
        single chunk's result, ``max_retries`` bounds pool resubmissions
        of a raising chunk (with ``retry_backoff``-based capped
        exponential sleeps), and a chunk that exhausts both reruns
        in-process serially rather than killing the sweep.  ``on_result``
        is invoked as ``on_result(index, result)`` when each chunk's
        result is collected, in submission order — the checkpoint
        journaling hook.
        """
        tasks = list(tasks)
        if len(tasks) < 2 or self.n_jobs == 1:
            results, events = _run_serially(
                fn, tasks, max_retries=max_retries,
                retry_backoff=retry_backoff, on_result=on_result,
            )
            return AsyncTasks(results=results, events=events)
        # when tracing, ship each task under a TracedCall wrapper so the
        # worker's spans come back with its result (unwrapped at collect,
        # before on_result — checkpoint journals never see envelopes)
        calls: Optional[List[Callable[..., Any]]] = None
        if TELEMETRY.tracing:
            calls = [TracedCall(fn, i) for i in range(len(tasks))]
        with TELEMETRY.span("pool-submit", cat="executor",
                            n_tasks=len(tasks), n_jobs=self.n_jobs):
            pool = self._pool(len(tasks))
            handles = [
                pool.apply_async(calls[i] if calls is not None else fn, task)
                for i, task in enumerate(tasks)
            ]
        return AsyncTasks(
            pool=pool, handles=handles,
            fn=fn, tasks=tasks, timeout=timeout, max_retries=max_retries,
            retry_backoff=retry_backoff, on_result=on_result, calls=calls,
        )

    def __repr__(self) -> str:
        return f"MultiprocessExecutor(n_jobs={self.n_jobs})"


#: Executors accepted wherever an ``n_jobs`` knob is exposed.
Executor = Union[SerialExecutor, MultiprocessExecutor]

#: estimated per-chunk wall seconds below which shipping a work unit to a
#: process pool costs more than it buys (pool spin-up alone is ~0.1-0.3s;
#: BENCH_{sim,fleet}.json showed 2-job sweeps of tiny chunks *slower*
#: than serial, 0.62-0.99x)
MIN_CHUNK_SECONDS = 0.05

#: wall seconds a pool must save over serial execution to justify its
#: spin-up — many small chunks may still clear this bar together
MIN_POOL_SAVING_SECONDS = 0.3


def _host_cpu_count() -> int:
    """CPU count of this host (monkeypatchable seam for tests)."""
    return os.cpu_count() or 1


def resolve_n_jobs(
    n_jobs: int,
    est_chunk_seconds: Optional[float] = None,
    n_tasks: Optional[int] = None,
    min_chunk_seconds: float = MIN_CHUNK_SECONDS,
) -> Tuple[int, str]:
    """Degrade a requested ``n_jobs`` when a pool cannot pay for itself.

    Extends the ``submit_all`` short-circuit (fewer than two tasks / one
    worker) to whole sweeps: multiprocess dispatch is kept only when the
    host actually has more than one core *and* the estimated work is
    large enough to amortize pool spin-up and result pickling.  With
    ``n_tasks`` given, the test is the aggregate saving at ``n_jobs``
    workers clearing the spin-up cost (so a sweep of many small chunks
    still parallelizes, while a handful of medium ones does not);
    without it, the per-chunk estimate against ``min_chunk_seconds``.

    Returns ``(effective_n_jobs, decision)`` where ``decision`` is one
    of ``"serial_requested"``, ``"single_core_host"``,
    ``"small_chunks"``, or ``"parallel"`` — the sweep runners record it
    in their result metadata so a degraded run is visible, not silent.
    """
    if n_jobs <= 1:
        return 1, "serial_requested"
    if _host_cpu_count() <= 1:
        return 1, "single_core_host"
    if est_chunk_seconds is not None:
        if n_tasks is not None:
            # n_tasks chunks across min(n_jobs, n_tasks) workers still
            # take ceil(n_tasks / n_jobs) rounds on the critical path
            rounds = -(-n_tasks // n_jobs)
            saving = est_chunk_seconds * (n_tasks - rounds)
            if saving < MIN_POOL_SAVING_SECONDS:
                return 1, "small_chunks"
        elif est_chunk_seconds < min_chunk_seconds:
            return 1, "small_chunks"
    return int(n_jobs), "parallel"


def get_executor(n_jobs: int = 1) -> Executor:
    """Executor for an ``n_jobs`` knob: 1 -> serial, > 1 -> process pool.

    Raises
    ------
    ValueError
        If ``n_jobs`` is not a positive integer.
    """
    try:
        as_int = int(n_jobs)
        exact = as_int == n_jobs
    except (TypeError, ValueError):
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    if not exact:
        raise ValueError(f"n_jobs must be a positive integer, got {n_jobs!r}")
    n_jobs = as_int
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1:
        return SerialExecutor()
    return MultiprocessExecutor(n_jobs)
