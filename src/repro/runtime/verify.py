"""Runtime verification: in-run invariants, shadow execution, interrupts.

The repo's correctness story — every vectorized path pinned against its
scalar reference — lives in the test suite; a production-scale run has
no in-run defense against silent numerical drift.  This module turns
the test-time contracts into runtime checks the sweep runners apply
*while executing*:

- **Invariant checks** at report boundaries
  (:func:`check_sim_report`, :func:`check_fleet_report`,
  :func:`check_seed_run`): energy conservation
  (sum(residency x power) = energy), residency partitioning the
  horizon, monotone tail percentiles, non-negative latencies,
  dispatch/drop conservation, NaN/inf and int64-overflow guards.
  Violations raise a structured :class:`InvariantViolation` carrying
  the spec hash, seed, and field-level expected-vs-got detail.
- **Sampled shadow execution** (:func:`shadow_indices` +
  :func:`compare_reports`): the runners deterministically re-run a
  seeded fraction of their chunks on the scalar reference path and
  compare field-for-field — test-time pinning as in-run
  cross-validation, summarized in a ``verification`` block of the
  execution metadata.
- **Graceful interruption** (:func:`trap_signals`,
  :class:`SweepInterrupted`): SIGINT/SIGTERM around chunk collection
  flush the checkpoint journal, tear the pool down cleanly, and
  surface a one-line resume hint instead of a stack trace.
- **Diagnostics bundles** (:func:`write_diagnostics_bundle`): every
  :class:`InvariantViolation` or
  :class:`~repro.runtime.executor.ChunkExecutionError` can be written
  as a minimal-repro JSON (spec, spec hash, seed, chunk id, diverging
  fields) so the failure replays from one file.

Invariant tolerances are deliberately looser (rel ~1e-6) than shadow
comparison (rel 1e-9): invariants catch *drift and corruption*, not
summation-order noise; shadow comparison re-asserts the tight pins the
test suite established.
"""

from __future__ import annotations

import dataclasses
import json
import math
import signal
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from .telemetry import TELEMETRY

#: loose relative tolerance of the conservation-law invariants — wide
#: enough to absorb summation-order noise over ~1e6 float ops, tight
#: enough that any real drift (a wrong branch, a dropped term) trips it
INVARIANT_RTOL = 1e-6
#: absolute floor for comparisons around zero (spans, energies in J)
INVARIANT_ATOL = 1e-9

#: tight tolerance of shadow (fast-vs-reference) field comparison — the
#: same bar the test suite pins the engines at
SHADOW_RTOL = 1e-9
SHADOW_ATOL = 1e-12

_INT64_MAX = 2 ** 63 - 1


class InvariantViolation(RuntimeError):
    """A runtime invariant failed: structured expected-vs-got evidence.

    Attributes
    ----------
    invariant:
        Name of the violated invariant family (e.g.
        ``"energy_conservation"``, ``"shadow_divergence"``).
    details:
        Field-level evidence: a list of dicts, each at least
        ``{"field": ..., "expected": ..., "got": ...}``.
    spec_key:
        The sweep's spec hash, when the violation occurred inside a
        keyed run (ties the failure to one exact configuration).
    seed:
        The replication seed of the offending unit, when known.
    context:
        Free-form extra identification (chunk id, cell labels, ...).
    """

    def __init__(
        self,
        invariant: str,
        details: Sequence[Dict[str, Any]],
        spec_key: Optional[str] = None,
        seed: Optional[int] = None,
        context: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.invariant = str(invariant)
        self.details = list(details)
        self.spec_key = spec_key
        self.seed = None if seed is None else int(seed)
        self.context = dict(context) if context else {}
        fields = ", ".join(
            f"{d.get('field')}: expected {d.get('expected')!r}, "
            f"got {d.get('got')!r}"
            for d in self.details[:4]
        )
        more = len(self.details) - 4
        if more > 0:
            fields += f" (+{more} more)"
        where = "".join(
            [
                f" [spec {self.spec_key}]" if self.spec_key else "",
                f" [seed {self.seed}]" if self.seed is not None else "",
                f" [{self.context}]" if self.context else "",
            ]
        )
        super().__init__(f"invariant {self.invariant!r} violated{where}: {fields}")


class SweepInterrupted(BaseException):
    """A sweep was stopped by SIGINT/SIGTERM after a clean teardown.

    Derives from :class:`BaseException` (like ``KeyboardInterrupt``) so
    no retry ladder or ``except Exception`` swallows it.  Carries what
    the operator needs to resume: how much completed, and where the
    journal lives.
    """

    def __init__(
        self,
        signal_name: str,
        n_completed: int,
        n_total: int,
        checkpoint: Optional[Union[str, Path]] = None,
    ) -> None:
        self.signal_name = str(signal_name)
        self.n_completed = int(n_completed)
        self.n_total = int(n_total)
        self.checkpoint = None if checkpoint is None else str(checkpoint)
        super().__init__(self.resume_hint())

    def resume_hint(self) -> str:
        """One-line operator guidance for picking the sweep back up."""
        done = f"{self.n_completed}/{self.n_total} chunks journaled"
        if self.checkpoint is None:
            return (
                f"interrupted by {self.signal_name} with no checkpoint "
                f"journal — progress discarded; rerun with a checkpoint "
                f"path to make the sweep resumable"
            )
        return (
            f"interrupted by {self.signal_name}; {done} — resume "
            f"bit-identically with --resume --checkpoint {self.checkpoint}"
        )


# --------------------------------------------------------------------- #
# numeric helpers
# --------------------------------------------------------------------- #


def _close(a: float, b: float, rtol: float, atol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    return math.isclose(a, b, rel_tol=rtol, abs_tol=atol)


class _Problems:
    """Accumulates field-level violations, then raises once."""

    def __init__(self, invariant: str, spec_key=None, seed=None, context=None):
        self.invariant = invariant
        self.spec_key = spec_key
        self.seed = seed
        self.context = context
        self.items: List[Dict[str, Any]] = []

    def add(self, field: str, expected: Any, got: Any, **extra: Any) -> None:
        self.items.append({"field": field, "expected": expected,
                           "got": got, **extra})

    def finite(self, field: str, value: float) -> bool:
        """Record a violation unless ``value`` is a finite float."""
        if not math.isfinite(value):
            self.add(field, "finite", value)
            return False
        return True

    def int_in_range(self, field: str, value: int, low: int = 0) -> bool:
        """Record a violation unless ``low <= value <= int64 max``."""
        value = int(value)
        if not low <= value <= _INT64_MAX:
            self.add(field, f"integer in [{low}, 2**63-1]", value)
            return False
        return True

    def raise_if_any(self) -> None:
        if self.items:
            raise InvariantViolation(
                self.invariant, self.items, spec_key=self.spec_key,
                seed=self.seed, context=self.context,
            )


# --------------------------------------------------------------------- #
# invariant checks
# --------------------------------------------------------------------- #


def _check_tail_fields(p: _Problems, report: Any) -> None:
    """Latency summary sanity shared by sim and fleet reports:
    non-negative, finite, and monotone p50 <= p95 <= p99 <= max."""
    names = ("mean_latency", "p50_latency", "p95_latency", "p99_latency",
             "max_latency")
    values = {}
    for name in names:
        v = float(getattr(report, name))
        if p.finite(name, v):
            values[name] = v
            if v < -INVARIANT_ATOL:
                p.add(name, ">= 0", v)
    ladder = [values.get(n) for n in
              ("p50_latency", "p95_latency", "p99_latency", "max_latency")]
    if all(v is not None for v in ladder):
        for (lo_name, lo), (hi_name, hi) in zip(
            zip(names[1:], ladder), zip(names[2:], ladder[1:])
        ):
            if lo > hi + INVARIANT_ATOL + INVARIANT_RTOL * abs(hi):
                p.add(f"{lo_name} <= {hi_name}", f"<= {hi}", lo)
    mean = values.get("mean_latency")
    mx = values.get("max_latency")
    if mean is not None and mx is not None:
        if mean > mx + INVARIANT_ATOL + INVARIANT_RTOL * abs(mx):
            p.add("mean_latency <= max_latency", f"<= {mx}", mean)
    if getattr(report, "n_requests") == 0:
        for name, v in values.items():
            if v != 0.0:
                p.add(f"{name} (zero-request sentinel)", 0.0, v)


def _device_condition_power(device: Any, label: str) -> Optional[float]:
    """Power of one residency condition: a state name or ``"a->b"``."""
    if device.has_state(label):
        return float(device.state(label).power)
    if "->" in label:
        source, _, target = label.partition("->")
        if (device.has_state(source) and device.has_state(target)
                and device.can_transition(source, target)):
            return float(device.transition(source, target).mean_power)
    return None


def _has_instant_lump_transitions(device: Any) -> bool:
    """True when any transition charges energy in zero time — those
    lumps appear in ``total_energy`` but in no residency interval, so
    energy conservation degrades from equality to a lower bound."""
    for source in device.state_names:
        for target in device.state_names:
            if source == target or not device.can_transition(source, target):
                continue
            tr = device.transition(source, target)
            if tr.latency == 0 and tr.energy > 0:
                return True
    return False


def check_sim_report(
    report: Any,
    device: Any = None,
    spec_key: Optional[str] = None,
    seed: Optional[int] = None,
    context: Optional[Dict[str, Any]] = None,
) -> None:
    """Assert the runtime invariants of one :class:`~repro.sim.SimReport`.

    Checks that hold for *any* correct run, whichever engine produced
    it: finite fields, int64-range counters, non-negative and monotone
    latency percentiles, zero-request sentinel fields, residency
    partitioning the horizon, and ``mean_power x duration =
    total_energy``.  With ``device`` given, additionally checks energy
    conservation against the power model:
    ``sum(residency x power) = total_energy`` (a lower bound when the
    device has zero-latency transitions that charge lump energy, exact
    equality otherwise).

    Raises :class:`InvariantViolation` with field-level evidence.
    """
    TELEMETRY.inc("verify.invariant_checks")
    p = _Problems("sim_report", spec_key=spec_key, seed=seed, context=context)

    duration = float(report.duration)
    if p.finite("duration", duration) and duration < -INVARIANT_ATOL:
        p.add("duration", ">= 0", duration)
    energy_ok = p.finite("total_energy", float(report.total_energy))
    if energy_ok and float(report.total_energy) < -INVARIANT_ATOL:
        p.add("total_energy", ">= 0", float(report.total_energy))
    p.finite("mean_power", float(report.mean_power))
    p.finite("energy_saving_ratio", float(report.energy_saving_ratio))
    idle_len = float(report.mean_idle_length)
    if p.finite("mean_idle_length", idle_len) and idle_len < -INVARIANT_ATOL:
        p.add("mean_idle_length", ">= 0", idle_len)

    p.int_in_range("n_requests", report.n_requests)
    p.int_in_range("n_shutdowns", report.n_shutdowns)
    p.int_in_range("n_wrong_shutdowns", report.n_wrong_shutdowns)
    p.int_in_range("n_idle_periods", report.n_idle_periods)
    if int(report.n_wrong_shutdowns) > int(report.n_shutdowns):
        p.add("n_wrong_shutdowns <= n_shutdowns",
              f"<= {int(report.n_shutdowns)}", int(report.n_wrong_shutdowns))

    _check_tail_fields(p, report)

    if report.latencies:
        lats = np.asarray(report.latencies, dtype=float)
        if not np.all(np.isfinite(lats)):
            p.add("latencies", "all finite", "NaN/inf present")
        else:
            if int(lats.size) != int(report.n_requests):
                p.add("n_requests == len(latencies)", int(lats.size),
                      int(report.n_requests))
            if lats.size and float(lats.min()) < -INVARIANT_ATOL:
                p.add("latencies", ">= 0", float(lats.min()))
            if lats.size and not _close(
                float(lats.max()), float(report.max_latency),
                INVARIANT_RTOL, INVARIANT_ATOL,
            ):
                p.add("max_latency == max(latencies)", float(lats.max()),
                      float(report.max_latency))

    residency_total = 0.0
    residency_finite = True
    for label, span in report.state_residency.items():
        span = float(span)
        if not math.isfinite(span):
            p.add(f"state_residency[{label!r}]", "finite", span)
            residency_finite = False
            continue
        if span < -INVARIANT_ATOL:
            p.add(f"state_residency[{label!r}]", ">= 0", span)
        residency_total += span
    if residency_finite and math.isfinite(duration) and duration >= 0:
        if not _close(residency_total, duration, INVARIANT_RTOL,
                      INVARIANT_ATOL + INVARIANT_RTOL * max(duration, 1.0)):
            p.add("sum(state_residency) == duration", duration,
                  residency_total)

    if energy_ok and math.isfinite(float(report.mean_power)):
        horizon = duration if duration > 0 else 1.0
        implied = float(report.mean_power) * horizon
        if not _close(implied, float(report.total_energy),
                      INVARIANT_RTOL, INVARIANT_ATOL):
            p.add("mean_power x duration == total_energy",
                  float(report.total_energy), implied)

    if device is not None and energy_ok and residency_finite:
        residency_energy = 0.0
        resolvable = True
        for label, span in report.state_residency.items():
            power = _device_condition_power(device, label)
            if power is None:
                p.add(f"state_residency[{label!r}]",
                      "a device state or transition label", label)
                resolvable = False
                continue
            residency_energy += float(span) * power
        if resolvable:
            total = float(report.total_energy)
            tol = INVARIANT_ATOL + INVARIANT_RTOL * max(abs(total), 1.0)
            if _has_instant_lump_transitions(device):
                if total < residency_energy - tol:
                    p.add("total_energy >= sum(residency x power)",
                          f">= {residency_energy}", total)
            elif not _close(residency_energy, total, INVARIANT_RTOL, tol):
                p.add("sum(residency x power) == total_energy", total,
                      residency_energy)
        home_power = float(device.state(device.initial_state).power)
        if home_power > 0 and math.isfinite(float(report.mean_power)):
            expected_saving = 1.0 - float(report.mean_power) / home_power
            if not _close(expected_saving, float(report.energy_saving_ratio),
                          INVARIANT_RTOL, INVARIANT_ATOL):
                p.add("energy_saving_ratio == 1 - mean_power/home_power",
                      expected_saving, float(report.energy_saving_ratio))

    p.raise_if_any()


def check_fleet_report(
    report: Any,
    expected_requests: Optional[int] = None,
    spec_key: Optional[str] = None,
    seed: Optional[int] = None,
    context: Optional[Dict[str, Any]] = None,
) -> None:
    """Assert the runtime invariants of one
    :class:`~repro.fleet.FleetReport`.

    Fleet-level conservation laws on top of the per-report numeric
    guards: request accounting (``n_requests ==
    sum(requests_per_device)``; the overload conservation law
    ``dispatched + dropped + shed == offered requests`` whenever the
    offered count is known — ``expected_requests`` or the report's own
    ``n_offered``), energy summing over the retained device reports,
    residency summing over devices, fleet duration covering every
    device, availability / goodput / SLO attainment in ``[0, 1]``,
    goodput never above throughput, and ``load_imbalance >= 1``.

    Raises :class:`InvariantViolation` with field-level evidence.
    """
    TELEMETRY.inc("verify.invariant_checks")
    p = _Problems("fleet_report", spec_key=spec_key, seed=seed,
                  context=context)

    for name in ("duration", "total_energy", "mean_power",
                 "energy_saving_ratio", "failover_latency_inflation"):
        p.finite(name, float(getattr(report, name)))
    for name in ("n_devices", "n_requests", "n_shutdowns",
                 "n_wrong_shutdowns", "n_retries", "n_dropped",
                 "n_shed", "n_budget_shed", "n_breaker_trips",
                 "n_offered"):
        p.int_in_range(name, getattr(report, name))
    if int(report.n_devices) < 1:
        p.add("n_devices", ">= 1", int(report.n_devices))
    if int(report.n_budget_shed) > int(report.n_shed):
        p.add("n_budget_shed <= n_shed", int(report.n_shed),
              int(report.n_budget_shed))

    _check_tail_fields(p, report)

    availability = float(report.availability)
    if p.finite("availability", availability):
        if not -INVARIANT_ATOL <= availability <= 1.0 + INVARIANT_ATOL:
            p.add("availability", "in [0, 1]", availability)
    for name in ("goodput", "slo_attainment"):
        value = float(getattr(report, name))
        if p.finite(name, value):
            if not -INVARIANT_ATOL <= value <= 1.0 + INVARIANT_ATOL:
                p.add(name, "in [0, 1]", value)

    counts = tuple(int(c) for c in report.requests_per_device)
    if len(counts) != int(report.n_devices):
        p.add("len(requests_per_device) == n_devices",
              int(report.n_devices), len(counts))
    if any(c < 0 for c in counts):
        p.add("requests_per_device", "all >= 0", counts)
    dispatched = sum(counts)
    if dispatched != int(report.n_requests):
        p.add("n_requests == sum(requests_per_device)", dispatched,
              int(report.n_requests))
    offered = (
        int(expected_requests) if expected_requests is not None
        else int(report.n_offered)
    )
    if offered > 0 or expected_requests is not None:
        accounted = (
            int(report.n_requests) + int(report.n_dropped)
            + int(report.n_shed)
        )
        if accounted != offered:
            p.add("n_requests + n_dropped + n_shed == offered requests",
                  offered, accounted)
        # goodput counts deadline-met landed requests out of the offered
        # load, so it can never exceed the dispatched fraction
        if offered > 0:
            throughput = int(report.n_requests) / offered
            if float(report.goodput) > throughput + INVARIANT_ATOL \
                    + INVARIANT_RTOL * throughput:
                p.add("goodput <= throughput (n_requests / offered)",
                      throughput, float(report.goodput))

    imbalance = float(report.load_imbalance)
    if p.finite("load_imbalance", imbalance):
        if imbalance < 1.0 - INVARIANT_RTOL:
            p.add("load_imbalance", ">= 1", imbalance)

    for label, span in report.state_residency.items():
        span = float(span)
        if not math.isfinite(span):
            p.add(f"state_residency[{label!r}]", "finite", span)
        elif span < -INVARIANT_ATOL:
            p.add(f"state_residency[{label!r}]", ">= 0", span)

    if report.device_reports:
        devs = report.device_reports
        dev_energy = float(sum(r.total_energy for r in devs))
        total = float(report.total_energy)
        if not _close(dev_energy, total, INVARIANT_RTOL,
                      INVARIANT_ATOL + INVARIANT_RTOL * max(abs(total), 1.0)):
            p.add("total_energy == sum(device energies)", dev_energy, total)
        dev_duration = max(float(r.duration) for r in devs)
        if not _close(dev_duration, float(report.duration),
                      INVARIANT_RTOL, INVARIANT_ATOL):
            p.add("duration == max(device durations)", dev_duration,
                  float(report.duration))
        dev_requests = sum(int(r.n_requests) for r in devs)
        if dev_requests != int(report.n_requests):
            p.add("n_requests == sum(device n_requests)", dev_requests,
                  int(report.n_requests))
        dev_residency: Dict[str, float] = {}
        for r in devs:
            for label, span in r.state_residency.items():
                dev_residency[label] = dev_residency.get(label, 0.0) + span
        for label in set(dev_residency) | set(report.state_residency):
            want = dev_residency.get(label, 0.0)
            got = float(report.state_residency.get(label, 0.0))
            if not _close(want, got, INVARIANT_RTOL,
                          INVARIANT_ATOL + INVARIANT_RTOL * max(want, 1.0)):
                p.add(f"state_residency[{label!r}] == device sum", want, got)

    p.raise_if_any()


def check_seed_run(
    run: Any,
    spec: Any = None,
    spec_key: Optional[str] = None,
    context: Optional[Dict[str, Any]] = None,
) -> None:
    """Assert the runtime invariants of one slotted-engine
    :class:`~repro.runtime.sweep.SeedRun`.

    Finite history/summary fields, non-negative energy, a saving ratio
    that cannot exceed 1, int64-range counters, and request
    conservation: requests still queued at the horizon
    (``arrivals - completions - losses``) must lie in
    ``[0, queue_capacity]`` (capacity read from ``spec`` when given).

    Raises :class:`InvariantViolation` with field-level evidence.
    """
    TELEMETRY.inc("verify.invariant_checks")
    p = _Problems("seed_run", spec_key=spec_key, seed=run.seed,
                  context=context)
    p.finite("mean_reward", float(run.mean_reward))
    saving = float(run.saving_ratio)
    if p.finite("saving_ratio", saving) and saving > 1.0 + INVARIANT_ATOL:
        p.add("saving_ratio", "<= 1", saving)
    totals = run.totals
    p.int_in_range("totals.slots", totals.slots)
    p.int_in_range("totals.arrivals", totals.arrivals)
    p.int_in_range("totals.completions", totals.completions)
    p.int_in_range("totals.losses", totals.losses)
    if p.finite("totals.energy", float(totals.energy)):
        if float(totals.energy) < -INVARIANT_ATOL:
            p.add("totals.energy", ">= 0", float(totals.energy))
    p.finite("totals.queue_integral", float(totals.queue_integral))
    queued = int(totals.arrivals) - int(totals.completions) - int(totals.losses)
    if queued < 0:
        p.add("arrivals - completions - losses", ">= 0", queued)
    elif spec is not None and queued > int(spec.queue_capacity):
        p.add("arrivals - completions - losses",
              f"<= queue_capacity {int(spec.queue_capacity)}", queued)
    if spec is not None and int(totals.slots) != int(spec.n_slots):
        p.add("totals.slots == n_slots", int(spec.n_slots),
              int(totals.slots))
    history = run.history
    for name in ("energy", "reward", "queue", "saving_ratio", "td_error"):
        arr = np.asarray(getattr(history, name), dtype=float)
        if not np.all(np.isfinite(arr)):
            p.add(f"history.{name}", "all finite", "NaN/inf present")
    p.raise_if_any()


# --------------------------------------------------------------------- #
# shadow execution
# --------------------------------------------------------------------- #


def shadow_indices(n_units: int, fraction: float, key: str) -> List[int]:
    """Deterministic sample of chunk indices to shadow-verify.

    ``fraction`` of ``n_units`` (at least one when the fraction is
    positive, all of them at 1.0), drawn without replacement from a
    stream seeded by the sweep's spec ``key`` — so which cells get
    re-verified is a pure function of the sweep configuration, and a
    resumed run verifies the same cells an uninterrupted one would.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"verify fraction must be in [0, 1], got {fraction}")
    if n_units <= 0 or fraction == 0.0:
        return []
    if fraction >= 1.0:
        return list(range(n_units))
    k = min(n_units, max(1, int(round(fraction * n_units))))
    seed = int(str(key).strip()[:16] or "0", 16) % (2 ** 32)
    rng = np.random.default_rng([seed, n_units])
    return sorted(int(i) for i in rng.choice(n_units, size=k, replace=False))


def _values_diverge(field: str, got: Any, want: Any, rtol: float,
                    atol: float, out: List[Dict[str, Any]]) -> None:
    """Append a divergence record when ``got`` and ``want`` differ
    beyond tolerance; recurses into dicts/sequences/dataclasses."""
    if dataclasses.is_dataclass(want) and not isinstance(want, type):
        out.extend(
            {**d, "field": f"{field}.{d['field']}"}
            for d in compare_reports(got, want, rtol=rtol, atol=atol)
        )
        return
    if isinstance(want, dict):
        if set(want) != set(got):
            out.append({"field": field, "expected": sorted(want),
                        "got": sorted(got)})
            return
        for key in want:
            _values_diverge(f"{field}[{key!r}]", got[key], want[key],
                            rtol, atol, out)
        return
    if isinstance(want, (list, tuple, np.ndarray)):
        got_arr = np.asarray(got, dtype=float)
        want_arr = np.asarray(want, dtype=float)
        if got_arr.shape != want_arr.shape:
            out.append({"field": field, "expected": f"shape {want_arr.shape}",
                        "got": f"shape {got_arr.shape}"})
            return
        if rtol == 0.0 and atol == 0.0:
            equal = np.array_equal(got_arr, want_arr)
        else:
            equal = bool(
                np.allclose(got_arr, want_arr, rtol=rtol, atol=atol,
                            equal_nan=False)
            )
        if not equal:
            bad = np.flatnonzero(
                ~np.isclose(got_arr, want_arr, rtol=rtol, atol=atol)
            )
            i = int(bad[0]) if bad.size else 0
            out.append({
                "field": f"{field}[{i}]",
                "expected": float(want_arr.flat[i]),
                "got": float(got_arr.flat[i]),
                "n_diverging": int(bad.size),
            })
        return
    if isinstance(want, float) or isinstance(got, float):
        want_f, got_f = float(want), float(got)
        if rtol == 0.0 and atol == 0.0:
            # bit-exact mode: NaN == NaN counts as equal, anything else
            # must match to the last bit
            same = (want_f == got_f
                    or (math.isnan(want_f) and math.isnan(got_f)))
        else:
            same = _close(got_f, want_f, rtol, atol)
        if not same:
            out.append({"field": field, "expected": want_f, "got": got_f})
        return
    if got != want:
        out.append({"field": field, "expected": want, "got": got})


def compare_reports(
    got: Any,
    want: Any,
    rtol: float = SHADOW_RTOL,
    atol: float = SHADOW_ATOL,
    ignore: Sequence[str] = (),
) -> List[Dict[str, Any]]:
    """Field-for-field diff of two report dataclasses.

    Returns the divergence list (empty = verified): each entry names the
    field, the reference value (``want``, the scalar path), and the
    fast-path value (``got``).  Floats compare within
    ``rtol``/``atol`` — pass ``rtol=0, atol=0`` for bit-exact mode —
    ints and strings exactly; dicts key-wise; numeric sequences
    element-wise; nested dataclasses recursively.  ``ignore`` skips
    fields whose values are legitimately path-dependent (e.g. raw
    latency arrays a sweep already dropped).
    """
    if type(got) is not type(want):
        return [{"field": "__class__", "expected": type(want).__name__,
                 "got": type(got).__name__}]
    divergences: List[Dict[str, Any]] = []
    for field in dataclasses.fields(want):
        if field.name in ignore:
            continue
        _values_diverge(
            field.name, getattr(got, field.name), getattr(want, field.name),
            rtol, atol, divergences,
        )
    return divergences


def shadow_verify_chunks(
    tasks: Sequence[Tuple],
    chunk_results: Sequence[Sequence[Any]],
    fraction: float,
    spec_key: str,
    reference_fn: Callable[..., Sequence[Any]],
    reference_name: str,
    seeds_of: Optional[Callable[[Tuple], Sequence[int]]] = None,
    rtol: float = SHADOW_RTOL,
    atol: float = SHADOW_ATOL,
    ignore: Sequence[str] = (),
    diagnostics_dir: Optional[Union[str, Path]] = None,
    spec: Any = None,
) -> Dict[str, Any]:
    """Re-run a seeded sample of chunks on the reference path and diff.

    The shadow-execution driver shared by the sweep runners:
    :func:`shadow_indices` picks ``fraction`` of the ``tasks``
    deterministically from ``spec_key``, ``reference_fn(*task)``
    recomputes each sampled chunk on the scalar reference path, and
    every per-seed result is compared field-for-field
    (:func:`compare_reports`) against the fast path's
    ``chunk_results``.  Returns the ``verification`` metadata block on
    success; on any divergence, writes a diagnostics bundle (when
    ``diagnostics_dir`` is set) and raises :class:`InvariantViolation`
    with every diverging field.  ``seeds_of(task)`` labels divergences
    with the chunk's replication seeds.
    """
    verified = shadow_indices(len(tasks), fraction, spec_key)
    TELEMETRY.inc("verify.shadow_chunks", len(verified))
    divergences: List[Dict[str, Any]] = []
    for t in verified:
        with TELEMETRY.span("shadow-verify", cat="verify", chunk=t,
                            reference=reference_name):
            want = list(reference_fn(*tasks[t]))
        got = list(chunk_results[t])
        seeds: Sequence[Optional[int]]
        seeds = list(seeds_of(tasks[t])) if seeds_of is not None else []
        if len(got) != len(want):
            divergences.append({
                "chunk": t, "field": "__len__",
                "expected": len(want), "got": len(got),
            })
            continue
        for k, (g, w) in enumerate(zip(got, want)):
            seed = seeds[k] if k < len(seeds) else None
            divergences.extend(
                {"chunk": t, "seed": seed, **d}
                for d in compare_reports(g, w, rtol=rtol, atol=atol,
                                         ignore=ignore)
            )
    if divergences:
        TELEMETRY.inc("verify.shadow_divergences", len(divergences))
        exc = InvariantViolation(
            "shadow_divergence", divergences, spec_key=spec_key,
            context={"reference": reference_name},
        )
        if diagnostics_dir is not None:
            write_diagnostics_bundle(
                diagnostics_dir, "shadow_divergence", spec=spec,
                spec_key=spec_key, chunk_id=divergences[0].get("chunk"),
                details=divergences, error=exc,
            )
        raise exc
    return verification_block(fraction, len(tasks), verified, divergences,
                              reference_name)


def verification_block(
    fraction: float,
    n_units: int,
    verified: Sequence[int],
    divergences: Sequence[Dict[str, Any]],
    reference: str,
) -> Dict[str, Any]:
    """The ``verification`` entry of a sweep's execution metadata."""
    return {
        "fraction": float(fraction),
        "n_chunks": int(n_units),
        "verified_chunks": [int(i) for i in verified],
        "n_verified": len(verified),
        "reference": str(reference),
        "n_divergences": len(divergences),
        "divergences": list(divergences),
    }


def merge_verification_blocks(
    executions: Sequence[Optional[Dict[str, Any]]],
) -> Optional[Dict[str, Any]]:
    """Fold the ``verification`` blocks of several sweeps into one.

    Experiments such as fig2 and variation drive more than one
    :class:`~repro.runtime.sweep.SweepRunner` sweep per invocation; the
    CLI summary line wants a single block covering all of them.  Skip
    blocks only survive when *every* sweep was skipped — one verified
    sweep is worth reporting even if a sibling could not be.
    """
    blocks = [
        exe["verification"] for exe in executions
        if exe and exe.get("verification")
    ]
    if not blocks:
        return None
    real = [b for b in blocks if "skipped" not in b]
    if not real:
        return dict(blocks[0])
    references = []
    for block in real:
        if block["reference"] not in references:
            references.append(block["reference"])
    return {
        "fraction": real[0]["fraction"],
        "n_chunks": sum(b["n_chunks"] for b in real),
        "verified_chunks": [i for b in real for i in b["verified_chunks"]],
        "n_verified": sum(b["n_verified"] for b in real),
        "reference": " + ".join(references),
        "n_divergences": sum(b["n_divergences"] for b in real),
        "divergences": [d for b in real for d in b["divergences"]],
    }


# --------------------------------------------------------------------- #
# diagnostics bundles
# --------------------------------------------------------------------- #


def _jsonable(value: Any) -> Any:
    """Best-effort JSON coercion: reprs for anything non-serializable."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


def write_diagnostics_bundle(
    directory: Union[str, Path],
    kind: str,
    spec: Any = None,
    spec_key: Optional[str] = None,
    seed: Optional[int] = None,
    chunk_id: Optional[int] = None,
    details: Optional[Sequence[Dict[str, Any]]] = None,
    events: Optional[Sequence[Dict[str, Any]]] = None,
    error: Optional[BaseException] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a minimal-repro JSON bundle for one failure.

    Everything needed to replay the failing unit from one file: the
    sweep spec (repr — specs are eval-able dataclasses), its hash, the
    replication seed, the chunk id, the field-level divergence/violation
    details, and the executor's resilience event log.  Returns the
    bundle path (``repro_diag_<spec-hash>_<chunk>.json`` in
    ``directory``, which is created if missing).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bundle: Dict[str, Any] = {
        "kind": str(kind),
        "spec_key": spec_key,
        "seed": None if seed is None else int(seed),
        "chunk_id": None if chunk_id is None else int(chunk_id),
        "spec": None if spec is None else repr(spec),
        "details": list(details) if details is not None else [],
        "events": list(events) if events is not None else [],
        "error": None if error is None else repr(error),
    }
    if extra:
        bundle.update(extra)
    name = (
        f"repro_diag_{spec_key or 'nospec'}_"
        f"{'x' if chunk_id is None else int(chunk_id)}.json"
    )
    path = directory / name
    with open(path, "w") as fh:
        json.dump(bundle, fh, indent=2, default=_jsonable, sort_keys=True)
        fh.write("\n")
    return path


def bundle_for_exception(
    directory: Union[str, Path],
    exc: BaseException,
    spec: Any = None,
    spec_key: Optional[str] = None,
) -> Optional[Path]:
    """Write the diagnostics bundle matching a known failure type.

    Understands :class:`InvariantViolation` (field-level details, seed,
    context) and :class:`~repro.runtime.executor.ChunkExecutionError`
    (failing chunk index/spec, event log).  Returns the bundle path, or
    ``None`` for exception types without a bundle shape.
    """
    from .executor import ChunkExecutionError

    if isinstance(exc, InvariantViolation):
        return write_diagnostics_bundle(
            directory, "invariant_violation",
            spec=spec, spec_key=exc.spec_key or spec_key, seed=exc.seed,
            chunk_id=exc.context.get("chunk"),
            details=exc.details, error=exc,
            extra={"invariant": exc.invariant, "context": exc.context},
        )
    if isinstance(exc, ChunkExecutionError):
        return write_diagnostics_bundle(
            directory, "chunk_execution_error",
            spec=spec if spec is not None else exc.task,
            spec_key=spec_key, chunk_id=exc.chunk_index,
            events=exc.events, error=exc.__cause__ or exc,
            extra={"task": repr(exc.task)},
        )
    return None


# --------------------------------------------------------------------- #
# graceful interruption
# --------------------------------------------------------------------- #


class _InterruptSignal(BaseException):
    """Internal: a trapped SIGTERM surfacing at the next bytecode."""

    def __init__(self, signal_name: str) -> None:
        self.signal_name = signal_name
        super().__init__(signal_name)


@contextmanager
def trap_signals():
    """Convert SIGTERM into a catchable exception for the block's span.

    SIGINT already surfaces as :class:`KeyboardInterrupt`; SIGTERM's
    default disposition kills the process with no chance to flush a
    journal or tear a pool down.  Inside this context both arrive as
    exceptions the caller can turn into a clean
    :class:`SweepInterrupted`.  The previous handler is restored on
    exit; outside the main thread (where handlers cannot be installed)
    the context is a no-op and only SIGINT remains catchable.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _raise(signum, frame):
        raise _InterruptSignal(signal.Signals(signum).name)

    previous = signal.signal(signal.SIGTERM, _raise)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
