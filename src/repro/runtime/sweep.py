"""Unified multi-seed sweep runner: one entry point for every experiment.

Every reproduction experiment is, at its core, "roll the slotted system
forward for N slots under some controller, for one or more seeds, and
summarize".  :class:`SweepRunner` owns that loop once:

- seeds are chunked into lock-step batches of ``batch_size`` and executed
  on the vectorized engine (:class:`~repro.runtime.BatchedSlottedEnv` +
  :class:`~repro.runtime.BatchedQDPM`), so a 32-seed sweep costs one
  NumPy-stride loop instead of 32 interpreter round-trip loops;
- fixed policies (the frozen-optimal arms) run on the same batched
  engine with a precomputed state->action lookup;
- controllers that cannot be batched (the model-based adaptive pipeline)
  fall back to a per-seed scalar loop behind the same interface;
- seed chunks are embarrassingly parallel, so ``n_jobs > 1`` ships
  ``(spec, chunk_seeds)`` work units across a process pool
  (:mod:`repro.runtime.executor`) and reassembles results in seed
  order — per-seed results are bit-identical for every
  ``(batch_size, n_jobs)`` combination;
- per-seed summaries aggregate to mean +- bootstrap CI via the existing
  :mod:`repro.analysis.bootstrap`.

The runner deliberately does not import :mod:`repro.experiments` — the
experiments layer builds :class:`RolloutSpec`s from its config
dataclasses (``RolloutSpec.from_env_config``) and calls down.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..analysis.bootstrap import CI, bootstrap_ci
from ..core.qdpm import RunHistory
from ..core.schedules import Schedule
from ..device import get_preset
from ..env.slotted_env import EnvTotals
from ..mdp import DeterministicPolicy
from ..workload.nonstationary import RateSchedule
from .batched_env import BatchedSlottedEnv
from .batched_qdpm import BatchedQDPM, BatchRunHistory, run_lockstep
from .checkpoint import run_chunks_checkpointed, spec_hash
from .executor import (
    MultiprocessExecutor,
    SerialExecutor,
    get_executor,
    is_picklable,
)
from .telemetry import TELEMETRY
from .verify import (
    InvariantViolation,
    check_seed_run,
    shadow_verify_chunks,
    write_diagnostics_bundle,
)


@dataclass(frozen=True)
class RolloutSpec:
    """One rollout recipe: environment + controller + horizon.

    ``policy`` switches the controller: ``None`` rolls a learning Q-DPM
    (with an optional pre-training phase on ``warmup_schedule``), a
    :class:`~repro.mdp.DeterministicPolicy` rolls that fixed policy.
    Per-replica env streams are seeded ``seed + env_seed_offset`` (and
    ``seed + warmup_seed_offset`` during warmup), mirroring the seed
    arithmetic the scalar experiments used.
    """

    schedule: RateSchedule
    n_slots: int
    device: str = "abstract3"
    slot_length: float = 1.0
    queue_capacity: int = 8
    p_serve: float = 0.9
    perf_weight: float = 0.5
    loss_penalty: float = 2.0
    discount: float = 0.95
    learning_rate: Union[float, Schedule] = 0.1
    epsilon: float = 0.1
    initial_q: float = 0.0
    record_every: int = 1_000
    policy: Optional[DeterministicPolicy] = None
    warmup_schedule: Optional[RateSchedule] = None
    warmup_slots: int = 0
    env_seed_offset: int = 0
    warmup_seed_offset: int = 0
    rng_mode: str = "replica"   #: "replica" = bit-exact streams, "shared" = fastest

    @classmethod
    def from_env_config(cls, env_config, schedule: RateSchedule,
                        n_slots: int, **overrides) -> "RolloutSpec":
        """Build a spec from an experiments ``EnvConfig``-shaped object.

        Duck-typed on the attribute names (device, slot_length,
        queue_capacity, p_serve, perf_weight, loss_penalty, discount) to
        keep the runtime layer import-independent of the experiments
        layer.
        """
        spec = cls(
            schedule=schedule,
            n_slots=n_slots,
            device=env_config.device,
            slot_length=env_config.slot_length,
            queue_capacity=env_config.queue_capacity,
            p_serve=env_config.p_serve,
            perf_weight=env_config.perf_weight,
            loss_penalty=env_config.loss_penalty,
            discount=env_config.discount,
        )
        return replace(spec, **overrides) if overrides else spec

    def build_env(self, seeds: Sequence[int],
                  warmup: bool = False) -> BatchedSlottedEnv:
        """Batched environment for one seed chunk (main or warmup phase)."""
        offset = self.warmup_seed_offset if warmup else self.env_seed_offset
        schedule = self.warmup_schedule if warmup else self.schedule
        return BatchedSlottedEnv(
            get_preset(self.device),
            schedule,
            n_replicas=len(seeds),
            slot_length=self.slot_length,
            queue_capacity=self.queue_capacity,
            p_serve=self.p_serve,
            perf_weight=self.perf_weight,
            loss_penalty=self.loss_penalty,
            seeds=[s + offset for s in seeds],
            rng_mode=self.rng_mode,
        )


@dataclass
class SeedRun:
    """Summary of one seed's rollout."""

    seed: int
    history: RunHistory
    mean_reward: float       #: reward/slot over the whole horizon
    saving_ratio: float      #: episode energy saving vs always-on
    totals: EnvTotals


@dataclass
class SweepResult:
    """All seeds of one sweep, with CI aggregation helpers."""

    spec: RolloutSpec
    runs: List[SeedRun] = field(default_factory=list)
    #: resilience/checkpoint record of how the runner executed the sweep
    #: (resumed/computed chunk counts, retry/timeout/degrade events) —
    #: empty for plain uncheckpointed runs with no incidents
    execution: Dict[str, Any] = field(default_factory=dict)

    @property
    def seeds(self) -> List[int]:
        return [r.seed for r in self.runs]

    @property
    def n_seeds(self) -> int:
        return len(self.runs)

    def rewards(self) -> np.ndarray:
        """Per-seed mean reward/slot."""
        return np.array([r.mean_reward for r in self.runs])

    def savings(self) -> np.ndarray:
        """Per-seed energy-saving ratio."""
        return np.array([r.saving_ratio for r in self.runs])

    def reward_ci(self, confidence: float = 0.95) -> CI:
        """Bootstrap CI of the across-seed mean reward."""
        return bootstrap_ci(self.rewards(), confidence=confidence)

    def saving_ci(self, confidence: float = 0.95) -> CI:
        """Bootstrap CI of the across-seed mean saving ratio."""
        return bootstrap_ci(self.savings(), confidence=confidence)

    def history_matrix(self, what: str = "reward") -> np.ndarray:
        """Stacked per-seed traces, shape ``(n_records, n_seeds)``."""
        return np.stack(
            [getattr(r.history, what) for r in self.runs], axis=1
        )

    def mean_history(self) -> RunHistory:
        """Across-seed mean trace."""
        return RunHistory(
            slots=self.runs[0].history.slots.copy(),
            energy=self.history_matrix("energy").mean(axis=1),
            reward=self.history_matrix("reward").mean(axis=1),
            queue=self.history_matrix("queue").mean(axis=1),
            saving_ratio=self.history_matrix("saving_ratio").mean(axis=1),
            td_error=self.history_matrix("td_error").mean(axis=1),
        )


def _policy_action_lut(env: BatchedSlottedEnv,
                       policy: DeterministicPolicy) -> np.ndarray:
    """State -> action lookup with the scalar experiments' fallback
    (first allowed action when the policy's choice is illegal)."""
    qcap1 = env.queue_capacity + 1
    lut = np.empty(env.n_states, dtype=np.int64)
    for state in range(env.n_states):
        action = policy(state)
        allowed = env.mode_space.allowed_actions(state // qcap1)
        lut[state] = action if action in allowed else allowed[0]
    return lut


def _run_fixed_policy(env: BatchedSlottedEnv, lut: np.ndarray,
                      n_slots: int, record_every: int) -> BatchRunHistory:
    """Roll a fixed policy on the batched engine, windowed like QDPM.run."""
    no_td = np.zeros(env.n_replicas)

    def step():
        actions = lut[env.states]
        _, rewards, info = env.step(actions)
        return rewards, info, no_td

    return run_lockstep(env, step, n_slots, record_every=record_every)


def _horizon_mean(history: RunHistory, n_slots: int,
                  record_every: int) -> float:
    """Whole-horizon reward/slot reconstructed from windowed means."""
    n_full = n_slots // record_every
    weights = [record_every] * n_full
    if n_slots % record_every:
        weights.append(n_slots % record_every)
    weights = np.asarray(weights[:len(history.reward)], dtype=float)
    return float((history.reward * weights).sum() / weights.sum())


def run_chunk(spec: RolloutSpec, chunk_seeds: Sequence[int],
              on_record=None, on_chunk_done=None) -> List[SeedRun]:
    """Execute one seed chunk of ``spec`` — the sweep's unit of work.

    Pure function of ``(spec, chunk_seeds)``: every RNG stream is
    constructed from the chunk's seeds, so the same bits come out whether
    the chunk runs in the parent process or a pool worker.  The optional
    hooks are in-process callbacks and are never shipped to workers.
    """
    with TELEMETRY.span("chunk", cat="sweep", kind="slotted",
                        seeds=list(chunk_seeds)):
        return _run_chunk_body(spec, chunk_seeds, on_record, on_chunk_done)


def _run_chunk_body(spec: RolloutSpec, chunk_seeds: Sequence[int],
                    on_record=None, on_chunk_done=None) -> List[SeedRun]:
    env = spec.build_env(chunk_seeds)
    if spec.policy is not None:
        lut = _policy_action_lut(env, spec.policy)
        hist = _run_fixed_policy(
            env, lut, spec.n_slots, spec.record_every
        )
    else:
        warmup = spec.warmup_schedule is not None and spec.warmup_slots > 0
        driver = BatchedQDPM(
            spec.build_env(chunk_seeds, warmup=True) if warmup else env,
            discount=spec.discount,
            learning_rate=spec.learning_rate,
            epsilon=spec.epsilon,
            initial_q=spec.initial_q,
            seed=[s + 1 for s in chunk_seeds],
        )
        if warmup:
            driver.run(spec.warmup_slots, record_every=spec.warmup_slots)
            driver.env = env
        callback = None
        if on_record is not None:
            callback = lambda slot: on_record(slot, driver, chunk_seeds)
        hist = driver.run(
            spec.n_slots, record_every=spec.record_every,
            callback=callback,
        )
        if on_chunk_done is not None:
            on_chunk_done(driver, chunk_seeds)
    savings = env.energy_saving_ratio()
    runs: List[SeedRun] = []
    for i, seed in enumerate(chunk_seeds):
        history = hist.replica(i)
        runs.append(
            SeedRun(
                seed=seed,
                history=history,
                mean_reward=_horizon_mean(
                    history, spec.n_slots, spec.record_every
                ),
                saving_ratio=float(savings[i]),
                totals=env.totals.replica(i),
            )
        )
    return runs


def _reference_learning_seed(spec: RolloutSpec, seed: int) -> SeedRun:
    """True scalar twin of one learning replica: a scalar
    :class:`~repro.core.QDPM` over a scalar
    :class:`~repro.env.SlottedDPMEnv`, consuming the batched engine's
    exact per-slot RNG layout via ``FixedDrawEpsilonGreedy`` — the
    bit-for-bit parity recipe the test suite pins (env seed
    ``seed + env_seed_offset``, agent seed ``seed + 1``)."""
    from ..core import QDPM
    from ..core.exploration import FixedDrawEpsilonGreedy
    from ..core.qlearning import QLearningAgent
    from ..env.slotted_env import SlottedDPMEnv

    device = get_preset(spec.device)

    def scalar_env(warmup: bool) -> SlottedDPMEnv:
        offset = spec.warmup_seed_offset if warmup else spec.env_seed_offset
        schedule = spec.warmup_schedule if warmup else spec.schedule
        return SlottedDPMEnv(
            device, schedule,
            slot_length=spec.slot_length,
            queue_capacity=spec.queue_capacity,
            p_serve=spec.p_serve,
            perf_weight=spec.perf_weight,
            loss_penalty=spec.loss_penalty,
            seed=seed + offset,
        )

    env = scalar_env(warmup=False)
    warmup = spec.warmup_schedule is not None and spec.warmup_slots > 0
    start_env = scalar_env(warmup=True) if warmup else env
    # QDPM's convenience ctor has no initial_q knob, so build the agent
    # explicitly to mirror every BatchedQDPM parameter
    agent = QLearningAgent(
        n_observations=start_env.n_states,
        n_actions=start_env.n_actions,
        discount=spec.discount,
        learning_rate=spec.learning_rate,
        exploration=FixedDrawEpsilonGreedy(spec.epsilon),
        initial_q=spec.initial_q,
        seed=seed + 1,
    )
    controller = QDPM(start_env, agent=agent)
    if warmup:
        controller.run(spec.warmup_slots, record_every=spec.warmup_slots)
        controller.env = env
    history = controller.run(spec.n_slots, record_every=spec.record_every)
    return SeedRun(
        seed=seed,
        history=history,
        mean_reward=_horizon_mean(history, spec.n_slots, spec.record_every),
        saving_ratio=float(env.energy_saving_ratio()),
        totals=env.totals,
    )


def reference_seed_runs(spec: RolloutSpec,
                        chunk_seeds: Sequence[int]) -> List[SeedRun]:
    """Reference path for one :func:`run_chunk` work unit.

    Learning chunks re-run each seed on the true scalar stack
    (:func:`_reference_learning_seed` — the bit-exact parity recipe);
    fixed-policy chunks, which have no scalar twin, re-run each seed on
    the batched engine at ``B = 1``, which verifies the
    batch-composition-invariance contract instead.  Either way the
    comparison against the sweep's results is exact (``rtol = 0``).
    """
    if spec.policy is None:
        return [_reference_learning_seed(spec, s) for s in chunk_seeds]
    runs: List[SeedRun] = []
    for seed in chunk_seeds:
        runs.extend(run_chunk(spec, [seed]))
    return runs


def _run_scalar_seed(spec: RolloutSpec, seed: int,
                     controller_factory) -> SeedRun:
    """One scalar-fallback rollout (module-level, so it can ship to a
    worker when the factory itself is picklable)."""
    controller = controller_factory(seed)
    history = controller.run(spec.n_slots, record_every=spec.record_every)
    env = controller.env
    return SeedRun(
        seed=seed,
        history=history,
        mean_reward=_horizon_mean(history, spec.n_slots, spec.record_every),
        saving_ratio=float(env.energy_saving_ratio()),
        totals=env.totals,
    )


class SweepRunner:
    """Chunked multi-seed executor over the batched engine.

    Parameters
    ----------
    batch_size:
        Maximum replicas per lock-step batch; seed lists longer than
        this are processed in consecutive chunks.
    n_jobs:
        Worker processes to shard chunks across (default 1 = in-process).
        Chunks are pure functions of their seeds, so per-seed results
        are bit-identical for every ``(batch_size, n_jobs)`` combination.
    timeout:
        Per-chunk wall-second bound when collecting pool results; a
        chunk exceeding it (hung or silently-dead worker) reruns
        in-process (see :meth:`MultiprocessExecutor.submit_all`).
    max_retries:
        Pool resubmissions of a chunk whose worker raised, before the
        chunk degrades to an in-process rerun.
    retry_backoff:
        Base of the capped-exponential sleep between retries.
    checkpoint:
        Path of a chunk-result journal: completed seed chunks are
        recorded as they finish and skipped on the next run with the
        same spec and batch size — resumed results are bit-identical to
        an uninterrupted run.  Incompatible with the in-process snapshot
        hooks of :meth:`run_many` (resumed chunks never execute, so the
        hooks could not fire).
    verify_fraction:
        Fraction of seed chunks to shadow-verify: sampled learning
        chunks re-run per seed on the true scalar stack (scalar
        ``QDPM`` with ``FixedDrawEpsilonGreedy``) and must match
        **bit-for-bit**; fixed-policy chunks re-run at ``B = 1``
        (batch-composition invariance).  Requires
        ``rng_mode="replica"`` — shared-RNG specs record the
        verification as skipped instead.  A divergence raises
        :class:`~repro.runtime.verify.InvariantViolation`.
    diagnostics_dir:
        Directory for minimal-repro JSON bundles written on invariant
        violations, shadow divergences, and unrecoverable chunk
        failures.
    """

    def __init__(self, batch_size: int = 32, n_jobs: int = 1,
                 timeout: Optional[float] = None, max_retries: int = 0,
                 retry_backoff: float = 0.5,
                 checkpoint: Optional[str] = None,
                 verify_fraction: float = 0.0,
                 diagnostics_dir: Optional[str] = None) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 <= float(verify_fraction) <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {verify_fraction}"
            )
        self.batch_size = int(batch_size)
        self.n_jobs = int(n_jobs)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.checkpoint = checkpoint
        self.verify_fraction = float(verify_fraction)
        self.diagnostics_dir = diagnostics_dir

    def run_many(
        self,
        spec: RolloutSpec,
        seeds: Sequence[int],
        batch_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
        on_record: Optional[Callable[[int, BatchedQDPM, Sequence[int]], None]] = None,
        on_chunk_done: Optional[Callable[[BatchedQDPM, Sequence[int]], None]] = None,
        controller_factory: Optional[Callable[[int], object]] = None,
    ) -> SweepResult:
        """Run ``spec`` once per seed; batched and sharded wherever possible.

        ``on_record(slot, driver, chunk_seeds)`` fires at every record
        point of a learning chunk executed in the parent process
        (snapshot hooks); ``on_chunk_done(driver, chunk_seeds)`` after
        such a chunk finishes (final-table extraction).  With
        ``n_jobs = 1`` that is every chunk; with ``n_jobs > 1`` only the
        *first* chunk runs in the parent (overlapped with the worker
        pool), so hooks see exactly the lead chunk — the contract the
        figure experiments rely on.  Hooks never change results.
        ``controller_factory(seed)`` switches to the scalar fallback: it
        must return an object with ``.run(n_slots, record_every)`` ->
        ``RunHistory`` and an ``.env`` exposing ``totals`` /
        ``energy_saving_ratio()`` (e.g. the model-based pipeline).
        Factories that pickle are sharded per seed; closures degrade to
        the in-process loop.
        """
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("need at least one seed")
        chunk = batch_size if batch_size is not None else self.batch_size
        if chunk < 1:
            raise ValueError(f"batch_size must be >= 1, got {chunk}")
        jobs = n_jobs if n_jobs is not None else self.n_jobs
        with TELEMETRY.metrics_scope() as metrics:
            with TELEMETRY.span("sweep", cat="sweep", kind="slotted",
                                n_seeds=len(seeds), batch_size=chunk,
                                n_jobs=jobs):
                result = self._run_many(
                    spec, seeds, chunk, jobs,
                    on_record=on_record, on_chunk_done=on_chunk_done,
                    controller_factory=controller_factory,
                )
        result.execution["metrics"] = metrics.snapshot()
        return result

    def _run_many(
        self,
        spec: RolloutSpec,
        seeds: List[int],
        chunk: int,
        n_jobs: int,
        on_record=None,
        on_chunk_done=None,
        controller_factory=None,
    ) -> SweepResult:
        executor = get_executor(n_jobs)
        if controller_factory is not None:
            return self._run_scalar(spec, seeds, controller_factory, executor)
        chunks = [seeds[i:i + chunk] for i in range(0, len(seeds), chunk)]
        result = SweepResult(spec=spec)
        if self.checkpoint is not None:
            if on_record is not None or on_chunk_done is not None:
                raise ValueError(
                    "checkpointing does not compose with in-process "
                    "snapshot hooks: resumed chunks load from the journal "
                    "without executing, so the hooks could not fire"
                )
            runs_per_chunk, execution = run_chunks_checkpointed(
                executor, run_chunk, [(spec, c) for c in chunks],
                spec_key=spec_hash(spec, chunk),
                checkpoint=self.checkpoint, timeout=self.timeout,
                max_retries=self.max_retries,
                retry_backoff=self.retry_backoff,
                diagnostics_dir=self.diagnostics_dir, spec=spec,
            )
            result.execution.update(execution)
            for chunk_runs in runs_per_chunk:
                result.runs.extend(chunk_runs)
            return self._finalize(spec, chunk, chunks, result)
        reporter = TELEMETRY.progress_reporter(
            total=len(chunks), workers=min(executor.n_jobs, len(chunks)),
            label="sweep",
        )
        if isinstance(executor, SerialExecutor) or len(chunks) == 1:
            for chunk_seeds in chunks:
                result.runs.extend(
                    run_chunk(spec, chunk_seeds, on_record, on_chunk_done)
                )
                TELEMETRY.inc("executor.chunks_completed")
                if reporter is not None:
                    reporter.update()
            if reporter is not None:
                reporter.finish()
            return self._finalize(spec, chunk, chunks, result)
        # Sharded path: ship the tail chunks to the pool first, then run
        # the lead chunk in the parent (with the in-process hooks)
        # overlapped with the workers.  The parent counts as one of the
        # n_jobs lanes, so the pool gets n_jobs - 1 workers and total
        # concurrency honors the knob.  pool order == submission order,
        # so runs come back in seed order.  With a single tail chunk or
        # n_jobs = 2, submit_all short-circuits to eager in-process
        # execution (no overlap): the quick-snapshot bench showed pool
        # spin-up dominating exactly those shapes, so they degrade to
        # the serial path's cost instead of paying for a pool.
        on_result = None
        if reporter is not None:
            on_result = lambda j, r: reporter.update()
        pending = MultiprocessExecutor(executor.n_jobs - 1).submit_all(
            run_chunk, [(spec, c) for c in chunks[1:]],
            timeout=self.timeout, max_retries=self.max_retries,
            retry_backoff=self.retry_backoff, on_result=on_result,
        )
        try:
            result.runs.extend(
                run_chunk(spec, chunks[0], on_record, on_chunk_done)
            )
            TELEMETRY.inc("executor.chunks_completed")
            if reporter is not None:
                reporter.update()
        except BaseException:
            # lead chunk (or a user hook) failed: don't leak the pool
            pending.cancel()
            raise
        for chunk_runs in pending.get():
            result.runs.extend(chunk_runs)
        if reporter is not None:
            reporter.finish()
        if pending.events:
            result.execution["resilience_events"] = list(pending.events)
        return self._finalize(spec, chunk, chunks, result)

    # ------------------------------------------------------------------ #
    # runtime verification
    # ------------------------------------------------------------------ #

    def _finalize(self, spec: RolloutSpec, chunk_size: int,
                  chunks: List[List[int]],
                  result: SweepResult) -> SweepResult:
        """Always-on invariant checks plus sampled shadow execution."""
        spec_key = spec_hash(spec, chunk_size)
        try:
            for run in result.runs:
                check_seed_run(run, spec=spec, spec_key=spec_key)
        except InvariantViolation as exc:
            if self.diagnostics_dir is not None:
                write_diagnostics_bundle(
                    self.diagnostics_dir, "invariant_violation", spec=spec,
                    spec_key=spec_key, seed=exc.seed, details=exc.details,
                    error=exc, extra={"invariant": exc.invariant},
                )
            raise
        if self.verify_fraction == 0.0:
            return result
        reference = (
            "scalar QDPM (FixedDrawEpsilonGreedy)" if spec.policy is None
            else "batched engine at B=1"
        )
        if spec.rng_mode != "replica":
            # shared-RNG replicas draw from one stream in batch order, so
            # no per-seed scalar twin exists; record the skip rather than
            # report a false divergence
            result.execution["verification"] = {
                "fraction": self.verify_fraction,
                "n_chunks": len(chunks),
                "verified_chunks": [], "n_verified": 0,
                "reference": reference, "n_divergences": 0,
                "divergences": [],
                "skipped": f"rng_mode={spec.rng_mode!r} has no per-seed "
                           f"scalar twin; use rng_mode='replica' to verify",
            }
            return result
        chunk_results: List[List[SeedRun]] = []
        offset = 0
        for c in chunks:
            chunk_results.append(result.runs[offset:offset + len(c)])
            offset += len(c)
        result.execution["verification"] = shadow_verify_chunks(
            [(spec, c) for c in chunks], chunk_results,
            self.verify_fraction, spec_key, reference_seed_runs, reference,
            seeds_of=lambda task: task[1],
            rtol=0.0, atol=0.0,
            diagnostics_dir=self.diagnostics_dir, spec=spec,
        )
        return result

    # ------------------------------------------------------------------ #
    # scalar fallback
    # ------------------------------------------------------------------ #

    def _run_scalar(self, spec: RolloutSpec, seeds: List[int],
                    controller_factory, executor) -> SweepResult:
        result = SweepResult(spec=spec)
        tasks = [(spec, seed, controller_factory) for seed in seeds]
        if not isinstance(executor, SerialExecutor) and is_picklable(
            controller_factory
        ):
            result.runs.extend(executor.map(_run_scalar_seed, tasks))
        else:
            # closures (and other unpicklable factories) keep the
            # in-process loop — same bits, no sharding
            result.runs.extend(_run_scalar_seed(*t) for t in tasks)
        return result
