"""Vectorized batched runtime: lock-step multi-replica engine + sweeps.

The scalar stack (:class:`~repro.env.SlottedDPMEnv` +
:class:`~repro.core.QDPM`) pays a Python interpreter round-trip per slot
per seed.  This subsystem batches B independent replicas into NumPy
array ops and shards the resulting work units across processes:

- :class:`BatchedSlottedEnv` — B environment replicas stepped in
  lock-step, bit-for-bit equivalent to B scalar envs under matched
  per-replica RNG streams;
- :class:`BatchedQDPM` — B independent Q-DPM learners trained in one
  loop over disjoint row blocks of a single Q-table;
- :class:`SweepRunner` — the unified multi-seed entry point
  (``run_many(spec, seeds, batch_size, n_jobs)``) every experiment
  routes through, with bootstrap-CI aggregation;
- :mod:`~repro.runtime.executor` — the serial / multiprocessing
  executor abstraction that ships ``(spec, chunk_seeds)`` work units to
  worker processes and reassembles results in seed order;
- :class:`GridRunner` — grid-product scenario sweeps
  (rate x device x horizon x controller) fanned across the executor;
- :mod:`~repro.runtime.eventsim` — vectorized busy-period kernel for
  the continuous-time event simulator (:func:`simulate_trace` runs
  stateless policies as NumPy array ops over all idle gaps at once,
  scalar fallback otherwise), plus the lock-step cross-replication
  engine for stateful policies (:func:`simulate_traces_batch` advances
  R replication runs one idle gap per step with dense per-replica
  policy state);
- :class:`SimSweepRunner` — (device x trace x policy) event-sim cell
  grids fanned across the executor with bootstrap-CI aggregation,
  degrading to in-process execution when pool dispatch cannot pay for
  itself (:func:`resolve_n_jobs`).
"""

from .batched_env import BatchedEnvTotals, BatchedSlottedEnv, BatchStepInfo
from .batched_qdpm import BatchedQDPM, BatchRunHistory
from .eventsim import (
    policy_batch_mode,
    run_step_batched,
    run_vectorized,
    simulate_trace,
    simulate_traces_batch,
)
from .checkpoint import (
    CheckpointJournal,
    CheckpointMismatchError,
    run_chunks_checkpointed,
    spec_hash,
)
from .executor import (
    AsyncTasks,
    ChunkExecutionError,
    Executor,
    MultiprocessExecutor,
    SerialExecutor,
    get_executor,
    is_picklable,
    resolve_n_jobs,
)
from .grid import GridCell, GridCellResult, GridResult, GridRunner, GridSpec
from .simsweep import (
    PolicySpec,
    SimCellResult,
    SimSweepResult,
    SimSweepRunner,
    SimSweepSpec,
    TraceSpec,
    reference_sim_chunk,
    run_sim_chunk,
)
from .sweep import (
    RolloutSpec,
    SeedRun,
    SweepResult,
    SweepRunner,
    reference_seed_runs,
    run_chunk,
)
from .telemetry import (
    TELEMETRY,
    MetricsRegistry,
    ProgressReporter,
    SpanRecord,
    Telemetry,
    TelemetryEnvelope,
    TracedCall,
    Tracer,
    export_chrome_trace,
    export_jsonl,
    export_trace,
)
from .verify import (
    InvariantViolation,
    SweepInterrupted,
    check_fleet_report,
    check_seed_run,
    check_sim_report,
    compare_reports,
    merge_verification_blocks,
    shadow_indices,
    shadow_verify_chunks,
    trap_signals,
    write_diagnostics_bundle,
)

__all__ = [
    "BatchedSlottedEnv",
    "BatchStepInfo",
    "BatchedEnvTotals",
    "BatchedQDPM",
    "BatchRunHistory",
    "RolloutSpec",
    "SeedRun",
    "SweepResult",
    "SweepRunner",
    "run_chunk",
    "SerialExecutor",
    "MultiprocessExecutor",
    "Executor",
    "AsyncTasks",
    "ChunkExecutionError",
    "CheckpointJournal",
    "run_chunks_checkpointed",
    "spec_hash",
    "get_executor",
    "is_picklable",
    "GridSpec",
    "GridCell",
    "GridCellResult",
    "GridResult",
    "GridRunner",
    "run_vectorized",
    "simulate_trace",
    "simulate_traces_batch",
    "run_step_batched",
    "policy_batch_mode",
    "resolve_n_jobs",
    "TraceSpec",
    "PolicySpec",
    "SimSweepSpec",
    "SimCellResult",
    "SimSweepResult",
    "SimSweepRunner",
    "run_sim_chunk",
    "reference_sim_chunk",
    "reference_seed_runs",
    "CheckpointMismatchError",
    "InvariantViolation",
    "SweepInterrupted",
    "check_sim_report",
    "check_fleet_report",
    "check_seed_run",
    "compare_reports",
    "merge_verification_blocks",
    "shadow_indices",
    "shadow_verify_chunks",
    "trap_signals",
    "write_diagnostics_bundle",
    "TELEMETRY",
    "Telemetry",
    "Tracer",
    "SpanRecord",
    "MetricsRegistry",
    "ProgressReporter",
    "TelemetryEnvelope",
    "TracedCall",
    "export_chrome_trace",
    "export_jsonl",
    "export_trace",
]
