"""Vectorized batched runtime: lock-step multi-replica engine + sweeps.

The scalar stack (:class:`~repro.env.SlottedDPMEnv` +
:class:`~repro.core.QDPM`) pays a Python interpreter round-trip per slot
per seed.  This subsystem batches B independent replicas into NumPy
array ops:

- :class:`BatchedSlottedEnv` — B environment replicas stepped in
  lock-step, bit-for-bit equivalent to B scalar envs under matched
  per-replica RNG streams;
- :class:`BatchedQDPM` — B independent Q-DPM learners trained in one
  loop over disjoint row blocks of a single Q-table;
- :class:`SweepRunner` — the unified multi-seed entry point
  (``run_many(spec, seeds, batch_size)``) every experiment routes
  through, with bootstrap-CI aggregation.
"""

from .batched_env import BatchedEnvTotals, BatchedSlottedEnv, BatchStepInfo
from .batched_qdpm import BatchedQDPM, BatchRunHistory
from .sweep import RolloutSpec, SeedRun, SweepResult, SweepRunner

__all__ = [
    "BatchedSlottedEnv",
    "BatchStepInfo",
    "BatchedEnvTotals",
    "BatchedQDPM",
    "BatchRunHistory",
    "RolloutSpec",
    "SeedRun",
    "SweepResult",
    "SweepRunner",
]
