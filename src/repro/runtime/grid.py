"""Grid-product scenario sweeps: rate x device x horizon x controller.

Sweep specs are cheap value objects, so a scenario grid is just the
cartesian product of a few axes, each cell a :class:`RolloutSpec` run by
the same chunked machinery as a single sweep.  :class:`GridRunner`
flattens the full cell x seed-chunk matrix into one task list and fans
it across the executor (:mod:`repro.runtime.executor`) — with
``n_jobs > 1`` the whole grid shards across processes, not just one
cell's chunks — then reassembles per-cell :class:`SweepResult`s with
bootstrap-CI aggregation and renders a comparison table.

Two controller kinds cover the reproduction's standing comparison:

- ``"qdpm"`` — the learning controller (the spec's Q-DPM
  hyperparameters);
- ``"frozen"`` — the optimal policy solved per cell (policy iteration
  at the cell's mean arrival rate on the cell's device), rolled out as a
  vectorized fixed-policy sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import List, Optional, Sequence, Tuple, Union

from ..analysis.ascii_plot import format_table
from ..analysis.bootstrap import CI
from ..device import get_preset
from ..env import build_dpm_model
from ..workload.nonstationary import ConstantRate, RateSchedule
from .executor import get_executor
from .sweep import RolloutSpec, SweepResult, run_chunk

#: Controller kinds a grid axis may name.
CONTROLLERS = ("qdpm", "frozen")

#: A rate axis entry: a Bernoulli arrival probability or a full schedule.
RateLike = Union[float, RateSchedule]


def _rate_label(rate: RateLike) -> str:
    if isinstance(rate, RateSchedule):
        return repr(rate)
    return f"{float(rate):g}"


@dataclass(frozen=True)
class GridCell:
    """One grid coordinate with its realized rollout recipe."""

    rate: RateLike
    device: str
    n_slots: int
    controller: str
    spec: RolloutSpec

    @property
    def rate_label(self) -> str:
        """Compact table label for the rate axis value."""
        return _rate_label(self.rate)


@dataclass(frozen=True)
class GridSpec:
    """A scenario grid: a base recipe plus the axes that vary.

    ``base`` supplies everything the axes do not override (queue
    capacity, reward weights, Q-DPM hyperparameters, ``record_every``,
    RNG mode, seed offsets).  ``rates`` entries may be floats (wrapped
    in :class:`~repro.workload.ConstantRate`) or full
    :class:`~repro.workload.RateSchedule` objects; ``horizons`` defaults
    to the base spec's ``n_slots``.
    """

    base: RolloutSpec
    rates: Tuple[RateLike, ...]
    devices: Tuple[str, ...] = ("abstract3",)
    horizons: Tuple[int, ...] = ()
    controllers: Tuple[str, ...] = ("qdpm",)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rates", tuple(self.rates))
        object.__setattr__(self, "devices", tuple(self.devices))
        horizons = tuple(self.horizons) or (self.base.n_slots,)
        object.__setattr__(self, "horizons", horizons)
        object.__setattr__(self, "controllers", tuple(self.controllers))
        if not self.rates:
            raise ValueError("need at least one rate")
        if not self.devices:
            raise ValueError("need at least one device")
        if not self.controllers:
            raise ValueError("need at least one controller")
        for horizon in self.horizons:
            if int(horizon) < 1:
                raise ValueError(f"horizons must be >= 1, got {horizon}")
        for controller in self.controllers:
            if controller not in CONTROLLERS:
                raise ValueError(
                    f"unknown controller {controller!r}; "
                    f"known kinds: {', '.join(CONTROLLERS)}"
                )

    @property
    def n_cells(self) -> int:
        """Cells in the cartesian product."""
        return (
            len(self.rates) * len(self.devices)
            * len(self.horizons) * len(self.controllers)
        )

    def _frozen_policy(self, rate: RateLike, device: str, horizon: int):
        """Optimal policy for one cell (solved at the cell's mean rate)."""
        rate_value = (
            rate.mean_rate(horizon)
            if isinstance(rate, RateSchedule) else float(rate)
        )
        model = build_dpm_model(
            get_preset(device),
            arrival_rate=rate_value,
            slot_length=self.base.slot_length,
            queue_capacity=self.base.queue_capacity,
            p_serve=self.base.p_serve,
            perf_weight=self.base.perf_weight,
            loss_penalty=self.base.loss_penalty,
        )
        return model.solve(self.base.discount, "policy_iteration").policy

    def cells(self) -> List[GridCell]:
        """Realize every (rate, device, horizon, controller) coordinate."""
        out: List[GridCell] = []
        for rate, device, horizon, controller in product(
            self.rates, self.devices, self.horizons, self.controllers
        ):
            horizon = int(horizon)
            schedule = (
                rate if isinstance(rate, RateSchedule)
                else ConstantRate(float(rate))
            )
            policy = (
                self._frozen_policy(rate, device, horizon)
                if controller == "frozen" else None
            )
            spec = replace(
                self.base,
                schedule=schedule,
                device=device,
                n_slots=horizon,
                policy=policy,
                # warmup is a learning-phase concept; fixed policies skip it
                warmup_schedule=(
                    None if controller == "frozen"
                    else self.base.warmup_schedule
                ),
                warmup_slots=(
                    0 if controller == "frozen" else self.base.warmup_slots
                ),
            )
            out.append(
                GridCell(
                    rate=rate, device=device, n_slots=horizon,
                    controller=controller, spec=spec,
                )
            )
        return out


@dataclass
class GridCellResult:
    """One cell's sweep, with its CI aggregation."""

    cell: GridCell
    result: SweepResult

    def reward_ci(self, confidence: float = 0.95) -> CI:
        """Bootstrap CI of the cell's across-seed mean reward."""
        return self.result.reward_ci(confidence)

    def saving_ci(self, confidence: float = 0.95) -> CI:
        """Bootstrap CI of the cell's across-seed mean saving ratio."""
        return self.result.saving_ci(confidence)


@dataclass
class GridResult:
    """The full grid, in cell order, with a comparison-table renderer."""

    grid: GridSpec
    seeds: List[int]
    cells: List[GridCellResult] = field(default_factory=list)

    @property
    def n_seeds(self) -> int:
        return len(self.seeds)

    def render(self) -> str:
        """Comparison table: one row per cell, CIs when seeds > 1."""
        multi = self.n_seeds > 1
        headers = ["rate", "device", "horizon", "controller",
                   "reward", "saving"]
        if multi:
            headers += ["reward +-95", "saving +-95"]
        rows = []
        for cr in self.cells:
            reward_ci = cr.reward_ci()
            saving_ci = cr.saving_ci()
            row = [
                cr.cell.rate_label, cr.cell.device, cr.cell.n_slots,
                cr.cell.controller, round(reward_ci.estimate, 4),
                round(saving_ci.estimate, 4),
            ]
            if multi:
                row += [
                    round(reward_ci.half_width, 4),
                    round(saving_ci.half_width, 4),
                ]
            rows.append(row)
        title = (
            f"GRID: {self.grid.n_cells} cells "
            f"(rate x device x horizon x controller) x "
            f"{self.n_seeds} seed{'s' if self.n_seeds != 1 else ''}"
        )
        return format_table(headers, rows, title=title)


class GridRunner:
    """Fan a scenario grid's cell x chunk matrix across the executor.

    Parameters
    ----------
    batch_size:
        Replicas per lock-step batch within every cell.
    n_jobs:
        Worker processes the flattened task list shards across; cells
        and chunks are all independent work units, so parallelism spans
        the whole grid.
    """

    def __init__(self, batch_size: int = 32, n_jobs: int = 1) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if int(n_jobs) < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        self.batch_size = int(batch_size)
        self.n_jobs = int(n_jobs)

    def run(self, grid: GridSpec, seeds: Sequence[int],
            n_jobs: Optional[int] = None) -> GridResult:
        """Run every grid cell for every seed; bit-identical for any
        ``(batch_size, n_jobs)`` combination."""
        seeds = [int(s) for s in seeds]
        if not seeds:
            raise ValueError("need at least one seed")
        cells = grid.cells()
        tasks: List[Tuple[RolloutSpec, List[int]]] = []
        owner: List[int] = []
        for idx, cell in enumerate(cells):
            for start in range(0, len(seeds), self.batch_size):
                tasks.append((cell.spec, seeds[start:start + self.batch_size]))
                owner.append(idx)
        executor = get_executor(n_jobs if n_jobs is not None else self.n_jobs)
        chunk_runs = executor.map(run_chunk, tasks)
        # tasks were emitted cell-major / seed-minor and the executor
        # preserves order, so grouping by owner restores seed order
        per_cell: List[List] = [[] for _ in cells]
        for idx, runs in zip(owner, chunk_runs):
            per_cell[idx].extend(runs)
        result = GridResult(grid=grid, seeds=seeds)
        for cell, runs in zip(cells, per_cell):
            result.cells.append(
                GridCellResult(
                    cell=cell,
                    result=SweepResult(spec=cell.spec, runs=runs),
                )
            )
        return result
