"""Vectorized busy-period kernel for the event-driven DPM simulator.

:class:`~repro.sim.DPMSimulator` pays one Python interpreter round-trip
per event per trace.  For the *stateless* decision family — policies
whose :meth:`~repro.sim.policy_api.EventPolicy.on_idle` is a pure
function of the :class:`~repro.sim.policy_api.IdleContext` (the timeout
family, greedy, always-on, multilevel, and the oracle) — the whole run
collapses into NumPy array ops, because the FIFO single-server,
wake-on-arrival semantics decompose a trace into busy periods and
independent idle gaps:

1.  **Busy periods** obey the Lindley recursion
    ``completion[i] = max(completion[i-1], arrival[i] + wake[i]) + demand[i]``,
    which vectorizes as a prefix max over ``arrival + wake - cum_demand``.
2.  **Idle gaps** open where an arrival strictly exceeds the previous
    completion; each gap's shutdown decision, transition energies,
    residencies, and wake-up delay are pure per-gap functions that
    evaluate over all gaps at once via
    :meth:`~repro.sim.policy_api.EventPolicy.decide_batch`.
3.  Wake-up delays feed back into busy-period boundaries, so the kernel
    iterates 1+2 to a fixpoint.  Each pass makes at least one further
    prefix of completions exact (the first gap's start never moves, so
    induction walks forward), giving convergence in at most ``n + 1``
    passes — typically 2-3, since wake delays rarely cascade.

Equivalence with the scalar event loop is pinned field-for-field on the
:class:`~repro.sim.SimReport` (tests/test_runtime_eventsim.py), including
the loop's tie-breaking (arrivals pre-empt same-time timeouts), the
"timeout events at or beyond the observation window are dropped" rule,
zero-latency transition lumps, and zero-span residency keys.

:func:`simulate_trace` is the drop-in entry point: it runs the kernel
when the policy and device qualify and falls back to the scalar
:class:`~repro.sim.DPMSimulator` automatically (stateful policies such as
the adaptive and predictive baselines, non-free wait-state parking,
or exotic decision targets).

Stateful policies cannot use the all-gaps-at-once kernel — each gap's
decision depends on the realized idle history — but sweep cells always
run R seeded *replications* of the same (device, policy) pair, and the
replication axis is embarrassingly parallel.  :func:`run_step_batched`
therefore batches *across replications*: R traces are padded into
``(R, n)`` arrays, every replica advances one idle gap per lock-step
round, and per-replica policy state lives in dense arrays via the
:meth:`~repro.sim.policy_api.EventPolicy.decide_step_batch` /
``end_step_batch`` hooks.  Completions still resolve with busy-period
array ops: the zero-wake (pure) busy-period structure is precomputed
once, each realized busy period is the pure one shifted by the opener's
wake delay (``completion = max(pure, shift + cum_demand)``), and a gap
swallowed by a wake delay merges its pure period into the running one.
:func:`simulate_traces_batch` is the many-trace entry point that picks
this engine, the per-trace kernel, or the scalar loop automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..device import PowerStateMachine
from ..sim.policy_api import BatchIdleContext, EventPolicy, StepBatchContext
from ..sim.simulator import DPMSimulator, default_wait_state, resolve_demands
from ..sim.stats import SimReport, compile_report
from ..workload.trace import Trace


@dataclass(frozen=True)
class _TargetCosts:
    """Transition/residency constants of one shutdown target state."""

    name: str
    power: float
    down_latency: float
    down_energy: float
    down_mean_power: float
    up_latency: float
    up_energy: float
    up_mean_power: float
    break_even: float


def _wait_parking_is_free(
    device: PowerStateMachine, home: str, wait: str
) -> bool:
    """True when parking in ``wait`` is a free, instant round trip.

    The kernel folds the park into plain residency accounting; a costly
    wait-state trip would need event-level integration, so such devices
    stay on the scalar loop.
    """
    if wait == home:
        return True
    if not (device.can_transition(home, wait) and device.can_transition(wait, home)):
        return False
    down = device.transition(home, wait)
    up = device.transition(wait, home)
    return (
        down.energy == 0 and down.latency == 0
        and up.energy == 0 and up.latency == 0
    )


def _target_costs(
    device: PowerStateMachine, home: str, wait: str, idx: int
) -> Optional[_TargetCosts]:
    """Constants for shutdown target ``state_names[idx]``, or None if the
    target is outside the shapes the kernel models (missing edges, or a
    degenerate home/wait target)."""
    names = device.state_names
    if idx < 0 or idx >= len(names):
        return None
    name = names[idx]
    if name == home or name == wait:
        return None
    if not (device.can_transition(wait, name) and device.can_transition(name, home)):
        return None
    down = device.transition(wait, name)
    up = device.transition(name, home)
    try:
        break_even = device.break_even_time(name, home)
    except (ValueError, KeyError):
        break_even = 0.0
    return _TargetCosts(
        name=name,
        power=device.state(name).power,
        down_latency=down.latency,
        down_energy=down.energy,
        down_mean_power=down.mean_power,
        up_latency=up.latency,
        up_energy=up.energy,
        up_mean_power=up.mean_power,
        break_even=break_even,
    )


def _fold_target_costs(
    residency: Dict[str, float],
    total_energy: float,
    tc: _TargetCosts,
    n_down: int,
    n_up: int,
    span: float,
    home: str,
    wait: str,
) -> float:
    """Fold one shutdown target's residency span and transition costs
    into a run's accounting; returns the updated energy total.

    Shared by the all-gaps kernel and the lock-step engine so the two
    cannot drift in how transition labels and energies are derived
    (mirroring what :func:`~repro.sim.stats.compile_report` does for the
    summary metrics).
    """
    residency[tc.name] = residency.get(tc.name, 0.0) + span
    total_energy += tc.power * span
    if tc.down_latency > 0:
        label = f"{wait}->{tc.name}"
        residency[label] = residency.get(label, 0.0) + n_down * tc.down_latency
        total_energy += tc.down_mean_power * tc.down_latency * n_down
    else:
        total_energy += tc.down_energy * n_down
    if n_up:
        if tc.up_latency > 0:
            label = f"{tc.name}->{home}"
            residency[label] = residency.get(label, 0.0) + n_up * tc.up_latency
            total_energy += tc.up_mean_power * tc.up_latency * n_up
        else:
            total_energy += tc.up_energy * n_up
    return total_energy


def run_vectorized(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
    keep_latencies: bool = True,
) -> Optional[SimReport]:
    """Run the busy-period kernel; None when the run does not qualify.

    Mirrors :class:`~repro.sim.DPMSimulator`'s constructor contract
    (``service_time`` validation, wait-state existence check); a None
    return means the caller should use the scalar loop, which either
    simulates the run or raises the error the configuration deserves.
    """
    if service_time <= 0:
        raise ValueError(f"service_time must be > 0, got {service_time}")
    home = device.initial_state
    wait = wait_state if wait_state is not None else default_wait_state(device)
    device.state(wait)  # existence check
    if not _wait_parking_is_free(device, home, wait):
        return None

    arrivals = trace.arrival_times
    n = int(arrivals.size)
    demands = resolve_demands(trace, service_time)
    duration = trace.duration

    policy.reset()
    costs: Dict[int, _TargetCosts] = {}

    # ---- fixpoint over wake-up delays --------------------------------- #
    wake = np.zeros(n)
    converged = False
    for _ in range(n + 2):
        if n:
            total_demand = np.cumsum(demands)
            earliest = arrivals + wake
            floor = np.maximum.accumulate(earliest - (total_demand - demands))
            completions = floor + total_demand
            prev_completion = np.concatenate(([0.0], completions[:-1]))
            opens = arrivals > prev_completion
            opens[0] = True  # begin_idle(0.0) always opens the first gap
            gap_starts = prev_completion[opens]
            gap_ends = arrivals[opens]
            final_start = float(completions[-1])
        else:
            completions = np.empty(0)
            opens = np.zeros(0, dtype=bool)
            gap_starts = np.empty(0)
            gap_ends = np.empty(0)
            final_start = 0.0

        starts = np.concatenate((gap_starts, [final_start]))
        if oracle:
            next_arrivals = np.concatenate((gap_ends, [np.nan]))
        else:
            next_arrivals = np.full(starts.size, np.nan)
        decision = policy.decide_batch(
            BatchIdleContext(
                gap_starts=starts,
                next_arrivals=next_arrivals,
                device=device,
                wait_state=wait,
            )
        )
        if decision is None:
            return None
        timeouts = np.asarray(decision.timeouts, dtype=float)
        target_idx = np.asarray(decision.target_idx, dtype=np.int64)
        if timeouts.shape != starts.shape or target_idx.shape != starts.shape:
            return None
        if (timeouts < 0).any():
            return None
        for idx in np.unique(target_idx[target_idx >= 0]):
            idx = int(idx)
            if idx not in costs:
                tc = _target_costs(device, home, wait, idx)
                if tc is None:
                    return None
                costs[idx] = tc

        # Shutdown rule, matching the event loop's tie-breaking: a zero
        # timeout executes inline at idle start (no horizon check); a
        # positive timeout is a TIMEOUT event that fires only strictly
        # before the gap-ending arrival (arrivals pre-empt same-time
        # timeouts) and, for the trailing gap, strictly before the
        # observation window ends.
        rule_ends = np.concatenate((gap_ends, [duration]))
        shutdown = (target_idx >= 0) & (
            (timeouts == 0.0)
            | (np.isfinite(timeouts) & (starts + timeouts < rule_ends))
        )
        down_lat = np.zeros(starts.size)
        up_lat = np.zeros(starts.size)
        for idx, tc in costs.items():
            sel = target_idx == idx
            down_lat[sel] = tc.down_latency
            up_lat[sel] = tc.up_latency
        shutdown_times = starts + timeouts
        down_done = shutdown_times + down_lat

        new_wake = np.zeros(n)
        if n:
            # a mid-trace gap's opener starts service only after the
            # device finishes any in-flight down transition and wakes
            with np.errstate(invalid="ignore"):
                delays = np.maximum(gap_ends, down_done[:-1]) + up_lat[:-1] - gap_ends
            new_wake[opens] = np.where(shutdown[:-1], delays, 0.0)
        if np.array_equal(new_wake, wake):
            converged = True
            break
        wake = new_wake
    if not converged:  # pragma: no cover - n+1 passes provably suffice
        return None

    # ---- accounting ---------------------------------------------------- #
    i_final = int(starts.size - 1)
    final_target = int(target_idx[i_final])
    final_shutdown = bool(shutdown[i_final])
    end_time = float(duration)
    if n:
        end_time = max(end_time, float(completions[-1]))
    if final_shutdown and costs[final_target].down_latency > 0:
        end_time = max(end_time, float(down_done[i_final]))

    idle_lengths = np.concatenate(
        (gap_ends - gap_starts, [end_time - final_start])
    )
    n_shutdowns = int(np.count_nonzero(shutdown))
    n_wrong = 0
    if n:
        be = np.zeros(starts.size)
        for idx, tc in costs.items():
            be[target_idx == idx] = tc.break_even
        remaining = gap_ends - shutdown_times[:-1]
        n_wrong = int(np.count_nonzero(shutdown[:-1] & (remaining < be[:-1])))

    home_power = device.state(home).power
    wait_power = device.state(wait).power
    busy_time = float(demands.sum())
    phase_ends = np.concatenate((gap_ends, [end_time]))
    wait_total = float(
        (np.where(shutdown, shutdown_times, phase_ends) - starts).sum()
    )
    target_spans = np.zeros(starts.size)
    if n:
        with np.errstate(invalid="ignore"):
            target_spans[:-1] = np.where(
                shutdown[:-1], np.maximum(0.0, gap_ends - down_done[:-1]), 0.0
            )
    if final_shutdown:
        target_spans[i_final] = end_time - down_done[i_final]

    # residency keys mirror the scalar meter exactly, including the
    # zero-span entries its set_condition sequence creates
    residency: Dict[str, float] = {home: busy_time}
    if wait != home:
        residency[wait] = wait_total
    else:
        residency[home] += wait_total
    total_energy = home_power * busy_time + wait_power * wait_total

    for idx, tc in costs.items():
        sel_shut = (target_idx == idx) & shutdown
        n_down = int(np.count_nonzero(sel_shut))
        if n_down == 0:
            continue
        n_up = n_down - (1 if (final_shutdown and final_target == idx) else 0)
        span = float(target_spans[sel_shut].sum())
        total_energy = _fold_target_costs(
            residency, total_energy, tc, n_down, n_up, span, home, wait
        )

    return compile_report(
        home_power=home_power,
        end_time=end_time,
        total_energy=total_energy,
        latencies=completions - arrivals,
        idle_lengths=idle_lengths,
        n_shutdowns=n_shutdowns,
        n_wrong_shutdowns=n_wrong,
        state_residency=residency,
        keep_latencies=keep_latencies,
    )


def simulate_trace(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
    keep_latencies: bool = True,
    verify: bool = False,
) -> SimReport:
    """One device + one trace + one policy, on the fastest valid engine.

    Runs the vectorized busy-period kernel when the policy implements
    :meth:`~repro.sim.policy_api.EventPolicy.decide_batch` and the device
    shape qualifies, and falls back to the scalar
    :class:`~repro.sim.DPMSimulator` event loop otherwise — same
    :class:`~repro.sim.SimReport` either way.

    ``verify=True`` runs the finished report through the
    :func:`~repro.runtime.verify.check_sim_report` invariant suite
    (conservation laws, monotone percentiles, finite fields) and raises
    :class:`~repro.runtime.verify.InvariantViolation` on any breach —
    the opt-in for direct callers outside the sweep runners, which
    check their chunk results centrally.
    """
    report = run_vectorized(
        device, policy, trace,
        service_time=service_time, wait_state=wait_state, oracle=oracle,
        keep_latencies=keep_latencies,
    )
    if report is None:
        report = DPMSimulator(
            device, policy,
            service_time=service_time, wait_state=wait_state, oracle=oracle,
            keep_latencies=keep_latencies,
        ).run(trace)
    if verify:
        from .verify import check_sim_report

        check_sim_report(
            report, device=device,
            context={"policy": type(policy).__name__, "engine": "simulate_trace"},
        )
    return report


def policy_batch_mode(policy: EventPolicy) -> str:
    """Which fast path a policy family can ride, by hook introspection.

    - ``"gap"`` — overrides :meth:`~repro.sim.policy_api.EventPolicy.
      decide_batch`: stateless, all gaps of one trace at once.
    - ``"step"`` — overrides ``make_step_state``: stateful but
      batchable across replications in lock-step.
    - ``"scalar"`` — neither hook: only the scalar event loop.

    Advisory (the engines still verify at run time and fall back); used
    by the sweep runners to estimate per-chunk work.
    """
    cls = type(policy)
    if cls.decide_batch is not EventPolicy.decide_batch:
        return "gap"
    if cls.make_step_state is not EventPolicy.make_step_state:
        return "step"
    return "scalar"


def run_step_batched(
    device: PowerStateMachine,
    policy: EventPolicy,
    traces: Sequence[Trace],
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
    keep_latencies: bool = True,
    allow_stateless: bool = False,
) -> Optional[List[SimReport]]:
    """Lock-step engine for R replications of one stateful policy.

    None when the run does not qualify (policy without step hooks, a
    costly wait-state park, or decisions outside the modeled shapes) —
    the caller then uses per-trace :func:`simulate_trace`.  Each
    replica's report is a pure function of its own trace, so results
    are independent of which traces share the batch (the chunking-
    invariance guarantee the sweep runners rely on, mirroring
    ``BatchedQDPM``).

    ``allow_stateless=True`` additionally admits stateless (gap-mode)
    policies: a pure :meth:`~repro.sim.policy_api.EventPolicy.
    decide_batch` answers one-gap-per-replica rounds just as well as
    all-gaps-per-trace columns, so the policy rides the same lock-step
    rounds with no per-replica state (``end_step_batch`` is skipped —
    a stateless ``on_idle_end`` observes nothing).  This is how the
    fleet layer flattens a whole (seed × device) sweep cell into one
    kernel invocation even though most fleet policies are stateless.
    The flag is off by default because per-trace
    :func:`run_vectorized` resolves all gaps of a trace at once and is
    the better engine when traces are few and long.

    The busy-period trick per lock-step round: with zero wake delays a
    trace's busy periods are fixed ("pure" structure, one prefix-max
    pass up front).  A realized busy period opening at request ``p``
    with service start ``s`` has completions
    ``max(pure_completion, s - cum_demand[p-1] + cum_demand)``; only the
    opener's shift can differ from the pure one (wake delays apply to
    gap openers alone), and a delayed completion that swallows the next
    pure gap simply merges that pure period under a new shift.  Realized
    gap openers are always pure openers (delays only push completions
    later), so per-replica state is just (next pure period, previous
    completion, policy state) and every round is O(R) array work.
    """
    if service_time <= 0:
        raise ValueError(f"service_time must be > 0, got {service_time}")
    home = device.initial_state
    wait = wait_state if wait_state is not None else default_wait_state(device)
    device.state(wait)  # existence check
    traces = list(traces)
    n_reps = len(traces)
    if n_reps == 0:
        return []
    if not _wait_parking_is_free(device, home, wait):
        return None
    states = policy.make_step_state(n_reps, device, wait)
    stateless = False
    if states is None:
        if not allow_stateless:
            return None
        if type(policy).decide_batch is EventPolicy.decide_batch:
            return None
        policy.reset()
        stateless = True

    # ---- padded per-replica trace arrays ------------------------------ #
    n_arr = np.array([len(t) for t in traces], dtype=np.int64)
    n_max = max(int(n_arr.max()), 1)
    durations = np.array([float(t.duration) for t in traces])
    arrivals = np.full((n_reps, n_max), np.inf)
    demands = np.zeros((n_reps, n_max))
    for r, t in enumerate(traces):
        if len(t):
            arrivals[r, : len(t)] = t.arrival_times
            demands[r, : len(t)] = resolve_demands(t, service_time)
    cum = np.cumsum(demands, axis=1)          # demand through request j
    cum_before = cum - demands                # demand before request j
    cols = np.arange(n_max)
    valid = cols[None, :] < n_arr[:, None]
    # one sentinel column so "position n_arr" gathers are always in
    # bounds without per-round index clamping
    arrivals_s = np.concatenate(
        (arrivals, np.full((n_reps, 1), np.inf)), axis=1
    )
    cum_before_s = np.concatenate(
        (cum_before, np.zeros((n_reps, 1))), axis=1
    )

    # ---- pure (zero-wake) busy-period structure ----------------------- #
    terms = np.where(valid, arrivals - cum_before, -np.inf)
    floor0 = np.maximum.accumulate(terms, axis=1)
    pure = floor0 + cum                       # pure completions
    opens0 = np.zeros((n_reps, n_max), dtype=bool)
    opens0[:, 0] = valid[:, 0]
    if n_max > 1:
        opens0[:, 1:] = valid[:, 1:] & (arrivals[:, 1:] > pure[:, :-1])
    open_rows, open_cols = np.nonzero(opens0)
    n_periods = np.bincount(open_rows, minlength=n_reps)
    k_max = int(n_periods.max()) if n_reps else 0
    # starts[r, k] = opening request of pure period k; the sentinel at
    # starts[r, n_periods[r]] makes "end of period k" = starts[r, k+1]-1
    # uniform for the last period too
    starts = np.zeros((n_reps, k_max + 1), dtype=np.int64)
    first_of_row = np.concatenate(([0], np.cumsum(n_periods)[:-1]))
    within = np.arange(open_rows.size) - np.repeat(first_of_row, n_periods)
    starts[open_rows, within] = open_cols
    starts[np.arange(n_reps), n_periods] = n_arr

    # ---- per-replica run state + accumulators ------------------------- #
    rows = np.arange(n_reps)
    k = np.zeros(n_reps, dtype=np.int64)      # next pure period to realize
    prev_done = np.zeros(n_reps)              # completion of previous period
    done = np.zeros(n_reps, dtype=bool)
    shift_at = np.full((n_reps, n_max), np.nan)

    wait_total = np.zeros(n_reps)
    n_shutdowns = np.zeros(n_reps, dtype=np.int64)
    n_wrong = np.zeros(n_reps, dtype=np.int64)
    end_times = np.zeros(n_reps)
    final_target = np.full(n_reps, -1, dtype=np.int64)
    final_shutdown = np.zeros(n_reps, dtype=bool)
    span_by_target: Dict[int, np.ndarray] = {}
    ndown_by_target: Dict[int, np.ndarray] = {}
    idle_rounds: List[Tuple[np.ndarray, np.ndarray]] = []
    costs: Dict[int, _TargetCosts] = {}
    # dense per-target-state transition constants (gathered per round;
    # filled lazily as decisions reveal which targets the policy uses)
    n_states = len(device.state_names)
    tbl_down_lat = np.zeros(n_states)
    tbl_up_lat = np.zeros(n_states)
    tbl_break_even = np.zeros(n_states)
    known_target = np.zeros(n_states, dtype=bool)

    # ---- lock-step rounds: one idle gap per replica ------------------- #
    # invariant: k <= n_periods, and starts[r, k] <= n_arr[r] (sentinel),
    # so every gather below is in bounds without clamping
    while True:
        mid = ~done & (k < n_periods)         # a mid-trace gap opens now
        trail = ~done & ~mid                  # the trailing gap opens now
        active = mid | trail
        if not active.any():
            break
        pos = starts[rows, k]
        gap_start = prev_done
        gap_end = np.where(mid, arrivals_s[rows, pos], np.nan)
        if oracle:
            next_arrivals = np.where(mid, gap_end, np.nan)
        else:
            next_arrivals = np.full(n_reps, np.nan)
        if stateless:
            # one gap per replica instead of all gaps of one trace —
            # a pure per-gap function cannot tell the difference
            decision = policy.decide_batch(
                BatchIdleContext(
                    gap_starts=gap_start,
                    next_arrivals=next_arrivals,
                    device=device,
                    wait_state=wait,
                )
            )
        else:
            decision = policy.decide_step_batch(
                states,
                StepBatchContext(
                    gap_starts=gap_start,
                    next_arrivals=next_arrivals,
                    active=active,
                    device=device,
                    wait_state=wait,
                ),
            )
        if decision is None:
            return None
        timeouts = np.asarray(decision.timeouts, dtype=float)
        target_idx = np.asarray(decision.target_idx, dtype=np.int64)
        if timeouts.shape != (n_reps,) or target_idx.shape != (n_reps,):
            return None
        if (timeouts[active] < 0).any():
            return None
        targeted = target_idx[active & (target_idx >= 0)]
        if targeted.size and (targeted >= n_states).any():
            return None
        if targeted.size and not known_target[targeted].all():
            for idx in np.unique(targeted):
                idx = int(idx)
                if idx not in costs:
                    tc = _target_costs(device, home, wait, idx)
                    if tc is None:
                        return None
                    costs[idx] = tc
                    span_by_target[idx] = np.zeros(n_reps)
                    ndown_by_target[idx] = np.zeros(n_reps, dtype=np.int64)
                    tbl_down_lat[idx] = tc.down_latency
                    tbl_up_lat[idx] = tc.up_latency
                    tbl_break_even[idx] = tc.break_even
                    known_target[idx] = True

        # target -1 wraps to the last state's constants: harmless, every
        # consumer below is masked on target_idx >= 0
        safe_target = target_idx % n_states
        down_lat = tbl_down_lat[safe_target]
        up_lat = tbl_up_lat[safe_target]
        break_even = tbl_break_even[safe_target]

        # shutdown rule, identical to the all-gaps kernel: zero timeouts
        # execute inline (no horizon check); positive ones fire strictly
        # before the gap-ending arrival (mid) / the window end (trailing)
        rule_end = np.where(mid, gap_end, durations)
        with np.errstate(invalid="ignore"):
            fires = np.isfinite(timeouts) & (gap_start + timeouts < rule_end)
        shutdown = active & (target_idx >= 0) & ((timeouts == 0.0) | fires)
        shutdown_time = gap_start + timeouts
        down_done = shutdown_time + down_lat
        n_shutdowns += shutdown
        with np.errstate(invalid="ignore"):
            wrong = shutdown & mid & (gap_end - shutdown_time < break_even)
        n_wrong += wrong

        # trailing-gap end time: the window, stretched by a final service
        # completion past it and by a trailing down transition in flight
        trail_end = np.maximum(durations, prev_done)
        stretch = shutdown & (down_lat > 0)
        trail_end = np.where(stretch, np.maximum(trail_end, down_done), trail_end)

        with np.errstate(invalid="ignore"):
            idle_len = np.where(mid, gap_end - gap_start, trail_end - gap_start)
            wait_span = np.where(
                shutdown, timeouts,
                np.where(mid, gap_end, trail_end) - gap_start,
            )
            span_mid = np.maximum(0.0, gap_end - down_done)
        span = np.where(mid, span_mid, trail_end - down_done)
        wait_total += np.where(active, wait_span, 0.0)
        for idx in costs:
            sel = shutdown & (target_idx == idx)
            span_by_target[idx] += np.where(sel, span, 0.0)
            ndown_by_target[idx] += sel
        idle_rounds.append((idle_len, active))
        if not stateless:
            policy.end_step_batch(states, idle_len, active)

        # trailing replicas are finished after their gap resolves
        final_target[trail] = target_idx[trail]
        final_shutdown[trail] = shutdown[trail]
        end_times[trail] = trail_end[trail]
        done |= trail

        if not mid.any():
            continue

        # ---- advance mid replicas one realized busy period ------------ #
        # the opener starts service after any in-flight down transition
        # completes and the device wakes
        service_start = np.where(
            shutdown, np.maximum(gap_end, down_done) + up_lat, gap_end
        )
        shift = service_start - cum_before_s[rows, pos]
        shift_at[rows[mid], pos[mid]] = shift[mid]
        k_next = np.where(mid, k + 1, k)
        # end of the running period; -1 for non-mid rows wraps to the
        # last column — garbage that every consumer masks out
        end_idx = starts[rows, k_next] - 1
        completion = np.maximum(pure[rows, end_idx], shift + cum[rows, end_idx])
        # wake delays can swallow the next pure gap: merge its period
        # under the running completion's shift (rare — delays seldom
        # reach the next arrival)
        next_pos = starts[rows, k_next]
        next_arr = np.where(
            mid & (k_next < n_periods), arrivals_s[rows, next_pos], np.inf
        )
        merge = next_arr <= completion
        while merge.any():
            shift = np.where(
                merge, completion - cum_before_s[rows, next_pos], shift
            )
            shift_at[rows[merge], next_pos[merge]] = shift[merge]
            k_next = np.where(merge, k_next + 1, k_next)
            end_idx = starts[rows, k_next] - 1
            merged_done = np.maximum(
                pure[rows, end_idx], shift + cum[rows, end_idx]
            )
            completion = np.where(merge, merged_done, completion)
            next_pos = starts[rows, k_next]
            next_arr = np.where(
                merge & (k_next < n_periods), arrivals_s[rows, next_pos], np.inf
            )
            merge = merge & (next_arr <= completion)
        prev_done = np.where(mid, completion, prev_done)
        k = k_next

    # ---- realized completions and latencies --------------------------- #
    # every consumed pure-period start recorded its shift; forward-fill
    # gives each request the shift of the realized busy period covering it
    recorded = ~np.isnan(shift_at)
    ffill_idx = np.maximum.accumulate(np.where(recorded, cols[None, :], 0), axis=1)
    shift_full = shift_at[rows[:, None], ffill_idx]
    with np.errstate(invalid="ignore"):
        completions = np.maximum(pure, shift_full + cum)
        latencies = completions - arrivals

    # (round, replica) idle-length matrix -> per-replica chronological runs
    idle_mat = np.array([lengths for lengths, _ in idle_rounds])
    idle_mask = np.array([mask for _, mask in idle_rounds])

    # ---- per-replica accounting (mirrors run_vectorized) -------------- #
    home_power = device.state(home).power
    wait_power = device.state(wait).power
    reports: List[SimReport] = []
    for r in range(n_reps):
        n_r = int(n_arr[r])
        busy_time = float(demands[r, :n_r].sum())
        residency: Dict[str, float] = {home: busy_time}
        if wait != home:
            residency[wait] = float(wait_total[r])
        else:
            residency[home] += float(wait_total[r])
        total_energy = home_power * busy_time + wait_power * float(wait_total[r])
        for idx, tc in costs.items():
            n_down = int(ndown_by_target[idx][r])
            if n_down == 0:
                continue
            is_final = bool(final_shutdown[r]) and int(final_target[r]) == idx
            n_up = n_down - (1 if is_final else 0)
            span = float(span_by_target[idx][r])
            total_energy = _fold_target_costs(
                residency, total_energy, tc, n_down, n_up, span, home, wait
            )
        reports.append(
            compile_report(
                home_power=home_power,
                end_time=float(end_times[r]),
                total_energy=total_energy,
                latencies=latencies[r, :n_r],
                idle_lengths=idle_mat[idle_mask[:, r], r],
                n_shutdowns=int(n_shutdowns[r]),
                n_wrong_shutdowns=int(n_wrong[r]),
                state_residency=residency,
                keep_latencies=keep_latencies,
            )
        )
    return reports


def simulate_traces_batch(
    device: PowerStateMachine,
    policy: EventPolicy,
    traces: Sequence[Trace],
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
    keep_latencies: bool = True,
) -> List[SimReport]:
    """R replications of one (device, policy) cell, fastest valid engine.

    Stateful-batchable policies (step hooks) ride the lock-step engine
    across the replication axis; everything else degrades to per-trace
    :func:`simulate_trace` — the busy-period kernel for stateless
    policies, the scalar event loop for policies with neither batch
    hook.  Reports are returned in trace order and each is a pure
    function of its own trace (batch composition never matters).
    """
    traces = list(traces)
    if not traces:
        return []
    reports = run_step_batched(
        device, policy, traces,
        service_time=service_time, wait_state=wait_state, oracle=oracle,
        keep_latencies=keep_latencies,
    )
    if reports is not None:
        return reports
    return [
        simulate_trace(
            device, policy, trace,
            service_time=service_time, wait_state=wait_state, oracle=oracle,
            keep_latencies=keep_latencies,
        )
        for trace in traces
    ]
