"""Vectorized busy-period kernel for the event-driven DPM simulator.

:class:`~repro.sim.DPMSimulator` pays one Python interpreter round-trip
per event per trace.  For the *stateless* decision family — policies
whose :meth:`~repro.sim.policy_api.EventPolicy.on_idle` is a pure
function of the :class:`~repro.sim.policy_api.IdleContext` (the timeout
family, greedy, always-on, multilevel, and the oracle) — the whole run
collapses into NumPy array ops, because the FIFO single-server,
wake-on-arrival semantics decompose a trace into busy periods and
independent idle gaps:

1.  **Busy periods** obey the Lindley recursion
    ``completion[i] = max(completion[i-1], arrival[i] + wake[i]) + demand[i]``,
    which vectorizes as a prefix max over ``arrival + wake - cum_demand``.
2.  **Idle gaps** open where an arrival strictly exceeds the previous
    completion; each gap's shutdown decision, transition energies,
    residencies, and wake-up delay are pure per-gap functions that
    evaluate over all gaps at once via
    :meth:`~repro.sim.policy_api.EventPolicy.decide_batch`.
3.  Wake-up delays feed back into busy-period boundaries, so the kernel
    iterates 1+2 to a fixpoint.  Each pass makes at least one further
    prefix of completions exact (the first gap's start never moves, so
    induction walks forward), giving convergence in at most ``n + 1``
    passes — typically 2-3, since wake delays rarely cascade.

Equivalence with the scalar event loop is pinned field-for-field on the
:class:`~repro.sim.SimReport` (tests/test_runtime_eventsim.py), including
the loop's tie-breaking (arrivals pre-empt same-time timeouts), the
"timeout events at or beyond the observation window are dropped" rule,
zero-latency transition lumps, and zero-span residency keys.

:func:`simulate_trace` is the drop-in entry point: it runs the kernel
when the policy and device qualify and falls back to the scalar
:class:`~repro.sim.DPMSimulator` automatically (stateful policies such as
the adaptive and predictive baselines, non-free wait-state parking,
or exotic decision targets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..device import PowerStateMachine
from ..sim.policy_api import BatchIdleContext, EventPolicy
from ..sim.simulator import DPMSimulator, default_wait_state, resolve_demands
from ..sim.stats import SimReport, compile_report
from ..workload.trace import Trace


@dataclass(frozen=True)
class _TargetCosts:
    """Transition/residency constants of one shutdown target state."""

    name: str
    power: float
    down_latency: float
    down_energy: float
    down_mean_power: float
    up_latency: float
    up_energy: float
    up_mean_power: float
    break_even: float


def _wait_parking_is_free(
    device: PowerStateMachine, home: str, wait: str
) -> bool:
    """True when parking in ``wait`` is a free, instant round trip.

    The kernel folds the park into plain residency accounting; a costly
    wait-state trip would need event-level integration, so such devices
    stay on the scalar loop.
    """
    if wait == home:
        return True
    if not (device.can_transition(home, wait) and device.can_transition(wait, home)):
        return False
    down = device.transition(home, wait)
    up = device.transition(wait, home)
    return (
        down.energy == 0 and down.latency == 0
        and up.energy == 0 and up.latency == 0
    )


def _target_costs(
    device: PowerStateMachine, home: str, wait: str, idx: int
) -> Optional[_TargetCosts]:
    """Constants for shutdown target ``state_names[idx]``, or None if the
    target is outside the shapes the kernel models (missing edges, or a
    degenerate home/wait target)."""
    names = device.state_names
    if idx < 0 or idx >= len(names):
        return None
    name = names[idx]
    if name == home or name == wait:
        return None
    if not (device.can_transition(wait, name) and device.can_transition(name, home)):
        return None
    down = device.transition(wait, name)
    up = device.transition(name, home)
    try:
        break_even = device.break_even_time(name, home)
    except (ValueError, KeyError):
        break_even = 0.0
    return _TargetCosts(
        name=name,
        power=device.state(name).power,
        down_latency=down.latency,
        down_energy=down.energy,
        down_mean_power=down.mean_power,
        up_latency=up.latency,
        up_energy=up.energy,
        up_mean_power=up.mean_power,
        break_even=break_even,
    )


def run_vectorized(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
) -> Optional[SimReport]:
    """Run the busy-period kernel; None when the run does not qualify.

    Mirrors :class:`~repro.sim.DPMSimulator`'s constructor contract
    (``service_time`` validation, wait-state existence check); a None
    return means the caller should use the scalar loop, which either
    simulates the run or raises the error the configuration deserves.
    """
    if service_time <= 0:
        raise ValueError(f"service_time must be > 0, got {service_time}")
    home = device.initial_state
    wait = wait_state if wait_state is not None else default_wait_state(device)
    device.state(wait)  # existence check
    if not _wait_parking_is_free(device, home, wait):
        return None

    arrivals = trace.arrival_times
    n = int(arrivals.size)
    demands = resolve_demands(trace, service_time)
    duration = trace.duration

    policy.reset()
    costs: Dict[int, _TargetCosts] = {}

    # ---- fixpoint over wake-up delays --------------------------------- #
    wake = np.zeros(n)
    converged = False
    for _ in range(n + 2):
        if n:
            total_demand = np.cumsum(demands)
            earliest = arrivals + wake
            floor = np.maximum.accumulate(earliest - (total_demand - demands))
            completions = floor + total_demand
            prev_completion = np.concatenate(([0.0], completions[:-1]))
            opens = arrivals > prev_completion
            opens[0] = True  # begin_idle(0.0) always opens the first gap
            gap_starts = prev_completion[opens]
            gap_ends = arrivals[opens]
            final_start = float(completions[-1])
        else:
            completions = np.empty(0)
            opens = np.zeros(0, dtype=bool)
            gap_starts = np.empty(0)
            gap_ends = np.empty(0)
            final_start = 0.0

        starts = np.concatenate((gap_starts, [final_start]))
        if oracle:
            next_arrivals = np.concatenate((gap_ends, [np.nan]))
        else:
            next_arrivals = np.full(starts.size, np.nan)
        decision = policy.decide_batch(
            BatchIdleContext(
                gap_starts=starts,
                next_arrivals=next_arrivals,
                device=device,
                wait_state=wait,
            )
        )
        if decision is None:
            return None
        timeouts = np.asarray(decision.timeouts, dtype=float)
        target_idx = np.asarray(decision.target_idx, dtype=np.int64)
        if timeouts.shape != starts.shape or target_idx.shape != starts.shape:
            return None
        if (timeouts < 0).any():
            return None
        for idx in np.unique(target_idx[target_idx >= 0]):
            idx = int(idx)
            if idx not in costs:
                tc = _target_costs(device, home, wait, idx)
                if tc is None:
                    return None
                costs[idx] = tc

        # Shutdown rule, matching the event loop's tie-breaking: a zero
        # timeout executes inline at idle start (no horizon check); a
        # positive timeout is a TIMEOUT event that fires only strictly
        # before the gap-ending arrival (arrivals pre-empt same-time
        # timeouts) and, for the trailing gap, strictly before the
        # observation window ends.
        rule_ends = np.concatenate((gap_ends, [duration]))
        shutdown = (target_idx >= 0) & (
            (timeouts == 0.0)
            | (np.isfinite(timeouts) & (starts + timeouts < rule_ends))
        )
        down_lat = np.zeros(starts.size)
        up_lat = np.zeros(starts.size)
        for idx, tc in costs.items():
            sel = target_idx == idx
            down_lat[sel] = tc.down_latency
            up_lat[sel] = tc.up_latency
        shutdown_times = starts + timeouts
        down_done = shutdown_times + down_lat

        new_wake = np.zeros(n)
        if n:
            # a mid-trace gap's opener starts service only after the
            # device finishes any in-flight down transition and wakes
            with np.errstate(invalid="ignore"):
                delays = np.maximum(gap_ends, down_done[:-1]) + up_lat[:-1] - gap_ends
            new_wake[opens] = np.where(shutdown[:-1], delays, 0.0)
        if np.array_equal(new_wake, wake):
            converged = True
            break
        wake = new_wake
    if not converged:  # pragma: no cover - n+1 passes provably suffice
        return None

    # ---- accounting ---------------------------------------------------- #
    i_final = int(starts.size - 1)
    final_target = int(target_idx[i_final])
    final_shutdown = bool(shutdown[i_final])
    end_time = float(duration)
    if n:
        end_time = max(end_time, float(completions[-1]))
    if final_shutdown and costs[final_target].down_latency > 0:
        end_time = max(end_time, float(down_done[i_final]))

    idle_lengths = np.concatenate(
        (gap_ends - gap_starts, [end_time - final_start])
    )
    n_shutdowns = int(np.count_nonzero(shutdown))
    n_wrong = 0
    if n:
        be = np.zeros(starts.size)
        for idx, tc in costs.items():
            be[target_idx == idx] = tc.break_even
        remaining = gap_ends - shutdown_times[:-1]
        n_wrong = int(np.count_nonzero(shutdown[:-1] & (remaining < be[:-1])))

    home_power = device.state(home).power
    wait_power = device.state(wait).power
    busy_time = float(demands.sum())
    phase_ends = np.concatenate((gap_ends, [end_time]))
    wait_total = float(
        (np.where(shutdown, shutdown_times, phase_ends) - starts).sum()
    )
    target_spans = np.zeros(starts.size)
    if n:
        with np.errstate(invalid="ignore"):
            target_spans[:-1] = np.where(
                shutdown[:-1], np.maximum(0.0, gap_ends - down_done[:-1]), 0.0
            )
    if final_shutdown:
        target_spans[i_final] = end_time - down_done[i_final]

    # residency keys mirror the scalar meter exactly, including the
    # zero-span entries its set_condition sequence creates
    residency: Dict[str, float] = {home: busy_time}
    if wait != home:
        residency[wait] = wait_total
    else:
        residency[home] += wait_total
    total_energy = home_power * busy_time + wait_power * wait_total

    for idx, tc in costs.items():
        sel_shut = (target_idx == idx) & shutdown
        n_down = int(np.count_nonzero(sel_shut))
        if n_down == 0:
            continue
        n_up = n_down - (1 if (final_shutdown and final_target == idx) else 0)
        span = float(target_spans[sel_shut].sum())
        residency[tc.name] = residency.get(tc.name, 0.0) + span
        total_energy += tc.power * span
        if tc.down_latency > 0:
            label = f"{wait}->{tc.name}"
            residency[label] = residency.get(label, 0.0) + n_down * tc.down_latency
            total_energy += tc.down_mean_power * tc.down_latency * n_down
        else:
            total_energy += tc.down_energy * n_down
        if n_up:
            if tc.up_latency > 0:
                label = f"{tc.name}->{home}"
                residency[label] = residency.get(label, 0.0) + n_up * tc.up_latency
                total_energy += tc.up_mean_power * tc.up_latency * n_up
            else:
                total_energy += tc.up_energy * n_up

    return compile_report(
        home_power=home_power,
        end_time=end_time,
        total_energy=total_energy,
        latencies=completions - arrivals,
        idle_lengths=idle_lengths,
        n_shutdowns=n_shutdowns,
        n_wrong_shutdowns=n_wrong,
        state_residency=residency,
    )


def simulate_trace(
    device: PowerStateMachine,
    policy: EventPolicy,
    trace: Trace,
    service_time: float = 0.5,
    wait_state: Optional[str] = None,
    oracle: bool = False,
) -> SimReport:
    """One device + one trace + one policy, on the fastest valid engine.

    Runs the vectorized busy-period kernel when the policy implements
    :meth:`~repro.sim.policy_api.EventPolicy.decide_batch` and the device
    shape qualifies, and falls back to the scalar
    :class:`~repro.sim.DPMSimulator` event loop otherwise — same
    :class:`~repro.sim.SimReport` either way.
    """
    report = run_vectorized(
        device, policy, trace,
        service_time=service_time, wait_state=wait_state, oracle=oracle,
    )
    if report is not None:
        return report
    return DPMSimulator(
        device, policy,
        service_time=service_time, wait_state=wait_state, oracle=oracle,
    ).run(trace)
