"""Scenario sweeps over the event-driven simulator.

:class:`SimSweepRunner` is the event-sim counterpart of
:class:`~repro.runtime.SweepRunner`: it fans the full
(device x trace family x policy) cell grid, with ``n_traces`` seeded
trace replications per cell, across the executor layer
(:mod:`repro.runtime.executor`) and aggregates each cell's replications
into mean +- bootstrap CI.  Every work unit is a ``(cell, seed-chunk)``
pair built from picklable values only — traces are *re-generated inside
the worker* from ``(distribution, duration, seed)`` recipes rather than
shipped as arrays — so per-seed reports are identical for every
``(chunk_size, n_jobs)`` combination.

Cells route through
:func:`~repro.runtime.eventsim.simulate_traces_batch`, so stateless
policies ride the vectorized busy-period kernel per trace, stateful
batchable ones (adaptive, predictive) ride the lock-step
cross-replication engine over the whole seed chunk, and policies with
neither batch hook transparently use the scalar event loop.

Chunks are shipped to worker processes only when that pays: on a
single-core host, or when the estimated per-chunk work is too small to
amortize pool spin-up, the runner degrades to in-process execution and
records the decision in :attr:`SimSweepResult.execution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.ascii_plot import format_table
from ..analysis.bootstrap import CI, bootstrap_ci
from ..device import get_preset
from ..sim.policy_api import EventPolicy
from ..sim.stats import SimReport
from ..workload.arrivals import InterArrival
from ..workload.generator import renewal_trace
from ..sim.simulator import DPMSimulator
from .checkpoint import run_chunks_checkpointed, spec_hash
from .eventsim import policy_batch_mode, simulate_traces_batch
from .executor import get_executor, resolve_n_jobs
from .telemetry import TELEMETRY
from .verify import (
    InvariantViolation,
    check_sim_report,
    shadow_verify_chunks,
    write_diagnostics_bundle,
)

#: rough wall seconds to simulate one request, by engine family
#: (reference-container numbers from BENCH_sim.json: the busy-period /
#: lock-step kernels sustain >= 1M requests/sec, the scalar event loop
#: ~2.3k) — deliberately coarse, only used to decide whether a chunk is
#: worth shipping to a worker process
FAST_SECONDS_PER_REQUEST = 2e-6
SCALAR_SECONDS_PER_REQUEST = 5e-4


def estimate_request_seconds(policy: EventPolicy, n_requests: float) -> float:
    """Estimated wall seconds to simulate ``n_requests`` under ``policy``."""
    if policy_batch_mode(policy) == "scalar":
        return n_requests * SCALAR_SECONDS_PER_REQUEST
    return n_requests * FAST_SECONDS_PER_REQUEST


@dataclass(frozen=True)
class TraceSpec:
    """Recipe for reproducible synthetic traces: one distribution, one
    window, realized per replication from a seed inside the worker."""

    name: str
    dist: InterArrival
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")

    def realize(self, seed: int):
        """Generate the trace replication for ``seed``."""
        return renewal_trace(self.dist, self.duration, np.random.default_rng(seed))


@dataclass(frozen=True)
class PolicySpec:
    """One policy arm of the sweep (label + instance + oracle flag)."""

    label: str
    policy: EventPolicy
    oracle: bool = False


@dataclass(frozen=True)
class SimSweepSpec:
    """The full (device x trace x policy) grid of one event-sim sweep."""

    devices: Tuple[str, ...]
    traces: Tuple[TraceSpec, ...]
    policies: Tuple[PolicySpec, ...]
    n_traces: int = 8
    seed: int = 0
    seed_stride: int = 101
    service_time: float = 0.5

    def __post_init__(self) -> None:
        if not (self.devices and self.traces and self.policies):
            raise ValueError("need at least one device, trace, and policy")
        if self.n_traces < 1:
            raise ValueError(f"n_traces must be >= 1, got {self.n_traces}")
        if self.seed_stride < 1:
            raise ValueError(f"seed_stride must be >= 1, got {self.seed_stride}")
        if self.service_time <= 0:
            raise ValueError(f"service_time must be > 0, got {self.service_time}")

    def seeds(self) -> List[int]:
        """Replication seeds, shared across cells so comparisons pair."""
        return [self.seed + k * self.seed_stride for k in range(self.n_traces)]


@dataclass
class SimCellResult:
    """One (device, trace, policy) cell aggregated over its replications."""

    device: str
    trace: str
    policy: str
    reports: List[SimReport]

    def _ci(self, attr: str, confidence: float = 0.95) -> CI:
        values = np.array([getattr(r, attr) for r in self.reports])
        return bootstrap_ci(values, confidence=confidence)

    def power_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication mean power."""
        return self._ci("mean_power", confidence)

    def saving_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication energy saving vs. always-on at home power."""
        return self._ci("energy_saving_ratio", confidence)

    def latency_ci(self, confidence: float = 0.95) -> CI:
        """Across-replication mean request latency."""
        return self._ci("mean_latency", confidence)

    @property
    def mean_shutdowns(self) -> float:
        return float(np.mean([r.n_shutdowns for r in self.reports]))

    @property
    def mean_wrong_shutdowns(self) -> float:
        return float(np.mean([r.n_wrong_shutdowns for r in self.reports]))


@dataclass
class SimSweepResult:
    """All cells of one sweep, in (device, trace, policy) grid order."""

    spec: SimSweepSpec
    cells: List[SimCellResult] = field(default_factory=list)
    #: how the runner executed the grid: requested vs effective job
    #: count, the degrade decision, and the per-chunk work estimate
    execution: Dict[str, Any] = field(default_factory=dict)

    def cell(self, device: str, trace: str, policy: str) -> SimCellResult:
        """Look up one cell by its labels."""
        for c in self.cells:
            if (c.device, c.trace, c.policy) == (device, trace, policy):
                return c
        raise KeyError(f"no cell ({device!r}, {trace!r}, {policy!r})")

    def render(self) -> str:
        headers = [
            "device", "trace", "policy", "power (W)", "+-", "saving",
            "latency (s)", "shutdowns", "wrong",
        ]
        rows = []
        for c in self.cells:
            power = c.power_ci()
            rows.append([
                c.device, c.trace, c.policy,
                round(power.estimate, 4), round(power.half_width, 4),
                round(c.saving_ci().estimate, 4),
                round(c.latency_ci().estimate, 3),
                round(c.mean_shutdowns, 1), round(c.mean_wrong_shutdowns, 1),
            ])
        return format_table(
            headers, rows,
            title=f"SIM-SWEEP: event-sim scenario grid "
                  f"({self.spec.n_traces} traces/cell)",
        )


def run_sim_chunk(
    device_name: str,
    policy_spec: PolicySpec,
    trace_spec: TraceSpec,
    service_time: float,
    seeds: Sequence[int],
) -> List[SimReport]:
    """One (cell, seed-chunk) work unit — module-level and built from
    picklable values only, so the executor can ship it to a worker.
    Each seed's report is a pure function of the arguments (the batched
    engines are chunking-invariant), and per-request latency arrays are
    dropped before pickling back — the sweep aggregates summary fields
    only."""
    with TELEMETRY.span("chunk", cat="sweep", kind="sim",
                        device=device_name, trace=trace_spec.name,
                        policy=policy_spec.label, seeds=list(seeds)):
        device = get_preset(device_name)
        return simulate_traces_batch(
            device, policy_spec.policy,
            [trace_spec.realize(seed) for seed in seeds],
            service_time=service_time, oracle=policy_spec.oracle,
            keep_latencies=False,
        )


def reference_sim_chunk(
    device_name: str,
    policy_spec: PolicySpec,
    trace_spec: TraceSpec,
    service_time: float,
    seeds: Sequence[int],
) -> List[SimReport]:
    """Scalar reference path for one :func:`run_sim_chunk` work unit.

    Per-seed :class:`~repro.sim.DPMSimulator` event loops — the
    reference every vectorized engine is pinned against in the test
    suite.  Shadow verification re-runs sampled chunks through this and
    compares field-for-field, so the pinning holds *during* a sweep,
    not just at test time.
    """
    device = get_preset(device_name)
    return [
        DPMSimulator(
            device, policy_spec.policy, service_time=service_time,
            oracle=policy_spec.oracle, keep_latencies=False,
        ).run(trace_spec.realize(seed))
        for seed in seeds
    ]


class SimSweepRunner:
    """Chunked executor fan-out over the event-sim cell grid.

    Parameters
    ----------
    chunk_size:
        Trace replications per work unit; smaller chunks expose more
        parallelism, larger ones amortize per-unit overhead.
    n_jobs:
        Worker processes to shard (cell, chunk) units across (1 = serial).
    timeout:
        Per-chunk wall-second bound when collecting pool results; a
        chunk exceeding it (hung or silently-dead worker) reruns
        in-process (see :meth:`MultiprocessExecutor.submit_all`).
    max_retries:
        Pool resubmissions of a chunk whose worker raised, before the
        chunk degrades to an in-process rerun.
    retry_backoff:
        Base of the capped-exponential sleep between retries.
    checkpoint:
        Path of a chunk-result journal: completed chunks are recorded as
        they finish and skipped on the next run with the same spec and
        chunk size — resumed results are bit-identical to an
        uninterrupted run.
    verify_fraction:
        Fraction of work units to shadow-verify: each sampled chunk is
        re-run per-seed on the scalar :class:`~repro.sim.DPMSimulator`
        reference and compared field-for-field (rel <= 1e-9).  The
        sample is a deterministic function of the spec, so resumed and
        fresh runs verify the same cells.  A divergence raises
        :class:`~repro.runtime.verify.InvariantViolation`; the sample
        and outcome land in the result's ``execution["verification"]``.
    diagnostics_dir:
        Directory for minimal-repro JSON bundles written on invariant
        violations, shadow divergences, and unrecoverable chunk
        failures.
    """

    def __init__(self, chunk_size: int = 8, n_jobs: int = 1,
                 timeout: Optional[float] = None, max_retries: int = 0,
                 retry_backoff: float = 0.5,
                 checkpoint: Optional[str] = None,
                 verify_fraction: float = 0.0,
                 diagnostics_dir: Optional[str] = None) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if not 0.0 <= float(verify_fraction) <= 1.0:
            raise ValueError(
                f"verify_fraction must be in [0, 1], got {verify_fraction}"
            )
        self.chunk_size = int(chunk_size)
        self.n_jobs = int(n_jobs)
        self.timeout = timeout
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.checkpoint = checkpoint
        self.verify_fraction = float(verify_fraction)
        self.diagnostics_dir = diagnostics_dir

    def estimate_chunk_seconds(self, spec: SimSweepSpec) -> float:
        """Mean estimated wall seconds of one (cell, seed-chunk) unit.

        Expected request count per replication comes from each trace
        family's rate x duration (0 for infinite-mean heavy tails —
        treated as too small to ship, which errs toward serial); the
        per-request cost depends on which engine the policy rides.
        """
        chunk = min(self.chunk_size, spec.n_traces)
        requests = float(
            np.mean([t.dist.rate() * t.duration for t in spec.traces])
        )
        per_policy = [
            estimate_request_seconds(p.policy, chunk * requests)
            for p in spec.policies
        ]
        return float(np.mean(per_policy))

    def run(self, spec: SimSweepSpec) -> SimSweepResult:
        """Run the full grid; deterministic for any (chunk_size, n_jobs)."""
        with TELEMETRY.metrics_scope() as metrics:
            with TELEMETRY.span("sweep", cat="sweep", kind="sim",
                                n_traces=spec.n_traces,
                                chunk_size=self.chunk_size,
                                n_jobs=self.n_jobs):
                result = self._run(spec)
        result.execution["metrics"] = metrics.snapshot()
        return result

    def _run(self, spec: SimSweepSpec) -> SimSweepResult:
        seeds = spec.seeds()
        chunks = [
            seeds[i:i + self.chunk_size]
            for i in range(0, len(seeds), self.chunk_size)
        ]
        cell_keys: List[Tuple[str, str, str]] = []
        tasks = []
        for device in spec.devices:
            for trace_spec in spec.traces:
                for policy_spec in spec.policies:
                    cell_keys.append((device, trace_spec.name, policy_spec.label))
                    for chunk in chunks:
                        tasks.append(
                            (device, policy_spec, trace_spec,
                             spec.service_time, chunk)
                        )
        est = self.estimate_chunk_seconds(spec)
        n_jobs, decision = resolve_n_jobs(self.n_jobs, est, len(tasks))
        spec_key = spec_hash(spec, self.chunk_size)
        chunk_reports, resilience = run_chunks_checkpointed(
            get_executor(n_jobs), run_sim_chunk, tasks,
            spec_key=spec_key,
            checkpoint=self.checkpoint, timeout=self.timeout,
            max_retries=self.max_retries, retry_backoff=self.retry_backoff,
            diagnostics_dir=self.diagnostics_dir, spec=spec,
        )
        self._check_invariants(spec, spec_key, tasks, chunk_reports)
        verification = None
        if self.verify_fraction > 0.0:
            verification = shadow_verify_chunks(
                tasks, chunk_reports, self.verify_fraction, spec_key,
                reference_sim_chunk, "DPMSimulator scalar event loop",
                seeds_of=lambda task: task[4],
                diagnostics_dir=self.diagnostics_dir, spec=spec,
            )

        result = SimSweepResult(spec=spec, execution={
            "n_jobs_requested": self.n_jobs,
            "n_jobs_effective": n_jobs,
            "decision": decision,
            "estimated_chunk_seconds": est,
            **({"verification": verification} if verification else {}),
            **resilience,
        })
        per_cell = len(chunks)
        for c, (device, trace_name, policy_label) in enumerate(cell_keys):
            reports: List[SimReport] = []
            for chunk_out in chunk_reports[c * per_cell:(c + 1) * per_cell]:
                reports.extend(chunk_out)
            result.cells.append(
                SimCellResult(
                    device=device, trace=trace_name, policy=policy_label,
                    reports=reports,
                )
            )
        return result

    def _check_invariants(self, spec: SimSweepSpec, spec_key: str,
                          tasks, chunk_reports) -> None:
        """Always-on invariant pass over every collected report: the
        conservation laws hold for any correct engine, so the check
        costs a dict walk per report, not a re-simulation."""
        devices = {name: get_preset(name) for name in spec.devices}
        try:
            for t, (task, reports) in enumerate(zip(tasks, chunk_reports)):
                device_name, policy_spec, trace_spec, _, chunk = task
                for seed, report in zip(chunk, reports):
                    check_sim_report(
                        report, device=devices[device_name],
                        spec_key=spec_key, seed=seed,
                        context={"chunk": t, "device": device_name,
                                 "trace": trace_spec.name,
                                 "policy": policy_spec.label},
                    )
        except InvariantViolation as exc:
            if self.diagnostics_dir is not None:
                write_diagnostics_bundle(
                    self.diagnostics_dir, "invariant_violation", spec=spec,
                    spec_key=spec_key, seed=exc.seed,
                    chunk_id=exc.context.get("chunk"), details=exc.details,
                    error=exc, extra={"invariant": exc.invariant,
                                      "context": exc.context},
                )
            raise
