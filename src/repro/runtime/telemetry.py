"""Runtime telemetry: spans, metrics, live progress, and trace export.

The runtime has three execution layers, a resilience ladder, checkpoints,
and shadow verification — and, before this module, no way to *see* any of
it: per-chunk timings, retry/degrade events, and kernel-phase costs were
either discarded or smeared across ad-hoc ``execution`` metadata lists.
This module is the zero-dependency observability subsystem every layer
records into:

- **Spans** (:meth:`Telemetry.span`): hierarchical timed spans
  (``sweep -> chunk -> route/kernel/report`` and
  ``pool-submit -> worker-run -> collect``) with monotonic-clock
  timestamps and free-form attributes.  Recording is thread-safe, and
  process-safe through :class:`TracedCall`: a work unit executed in a
  multiprocessing worker captures its spans into a per-worker buffer that
  ships back with the chunk result (:class:`TelemetryEnvelope`) and is
  merged by the parent — each worker becomes one track of the exported
  trace.  Tracing is **off by default** and non-interfering: a span
  touches only the wall/perf clocks, never an RNG stream, so enabling
  telemetry cannot change a single result bit (pinned by the
  bit-identity test in tests/test_runtime_telemetry.py).
- **Metrics** (:class:`MetricsRegistry`): counters, gauges, and
  min/max/mean histograms for chunks completed/resumed, pool retries,
  serial degrades, chunk timeouts, shadow-verification runs and
  divergences, invariant checks, dropped/retried fleet requests, and
  per-worker busy time.  Always on (a dict increment per chunk-boundary
  event, nothing per slot/request); the sweep runners snapshot a scoped
  registry into their results' ``execution["metrics"]`` block, and
  :meth:`MetricsRegistry.render` prints the end-of-run summary table.
- **Exporters**: :func:`export_chrome_trace` writes Chrome trace-event
  JSON (open in Perfetto / chrome://tracing; one track per worker
  process) and :func:`export_jsonl` a line-per-event stream.  The CLI
  exposes them as ``--trace FILE`` (``.jsonl`` extension selects the
  JSONL form) plus ``--metrics`` and a ``--progress`` live terminal
  line.
- **Progress** (:class:`ProgressReporter`): chunks done/total,
  throughput, ETA, and worker count on **stderr** — a live
  carriage-return line on a TTY, plain periodic lines otherwise (CI
  logs stay clean), honoring ``NO_COLOR``.

The executor's resilience decisions (retry/timeout/degrade) are recorded
through :meth:`Telemetry.resilience_event`, which is the *single* event
system: it bumps the matching metric counter, records an instant trace
event, and returns the payload dict that the legacy
``execution["resilience_events"]`` lists keep exposing as a
compatibility view.

Everything hangs off the module-level :data:`TELEMETRY` singleton so the
instrumentation points stay one attribute access away from a no-op when
tracing is disabled.
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple, Union

# Per-process clock anchor: every span timestamp is derived from
# perf_counter offsets against this pair, so timestamps within one
# process are strictly monotone (nesting in the exported trace can never
# invert) while remaining comparable across processes through the
# wall-clock base.
_BASE_PERF = time.perf_counter()
_BASE_UNIX = time.time()


def _now_us() -> float:
    """Microseconds since the epoch, monotone within this process."""
    return (_BASE_UNIX + (time.perf_counter() - _BASE_PERF)) * 1e6


def _jsonable(value: Any) -> Any:
    """Coerce one span attribute to a JSON-safe value."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


@dataclass
class SpanRecord:
    """One recorded span (``dur_us`` set) or instant event (``None``)."""

    name: str
    cat: str
    ts_us: float
    dur_us: Optional[float]
    pid: int
    depth: int
    args: Dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one span into a tracer buffer."""

    __slots__ = ("_tracer", "_name", "_cat", "_args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._depth = self._tracer._enter()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        dur = time.perf_counter() - self._start
        self._tracer._exit(SpanRecord(
            name=self._name, cat=self._cat,
            ts_us=(_BASE_UNIX + (self._start - _BASE_PERF)) * 1e6,
            dur_us=dur * 1e6, pid=os.getpid(), depth=self._depth,
            args={k: _jsonable(v) for k, v in self._args.items()},
        ))
        return False


class Tracer:
    """Thread-safe span/instant recorder with a swappable buffer.

    ``enabled`` gates recording; when off, :meth:`span` hands back a
    shared no-op context manager, so instrumentation points cost one
    attribute check.  :meth:`capture` swaps in a fresh buffer for the
    duration of one work unit — the worker-side half of cross-process
    recording (:class:`TracedCall` ships the captured buffer back to the
    parent, which merges it via :meth:`absorb`).
    """

    def __init__(self) -> None:
        self.enabled = False
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- recording ----------------------------------------------------- #

    def span(self, name: str, cat: str = "runtime", **attrs: Any):
        """Context manager timing one hierarchical span (no-op when
        disabled — never touches an RNG stream either way)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, cat, attrs)

    def instant(self, name: str, cat: str = "runtime", **attrs: Any) -> None:
        """Record one zero-duration event (retry decisions, signals)."""
        if not self.enabled:
            return
        record = SpanRecord(
            name=name, cat=cat, ts_us=_now_us(), dur_us=None,
            pid=os.getpid(), depth=getattr(self._local, "depth", 0),
            args={k: _jsonable(v) for k, v in attrs.items()},
        )
        with self._lock:
            self._records.append(record)

    def _enter(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit(self, record: SpanRecord) -> None:
        self._local.depth = record.depth
        with self._lock:
            self._records.append(record)

    # -- buffers ------------------------------------------------------- #

    def records(self) -> List[SpanRecord]:
        """Snapshot of everything recorded so far (insertion order)."""
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        """Drop all recorded spans (testing / between CLI runs)."""
        with self._lock:
            self._records.clear()

    @contextmanager
    def capture(self):
        """Record into a fresh, force-enabled buffer for the block.

        Used by :class:`TracedCall` inside pool workers: whatever the
        child process inherited (a fork copies the parent's buffer and
        flag; a spawn starts clean), the work unit records into its own
        empty buffer, which is yielded for shipping back.  Prior state
        is restored on exit, so an in-process degrade rerun through the
        wrapped callable cannot duplicate parent spans.
        """
        with self._lock:
            previous, self._records = self._records, []
        prev_enabled, self.enabled = self.enabled, True
        buffer: List[SpanRecord] = []
        try:
            yield buffer
        finally:
            with self._lock:
                buffer.extend(self._records)
                self._records = previous
            self.enabled = prev_enabled

    def absorb(self, records: Sequence[SpanRecord]) -> None:
        """Merge spans captured in another process into this buffer."""
        if not records:
            return
        with self._lock:
            self._records.extend(records)


class MetricsRegistry:
    """Counters, gauges, and summary histograms, snapshot-friendly.

    ``observe`` keeps count/sum/min/max (enough for the summary table
    and overhead-free enough for per-chunk use); timings are recorded
    but deliberately never asserted on — only counting metrics carry
    the chunking/jobs-invariance contract.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, List[float]] = {}  # [count, sum, min, max]

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: Union[int, float]) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        value = float(value)
        with self._lock:
            h = self._hists.get(name)
            if h is None:
                self._hists[name] = [1, value, value, value]
            else:
                h[0] += 1
                h[1] += value
                h[2] = min(h[2], value)
                h[3] = max(h[3], value)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe state: the ``execution["metrics"]`` block shape."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {
                        "count": int(h[0]), "sum": h[1],
                        "min": h[2], "max": h[3],
                        "mean": h[1] / h[0] if h[0] else math.nan,
                    }
                    for name, h in self._hists.items()
                },
            }

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's snapshot in (worker deltas)."""
        for name, n in snapshot.get("counters", {}).items():
            self.inc(name, n)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, h in snapshot.get("histograms", {}).items():
            with self._lock:
                mine = self._hists.get(name)
                if mine is None:
                    self._hists[name] = [
                        h["count"], h["sum"], h["min"], h["max"]
                    ]
                else:
                    mine[0] += h["count"]
                    mine[1] += h["sum"]
                    mine[2] = min(mine[2], h["min"])
                    mine[3] = max(mine[3], h["max"])

    def render(self, title: str = "TELEMETRY: end-of-run metrics") -> str:
        """The end-of-run summary table (counters, gauges, histograms)."""
        from ..analysis.ascii_plot import format_table

        rows: List[List[Any]] = []
        snap = self.snapshot()
        for name in sorted(snap["counters"]):
            value = snap["counters"][name]
            rows.append([name, "counter",
                         int(value) if float(value).is_integer() else
                         round(value, 6), "", "", ""])
        for name in sorted(snap["gauges"]):
            rows.append([name, "gauge", round(snap["gauges"][name], 6),
                         "", "", ""])
        for name in sorted(snap["histograms"]):
            h = snap["histograms"][name]
            rows.append([name, "histogram", h["count"],
                         round(h["mean"], 6), round(h["min"], 6),
                         round(h["max"], 6)])
        return format_table(
            ["metric", "kind", "count/value", "mean", "min", "max"],
            rows, title=title,
        )


# --------------------------------------------------------------------- #
# progress reporting
# --------------------------------------------------------------------- #

#: seconds between repaints of the live TTY progress line
TTY_REFRESH_SECONDS = 0.1
#: seconds between plain progress lines on a non-TTY stream (CI logs)
PLAIN_REFRESH_SECONDS = 5.0


def _color_allowed(stream: TextIO) -> bool:
    """ANSI styling only on a real terminal with ``NO_COLOR`` unset."""
    if os.environ.get("NO_COLOR"):
        return False
    return bool(getattr(stream, "isatty", lambda: False)())


class ProgressReporter:
    """Live sweep progress on stderr: done/total, throughput, ETA.

    On a TTY the line repaints in place (carriage return, throttled to
    :data:`TTY_REFRESH_SECONDS`); on anything else — a pipe, a CI log —
    it degrades to a plain full line every
    :data:`PLAIN_REFRESH_SECONDS`, so piped stdout stays
    machine-parseable and logs stay readable.  Styling honors
    ``NO_COLOR`` and never applies off-TTY.
    """

    def __init__(self, total: int, done: int = 0, workers: int = 1,
                 label: str = "sweep",
                 stream: Optional[TextIO] = None) -> None:
        self.total = int(total)
        self.done = int(done)
        self.workers = int(workers)
        self.label = str(label)
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._color = _color_allowed(self.stream)
        self._start = time.perf_counter()
        self._start_done = self.done
        self._last_paint = -math.inf
        self._painted = False
        self._final_emitted = False

    def _line(self) -> str:
        elapsed = time.perf_counter() - self._start
        fresh = self.done - self._start_done
        rate = fresh / elapsed if elapsed > 0 else 0.0
        remaining = self.total - self.done
        if rate > 0 and remaining > 0:
            eta = f"ETA {remaining / rate:.0f}s"
        elif remaining == 0:
            eta = f"done in {elapsed:.1f}s"
        else:
            eta = "ETA --"
        label = self.label
        if self._color:
            label = f"\x1b[36m{label}\x1b[0m"
        return (
            f"{label}: {self.done}/{self.total} chunks | "
            f"{rate:.1f} chunk/s | {eta} | {self.workers} worker"
            f"{'' if self.workers == 1 else 's'}"
        )

    def update(self, done: Optional[int] = None) -> None:
        """Repaint (TTY) or emit (non-TTY) the progress line, throttled."""
        if done is not None:
            self.done = int(done)
        else:
            self.done += 1
        now = time.perf_counter()
        interval = TTY_REFRESH_SECONDS if self._tty else PLAIN_REFRESH_SECONDS
        if now - self._last_paint < interval and self.done < self.total:
            return
        self._last_paint = now
        self._painted = True
        if self._tty:
            self.stream.write(f"\r\x1b[2K{self._line()}")
        else:
            self._final_emitted = self.done >= self.total
            self.stream.write(f"{self._line()}\n")
        self.stream.flush()

    def finish(self) -> None:
        """Terminate the live line (newline on TTY, final line off it)."""
        if self._tty:
            if self._painted:
                self.stream.write(f"\r\x1b[2K{self._line()}\n")
                self.stream.flush()
        elif not self._final_emitted:
            self.stream.write(f"{self._line()}\n")
            self.stream.flush()


# --------------------------------------------------------------------- #
# the singleton facade
# --------------------------------------------------------------------- #

#: resilience-event action -> metric counter bumped for it
_EVENT_METRICS = {
    "retry": "executor.retries",
    "timeout": "executor.chunk_timeouts",
    "serial_degrade": "executor.serial_degrades",
}


class Telemetry:
    """Process-wide telemetry facade: one tracer, a metrics-scope stack.

    Metric writes go to *every* registry on the stack, so a scoped
    registry (one sweep's ``execution["metrics"]`` block) and the root
    registry (the CLI's ``--metrics`` end-of-run summary) accumulate
    simultaneously.
    """

    def __init__(self) -> None:
        self.tracer = Tracer()
        self._metrics_stack: List[MetricsRegistry] = [MetricsRegistry()]
        self.progress_enabled = False
        self.progress_stream: Optional[TextIO] = None

    # -- tracing ------------------------------------------------------- #

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    def enable_tracing(self) -> None:
        self.tracer.enabled = True

    def disable_tracing(self) -> None:
        self.tracer.enabled = False

    def span(self, name: str, cat: str = "runtime", **attrs: Any):
        return self.tracer.span(name, cat, **attrs)

    def instant(self, name: str, cat: str = "runtime", **attrs: Any) -> None:
        self.tracer.instant(name, cat, **attrs)

    # -- metrics ------------------------------------------------------- #

    @property
    def root_metrics(self) -> MetricsRegistry:
        """The process-lifetime registry (the CLI summary's source)."""
        return self._metrics_stack[0]

    def inc(self, name: str, n: Union[int, float] = 1) -> None:
        for registry in self._metrics_stack:
            registry.inc(name, n)

    def gauge(self, name: str, value: Union[int, float]) -> None:
        for registry in self._metrics_stack:
            registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        for registry in self._metrics_stack:
            registry.observe(name, value)

    @contextmanager
    def metrics_scope(self):
        """Push a fresh registry for one run; yields it for snapshotting.

        Scopes nest (an experiment driving several sweeps gets one block
        per sweep plus its own outer block); every scope keeps feeding
        the root registry, so the end-of-run summary still sees totals.
        """
        registry = MetricsRegistry()
        self._metrics_stack.append(registry)
        try:
            yield registry
        finally:
            self._metrics_stack.remove(registry)

    def resilience_event(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Record one executor resilience decision and return it.

        The single event system behind the retry/timeout/degrade ladder:
        bumps the matching metric counter, records an instant trace
        event, and hands the payload back for the legacy
        ``execution["resilience_events"]`` compatibility view.
        """
        action = payload.get("action", "event")
        metric = _EVENT_METRICS.get(action)
        if metric is not None:
            self.inc(metric)
        self.instant(f"executor.{action}", cat="resilience", **payload)
        return payload

    # -- workers ------------------------------------------------------- #

    @contextmanager
    def worker_capture(self):
        """Worker-side capture of spans *and* a metrics delta.

        Yields a dict whose ``spans`` / ``metrics`` keys are filled in
        on exit — the payload :class:`TracedCall` ships back.
        """
        shipment: Dict[str, Any] = {"spans": [], "metrics": None}
        delta = MetricsRegistry()
        self._metrics_stack.append(delta)
        try:
            with self.tracer.capture() as buffer:
                yield shipment
        finally:
            self._metrics_stack.remove(delta)
            shipment["spans"] = buffer
            shipment["metrics"] = delta.snapshot()

    def absorb_envelope(self, envelope: "TelemetryEnvelope") -> Any:
        """Merge a worker's shipped telemetry; return the real result."""
        self.tracer.absorb(envelope.spans)
        if envelope.metrics:
            for registry in self._metrics_stack:
                registry.merge_snapshot(envelope.metrics)
        for record in envelope.spans:
            if record.name == "worker-run" and record.dur_us is not None:
                self.observe(f"worker.{record.pid}.busy_seconds",
                             record.dur_us / 1e6)
        return envelope.result

    # -- progress ------------------------------------------------------ #

    def enable_progress(self, stream: Optional[TextIO] = None) -> None:
        self.progress_enabled = True
        self.progress_stream = stream

    def disable_progress(self) -> None:
        self.progress_enabled = False
        self.progress_stream = None

    def progress_reporter(self, total: int, done: int = 0, workers: int = 1,
                          label: str = "sweep",
                          force: bool = False) -> Optional[ProgressReporter]:
        """A reporter when progress is on (globally or ``force``d)."""
        if not (self.progress_enabled or force):
            return None
        return ProgressReporter(
            total=total, done=done, workers=workers, label=label,
            stream=self.progress_stream,
        )

    # -- lifecycle ----------------------------------------------------- #

    def reset(self) -> None:
        """Return to the pristine import-time state (tests / CLI runs)."""
        self.tracer.enabled = False
        self.tracer.reset()
        self._metrics_stack[:] = [MetricsRegistry()]
        self.disable_progress()


#: the process-wide telemetry instance every instrumentation point uses
TELEMETRY = Telemetry()


# --------------------------------------------------------------------- #
# cross-process capture
# --------------------------------------------------------------------- #


@dataclass
class TelemetryEnvelope:
    """A work unit's result plus the telemetry captured computing it."""

    result: Any
    spans: List[SpanRecord]
    metrics: Optional[Dict[str, Any]] = None


class TracedCall:
    """Picklable wrapper running one work unit under worker telemetry.

    Applied by the executor at submission time when tracing is enabled:
    the worker runs the unit inside a ``worker-run`` span with a fresh
    capture buffer and returns a :class:`TelemetryEnvelope`; the
    executor unwraps it at collection (:func:`unwrap_result`), so every
    downstream consumer — checkpoint journal, shadow verification,
    result assembly — sees exactly the bytes an untraced run produces.
    """

    def __init__(self, fn, chunk_index: int) -> None:
        self.fn = fn
        self.chunk_index = int(chunk_index)

    def __call__(self, *args: Any) -> TelemetryEnvelope:
        with TELEMETRY.worker_capture() as shipment:
            with TELEMETRY.span("worker-run", cat="executor",
                                chunk=self.chunk_index):
                result = self.fn(*args)
        return TelemetryEnvelope(
            result=result, spans=shipment["spans"],
            metrics=shipment["metrics"],
        )


def unwrap_result(raw: Any) -> Any:
    """Collection-side unwrap: merge shipped telemetry, return result."""
    if isinstance(raw, TelemetryEnvelope):
        return TELEMETRY.absorb_envelope(raw)
    return raw


# --------------------------------------------------------------------- #
# exporters
# --------------------------------------------------------------------- #


def _chrome_events(records: Sequence[SpanRecord],
                   main_pid: int) -> List[Dict[str, Any]]:
    """Trace-event list: one metadata-named track per recording process."""
    events: List[Dict[str, Any]] = []
    pids: List[int] = []
    for record in records:
        if record.pid not in pids:
            pids.append(record.pid)
    if main_pid in pids:  # the parent track sorts first
        pids.remove(main_pid)
        pids.insert(0, main_pid)
    for sort_index, pid in enumerate(pids):
        name = "main" if pid == main_pid else f"worker-{pid}"
        events.append({
            "ph": "M", "name": "thread_name", "pid": main_pid, "tid": pid,
            "args": {"name": name},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": main_pid,
            "tid": pid, "args": {"sort_index": sort_index},
        })
    t0 = min((r.ts_us for r in records), default=0.0)
    for record in records:
        event: Dict[str, Any] = {
            "name": record.name, "cat": record.cat,
            "ts": record.ts_us - t0, "pid": main_pid, "tid": record.pid,
            "args": record.args,
        }
        if record.dur_us is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = record.dur_us
        events.append(event)
    return events


def export_chrome_trace(
    path: Union[str, Path],
    records: Optional[Sequence[SpanRecord]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write a Chrome trace-event JSON file (Perfetto-loadable).

    Defaults to everything the singleton tracer recorded plus the root
    metrics snapshot (stored under ``otherData`` for humans reading the
    raw file).  One track per worker process, spans as complete (``X``)
    events, resilience decisions as instant (``i``) events.
    """
    if records is None:
        records = TELEMETRY.tracer.records()
    if metrics is None:
        metrics = TELEMETRY.root_metrics.snapshot()
    path = Path(path)
    payload = {
        "traceEvents": _chrome_events(records, main_pid=os.getpid()),
        "displayTimeUnit": "ms",
        "otherData": {"metrics": metrics},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh)
        fh.write("\n")
    return path


def export_jsonl(
    path: Union[str, Path],
    records: Optional[Sequence[SpanRecord]] = None,
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write the JSONL event stream: one JSON object per span/instant,
    a trailing ``{"type": "metrics", ...}`` snapshot line."""
    if records is None:
        records = TELEMETRY.tracer.records()
    if metrics is None:
        metrics = TELEMETRY.root_metrics.snapshot()
    path = Path(path)
    with open(path, "w") as fh:
        for record in records:
            fh.write(json.dumps({
                "type": "instant" if record.dur_us is None else "span",
                "name": record.name, "cat": record.cat,
                "ts_us": record.ts_us, "dur_us": record.dur_us,
                "pid": record.pid, "depth": record.depth,
                "args": record.args,
            }) + "\n")
        fh.write(json.dumps({"type": "metrics", **metrics}) + "\n")
    return path


def export_trace(path: Union[str, Path]) -> Path:
    """Write the recorded trace to ``path``: ``.jsonl`` selects the
    JSONL event stream, anything else the Chrome trace-event form."""
    if str(path).endswith(".jsonl"):
        return export_jsonl(path)
    return export_chrome_trace(path)
