"""``python -m repro`` dispatches to the experiment CLI."""

import sys

from .cli import main

sys.exit(main())
