"""Q-DPM: model-free dynamic power management via Q-learning.

Reproduction of Li, Wu, Yao & Yan, "Q-DPM: An Efficient Model-Free
Dynamic Power Management Technique", DATE 2005.

Quick start::

    from repro import QDPM, SlottedDPMEnv, abstract_three_state, ConstantRate

    device = abstract_three_state()
    env = SlottedDPMEnv(device, ConstantRate(0.15), seed=0)
    manager = QDPM(env, seed=1)
    history = manager.run(100_000)
    print(env.energy_saving_ratio())

Package map
-----------
- :mod:`repro.core` — the contribution: Q-table, TD agents, the QDPM
  controller.
- :mod:`repro.device` — power-state machines and literature presets.
- :mod:`repro.workload` — synthetic request generators (stationary and
  nonstationary).
- :mod:`repro.env` — the slotted DTMDP environment and its exact model.
- :mod:`repro.mdp` — finite-MDP solvers (VI / PI / the LP baseline).
- :mod:`repro.baselines` — timeout / predictive / oracle comparators.
- :mod:`repro.adaptive` — the model-based adaptive pipeline Q-DPM
  replaces.
- :mod:`repro.sim` — event-driven continuous-time simulator.
- :mod:`repro.runtime` — vectorized batched engine (lock-step
  multi-replica env + trainer) and the unified multi-seed sweep runner.
- :mod:`repro.fleet` — multi-device simulation: request dispatch across
  N device replicas with routing policies and fleet-level reports.
- :mod:`repro.experiments` — harnesses for every figure/claim.
- :mod:`repro.extensions` — QoS-constrained and fuzzy Q-DPM.
"""

from .core import QDPM, QLearningAgent, QTable
from .runtime import BatchedQDPM, BatchedSlottedEnv, SweepRunner
from .device import (
    PowerState,
    PowerStateMachine,
    Transition,
    abstract_three_state,
    get_preset,
)
from .env import SlottedDPMEnv, build_dpm_model
from .mdp import FiniteMDP, linear_programming, policy_iteration, value_iteration
from .workload import (
    ConstantRate,
    Exponential,
    Pareto,
    PiecewiseConstantRate,
    Trace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "QDPM",
    "QLearningAgent",
    "QTable",
    "BatchedSlottedEnv",
    "BatchedQDPM",
    "SweepRunner",
    "PowerState",
    "Transition",
    "PowerStateMachine",
    "abstract_three_state",
    "get_preset",
    "SlottedDPMEnv",
    "build_dpm_model",
    "FiniteMDP",
    "value_iteration",
    "policy_iteration",
    "linear_programming",
    "Trace",
    "Exponential",
    "Pareto",
    "ConstantRate",
    "PiecewiseConstantRate",
]
