"""Device power models: states, transitions, machines, and presets."""

from .machine import PowerStateMachine
from .power_state import PowerState, Transition
from .presets import (
    PRESETS,
    abstract_three_state,
    get_preset,
    mobile_hard_disk,
    sensor_node_radio,
    strongarm_sa1100,
    two_state,
    wlan_card,
)
from .validate import ModelIssue, assert_valid, validate_machine

__all__ = [
    "PowerState",
    "Transition",
    "PowerStateMachine",
    "PRESETS",
    "get_preset",
    "abstract_three_state",
    "two_state",
    "mobile_hard_disk",
    "strongarm_sa1100",
    "wlan_card",
    "sensor_node_radio",
    "ModelIssue",
    "validate_machine",
    "assert_valid",
]
