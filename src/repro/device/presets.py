"""Ready-made device power models.

Representative values compiled from the system-level DPM literature
(Benini, Bogliolo & De Micheli, TVLSI 2000; Simunic et al.; Intel
StrongARM SA-1100 datasheet figures as commonly cited).  Absolute numbers
are "literature-representative", not vendor-certified; every experiment in
this repository depends only on the *ratios* between state powers and
transition costs, which these presets preserve.

The :func:`abstract_three_state` preset is the normalized device used by
the slotted DTMDP experiments (Fig. 1 / Fig. 2 reproductions); the others
drive the event-driven simulator examples.
"""

from __future__ import annotations

from .machine import PowerStateMachine
from .power_state import PowerState, Transition


def abstract_three_state(
    active_power: float = 1.0,
    idle_power: float = 0.4,
    sleep_power: float = 0.05,
    sleep_down_energy: float = 0.4,
    sleep_up_energy: float = 1.2,
    sleep_down_latency: float = 1.0,
    sleep_up_latency: float = 3.0,
) -> PowerStateMachine:
    """Normalized three-state device (active / idle / sleep).

    This is the canonical testbench device of the slotted experiments: one
    servicing state, a shallow idle state reachable instantaneously, and a
    deep sleep state with a costly round trip.  Defaults give a break-even
    time of a few slots, so neither "always sleep" nor "never sleep" is
    optimal — the policy decision is non-trivial, as in the paper.
    """
    states = [
        PowerState("active", active_power, can_service=True),
        PowerState("idle", idle_power),
        PowerState("sleep", sleep_power),
    ]
    transitions = [
        Transition("active", "idle", energy=0.0, latency=0.0),
        Transition("idle", "active", energy=0.0, latency=0.0),
        Transition("active", "sleep", sleep_down_energy, sleep_down_latency),
        Transition("sleep", "active", sleep_up_energy, sleep_up_latency),
        Transition("idle", "sleep", sleep_down_energy, sleep_down_latency),
    ]
    return PowerStateMachine("abstract3", states, transitions, initial_state="active")


def two_state(
    on_power: float = 1.0,
    off_power: float = 0.0,
    down_energy: float = 0.2,
    up_energy: float = 0.8,
    down_latency: float = 0.5,
    up_latency: float = 1.5,
) -> PowerStateMachine:
    """Minimal on/off device, the textbook competitive-analysis setting."""
    states = [
        PowerState("on", on_power, can_service=True),
        PowerState("off", off_power),
    ]
    transitions = [
        Transition("on", "off", down_energy, down_latency),
        Transition("off", "on", up_energy, up_latency),
    ]
    return PowerStateMachine("two_state", states, transitions, initial_state="on")


def mobile_hard_disk() -> PowerStateMachine:
    """Mobile hard-disk drive (Fujitsu MHF-2043AT class, Benini et al. survey).

    Busy 2.3 W, idle 0.95 W, standby (spun down) 0.13 W; spin-down takes
    ~0.67 s, spin-up ~1.6 s at elevated power.
    """
    states = [
        PowerState("busy", 2.3, can_service=True),
        PowerState("idle", 0.95),
        PowerState("standby", 0.13),
    ]
    transitions = [
        Transition("busy", "idle", energy=0.0, latency=0.0),
        Transition("idle", "busy", energy=0.0, latency=0.0),
        Transition("idle", "standby", energy=0.36, latency=0.67),
        Transition("standby", "busy", energy=4.39, latency=1.6),
        Transition("busy", "standby", energy=0.36, latency=0.67),
    ]
    return PowerStateMachine("mobile_hdd", states, transitions, initial_state="busy")


def strongarm_sa1100() -> PowerStateMachine:
    """Intel StrongARM SA-1100 processor (run / idle / sleep).

    Run 400 mW, idle 50 mW, sleep 0.16 mW; idle->run is ~10 us (treated as
    free at DPM timescales), sleep->run takes ~160 ms.  Powers in watts.
    """
    states = [
        PowerState("run", 0.4, can_service=True),
        PowerState("idle", 0.05),
        PowerState("sleep", 0.00016),
    ]
    transitions = [
        Transition("run", "idle", energy=0.0, latency=1e-5),
        Transition("idle", "run", energy=0.0, latency=1e-5),
        Transition("run", "sleep", energy=0.016, latency=0.09),
        Transition("sleep", "run", energy=0.064, latency=0.16),
        Transition("idle", "sleep", energy=0.016, latency=0.09),
    ]
    return PowerStateMachine("sa1100", states, transitions, initial_state="run")


def wlan_card() -> PowerStateMachine:
    """802.11 WLAN interface (transmit-capable on state, doze, off).

    On (rx/tx average) ~1.4 W, doze ~0.045 W with ~1 ms wake, off ~0 W
    with a costly reassociation on wake.
    """
    states = [
        PowerState("on", 1.4, can_service=True),
        PowerState("doze", 0.045),
        PowerState("off", 0.0),
    ]
    transitions = [
        Transition("on", "doze", energy=0.001, latency=0.001),
        Transition("doze", "on", energy=0.002, latency=0.001),
        Transition("on", "off", energy=0.1, latency=0.3),
        Transition("off", "on", energy=1.2, latency=3.5),
        Transition("doze", "off", energy=0.1, latency=0.3),
    ]
    return PowerStateMachine("wlan", states, transitions, initial_state="on")


def sensor_node_radio() -> PowerStateMachine:
    """Low-power sensor-node radio (CC2420 class) — the paper's motivating
    "biosensor node" platform.

    Rx/tx ~56 mW, idle ~1.3 mW, power-down ~0.06 mW; wake from power-down
    costs ~1 ms of oscillator start-up.
    """
    states = [
        PowerState("rxtx", 0.056, can_service=True),
        PowerState("idle", 0.0013),
        PowerState("down", 0.00006),
    ]
    transitions = [
        Transition("rxtx", "idle", energy=0.0, latency=0.000192),
        Transition("idle", "rxtx", energy=0.0, latency=0.000192),
        Transition("rxtx", "down", energy=0.0000005, latency=0.0005),
        Transition("down", "rxtx", energy=0.00006, latency=0.001),
        Transition("idle", "down", energy=0.0000005, latency=0.0005),
    ]
    return PowerStateMachine("sensor_radio", states, transitions, initial_state="rxtx")


#: Registry of all presets by name, for CLI / config lookup.
PRESETS = {
    "abstract3": abstract_three_state,
    "two_state": two_state,
    "mobile_hdd": mobile_hard_disk,
    "sa1100": strongarm_sa1100,
    "wlan": wlan_card,
    "sensor_radio": sensor_node_radio,
}


def get_preset(name: str) -> PowerStateMachine:
    """Instantiate a preset device by registry name.

    Raises
    ------
    KeyError
        With the list of known names if ``name`` is not a preset.
    """
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown device preset {name!r}; known presets: {sorted(PRESETS)}"
        )
    return factory()
