"""Consistency checks on device power models.

:class:`PowerStateMachine` already rejects structurally broken models at
construction.  The checks here are *semantic*: they flag models that are
well-formed but physically or economically suspicious (a sleep state that
never pays off, an unreachable state, a transition cheaper than staying
put).  They return :class:`ModelIssue` records instead of raising, so
callers can decide what is fatal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .machine import PowerStateMachine

#: Issue severities, mild to fatal.
INFO = "info"
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class ModelIssue:
    """One finding from :func:`validate_machine`."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def _reachable_from(machine: PowerStateMachine, start: str) -> set:
    """States reachable from ``start`` by following transition edges."""
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nxt in machine.targets_from(node):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return seen


def validate_machine(machine: PowerStateMachine) -> List[ModelIssue]:
    """Run all semantic checks; return the (possibly empty) issue list.

    Checks
    ------
    - ``unreachable-state``   (error): state not reachable from the initial
      state.
    - ``no-return-path``      (error): a state from which no service state
      is reachable (the device would be stuck unable to serve).
    - ``useless-sleep``       (warning): a non-service state whose break-even
      time is infinite or that draws more power than the home state.
    - ``dominated-state``     (info): a rest state dominated by a deeper one
      (higher power *and* higher round-trip cost), so no rational policy
      uses it.
    - ``zero-cost-deep-sleep`` (warning): a state cheaper than home with a
      free round trip — always-sleep trivially optimal, benchmark would be
      degenerate.
    """
    issues: List[ModelIssue] = []
    home = machine.initial_state
    reachable = _reachable_from(machine, home)
    service = set(machine.service_states())

    for name in machine.state_names:
        if name not in reachable:
            issues.append(
                ModelIssue(
                    ERROR,
                    "unreachable-state",
                    f"state {name!r} is unreachable from initial state {home!r}",
                )
            )

    for name in machine.state_names:
        if not (_reachable_from(machine, name) & service):
            issues.append(
                ModelIssue(
                    ERROR,
                    "no-return-path",
                    f"no service state reachable from {name!r}; device would starve",
                )
            )

    home_power = machine.state(home).power
    rest_metrics = {}
    for name in machine.sleep_states_by_depth(home):
        st = machine.state(name)
        if st.can_service:
            continue
        if st.power >= home_power:
            issues.append(
                ModelIssue(
                    WARNING,
                    "useless-sleep",
                    f"rest state {name!r} draws {st.power} W >= home "
                    f"{home!r} at {home_power} W; it can never save energy",
                )
            )
            continue
        if not (machine.can_transition(home, name) and machine.can_transition(name, home)):
            continue
        rt_energy, rt_latency = machine.round_trip(home, name)
        rest_metrics[name] = (st.power, rt_energy, rt_latency)
        if rt_energy == 0 and rt_latency == 0 and name == machine.deepest_state():
            # a free round trip to a *shallow* rest state (an idle/wait
            # state) is normal; to the deepest state it degenerates the
            # whole policy problem
            issues.append(
                ModelIssue(
                    WARNING,
                    "zero-cost-deep-sleep",
                    f"deepest rest state {name!r} saves power with a free "
                    "round trip; always-sleep is trivially optimal",
                )
            )

    names = list(rest_metrics)
    for i, a in enumerate(names):
        pa, ea, la = rest_metrics[a]
        for b in names[i + 1:]:
            pb, eb, lb = rest_metrics[b]
            if pa >= pb and ea >= eb and la >= lb and (pa, ea, la) != (pb, eb, lb):
                issues.append(
                    ModelIssue(
                        INFO,
                        "dominated-state",
                        f"rest state {a!r} is dominated by {b!r} "
                        "(no rational policy would choose it)",
                    )
                )
            elif pb >= pa and eb >= ea and lb >= la and (pa, ea, la) != (pb, eb, lb):
                issues.append(
                    ModelIssue(
                        INFO,
                        "dominated-state",
                        f"rest state {b!r} is dominated by {a!r} "
                        "(no rational policy would choose it)",
                    )
                )
    return issues


def assert_valid(machine: PowerStateMachine) -> None:
    """Raise ``ValueError`` listing all error-severity issues, if any."""
    errors = [i for i in validate_machine(machine) if i.severity == ERROR]
    if errors:
        details = "; ".join(str(e) for e in errors)
        raise ValueError(f"device model {machine.name!r} is invalid: {details}")
