"""Power-state machine: the complete power model of one device.

:class:`PowerStateMachine` bundles the states and transitions of a device,
validates the model on construction, and offers the analytical quantities
classic DPM policies rely on (round-trip energies, break-even times).
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .power_state import PowerState, Transition


class PowerStateMachine:
    """The power model of a single power-managed component.

    Parameters
    ----------
    name:
        Human-readable device name.
    states:
        All power states; names must be unique and exactly one state
        typically has ``can_service=True`` (more are allowed).
    transitions:
        Directed transition edges between states.
    initial_state:
        Name of the state the device starts in; defaults to the first
        servicing state, else the first state.

    Raises
    ------
    ValueError
        On duplicate state names, transitions referencing unknown states,
        duplicate transition edges, or no servicing state at all.
    """

    def __init__(
        self,
        name: str,
        states: Sequence[PowerState],
        transitions: Sequence[Transition],
        initial_state: Optional[str] = None,
    ) -> None:
        if not states:
            raise ValueError("a PowerStateMachine needs at least one state")
        self.name = name
        self._states: Dict[str, PowerState] = {}
        for st in states:
            if st.name in self._states:
                raise ValueError(f"duplicate state name {st.name!r}")
            self._states[st.name] = st

        self._transitions: Dict[Tuple[str, str], Transition] = {}
        for tr in transitions:
            if tr.source not in self._states:
                raise ValueError(f"transition from unknown state {tr.source!r}")
            if tr.target not in self._states:
                raise ValueError(f"transition to unknown state {tr.target!r}")
            if tr.key in self._transitions:
                raise ValueError(f"duplicate transition {tr.source}->{tr.target}")
            self._transitions[tr.key] = tr

        if not any(st.can_service for st in states):
            raise ValueError(f"device {name!r} has no state that can service requests")

        if initial_state is None:
            servicing = [st.name for st in states if st.can_service]
            initial_state = servicing[0] if servicing else states[0].name
        if initial_state not in self._states:
            raise ValueError(f"initial state {initial_state!r} is not a state")
        self.initial_state = initial_state

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #

    @property
    def state_names(self) -> List[str]:
        """State names in declaration order."""
        return list(self._states)

    @property
    def states(self) -> List[PowerState]:
        """All states in declaration order."""
        return list(self._states.values())

    @property
    def transitions(self) -> List[Transition]:
        """All transition edges in declaration order."""
        return list(self._transitions.values())

    def state(self, name: str) -> PowerState:
        """Look up a state by name."""
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(f"unknown power state {name!r} on device {self.name!r}")

    def has_state(self, name: str) -> bool:
        """True if ``name`` is a state of this device."""
        return name in self._states

    def transition(self, source: str, target: str) -> Transition:
        """Look up the transition edge ``source -> target``."""
        try:
            return self._transitions[(source, target)]
        except KeyError:
            raise KeyError(
                f"device {self.name!r} has no transition {source!r} -> {target!r}"
            )

    def can_transition(self, source: str, target: str) -> bool:
        """True if a direct edge ``source -> target`` exists."""
        return (source, target) in self._transitions

    def targets_from(self, source: str) -> List[str]:
        """Names of states directly reachable from ``source``."""
        self.state(source)
        return [dst for (src, dst) in self._transitions if src == source]

    def service_states(self) -> List[str]:
        """Names of the states in which requests are serviced."""
        return [st.name for st in self.states if st.can_service]

    def deepest_state(self) -> str:
        """Name of the lowest-power state (ties broken by order)."""
        return min(self.states, key=lambda st: st.power).name

    def highest_power_state(self) -> str:
        """Name of the highest-power state (ties broken by order)."""
        return max(self.states, key=lambda st: st.power).name

    # ------------------------------------------------------------------ #
    # analytical quantities
    # ------------------------------------------------------------------ #

    def round_trip(self, from_state: str, to_state: str) -> Tuple[float, float]:
        """Energy and latency of going ``from_state -> to_state -> from_state``.

        Returns
        -------
        (energy, latency):
            Sums over the down and up transitions.
        """
        down = self.transition(from_state, to_state)
        up = self.transition(to_state, from_state)
        return down.energy + up.energy, down.latency + up.latency

    def idle_energy(self, rest_state: str, idle_length: float, home_state: str) -> float:
        """Energy of spending an idle period of ``idle_length`` in ``rest_state``.

        The device starts and must end in ``home_state`` (the state in which
        it services requests).  If ``rest_state == home_state`` this is just
        residence energy.  Otherwise the round-trip transition energy is paid
        and the remaining time is spent at the rest state's power.  When the
        idle period is shorter than the round-trip latency, the wake-up
        completes *after* the period ends; the overshoot energy is still
        charged here (pessimistic accounting, standard in break-even
        analysis).
        """
        if idle_length < 0:
            raise ValueError("idle_length must be >= 0")
        if rest_state == home_state:
            return self.state(home_state).energy(idle_length)
        rt_energy, rt_latency = self.round_trip(home_state, rest_state)
        resident = max(0.0, idle_length - rt_latency)
        return rt_energy + self.state(rest_state).energy(resident)

    def break_even_time(self, rest_state: str, home_state: Optional[str] = None) -> float:
        """Minimum idle length for which ``rest_state`` beats staying home.

        The classic DPM break-even time ``T_be``: an (oracle) policy should
        move to ``rest_state`` exactly when the upcoming idle period exceeds
        this value.  Solves ``P_home * T = E_rt + P_rest * (T - L_rt)`` and
        clamps at the round-trip latency ``L_rt``.

        Raises
        ------
        ValueError
            If the rest state does not save power relative to home.
        """
        if home_state is None:
            home_state = self.initial_state
        p_home = self.state(home_state).power
        p_rest = self.state(rest_state).power
        if rest_state == home_state:
            return 0.0
        if p_rest >= p_home:
            raise ValueError(
                f"{rest_state!r} (P={p_rest}) does not save power over "
                f"{home_state!r} (P={p_home})"
            )
        rt_energy, rt_latency = self.round_trip(home_state, rest_state)
        t_be = (rt_energy - p_rest * rt_latency) / (p_home - p_rest)
        return max(t_be, rt_latency)

    def sleep_states_by_depth(self, home_state: Optional[str] = None) -> List[str]:
        """Non-home states ordered from shallowest (highest power) to deepest."""
        if home_state is None:
            home_state = self.initial_state
        others = [st for st in self.states if st.name != home_state]
        return [st.name for st in sorted(others, key=lambda s: -s.power)]

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """Serialize the full machine to a plain dict (JSON-friendly)."""
        return {
            "name": self.name,
            "initial_state": self.initial_state,
            "states": [st.to_dict() for st in self.states],
            "transitions": [tr.to_dict() for tr in self.transitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerStateMachine":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            states=[PowerState.from_dict(d) for d in data["states"]],
            transitions=[Transition.from_dict(d) for d in data["transitions"]],
            initial_state=data.get("initial_state"),
        )

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "PowerStateMachine":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def __repr__(self) -> str:
        return (
            f"PowerStateMachine({self.name!r}, states={self.state_names}, "
            f"transitions={len(self._transitions)})"
        )
