"""Primitive data types for device power modeling.

A power-managed component (disk, CPU, NIC, radio) is described by a set of
:class:`PowerState` (each with a steady-state power draw and a flag saying
whether requests can be serviced there) and a set of :class:`Transition`
edges (each with an energy cost and a latency).  This is the standard
system-level DPM abstraction of Benini, Bogliolo & De Micheli (TVLSI 2000),
which the Q-DPM paper builds on.

Units are SI by convention (watts, joules, seconds), but nothing in the
library depends on the absolute scale: normalized "abstract" devices are
equally valid and are what the slotted experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PowerState:
    """One steady operating mode of a power-managed device.

    Parameters
    ----------
    name:
        Unique identifier, e.g. ``"active"``, ``"idle"``, ``"sleep"``.
    power:
        Steady-state power draw while residing in this state (watts).
    can_service:
        True if pending requests are processed while in this state.
        Typically only the highest-power state services requests.
    """

    name: str
    power: float
    can_service: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("PowerState.name must be a non-empty string")
        if self.power < 0:
            raise ValueError(
                f"PowerState {self.name!r}: power must be >= 0, got {self.power}"
            )

    def energy(self, duration: float) -> float:
        """Energy consumed by residing in this state for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        return self.power * duration

    def to_dict(self) -> dict:
        """Serialize to a plain dict (JSON-friendly)."""
        return {
            "name": self.name,
            "power": self.power,
            "can_service": self.can_service,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PowerState":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            power=float(data["power"]),
            can_service=bool(data.get("can_service", False)),
        )


@dataclass(frozen=True)
class Transition:
    """A commanded power-mode change.

    Parameters
    ----------
    source, target:
        Names of the endpoint :class:`PowerState` s.
    energy:
        Total energy consumed by performing the transition (joules).
    latency:
        Wall-clock time the transition takes (seconds); the device can
        neither service requests nor accept new commands while in flight.
    """

    source: str
    target: str
    energy: float
    latency: float

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(
                f"self-transition {self.source!r} -> {self.target!r} is not allowed"
            )
        if self.energy < 0:
            raise ValueError(
                f"Transition {self.source}->{self.target}: energy must be >= 0"
            )
        if self.latency < 0:
            raise ValueError(
                f"Transition {self.source}->{self.target}: latency must be >= 0"
            )

    @property
    def key(self) -> tuple:
        """(source, target) pair used as the lookup key."""
        return (self.source, self.target)

    @property
    def mean_power(self) -> float:
        """Average power draw during the transition (0 for instant ones)."""
        if self.latency == 0:
            return 0.0
        return self.energy / self.latency

    def to_dict(self) -> dict:
        """Serialize to a plain dict (JSON-friendly)."""
        return {
            "source": self.source,
            "target": self.target,
            "energy": self.energy,
            "latency": self.latency,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Transition":
        """Inverse of :meth:`to_dict`."""
        return cls(
            source=data["source"],
            target=data["target"],
            energy=float(data["energy"]),
            latency=float(data["latency"]),
        )
